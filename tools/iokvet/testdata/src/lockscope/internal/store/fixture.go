// Package store is a lockscope fixture: blocking work and re-entrant
// acquisitions under a held mutex.
package store

import (
	"net/http"
	"os"
	"sync"
	"time"
)

// S is a component with a mutex and a durable file.
type S struct {
	mu sync.Mutex
	f  *os.File
}

// SyncUnderLock fsyncs while holding the mutex: flagged.
func (s *S) SyncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `\(\*os\.File\)\.Sync \(fsync\) while s\.mu held`
}

// SyncAfterUnlock releases the lock first: clean.
func (s *S) SyncAfterUnlock() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.Sync()
}

// Reentrant locks a mutex it already holds: flagged as a deadlock.
func (s *S) Reentrant() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `re-entrant acquisition of s\.mu`
	s.mu.Unlock()
}

// SleepUnderLock parks the scheduler inside the critical section:
// flagged.
func (s *S) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep \(sleep\) while s\.mu held`
	s.mu.Unlock()
}

// FetchUnderLock does an HTTP round-trip under the lock: flagged.
func (s *S) FetchUnderLock(c *http.Client, url string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Get(url) // want `HTTP round-trip`
	return err
}

// GoroutineIsOwnScope: the literal runs outside the parent's critical
// section, so its fsync is clean; and the parent holding the lock
// around `go` is clean too.
func (s *S) GoroutineIsOwnScope() {
	s.mu.Lock()
	go func() {
		_ = s.f.Sync()
	}()
	s.mu.Unlock()
}

// DurabilityPoint is the documented exception: the WAL fsync happens
// inside the write lock on purpose (acknowledged means durable).
// Exempted by directive, no want.
func (s *S) DurabilityPoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//iokvet:allow lockscope(WAL durability point: fsync inside the write lock is the contract)
	return s.f.Sync()
}
