// Package engine is a lockscope fixture for the in-repo blocking set:
// engine.Log appends fsync, so calling them under the engine mutex is
// the documented durability point and must be deliberate.
package engine

import "sync"

// Log is the engine's mutation log (the real one is the store's WAL).
type Log interface {
	LogAddBatch(firstID int, xs []string) error
}

// Engine holds the corpus lock and the mutation log.
type Engine struct {
	mu  sync.Mutex
	log Log
}

// AddUnmarked appends to the WAL under the write lock without owning
// up to it: flagged.
func (e *Engine) AddUnmarked(xs []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.log.LogAddBatch(0, xs) // want `LogAddBatch \(WAL append \+ fsync\) while e\.mu held`
}

// AddDurable is the same call carrying the durability-point directive:
// no want.
func (e *Engine) AddDurable(xs []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	//iokvet:allow lockscope(durability point: the add is acknowledged only after the WAL fsync)
	return e.log.LogAddBatch(0, xs)
}

// AddOutsideLock appends before taking the lock: clean.
func (e *Engine) AddOutsideLock(xs []string) error {
	if err := e.log.LogAddBatch(0, xs); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return nil
}
