// Package sketch is a nondeterm fixture for banned imports.
package sketch

import "math/rand" // want `import of math/rand in a pure package`

// Jitter draws from the unseeded global source: the import itself is
// the finding.
func Jitter() float64 {
	return rand.Float64()
}
