// Package kernel is a nondeterm fixture: a pure package reading the
// clock, the environment, or ambient randomness.
package kernel

import (
	"os"
	"time"
)

// Stamp reads the wall clock in a pure package: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a pure package`
}

// Elapsed uses time.Since (a clock read in disguise): flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in a pure package`
}

// FromEnv reads the process environment: flagged.
func FromEnv() string {
	return os.Getenv("IOK_SEED") // want `os.Getenv in a pure package`
}

// Scale only uses time for its types and arithmetic: clean.
func Scale(d time.Duration, n int) time.Duration {
	return d * time.Duration(n)
}

// ExemptedTiming is an intentional metric timing around a fan-out:
// exempted by directives, no wants.
func ExemptedTiming(f func()) time.Duration {
	//iokvet:allow nondeterm(metric timing only, never persisted)
	t0 := time.Now()
	f()
	//iokvet:allow nondeterm(metric timing only, never persisted)
	return time.Since(t0)
}
