// Package store stubs the real store's blessed write primitives for
// the atomicwrite fixture: inside the implementation, raw file ops are
// the discipline itself and carry directives.
package store

import "os"

// AtomicWriteFile commits data with temp+fsync+rename.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	//iokvet:allow atomicwrite(this is the blessed primitive: temp file of the atomic commit)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	//iokvet:allow atomicwrite(rename is the commit point of the atomic write discipline)
	return os.Rename(tmp, path)
}

// CreateSegment opens a fresh WAL segment: flagged when undirected.
func CreateSegment(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create in a persistence package`
}
