// Package classify is an atomicwrite fixture: durable registry state
// must go through store.AtomicWriteFile.
package classify

import (
	"os"

	"iokast/internal/store"
)

// SaveRaw writes the label table with a raw os.WriteFile: flagged (a
// crash mid-write leaves a torn file recovery then trusts).
func SaveRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile in a persistence package`
}

// SaveAtomic uses the blessed primitive: clean.
func SaveAtomic(path string, data []byte) error {
	return store.AtomicWriteFile(path, data)
}

// SwapRaw renames durable state outside the discipline: flagged.
func SwapRaw(from, to string) error {
	return os.Rename(from, to) // want `os.Rename in a persistence package`
}
