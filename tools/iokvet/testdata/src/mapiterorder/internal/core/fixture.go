// Package core is a mapiterorder fixture: each site is annotated with
// the expected diagnostic (want) or a directive exemption.
package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// FloatAccum sums values in map order: flagged.
func FloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `float accumulation into "sum"`
		sum += v
	}
	return sum
}

// FloatAccumBinary uses the x = x + v spelling: flagged.
func FloatAccumBinary(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `float accumulation into "total"`
		total = total + v
	}
	return total
}

// IntAccum sums integers, which is order-independent: clean.
func IntAccum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// WriteValues streams map entries to a writer in map order: flagged.
func WriteValues(w io.Writer, m map[string]string) {
	var b bytes.Buffer
	for k, v := range m { // want `map iteration order reaches WriteString`
		b.WriteString(k)
		b.WriteString(v)
	}
	w.Write(b.Bytes())
}

// PrintValues uses fmt.Fprintf in map order: flagged.
func PrintValues(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// AppendUnsorted returns entries in map order: flagged.
func AppendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `append to "out"`
		out = append(out, k)
	}
	return out
}

// CollectThenSort is the canonical sorted-iteration idiom: the appended
// slice is sorted right after the loop, so it is clean.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectThenHelperSort sorts through a local helper whose name says
// so: clean.
func CollectThenHelperSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// LoopLocalAppend appends to a slice declared inside the loop body:
// clean (its order never escapes the iteration).
func LoopLocalAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// SliceRange iterates a slice, not a map: clean.
func SliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		io.WriteString(w, x)
	}
}

// ExemptedAccum documents an intentional order-dependent sum (the
// caller tolerates rounding drift): exempted by directive, no want.
func ExemptedAccum(m map[string]float64) float64 {
	var sum float64
	//iokvet:allow mapiterorder(diagnostic-only sum, rounding drift tolerated)
	for _, v := range m {
		sum += v
	}
	return sum
}
