package core

// Bad directives are findings of the "directive" pseudo-analyzer and
// can never be suppressed.

//iokvet:allow mapiterorder // want `malformed iokvet directive`

//iokvet:allow notachecker(some reason) // want `unknown analyzer "notachecker"`
