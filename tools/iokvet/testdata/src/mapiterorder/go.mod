module iokast

go 1.22
