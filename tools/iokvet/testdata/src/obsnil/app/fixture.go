// Package app is an obsnil fixture: user code constructing obs types
// directly instead of going through the registry.
package app

import "iokast/internal/obs"

// BadRegistry hand-builds a registry whose first use panics: flagged.
func BadRegistry() *obs.Registry {
	return &obs.Registry{} // want `direct construction of obs\.Registry panics on first use`
}

// BadNewRegistry spells it with new(): flagged.
func BadNewRegistry() *obs.Registry {
	return new(obs.Registry) // want `direct construction of obs\.Registry`
}

// BadVarRegistry declares a value registry: flagged.
func BadVarRegistry() {
	var r obs.Registry // want `direct construction of obs\.Registry`
	_ = r.Counter("x")
}

// BadCounter builds a detached instrument that never reaches /metrics:
// flagged.
func BadCounter() *obs.Counter {
	return &obs.Counter{} // want `direct construction of obs\.Counter bypasses the registry`
}

// BadNewHistogram: flagged.
func BadNewHistogram() *obs.Histogram {
	return new(obs.Histogram) // want `direct construction of obs\.Histogram`
}

// Good obtains everything from the registry: clean. A nil *Counter
// (uninstrumented component) is also fine — that is the nil-safe
// zero-value pattern itself.
func Good() {
	r := obs.NewRegistry()
	c := r.Counter("iok_requests_total")
	c.Inc()
	var detached *obs.Counter
	detached.Inc()
}

// ExemptedGauge documents a deliberate detached gauge (a test double):
// no want.
func ExemptedGauge() *obs.Gauge {
	//iokvet:allow obsnil(test double: never scraped, asserts Set calls only)
	return &obs.Gauge{}
}
