// Package obs stubs the real metrics package for the obsnil fixture:
// registries and instruments must come from NewRegistry / Registry
// methods.
package obs

import "sync"

// Counter is a monotonically increasing metric, nil-safe.
type Counter struct{ v int64 }

// Inc adds one (no-op on nil).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Gauge can go up and down, nil-safe.
type Gauge struct{ v int64 }

// Set replaces the value (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v = n
	}
}

// Histogram records observations, nil-safe.
type Histogram struct{ mu sync.Mutex }

// Registry is the instrument factory; the zero value panics on first
// use, which is exactly what obsnil guards against.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Counter
}

// NewRegistry returns a usable registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*Counter{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.families[name]
	if c == nil {
		c = &Counter{}
		r.families[name] = c
	}
	return c
}
