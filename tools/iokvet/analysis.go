package iokvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a type-checked package and
// reports findings through the Pass; the driver applies //iokvet:allow
// suppression afterwards, so analyzers report unconditionally.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by `iokvet -list`
	// and the usage text.
	Doc string
	// Packages restricts the analyzer to import paths equal to or under
	// one of these prefixes. Empty means every package.
	Packages []string
	Run      func(*Pass) error
}

// appliesTo reports whether the analyzer runs on the package path.
func (a *Analyzer) appliesTo(path string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// CalleeName resolves a call's callee to its qualified name:
// "time.Now" for package functions, "(*os.File).Sync" for methods,
// "(iokast/internal/engine.Log).LogAddBatch" for interface methods.
// Returns "" when the callee is not a named function (builtin, func
// value, conversion).
func (p *Pass) CalleeName(call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok {
		return ""
	}
	return fn.FullName()
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// Run executes every applicable analyzer over every package, applies
// directive suppression, and returns the surviving findings ordered by
// file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !a.appliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		sup, dirDiags := directives(pkg, analyzers)
		pkgDiags = append(pkgDiags, dirDiags...)
		for _, d := range pkgDiags {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppression maps analyzer name -> file -> suppressed line ranges.
type suppression map[string]map[string][][2]int

func (s suppression) add(analyzer, file string, from, to int) {
	if s[analyzer] == nil {
		s[analyzer] = map[string][][2]int{}
	}
	s[analyzer][file] = append(s[analyzer][file], [2]int{from, to})
}

func (s suppression) suppressed(d Diagnostic) bool {
	if d.Analyzer == "directive" {
		return false // directive problems are never suppressible
	}
	for _, ranges := range []([][2]int){s[d.Analyzer][d.Pos.Filename], s["*"][d.Pos.Filename]} {
		for _, r := range ranges {
			if d.Pos.Line >= r[0] && d.Pos.Line <= r[1] {
				return true
			}
		}
	}
	return false
}

// directiveRE: //iokvet:allow name(reason) — reason mandatory. The
// tail is left open so fixtures can carry trailing want comments.
var directiveRE = regexp.MustCompile(`^//iokvet:allow\s+([a-z*]+)\s*\(([^()]*)\)`)

// directives scans a package's comments for //iokvet:allow markers,
// building the suppression table. A directive suppresses its own line,
// and — when a statement or declaration starts on the following line —
// that node's whole span. Malformed directives and unknown analyzer
// names come back as findings of the pseudo-analyzer "directive".
func directives(pkg *Package, analyzers []*Analyzer) (suppression, []Diagnostic) {
	// Validate names against the full suite, not just the analyzers in
	// this run: a fixture exercising one analyzer may still carry
	// directives for another.
	known := map[string]bool{"*": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := suppression{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//iokvet:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := directiveRE.FindStringSubmatch(c.Text)
				if m != nil && strings.TrimSpace(m[2]) == "" {
					m = nil // a directive without a reason is malformed
				}
				if m == nil {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "malformed iokvet directive: want //iokvet:allow analyzer(reason)",
					})
					continue
				}
				name := m[1]
				if !known[name] {
					diags = append(diags, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("iokvet directive names unknown analyzer %q", name),
					})
					continue
				}
				from, to := pos.Line, pos.Line
				if end, ok := nodeSpanStartingAt(pkg.Fset, f, pos.Line+1); ok {
					to = end
				}
				sup.add(name, pos.Filename, from, to)
			}
		}
	}
	return sup, diags
}

// nodeSpanStartingAt finds the outermost statement, declaration, or spec
// whose first line is `line` and returns its last line.
func nodeSpanStartingAt(fset *token.FileSet, f *ast.File, line int) (endLine int, ok bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || ok {
			return !ok
		}
		switch n.(type) {
		case ast.Decl, ast.Stmt, ast.Spec:
			if fset.Position(n.Pos()).Line == line {
				endLine, ok = fset.Position(n.End()).Line, true
				return false
			}
		}
		return true
	})
	return endLine, ok
}

// InspectStack walks every file, calling fn with the ancestor stack
// (outermost first, n excluded). Returning false skips n's children.
func (p *Pass) InspectStack(fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(stack, n) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
