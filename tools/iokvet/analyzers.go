package iokvet

// Package sets. Paths are full import paths; fixture modules declare
// `module iokast` so the same sets hold there.
var (
	// determinismPackages may leak no ordering, clock, or ambient state
	// into persisted bytes, HTTP output, or float rounding: the
	// bit-identical guarantees (sharded-vs-single, batch-vs-streaming,
	// crash recovery) run through them.
	determinismPackages = []string{
		"iokast/internal/core",
		"iokast/internal/kernel",
		"iokast/internal/sketch",
		"iokast/internal/shard",
		"iokast/internal/store",
		"iokast/internal/classify",
		"iokast/internal/obs",
		"iokast/internal/engine",
		"iokast/internal/serve",
		"iokast/internal/stream",
	}

	// purePackages are exact functions of their inputs: the paper's
	// kernel, its embeddings, and the routing/classification on top.
	purePackages = []string{
		"iokast/internal/core",
		"iokast/internal/kernel",
		"iokast/internal/sketch",
		"iokast/internal/token",
		"iokast/internal/ir",
		"iokast/internal/shard",
		"iokast/internal/classify",
	}

	// persistencePackages hold durable data-dir state; writes go through
	// store.AtomicWriteFile or the WAL writer.
	persistencePackages = []string{
		"iokast/internal/store",
		"iokast/internal/classify",
		"iokast/internal/shard",
		"iokast/internal/engine",
		"iokast/internal/serve",
		"iokast/internal/stream",
	}

	// lockedPackages are the components whose mutexes guard hot paths;
	// blocking while holding one stalls every reader.
	lockedPackages = []string{
		"iokast/internal/engine",
		"iokast/internal/store",
		"iokast/internal/shard",
		"iokast/internal/classify",
		"iokast/internal/sketch",
		"iokast/internal/obs",
		"iokast/internal/serve",
		"iokast/internal/stream",
	}
)

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIterOrder,
		NonDeterm,
		AtomicWrite,
		LockScope,
		ObsNil,
	}
}
