package iokvet

import (
	"go/ast"
	"strconv"
)

// NonDeterm bans ambient nondeterminism — wall clock, process
// environment, unseeded randomness and hashing — in the pure packages.
// Those packages compute the paper's kernel and everything layered on
// it; the bit-identical guarantees only hold if they are exact
// functions of their inputs. Seeded internal/xrand stays allowed (its
// streams are part of the input), as does plain "time" for types and
// durations — only the clock reads are banned. Intentional exceptions
// (metric timings around a fan-out) carry //iokvet:allow nondeterm
// directives.
var NonDeterm = &Analyzer{
	Name:     "nondeterm",
	Doc:      "pure kernel/sketch/routing packages read no clock, environment, or ambient randomness",
	Packages: purePackages,
	Run:      runNonDeterm,
}

// nondetermCalls are the banned entry points, by qualified name.
var nondetermCalls = map[string]string{
	"time.Now":              "wall clock",
	"time.Since":            "wall clock",
	"time.Until":            "wall clock",
	"os.Getenv":             "process environment",
	"os.LookupEnv":          "process environment",
	"os.Environ":            "process environment",
	"hash/maphash.MakeSeed": "ambient hash seed",
}

// nondetermImports are packages whose every use is ambient randomness.
var nondetermImports = map[string]string{
	"math/rand":    "unseeded global randomness (use internal/xrand)",
	"math/rand/v2": "unseeded global randomness (use internal/xrand)",
	"crypto/rand":  "ambient randomness",
}

func runNonDeterm(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := nondetermImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s in a pure package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if why, ok := nondetermCalls[pass.CalleeName(call)]; ok {
				pass.Reportf(call.Pos(), "%s in a pure package: %s", pass.CalleeName(call), why)
			}
			return true
		})
	}
	return nil
}
