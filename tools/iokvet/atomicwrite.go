package iokvet

import "go/ast"

// AtomicWrite requires durable state to reach disk through
// store.AtomicWriteFile (temp file, fsync, rename) or the WAL writer.
// A raw os.Create / os.WriteFile / os.Rename / os.OpenFile in a
// persistence package can leave a torn file that recovery then trusts
// — exactly the failure mode the MANIFEST/labels discipline exists to
// close. The primitives inside internal/store that implement the
// discipline carry //iokvet:allow atomicwrite directives.
var AtomicWrite = &Analyzer{
	Name:     "atomicwrite",
	Doc:      "durable files are written only via store.AtomicWriteFile or the WAL writer",
	Packages: persistencePackages,
	Run:      runAtomicWrite,
}

var rawWriteCalls = map[string]bool{
	"os.Create":    true,
	"os.WriteFile": true,
	"os.Rename":    true,
	"os.OpenFile":  true,
}

func runAtomicWrite(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := pass.CalleeName(call); rawWriteCalls[name] {
				pass.Reportf(call.Pos(), "%s in a persistence package: route durable writes through store.AtomicWriteFile or the WAL writer", name)
			}
			return true
		})
	}
	return nil
}
