package iokvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// MapIterOrder flags `range` over a map whose body has an
// order-sensitive effect: writing to a writer/encoder, appending to a
// slice declared outside the loop, or accumulating floats. Go
// randomizes map order per iteration, so any of these leaks
// nondeterminism into bytes or rounding. The collect-keys-then-sort
// idiom is recognized: an appended slice that a later statement in the
// same block passes to a sort-ish call is exempt.
var MapIterOrder = &Analyzer{
	Name:     "mapiterorder",
	Doc:      "no map-iteration order may reach persisted bytes, output writers, or float accumulation",
	Packages: determinismPackages,
	Run:      runMapIterOrder,
}

// writeishMethods are method names whose call inside a map-range body
// counts as emitting ordered output.
var writeishMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
}

// writeishFuncs are package-level functions that emit ordered output.
var writeishFuncs = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

var sortishName = regexp.MustCompile(`(?i)sort`)

func runMapIterOrder(pass *Pass) error {
	pass.InspectStack(func(stack []ast.Node, n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, stack, rs)
		return true
	})
	return nil
}

// checkMapRangeBody reports the first order-sensitive effect in the
// loop body (one finding per loop: the fix — iterating sorted keys —
// is the same whatever the sink).
func checkMapRangeBody(pass *Pass, stack []ast.Node, rs *ast.RangeStmt) {
	reported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeShortName(n); writeishMethods[name] {
				pass.Reportf(rs.For, "map iteration order reaches %s call at line %d; iterate sorted keys",
					name, pass.Fset.Position(n.Pos()).Line)
				reported = true
				return false
			}
			if full := pass.CalleeName(n); writeishFuncs[full] {
				pass.Reportf(rs.For, "map iteration order reaches %s call at line %d; iterate sorted keys",
					full, pass.Fset.Position(n.Pos()).Line)
				reported = true
				return false
			}
		case *ast.AssignStmt:
			reported = checkMapRangeAssign(pass, stack, rs, n)
		}
		return true
	})
}

// checkMapRangeAssign flags float accumulation and unsorted appends to
// loop-external slices inside a map-range body, reporting true when it
// emitted a finding.
func checkMapRangeAssign(pass *Pass, stack []ast.Node, rs *ast.RangeStmt, as *ast.AssignStmt) bool {
	// sum += x / sum -= x, or sum = sum + x, on a float declared outside
	// the loop: addition order changes the rounded result.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || selfBinaryAssign(as) {
		if id, obj := outerIdent(pass, rs, as.Lhs[0]); id != nil && isFloat(obj.Type()) {
			pass.Reportf(rs.For, "map iteration order reaches float accumulation into %q at line %d; iterate sorted keys or accumulate order-independently",
				id.Name, pass.Fset.Position(as.Pos()).Line)
			return true
		}
	}
	// dst = append(dst, ...) where dst lives outside the loop and no
	// later statement in the enclosing block sorts it.
	if as.Tok != token.ASSIGN || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" || pass.Info.Uses[fid] != types.Universe.Lookup("append") {
		return false
	}
	id, obj := outerIdent(pass, rs, as.Lhs[0])
	if id == nil || sortedAfter(pass, stack, rs, obj) {
		return false
	}
	pass.Reportf(rs.For, "map iteration order reaches append to %q (declared outside the loop, never sorted after it) at line %d; iterate sorted keys or sort the result",
		id.Name, pass.Fset.Position(as.Pos()).Line)
	return true
}

// selfBinaryAssign reports x = x + y / x = x - y.
func selfBinaryAssign(as *ast.AssignStmt) bool {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	bin, ok := as.Rhs[0].(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return false
	}
	if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && x.Name == lhs.Name {
		return true
	}
	if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && y.Name == lhs.Name {
		return true
	}
	return false
}

// outerIdent resolves expr to an identifier whose object is declared
// outside the range statement, or (nil, nil).
func outerIdent(pass *Pass, rs *ast.RangeStmt, expr ast.Expr) (*ast.Ident, types.Object) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
		return nil, nil
	}
	return id, obj
}

// sortedAfter reports whether a statement after rs in its enclosing
// block calls something sort-ish (sort.Strings, slices.Sort, a local
// sortCandidates helper, ...) with obj among the arguments.
func sortedAfter(pass *Pass, stack []ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	// Find the enclosing block and the child of it that contains rs.
	var block *ast.BlockStmt
	var at int
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			holder := ast.Node(rs)
			if i+1 < len(stack) {
				holder = stack[i+1]
			}
			for j, s := range b.List {
				if s == holder {
					block, at = b, j
					break
				}
			}
			if block != nil {
				break
			}
		}
	}
	if block == nil {
		return false
	}
	sorted := false
	for _, s := range block.List[at+1:] {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			// Match the full callee spelling: "sort.Strings",
			// "slices.SortFunc", or a local "sortCandidates" helper.
			if !sortishName.MatchString(types.ExprString(call.Fun)) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}

// calleeShortName returns the bare callee identifier of a call:
// "WriteString" for b.WriteString(...), "sortCandidates" for a local
// helper, "" otherwise.
func calleeShortName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isFloat reports whether t's underlying type is a float.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
