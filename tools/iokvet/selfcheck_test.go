package iokvet

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the self-check the CI analysis job depends on:
// the full suite over the repo's own tree must be green. Every real
// finding has either been fixed or carries a reasoned //iokvet:allow
// directive; a regression here means new code broke a determinism,
// durability, or locking invariant.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the repo root")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}
