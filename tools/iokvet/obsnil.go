package iokvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsNil enforces the obs package's construction contract: registries
// come from obs.NewRegistry and instruments from Registry.Counter /
// Gauge / Histogram. A hand-built Registry{} panics on first use (nil
// family map), and a composite-literal Counter/Gauge/Histogram is
// detached from every registry, so it silently never appears in
// /metrics — both are wiring bugs the nil-safe zero-value pattern
// exists to prevent.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "obs registries and instruments are constructed only via obs.NewRegistry / Registry methods",
	Run:  runObsNil,
}

const obsPath = "iokast/internal/obs"

var obsInstruments = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Registry": true,
}

func runObsNil(pass *Pass) error {
	if p := pass.Pkg.Path(); p == obsPath || strings.HasPrefix(p, obsPath+"/") {
		return nil // the implementation constructs its own instruments
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := obsTypeName(pass.Info.TypeOf(n)); ok {
					reportObsConstruction(pass, n.Pos(), name)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 &&
					pass.Info.Uses[id] == types.Universe.Lookup("new") {
					if name, ok := obsTypeName(pass.Info.TypeOf(n.Args[0])); ok {
						reportObsConstruction(pass, n.Pos(), name)
					}
				}
			case *ast.ValueSpec:
				// `var r obs.Registry` is a zero value whose first
				// getSeries call panics.
				if n.Type != nil {
					if name, ok := obsTypeName(pass.Info.TypeOf(n.Type)); ok && name == "Registry" {
						reportObsConstruction(pass, n.Pos(), name)
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportObsConstruction(pass *Pass, pos token.Pos, name string) {
	if name == "Registry" {
		pass.Reportf(pos, "direct construction of obs.Registry panics on first use (nil family map); use obs.NewRegistry")
		return
	}
	pass.Reportf(pos, "direct construction of obs.%s bypasses the registry: it will never appear in /metrics; obtain it from Registry.%s", name, name)
}

// obsTypeName reports whether t is one of obs's exported instrument or
// registry types, returning the bare type name.
func obsTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
		return "", false
	}
	return obj.Name(), obsInstruments[obj.Name()]
}
