package iokvet

import (
	"go/ast"
	"go/types"
)

// LockScope encodes the locking model in docs/ARCHITECTURE.md: locks
// are fine-grained and never held across blocking work. Within one
// function it tracks which mutexes are held (Lock/RLock through
// Unlock/RUnlock, or to function end under a deferred unlock) and
// flags (a) re-entrant acquisition of a mutex already held — a
// guaranteed deadlock — and (b) blocking calls under any held lock:
// fsync, network dials, HTTP round-trips, sleeps, subprocesses, and
// the in-repo blockers store.AtomicWriteFile and engine.Log appends.
// The WAL durability point (fsync inside the engine write lock) is the
// documented, intentional exception and carries directives. The check
// is intra-function and syntactic: function literals are separate
// scopes, and branch-local acquisitions are treated as held for the
// rest of the function (a conservative approximation).
var LockScope = &Analyzer{
	Name:     "lockscope",
	Doc:      "no blocking call and no re-entrant acquisition while a component mutex is held",
	Packages: lockedPackages,
	Run:      runLockScope,
}

const (
	lockAcquire = iota
	lockRelease
)

// lockMethods maps the sync primitives' method names to their effect.
var lockMethods = map[string]int{
	"(*sync.Mutex).Lock":      lockAcquire,
	"(*sync.RWMutex).Lock":    lockAcquire,
	"(*sync.RWMutex).RLock":   lockAcquire,
	"(*sync.Mutex).Unlock":    lockRelease,
	"(*sync.RWMutex).Unlock":  lockRelease,
	"(*sync.RWMutex).RUnlock": lockRelease,
}

// blockingCalls maps qualified names to what makes them blocking.
var blockingCalls = map[string]string{
	"(*os.File).Sync":                          "fsync",
	"time.Sleep":                               "sleep",
	"net.Dial":                                 "network dial",
	"net.DialTimeout":                          "network dial",
	"net.Listen":                               "network listen",
	"net/http.Get":                             "HTTP round-trip",
	"net/http.Post":                            "HTTP round-trip",
	"net/http.PostForm":                        "HTTP round-trip",
	"net/http.Head":                            "HTTP round-trip",
	"(*net/http.Client).Do":                    "HTTP round-trip",
	"(*net/http.Client).Get":                   "HTTP round-trip",
	"(*net/http.Client).Post":                  "HTTP round-trip",
	"(*net/http.Client).PostForm":              "HTTP round-trip",
	"(*net/http.Client).Head":                  "HTTP round-trip",
	"(*os/exec.Cmd).Run":                       "subprocess",
	"(*os/exec.Cmd).Output":                    "subprocess",
	"(*os/exec.Cmd).CombinedOutput":            "subprocess",
	"(*os/exec.Cmd).Wait":                      "subprocess",
	"iokast/internal/store.AtomicWriteFile":    "fsync (atomic file commit)",
	"(iokast/internal/engine.Log).LogAdd":      "WAL append + fsync",
	"(iokast/internal/engine.Log).LogAddBatch": "WAL append + fsync",
	"(iokast/internal/engine.Log).LogRemove":   "WAL append + fsync",
}

func runLockScope(pass *Pass) error {
	var scopes []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				scopes = append(scopes, fd.Body)
			}
		}
	}
	// Function literals are their own scopes (a fan-out goroutine does
	// not inherit its parent's critical section).
	for len(scopes) > 0 {
		body := scopes[0]
		scopes = scopes[1:]
		scopes = append(scopes, analyzeLockScope(pass, body)...)
	}
	return nil
}

// analyzeLockScope walks one function body in source order, tracking
// held mutexes by receiver expression, and returns nested function
// literals for separate analysis.
func analyzeLockScope(pass *Pass, body *ast.BlockStmt) []*ast.BlockStmt {
	held := map[string]bool{}
	var nested []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n.Body)
			return false
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps mu held to function end; other
			// deferred work runs outside this walk's ordering, so skip it.
			return false
		case *ast.CallExpr:
			name := pass.CalleeName(n)
			if effect, ok := lockMethods[name]; ok {
				key := lockKey(pass, n)
				switch effect {
				case lockAcquire:
					if held[key] {
						pass.Reportf(n.Pos(), "re-entrant acquisition of %s, already held in this function: deadlock", key)
					}
					held[key] = true
				case lockRelease:
					delete(held, key)
				}
				return true
			}
			if why, ok := blockingCalls[name]; ok && len(held) > 0 {
				pass.Reportf(n.Pos(), "%s (%s) while %s held: blocking under a component mutex stalls every reader",
					name, why, heldNames(held))
			}
		}
		return true
	})
	return nested
}

// lockKey renders the mutex receiver ("s.mu") for identity tracking.
func lockKey(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "?"
	}
	return types.ExprString(sel.X)
}

// heldNames lists the held mutexes deterministically for the message.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// tiny n: insertion sort keeps this dependency-free and ordered
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
