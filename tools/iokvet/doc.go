// Package iokvet is the repo's own static-analysis suite: five analyzers
// that enforce the determinism, durability, and locking invariants the
// system's headline guarantees rest on. The invariants are documented in
// docs/ARCHITECTURE.md ("Enforced invariants"); nothing in the standard
// toolchain checks them, so iokvet does.
//
// The analyzers:
//
//   - mapiterorder: a `range` over a map whose body writes to an
//     io.Writer/encoder, appends to a slice declared outside the loop, or
//     accumulates floats leaks Go's randomized map order into persisted
//     bytes, HTTP output, or float rounding. Iterate sorted keys (the
//     collect-keys-then-sort idiom is recognized and exempt) or
//     accumulate order-independently.
//   - nondeterm: the pure kernel/sketch/routing packages must be exact
//     functions of their inputs — no time.Now/Since/Until, no
//     os.Getenv/LookupEnv/Environ, no math/rand or crypto/rand imports,
//     no ambient maphash seeds. Seeded internal/xrand and counter-mode
//     hashing stay allowed.
//   - atomicwrite: durable state reaches disk only through
//     store.AtomicWriteFile or the WAL writer. Raw os.Create /
//     os.WriteFile / os.Rename / os.OpenFile in the persistence packages
//     is an error; the blessed primitives inside internal/store carry
//     directives.
//   - lockscope: no blocking operation while a mutex is held — fsync,
//     network dials, HTTP round-trips, time.Sleep, and the in-repo
//     blockers store.AtomicWriteFile and engine.Log appends — and no
//     re-entrant acquisition of a mutex already held in the same
//     function. Intentional holds (the WAL durability point) carry
//     directives.
//   - obsnil: obs instruments and registries come from obs.NewRegistry /
//     Registry.Counter|Gauge|Histogram, never from composite literals or
//     new() — a hand-built Registry panics on first use, and a detached
//     instrument silently vanishes from /metrics.
//
// # Directives
//
// A finding that is intentional is exempted in place:
//
//	//iokvet:allow <analyzer>(reason)
//
// The reason is mandatory. A trailing directive suppresses the analyzer
// on its own line; a directive on its own line suppresses the statement
// or declaration that starts on the next line (a directive above a func
// declaration covers the whole function). A malformed directive, or one
// naming an unknown analyzer, is itself reported and cannot be
// suppressed.
//
// The suite is stdlib-only by design: the loader shells out to `go list
// -export` and type-checks against gc export data, so the root module
// stays zero-dependency. Run it via `go run ./cmd/iokvet ./...` or the
// CI analysis job.
package iokvet
