package iokvet

import (
	"path/filepath"
	"testing"
)

// TestFixtures runs each analyzer over its want-annotated fixture
// module. Every fixture carries at least one want-positive and one
// directive-exempted site; an exempted site simply has no want, so a
// leaking diagnostic fails the run.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
	}{
		{"mapiterorder", MapIterOrder},
		{"nondeterm", NonDeterm},
		{"atomicwrite", AtomicWrite},
		{"lockscope", LockScope},
		{"obsnil", ObsNil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := filepath.Join("testdata", "src", tc.name)
			for _, err := range CheckFixture(dir, tc.analyzer) {
				t.Error(err)
			}
		})
	}
}

// TestAnalyzerMetadata pins the suite's shape: names are unique,
// docs are set, and the determinism-critical sets name real packages.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" {
			t.Fatalf("analyzer with empty name or doc: %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Fatalf("analyzer %s has no Run", a.Name)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("want 5 analyzers, have %d", len(seen))
	}
}

// TestAppliesTo pins the prefix semantics of package scoping.
func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Packages: []string{"iokast/internal/core"}}
	for path, want := range map[string]bool{
		"iokast/internal/core":         true,
		"iokast/internal/core/testpkg": true,
		"iokast/internal/corelike":     false,
		"iokast/internal/kernel":       false,
	} {
		if got := a.appliesTo(path); got != want {
			t.Errorf("appliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	all := &Analyzer{}
	if !all.appliesTo("anything/at/all") {
		t.Error("empty Packages should apply everywhere")
	}
}
