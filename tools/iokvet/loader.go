package iokvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns in dir with `go list -export -deps`, then
// parses and type-checks each matched (non-dependency) package against
// the gc export data of its dependencies. Only non-test GoFiles are
// analyzed, matching what ships. The suite is stdlib-only on purpose:
// using the toolchain's own export data keeps the root module
// zero-dependency and the type-checker in exact agreement with the
// build.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("iokvet: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
