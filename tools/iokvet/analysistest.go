package iokvet

import (
	"fmt"
	"go/token"
	"regexp"
)

// wantRE matches `// want` comments carrying one or more backquoted
// regexps: // want `first` `second`
var (
	wantRE     = regexp.MustCompile("//\\s*want\\s+((?:`[^`]+`\\s*)+)$")
	wantPartRE = regexp.MustCompile("`([^`]+)`")
)

// expectation is one // want entry, keyed by file:line.
type expectation struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

// CheckFixture runs the analyzers over the module rooted at dir and
// compares the surviving diagnostics against // want comments in the
// fixture sources (want-comment style, as x/tools' analysistest). It
// returns one error per mismatch: a diagnostic with no matching want,
// or a want no diagnostic matched — so a directive-exempted site is
// asserted simply by carrying no want.
func CheckFixture(dir string, analyzers ...*Analyzer) []error {
	pkgs, err := Load(dir, "./...")
	if err != nil {
		return []error{err}
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					for _, part := range wantPartRE.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(part[1])
						if err != nil {
							return []error{fmt.Errorf("%s: bad want regexp: %w", pkg.Fset.Position(c.Pos()), err)}
						}
						wants = append(wants, &expectation{pos: pkg.Fset.Position(c.Pos()), re: re})
					}
				}
			}
		}
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.pos.Filename == d.Pos.Filename && w.pos.Line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("%s: unexpected diagnostic [%s] %s", d.Pos, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			errs = append(errs, fmt.Errorf("%s: no diagnostic matched want %q", w.pos, w.re))
		}
	}
	return errs
}
