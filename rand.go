package iokast

import "iokast/internal/xrand"

// newRand isolates the façade's only dependency on the internal RNG so the
// public surface stays free of internal types.
func newRand(seed uint64) *xrand.Rand { return xrand.New(seed) }
