// Command iokstats summarises an I/O trace along the characterisation
// axes of the paper's §2.1 (granularity, randomness, concurrency, load
// balance, burstiness) and prints its operation-vocabulary histogram.
//
// Usage:
//
//	iokstats [-strace] [-top 10] file.trace
//	cat file.trace | iokstats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/trace"
)

func main() {
	straceIn := flag.Bool("strace", false, "input is an strace-style call log")
	top := flag.Int("top", 10, "histogram entries to display (0 = all)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "iokstats: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokstats: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var (
		tr  *trace.Trace
		err error
	)
	if *straceIn {
		tr, err = trace.ParseStrace(in)
	} else {
		tr, err = trace.Parse(in)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokstats: %v\n", err)
		os.Exit(1)
	}

	if tr.Name != "" {
		fmt.Printf("trace: %s\n", tr.Name)
	}
	fmt.Print(trace.ComputeStats(tr).String())

	hist := trace.ByteHistogram(tr)
	if *top > 0 && len(hist) > *top {
		hist = hist[:*top]
	}
	if len(hist) > 0 {
		fmt.Println("\nvocabulary (count x operation):")
		for _, e := range hist {
			fmt.Printf("  %8d x %-24s (%d bytes total)\n", e.Count, e.Key, e.Bytes)
		}
	}
}
