// Command iokstats summarises an I/O trace along the characterisation
// axes of the paper's §2.1 (granularity, randomness, concurrency, load
// balance, burstiness) and prints its operation-vocabulary histogram.
//
// Usage:
//
//	iokstats [-strace] [-top 10] file.trace
//	cat file.trace | iokstats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of the command: flags and the input file come
// from args, the trace falls back to stdin, and the exit code is returned
// instead of calling os.Exit.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("iokstats", flag.ContinueOnError)
	flags.SetOutput(stderr)
	straceIn := flags.Bool("strace", false, "input is an strace-style call log")
	top := flags.Int("top", 10, "histogram entries to display (0 = all)")
	if err := flags.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	in := stdin
	if flags.NArg() > 1 {
		fmt.Fprintln(stderr, "iokstats: at most one input file")
		return 2
	}
	if flags.NArg() == 1 {
		f, err := os.Open(flags.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "iokstats: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	var (
		tr  *trace.Trace
		err error
	)
	if *straceIn {
		tr, err = trace.ParseStrace(in)
	} else {
		tr, err = trace.Parse(in)
	}
	if err != nil {
		fmt.Fprintf(stderr, "iokstats: %v\n", err)
		return 1
	}

	if tr.Name != "" {
		fmt.Fprintf(stdout, "trace: %s\n", tr.Name)
	}
	fmt.Fprint(stdout, trace.ComputeStats(tr).String())

	hist := trace.ByteHistogram(tr)
	if *top > 0 && len(hist) > *top {
		hist = hist[:*top]
	}
	if len(hist) > 0 {
		fmt.Fprintln(stdout, "\nvocabulary (count x operation):")
		for _, e := range hist {
			fmt.Fprintf(stdout, "  %8d x %-24s (%d bytes total)\n", e.Count, e.Key, e.Bytes)
		}
	}
	return 0
}
