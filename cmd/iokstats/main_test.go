package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runStats invokes the command body and returns (stdout, stderr, code).
func runStats(t *testing.T, args []string, stdin string) (string, string, int) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errw)
	return out.String(), errw.String(), code
}

func checkGolden(t *testing.T, got, goldenPath string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

func TestGoldenFile(t *testing.T) {
	fixture := filepath.Join("testdata", "sample.trace")
	out, errOut, code := runStats(t, []string{fixture}, "")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "sample.golden"))
}

func TestGoldenTopFlag(t *testing.T) {
	fixture := filepath.Join("testdata", "sample.trace")
	out, errOut, code := runStats(t, []string{"-top", "2", fixture}, "")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "sample_top2.golden"))
}

func TestGoldenStdin(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample.trace"))
	if err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runStats(t, nil, string(raw))
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "sample.golden"))
}

func TestErrors(t *testing.T) {
	if _, errOut, code := runStats(t, []string{"testdata/does-not-exist.trace"}, ""); code != 1 || errOut == "" {
		t.Fatalf("missing file: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runStats(t, []string{"a", "b"}, ""); code != 2 || !strings.Contains(errOut, "at most one") {
		t.Fatalf("two files: exit %d, stderr %q", code, errOut)
	}
	if _, _, code := runStats(t, []string{"-nope"}, ""); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if _, errOut, code := runStats(t, nil, "open fh=oops"); code != 1 || errOut == "" {
		t.Fatalf("bad trace: exit %d, stderr %q", code, errOut)
	}
}
