// Command iokmatrix computes a similarity matrix over a directory of
// traces and writes it as CSV to stdout.
//
// Usage:
//
//	iokmatrix -dir traces/ [-kernel kast] [-cut 2] [-nobytes] [-norepair] [-count] [-k 5]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/matrixio"
)

func main() {
	dir := flag.String("dir", "", "directory of .trace files (required)")
	kernelName := flag.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flag.Int("cut", 2, "cut weight")
	k := flag.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flag.Bool("count", false, "count occurrences instead of summing weights (baselines)")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts")
	noRepair := flag.Bool("norepair", false, "skip the PSD repair step")
	format := flag.String("format", "csv", "output format: csv or json")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "iokmatrix: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	traces, err := cli.LoadTraceDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokmatrix: %v\n", err)
		os.Exit(1)
	}
	xs := core.ConvertAll(traces, core.Options{IgnoreBytes: *noBytes})
	spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
	sim, clipped, err := spec.Similarity(xs, !*noRepair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokmatrix: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, len(traces))
	for i, t := range traces {
		names[i] = t.Name
	}
	w := bufio.NewWriter(os.Stdout)
	named := matrixio.Named{Names: names, Matrix: sim}
	switch *format {
	case "csv":
		err = matrixio.WriteCSV(w, named)
	case "json":
		err = matrixio.WriteJSON(w, named)
	default:
		err = fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokmatrix: %v\n", err)
		os.Exit(1)
	}
	w.Flush()
	fmt.Fprintf(os.Stderr, "iokmatrix: %d traces, %d negative eigenvalues clipped\n", len(traces), clipped)
}
