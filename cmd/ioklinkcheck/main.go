// Command ioklinkcheck validates relative links in markdown files: every
// `[text](target)` whose target is not an absolute URL must point at a
// file that exists, and if it carries a `#fragment` the fragment must
// match a heading anchor in the target document (GitHub slug rules).
//
// Usage:
//
//	ioklinkcheck README.md docs/*.md
//
// It prints one `file:line: message` per broken link and exits non-zero
// if any were found, so CI can gate on it directly. Links inside fenced
// code blocks are ignored; external links (http:, https:, mailto:, ...)
// are skipped — this tool guards the repo's internal cross-references,
// which break silently when files move, not the public internet.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline links and images: [text](target) / ![alt](target).
// The target group stops at the first ')' or whitespace, which drops
// optional link titles (`[t](a.md "title")`) without a full parser.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// atxHeading matches `# Title` through `###### Title`.
var atxHeading = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

// schemeLike matches absolute targets this tool does not check:
// `https://...`, `mailto:...`, protocol-relative `//...`.
var schemeLike = regexp.MustCompile(`^([a-zA-Z][a-zA-Z0-9+.-]*:|//)`)

// slugify converts a heading to its GitHub anchor: lowercase, markdown
// emphasis and inline-code markers dropped, punctuation removed, spaces
// hyphenated. Duplicate handling (`-1`, `-2` suffixes) is the caller's job
// because it needs document order.
func slugify(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	s = strings.NewReplacer("`", "", "*", "", "_", "").Replace(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors in a markdown document,
// with GitHub's duplicate-suffix rule applied in document order.
func anchors(md string) map[string]bool {
	out := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := atxHeading.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		if n := seen[slug]; n > 0 {
			out[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			out[slug] = true
		}
		seen[slug]++
	}
	return out
}

// link is one relative link occurrence: the raw target and its 1-based
// source line.
type link struct {
	target string
	line   int
}

// relativeLinks extracts the checkable links from a markdown document,
// skipping fenced code blocks and absolute URLs.
func relativeLinks(md string) []link {
	var out []link
	inFence := false
	for i, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			t := m[1]
			if t == "" || schemeLike.MatchString(t) {
				continue
			}
			out = append(out, link{target: t, line: i + 1})
		}
	}
	return out
}

// checker caches parsed documents so a file referenced from many places
// is read and slugged once.
type checker struct {
	docs map[string]string          // path -> contents ("" if unreadable)
	anch map[string]map[string]bool // path -> heading anchors
}

func newChecker() *checker {
	return &checker{docs: map[string]string{}, anch: map[string]map[string]bool{}}
}

func (c *checker) load(path string) (string, bool) {
	if s, ok := c.docs[path]; ok {
		return s, s != "\x00missing"
	}
	b, err := os.ReadFile(path)
	if err != nil {
		c.docs[path] = "\x00missing"
		return "", false
	}
	c.docs[path] = string(b)
	return string(b), true
}

func (c *checker) anchorsOf(path string) map[string]bool {
	if a, ok := c.anch[path]; ok {
		return a
	}
	md, ok := c.load(path)
	a := map[string]bool{}
	if ok {
		a = anchors(md)
	}
	c.anch[path] = a
	return a
}

// checkFile validates every relative link in one markdown file and
// returns `file:line: message` problem strings.
func (c *checker) checkFile(path string) []string {
	md, ok := c.load(path)
	if !ok {
		return []string{fmt.Sprintf("%s: cannot read file", path)}
	}
	var problems []string
	dir := filepath.Dir(path)
	for _, l := range relativeLinks(md) {
		rawPath, frag, _ := strings.Cut(l.target, "#")
		targetPath := path // same-file anchor
		if rawPath != "" {
			targetPath = filepath.Join(dir, rawPath)
			info, err := os.Stat(targetPath)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q: %s does not exist", path, l.line, l.target, targetPath))
				continue
			}
			if info.IsDir() {
				continue // directory links render as a listing; nothing more to check
			}
		}
		if frag == "" {
			continue
		}
		if !strings.HasSuffix(targetPath, ".md") {
			continue // anchors into non-markdown files are not ours to judge
		}
		if !c.anchorsOf(targetPath)[frag] {
			problems = append(problems, fmt.Sprintf("%s:%d: broken anchor %q: no heading #%s in %s", path, l.line, l.target, frag, targetPath))
		}
	}
	return problems
}

// run checks every file and reports problems; exit codes follow the other
// gate tools: 0 clean, 1 broken links, 2 usage error.
func run(files []string, stdout, stderr io.Writer) int {
	if len(files) == 0 {
		fmt.Fprintln(stderr, "usage: ioklinkcheck FILE.md [FILE.md ...]")
		return 2
	}
	c := newChecker()
	var problems []string
	for _, path := range files {
		problems = append(problems, c.checkFile(path)...)
	}
	for _, p := range problems {
		fmt.Fprintln(stdout, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(stderr, "ioklinkcheck: %d broken link(s)\n", len(problems))
		return 1
	}
	fmt.Fprintf(stdout, "ioklinkcheck: %d file(s) clean\n", len(files))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
