package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Approximate similarity", "approximate-similarity"},
		{"On-disk formats", "on-disk-formats"},
		{"`internal/sketch` — the ANN index", "internalsketch--the-ann-index"},
		{"Snapshot v3 (ANN)", "snapshot-v3-ann"},
		{"What's new?", "whats-new"},
		{"  Spaces   everywhere ", "spaces---everywhere"},
	}
	for _, c := range cases {
		if got := slugify(c.in); got != c.want {
			t.Errorf("slugify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAnchorsDuplicatesAndFences(t *testing.T) {
	md := strings.Join([]string{
		"# Title",
		"## Setup",
		"```",
		"# not a heading",
		"```",
		"## Setup",
		"### Deep Dive",
	}, "\n")
	a := anchors(md)
	for _, want := range []string{"title", "setup", "setup-1", "deep-dive"} {
		if !a[want] {
			t.Errorf("anchors missing %q (got %v)", want, a)
		}
	}
	if a["not-a-heading"] {
		t.Error("heading inside a code fence leaked into the anchor set")
	}
}

func TestRelativeLinksSkipsExternalAndFenced(t *testing.T) {
	md := strings.Join([]string{
		"See [docs](docs/ARCHITECTURE.md) and [site](https://example.com).",
		"Also [mail](mailto:a@b.c) and [proto](//cdn.example.com/x).",
		"```",
		"[fenced](missing.md)",
		"```",
		"![diagram](img/flow.png) and [frag](#local).",
	}, "\n")
	got := relativeLinks(md)
	var targets []string
	for _, l := range got {
		targets = append(targets, l.target)
	}
	want := []string{"docs/ARCHITECTURE.md", "img/flow.png", "#local"}
	if len(targets) != len(want) {
		t.Fatalf("relativeLinks = %v, want %v", targets, want)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Errorf("relativeLinks[%d] = %q, want %q", i, targets[i], want[i])
		}
	}
}

// writeFile creates path under dir, making parent directories as needed.
func writeFile(t *testing.T, dir, path, content string) string {
	t.Helper()
	full := filepath.Join(dir, path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return full
}

func TestCheckFileCleanDocument(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "docs/ARCH.md", "# Overview\n## Formats\nBack to [readme](../README.md#usage).\n")
	readme := writeFile(t, dir, "README.md",
		"# iokast\n## Usage\nSee [arch](docs/ARCH.md), [formats](docs/ARCH.md#formats), and [usage](#usage).\n")
	c := newChecker()
	if problems := c.checkFile(readme); len(problems) != 0 {
		t.Fatalf("clean document reported problems: %v", problems)
	}
	arch := filepath.Join(dir, "docs/ARCH.md")
	if problems := c.checkFile(arch); len(problems) != 0 {
		t.Fatalf("cross-file anchor reported problems: %v", problems)
	}
}

func TestCheckFileReportsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "docs/ARCH.md", "# Overview\n")
	readme := writeFile(t, dir, "README.md", strings.Join([]string{
		"# iokast",
		"[gone](docs/MISSING.md)",            // missing file
		"[bad-anchor](docs/ARCH.md#formats)", // anchor not in target
		"[bad-local](#nowhere)",              // same-file anchor missing
		"[ok](docs/ARCH.md#overview)",
	}, "\n"))
	problems := newChecker().checkFile(readme)
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(problems), problems)
	}
	wantSubstr := []string{"MISSING.md", "#formats", "#nowhere"}
	for i, sub := range wantSubstr {
		if !strings.Contains(problems[i], sub) {
			t.Errorf("problems[%d] = %q, want mention of %q", i, problems[i], sub)
		}
	}
	if !strings.Contains(problems[0], "README.md:2") {
		t.Errorf("problem should carry file:line, got %q", problems[0])
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := writeFile(t, dir, "clean.md", "# Title\n[self](#title)\n")
	broken := writeFile(t, dir, "broken.md", "[gone](missing.md)\n")

	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{clean}, &out, &errOut); code != 0 {
		t.Errorf("clean file: exit %d, want 0 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 file(s) clean") {
		t.Errorf("clean run output = %q", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{clean, broken}, &out, &errOut); code != 1 {
		t.Errorf("broken file: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "missing.md") || !strings.Contains(errOut.String(), "1 broken link(s)") {
		t.Errorf("broken run stdout %q stderr %q", out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{filepath.Join(dir, "absent.md")}, &out, &errOut); code != 1 {
		t.Errorf("unreadable input file: exit %d, want 1", code)
	}
}

func TestCheckFileNonMarkdownAnchorUnchecked(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "schema.json", "{}\n")
	readme := writeFile(t, dir, "README.md", "[cfg](schema.json#top)\n")
	if problems := newChecker().checkFile(readme); len(problems) != 0 {
		t.Fatalf("anchor into non-markdown file should be skipped, got %v", problems)
	}
}
