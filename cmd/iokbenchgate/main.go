// Command iokbenchgate turns `go test -bench` text output into a compact
// JSON summary and gates CI on benchmark regressions against a committed
// baseline.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=5x -count=3 ./... | tee bench.txt
//	iokbenchgate -in bench.txt -emit BENCH_pr.json \
//	             -baseline BENCH_baseline.json -max-regress 0.30
//
// For every benchmark name (GOMAXPROCS suffix stripped) the minimum ns/op
// across the -count repetitions is kept — the minimum is the least noisy
// robust statistic for "how fast can this go on this machine". A
// benchmark regresses if its PR ns/op exceeds baseline*(1+max-regress).
// Benchmarks missing from the baseline are reported but never fail the
// gate (new benchmarks land with the PR that introduces them; refresh the
// baseline with -update).
//
// Absolute ns/op differs across machines; the committed baseline is taken
// from the CI runner class the gate job pins (see .github/workflows). The
// 30% default threshold plus min-of-3 absorbs normal runner jitter while
// still catching the 2x-10x accidents regressions actually look like.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// summary is the BENCH_*.json shape: benchmark name -> min ns/op.
type summary struct {
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches `BenchmarkName-8   	 100	  123456 ns/op	...`,
// tolerating fractional ns/op and missing GOMAXPROCS suffixes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

func parseBench(path string) (summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return summary{}, err
	}
	defer f.Close()
	out := summary{NsPerOp: map[string]float64{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		if old, ok := out.NsPerOp[m[1]]; !ok || ns < old {
			out.NsPerOp[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return summary{}, err
	}
	if len(out.NsPerOp) == 0 {
		return summary{}, fmt.Errorf("no benchmark lines found in %s", path)
	}
	return out, nil
}

func writeJSON(path string, s summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readJSON(path string) (summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return summary{}, err
	}
	var s summary
	if err := json.Unmarshal(b, &s); err != nil {
		return summary{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func main() {
	in := flag.String("in", "", "go test -bench output to parse (required)")
	emit := flag.String("emit", "", "write the parsed summary JSON here")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	maxRegress := flag.Float64("max-regress", 0.30, "fail if ns/op exceeds baseline by more than this fraction")
	update := flag.Bool("update", false, "rewrite the baseline from -in instead of comparing")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "iokbenchgate: -in is required")
		os.Exit(2)
	}
	pr, err := parseBench(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokbenchgate: %v\n", err)
		os.Exit(2)
	}
	if *emit != "" {
		if err := writeJSON(*emit, pr); err != nil {
			fmt.Fprintf(os.Stderr, "iokbenchgate: %v\n", err)
			os.Exit(2)
		}
	}
	if *baseline == "" {
		return
	}
	if *update {
		if err := writeJSON(*baseline, pr); err != nil {
			fmt.Fprintf(os.Stderr, "iokbenchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("iokbenchgate: baseline %s updated with %d benchmarks\n", *baseline, len(pr.NsPerOp))
		return
	}
	base, err := readJSON(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokbenchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(pr.NsPerOp))
	for name := range pr.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		ns := pr.NsPerOp[name]
		baseNs, ok := base.NsPerOp[name]
		if !ok {
			fmt.Printf("NEW      %-55s %12.0f ns/op (not in baseline)\n", name, ns)
			continue
		}
		ratio := ns / baseNs
		status := "ok"
		if ratio > 1+*maxRegress {
			status = "REGRESS"
			failed = true
		}
		fmt.Printf("%-8s %-55s %12.0f ns/op  baseline %12.0f  (%+.1f%%)\n",
			status, name, ns, baseNs, (ratio-1)*100)
	}
	for name := range base.NsPerOp {
		if _, ok := pr.NsPerOp[name]; !ok {
			fmt.Printf("MISSING  %-55s gone from PR run\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "iokbenchgate: ns/op regressed more than %.0f%% (or benchmarks disappeared)\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("iokbenchgate: %d benchmarks within %.0f%% of baseline\n", len(names), *maxRegress*100)
}
