package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: iokast/internal/engine
BenchmarkEngineAdd/corpus=8-8         	       5	    123456 ns/op	    2048 B/op	      12 allocs/op
BenchmarkEngineAdd/corpus=8-8         	       5	    120000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkEngineAdd/corpus=8           	       5	    131072 ns/op
BenchmarkEngineAddBatch/batch=64-4    	       5	   9.87e+06 ns/op
BenchmarkKastCompare                  	     100	      2500.5 ns/op
PASS
ok  	iokast/internal/engine	1.234s
not a bench line
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchMinAcrossRepsAndSuffixes(t *testing.T) {
	s, err := parseBench(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	// Three reps of EngineAdd/corpus=8 (two with -8 suffix, one without)
	// collapse to one name with the minimum ns/op.
	if got := s.NsPerOp["BenchmarkEngineAdd/corpus=8"]; got != 120000 {
		t.Fatalf("EngineAdd min = %v, want 120000", got)
	}
	if got := s.NsPerOp["BenchmarkEngineAddBatch/batch=64"]; got != 9.87e6 {
		t.Fatalf("AddBatch = %v", got)
	}
	if got := s.NsPerOp["BenchmarkKastCompare"]; got != 2500.5 {
		t.Fatalf("KastCompare = %v", got)
	}
	if len(s.NsPerOp) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(s.NsPerOp), s.NsPerOp)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, []byte("PASS\nok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseBench(path); err == nil {
		t.Fatal("expected error for output without benchmarks")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s, err := parseBench(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := writeJSON(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := readJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NsPerOp) != len(s.NsPerOp) {
		t.Fatalf("round trip lost entries: %v vs %v", got, s)
	}
	for k, v := range s.NsPerOp {
		if got.NsPerOp[k] != v {
			t.Fatalf("%s: %v != %v", k, got.NsPerOp[k], v)
		}
	}
}
