package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/linalg"
	"iokast/internal/store"
	"iokast/internal/token"
	"iokast/internal/trace"
)

// maxTraceBody bounds how much of a POST /traces body is read; a trace of
// this size is far beyond anything the pipeline is tuned for.
const maxTraceBody = 16 << 20

// maxBatchBody bounds a POST /traces/batch request.
const maxBatchBody = 64 << 20

// maxBatchTraces bounds how many traces one batch may carry; bigger
// ingests should be split, which also bounds single-record WAL frames.
const maxBatchTraces = 4096

// server routes HTTP requests onto one shared engine. Concurrency control
// lives entirely in the engine; handlers hold no state of their own.
type server struct {
	eng  *engine.Engine
	st   *store.Store // nil when running without --data-dir
	copt core.Options
	mux  *http.ServeMux
}

func newServer(eng *engine.Engine, st *store.Store, copt core.Options) *server {
	s := &server{eng: eng, st: st, copt: copt, mux: http.NewServeMux()}
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/traces/batch", s.handleTracesBatch)
	s.mux.HandleFunc("/traces/", s.handleTraceByID)
	s.mux.HandleFunc("/similar", s.handleSimilar)
	s.mux.HandleFunc("/gram", s.handleGram)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/debug/store", s.handleStoreStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a trace in the canonical text format")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTraceBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxTraceBody {
		httpError(w, http.StatusRequestEntityTooLarge, "trace exceeds %d bytes", maxTraceBody)
		return
	}
	tr, err := trace.ParseString(string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse trace: %v", err)
		return
	}
	x := core.Convert(tr, s.copt)
	id := s.eng.Add(x)
	if err := s.eng.Err(); err != nil {
		// Ingested in memory but not persisted: tell the client instead of
		// silently serving state a restart would lose.
		httpError(w, http.StatusInternalServerError, "trace %d accepted but persistence failed: %v", id, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     id,
		"name":   tr.Name,
		"tokens": len(x),
		"weight": x.Weight(),
	})
}

// batchRequest is the POST /traces/batch body: each element is one trace
// in the canonical text format, exactly as POST /traces accepts.
type batchRequest struct {
	Traces []string `json:"traces"`
}

func (s *server) handleTracesBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, `POST {"traces": ["<trace text>", ...]}`)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxBatchBody {
		httpError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", maxBatchBody)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parse batch JSON: %v", err)
		return
	}
	if len(req.Traces) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Traces) > maxBatchTraces {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d traces exceeds limit %d", len(req.Traces), maxBatchTraces)
		return
	}
	// Parse everything before ingesting anything: a batch is all-or-nothing
	// at the validation stage, so one bad trace cannot half-apply it.
	xs := make([]token.String, len(req.Traces))
	type meta struct {
		ID     int    `json:"id"`
		Name   string `json:"name,omitempty"`
		Tokens int    `json:"tokens"`
		Weight int    `json:"weight"`
	}
	metas := make([]meta, len(req.Traces))
	for i, text := range req.Traces {
		tr, err := trace.ParseString(text)
		if err != nil {
			httpError(w, http.StatusBadRequest, "trace %d: %v", i, err)
			return
		}
		xs[i] = core.Convert(tr, s.copt)
		metas[i] = meta{Name: tr.Name, Tokens: len(xs[i]), Weight: xs[i].Weight()}
	}
	ids, err := s.eng.AddBatch(xs)
	if err == nil {
		// Also honour the sticky error: after any earlier WAL failure the
		// log has a gap, so even a batch whose own append succeeded is not
		// recoverable and must not be acknowledged as durable.
		err = s.eng.Err()
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "batch accepted but persistence failed: %v", err)
		return
	}
	for i, id := range ids {
		metas[i].ID = id
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"count":  len(ids),
		"traces": metas,
	})
}

func (s *server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad trace id %q", idStr)
		return
	}
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "only DELETE is supported on /traces/{id}")
		return
	}
	if err := s.eng.Remove(id); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": id})
}

func (s *server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /similar?id=&k=")
		return
	}
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad or missing id")
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 0 {
			httpError(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
	}
	ns, err := s.eng.Similar(id, k)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "neighbors": ns})
}

func (s *server) handleGram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /gram")
		return
	}
	var (
		m   *linalg.Matrix
		ids []int
	)
	resp := map[string]any{"kernel": s.eng.Kernel().Name()}
	if norm := r.URL.Query().Get("normalized"); norm == "1" || norm == "true" {
		var clipped int
		var err error
		m, ids, clipped, err = s.eng.NormalizedGram()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "normalize: %v", err)
			return
		}
		resp["clipped_eigenvalues"] = clipped
	} else {
		m, ids = s.eng.Gram()
	}
	rows := make([][]float64, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	resp["ids"] = ids
	resp["matrix"] = rows
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok", "traces": s.eng.Len()}
	status := http.StatusOK
	if err := s.eng.Err(); err != nil {
		// Still serving, but mutations are no longer reaching the WAL:
		// degraded, so orchestrators can rotate the instance out.
		resp["status"] = "degraded"
		resp["persistence_error"] = err.Error()
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET /debug/store")
		return
	}
	if s.st == nil {
		httpError(w, http.StatusNotFound, "no store attached (run with --data-dir)")
		return
	}
	writeJSON(w, http.StatusOK, s.st.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
