package main

import (
	"net"
	"regexp"
	"strings"
	"testing"
)

// TestListenAndAnnounce pins the machine-parsable readiness line: binding
// :0 must print the *resolved* address (real port, not ":0"), in exactly
// the `LISTENING host:port` form cmd/iokload and the CI load-smoke job
// parse, and the printed address must actually accept connections.
func TestListenAndAnnounce(t *testing.T) {
	var out strings.Builder
	ln, err := listenAndAnnounce("127.0.0.1:0", &out)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	line := out.String()
	if !regexp.MustCompile(`^LISTENING 127\.0\.0\.1:\d+\n$`).MatchString(line) {
		t.Fatalf("announce line %q not machine-parsable", line)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "LISTENING "))
	if addr != ln.Addr().String() {
		t.Fatalf("announced %q but listening on %q", addr, ln.Addr())
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("announced unresolved port: %q", addr)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial announced address: %v", err)
	}
	conn.Close()
}

// TestListenAndAnnounceBindError checks a bad address fails without
// printing a readiness line a harness could mistake for success.
func TestListenAndAnnounceBindError(t *testing.T) {
	var out strings.Builder
	ln, err := listenAndAnnounce("256.256.256.256:0", &out)
	if err == nil {
		ln.Close()
		t.Fatal("expected bind error")
	}
	if out.Len() != 0 {
		t.Fatalf("bind failed but announced %q", out.String())
	}
}
