// Command iokserve runs an HTTP similarity service backed by the
// incremental Gram engine: traces are POSTed one at a time, converted to
// weighted strings, and inserted with one row of kernel evaluations; the
// similarity matrix and top-k neighbour queries are served from the
// incrementally maintained state.
//
// Usage:
//
//	iokserve [-addr :8080] [-kernel kast] [-cut 2] [-k 5] [-count]
//	         [-nobytes] [-workers 0]
//
// Endpoints:
//
//	POST   /traces           body = trace text; returns {"id": n, ...}
//	DELETE /traces/{id}      remove a trace from the corpus
//	GET    /similar?id=&k=   top-k most similar corpus entries
//	GET    /gram             raw kernel matrix ({"ids": [...], "matrix": [[...]]})
//	GET    /gram?normalized=1  paper-pipeline similarity (Eq. 12 / cosine + PSD repair)
//	GET    /healthz          liveness probe with corpus size
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	kernelName := flag.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flag.Int("cut", 2, "cut weight")
	k := flag.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flag.Bool("count", false, "count occurrences instead of summing weights (baselines)")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts when converting traces")
	workers := flag.Int("workers", 0, "max goroutines for kernel evaluation (0 = GOMAXPROCS)")
	flag.Parse()

	spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
	kern, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokserve: %v\n", err)
		os.Exit(2)
	}
	eng := engine.New(engine.Options{Kernel: kern, Workers: *workers})
	srv := newServer(eng, core.Options{IgnoreBytes: *noBytes})
	log.Printf("iokserve: kernel %s, listening on %s", kern.Name(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
