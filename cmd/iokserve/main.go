// Command iokserve runs an HTTP similarity service backed by the
// incremental Gram engine: traces are POSTed one at a time or in batches,
// converted to weighted strings, and inserted with one row (or block) of
// kernel evaluations; the similarity matrix and top-k neighbour queries
// are served from the incrementally maintained state.
//
// With --data-dir the engine is durable: every accepted mutation is
// appended to a CRC-checked write-ahead log before it is acknowledged, and
// snapshots bound replay time. A killed server restarts into a
// bit-identical Gram matrix without clients re-sending anything.
//
// Every ingested trace is also embedded into a fixed-width sketch vector
// (internal/sketch), so similarity can be answered approximately — LSH-
// banded candidate generation over the sketches (sublinear in the corpus
// size; --ann-bands=0 falls back to an exact O(N*dim) scan) plus an exact
// kernel rerank of a small shortlist — and for traces that are not in the
// corpus at all (query-by-trace). Full-rerank queries stay bit-identical
// to the exact path whatever the ANN settings.
//
// With --shards=N (N > 1) the corpus is sharded: N independent
// engine+store pairs behind one id space, each trace routed to exactly one
// shard by a seeded hash of its id, similarity queries fanned out to every
// shard in parallel and merged exactly — results stay bit-identical to the
// single-engine answers. Ingest work and lock contention drop by the shard
// count; the price is that /gram (which would need cross-shard kernel
// values) is unavailable. --shards=1 (the default) runs the classic single
// engine and stays byte-compatible with existing --data-dir layouts; a
// sharded data dir carries a MANIFEST pinning shard count, routing seed,
// and kernel/sketch config, and refuses to open under different flags.
//
// Usage:
//
//	iokserve [-addr :8080] [-kernel kast] [-cut 2] [-k 5] [-count]
//	         [-nobytes] [-workers 0] [-data-dir DIR] [-snapshot-every 1024]
//	         [-nosync] [-sketch-dim 256] [-sketch-seed 0]
//	         [-ann-bands 16] [-ann-rows 8]
//	         [-shards 1] [-shard-seed 0] [-labels FILE]
//	         [-stream-window 256] [-stream-stride 64] [-max-sessions 1024]
//	         [-slow-request 1s] [-log-level info] [-pprof-addr ADDR]
//
// Endpoints:
//
//	POST   /traces           body = trace text; returns {"id": n, ...}
//	POST   /traces/batch     body = {"traces": ["...", ...]}; one WAL
//	                         commit and one Gram block for the whole batch
//	DELETE /traces/{id}      remove a trace from the corpus (durable)
//	GET    /similar?id=&k=   top-k most similar corpus entries (exact)
//	GET    /similar?id=&k=&approx=1&rerank=R
//	                         sketch-index shortlist, exact rerank of the top
//	                         R candidates (R=0: sketch scores only)
//	POST   /similar?k=&rerank=R
//	                         query-by-trace: body = trace text, compared
//	                         against the corpus but never ingested
//	POST   /labels           {"labels": [{"id": 0, "label": "reader"}, ...]}:
//	                         tag corpus ids (durable beside the data dir)
//	GET    /labels           label -> member count
//	DELETE /labels/{id}      remove one id's label
//	POST   /classify?k=&rerank=R
//	                         classify a trace body by similarity-weighted
//	                         k-NN vote over the labelled corpus; returns
//	                         {label, confidence, votes, neighbors}
//	POST   /ingest?k=&rerank=R
//	                         streaming ingest: NDJSON events (raw syscall ops
//	                         or strace lines) assembled into per-session
//	                         traces; window classifications and the final
//	                         whole-trace verdict stream back as NDJSON
//	GET    /gram             raw kernel matrix ({"ids": [...], "matrix": [[...]]})
//	GET    /gram?normalized=1  paper-pipeline similarity (Eq. 12 / cosine + PSD repair)
//	GET    /healthz          liveness probe; "degraded" if persistence fails
//	GET    /metrics          Prometheus text exposition: every layer (HTTP,
//	                         engine, sketch index, store, shards, streaming)
//	                         reports into one registry
//	GET    /debug/store      WAL/snapshot statistics (404 without --data-dir)
//
// Observability: every request carries an X-Request-Id (client-supplied or
// generated) that tags its structured log lines; requests slower than
// -slow-request are logged at Warn. -pprof-addr starts net/http/pprof on a
// separate listener (off by default, so profiling endpoints never share
// the public address).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"iokast/internal/classify"
	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/obs"
	"iokast/internal/serve"
	"iokast/internal/shard"
	"iokast/internal/sketch"
	"iokast/internal/store"
	"iokast/internal/stream"
)

// listenAndAnnounce binds addr and prints one machine-parsable readiness
// line to w. Harnesses (cmd/iokload, CI) start iokserve with -addr
// 127.0.0.1:0 and read the actual port from this line instead of polling
// with sleep-loops; it is the only thing the server writes to stdout (logs
// go to stderr), so `awk '/^LISTENING/{print $2}'` is race-free.
func listenAndAnnounce(addr string, w io.Writer) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "LISTENING %s\n", ln.Addr())
	return ln, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	kernelName := flag.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flag.Int("cut", 2, "cut weight")
	k := flag.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flag.Bool("count", false, "count occurrences instead of summing weights (baselines)")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts when converting traces")
	workers := flag.Int("workers", 0, "max goroutines for kernel evaluation (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "directory for WAL + snapshots; empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1024, "mutations between automatic snapshots (<0 disables)")
	noSync := flag.Bool("nosync", false, "skip fsync per WAL append (faster, loses recent writes on machine crash)")
	sketchDim := flag.Int("sketch-dim", sketch.DefaultDim, "sketch vector width for approximate similarity (0 disables sketching)")
	sketchSeed := flag.Uint64("sketch-seed", 0, "seed for the sketch hashes (must match across restarts sharing a data dir to reuse persisted sketches)")
	annBands := flag.Int("ann-bands", sketch.DefaultBands, "LSH bands for approximate-similarity candidate generation (0 = exact flat scan over all sketches)")
	annRows := flag.Int("ann-rows", sketch.DefaultRows, "hyperplanes per LSH band (higher = fewer, more precise candidates)")
	shards := flag.Int("shards", 1, "number of corpus shards (1 = classic single engine, byte-compatible with existing data dirs)")
	shardSeed := flag.Uint64("shard-seed", 0, "seed for the id-routing hash (pinned by a sharded data dir's MANIFEST)")
	labelsPath := flag.String("labels", "", "labels file for /classify (default <data-dir>/LABELS when -data-dir is set; in-memory otherwise)")
	streamWindow := flag.Int("stream-window", stream.DefaultWindow, "streaming ingest: classification window in operations")
	streamStride := flag.Int("stream-stride", stream.DefaultStride, "streaming ingest: operations between window classifications")
	maxSessions := flag.Int("max-sessions", stream.DefaultMaxSessions, "streaming ingest: maximum concurrently assembling sessions")
	slowRequest := flag.Duration("slow-request", time.Second, "log requests slower than this at Warn (0 disables)")
	logLevel := flag.String("log-level", "info", "structured-log level: debug (per-request lines), info, warn, or error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	flag.Parse()

	spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
	kern, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokserve: %v\n", err)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "iokserve: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "iokserve: -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// One registry for the whole stack: the engine, sketch index, store,
	// shard fan-out, streaming, and HTTP layers all report here, and GET
	// /metrics renders it.
	obsReg := obs.NewRegistry()

	eopt := engine.Options{
		Kernel: kern, Workers: *workers,
		SketchDim: *sketchDim, SketchSeed: *sketchSeed,
		ANNBands: *annBands, ANNRows: *annRows,
	}
	if *sketchDim <= 0 {
		eopt.SketchDim = -1
	}
	sopt := store.Options{SnapshotEvery: *snapshotEvery, NoSync: *noSync}

	// The label registry rides beside the corpus: an explicit -labels file,
	// or <data-dir>/LABELS (next to the WAL, or the MANIFEST in sharded
	// mode), or purely in-memory when neither is given. Registry commits are
	// atomic temp+rename writes, so a kill preserves the last full table.
	reg := classify.NewRegistry()
	regPath := *labelsPath
	if regPath == "" && *dataDir != "" {
		regPath = filepath.Join(*dataDir, classify.DefaultLabelsFile)
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "iokserve: %v\n", err)
			os.Exit(1)
		}
	}
	if regPath != "" {
		if reg, err = classify.OpenRegistry(regPath); err != nil {
			fmt.Fprintf(os.Stderr, "iokserve: open labels %s: %v\n", regPath, err)
			os.Exit(1)
		}
		if n := reg.Len(); n > 0 {
			log.Printf("iokserve: recovered %d labels from %s", n, regPath)
		}
	}

	var (
		srv        *serve.Server
		checkpoint func() error // non-nil when shutdown must close a store
	)
	if *shards > 1 {
		// Obs hands the shard layer the registry so it can label each
		// shard's engine/store/fan-out series with shard="N" itself.
		shopt := shard.Options{Shards: *shards, Seed: *shardSeed, Engine: eopt, Store: sopt, Obs: obsReg}
		var sh *shard.Sharded
		if *dataDir != "" {
			sh, err = shard.Open(*dataDir, shopt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iokserve: open %s: %v\n", *dataDir, err)
				os.Exit(1)
			}
			if n := sh.Repaired(); n > 0 {
				log.Printf("iokserve: recovery reconciled a torn batch (%d slots plugged)", n)
			}
			log.Printf("iokserve: recovered %d traces across %d shards from %s", sh.Len(), sh.Shards(), *dataDir)
			checkpoint = sh.Close
		} else {
			if sh, err = shard.New(shopt); err != nil {
				fmt.Fprintf(os.Stderr, "iokserve: %v\n", err)
				os.Exit(1)
			}
		}
		srv = serve.NewSharded(sh, reg, core.Options{IgnoreBytes: *noBytes})
	} else {
		eopt.Metrics = engine.NewMetrics(obsReg, nil)
		sopt.Metrics = store.NewMetrics(obsReg, nil)
		var (
			eng *engine.Engine
			st  *store.Store
		)
		if *dataDir != "" {
			eng, st, err = store.Open(*dataDir, func() *engine.Engine { return engine.New(eopt) }, sopt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "iokserve: open %s: %v\n", *dataDir, err)
				os.Exit(1)
			}
			log.Printf("iokserve: recovered %d traces (seq %d) from %s", eng.Len(), eng.Seq(), *dataDir)
			checkpoint = st.Close
		} else {
			eng = engine.New(eopt)
		}
		srv = serve.New(eng, st, reg, core.Options{IgnoreBytes: *noBytes})
	}

	srv.ConfigureStream(stream.Config{
		Window: *streamWindow, Stride: *streamStride, MaxSessions: *maxSessions,
		Metrics: stream.NewMetrics(obsReg),
	})
	srv.ConfigureTelemetry(serve.Telemetry{
		Registry: obsReg, Logger: logger, SlowRequest: *slowRequest,
	})

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: profiling never rides the
		// public address, and nothing here touches http.DefaultServeMux.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokserve: pprof listen %s: %v\n", *pprofAddr, err)
			os.Exit(1)
		}
		log.Printf("iokserve: pprof on %s", pln.Addr())
		go func() {
			if err := http.Serve(pln, pmux); err != nil {
				log.Printf("iokserve: pprof server: %v", err)
			}
		}()
	}

	// No ReadTimeout: /ingest requests legitimately live as long as the
	// workload they stream, and the handler heartbeats its own per-event
	// read deadline instead. Slow-header and idle keep-alive connections
	// are still bounded, so a slowloris cannot pin accept slots for free.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := listenAndAnnounce(*addr, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokserve: %v\n", err)
		os.Exit(1)
	}

	done := make(chan struct{})
	if checkpoint != nil {
		// Checkpoint on SIGINT/SIGTERM so the next boot restores from the
		// snapshot instead of replaying the whole WAL. The HTTP server is
		// drained first: a mutation acknowledged mid-shutdown must still
		// be inside the final checkpoint, not committed after the log was
		// detached. A SIGKILL skips this path by definition — that is
		// what the WAL is for.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			log.Printf("iokserve: draining connections")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("iokserve: drain incomplete: %v", err)
			}
			log.Printf("iokserve: checkpointing %s", *dataDir)
			if err := checkpoint(); err != nil {
				log.Printf("iokserve: checkpoint failed: %v", err)
			}
			close(done)
		}()
	}

	log.Printf("iokserve: kernel %s, listening on %s", kern.Name(), ln.Addr())
	if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
