// Command iok2str converts one I/O trace into the paper's weighted-string
// representation (and optionally shows the intermediate pattern tree).
//
// Usage:
//
//	iok2str [-nobytes] [-tree] [-strace] [-passes 2] file.trace
//	cat file.trace | iok2str
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/core"
	"iokast/internal/trace"
	"iokast/internal/tree"
)

func main() {
	noBytes := flag.Bool("nobytes", false, "ignore byte counts (assume zero)")
	showTree := flag.Bool("tree", false, "print the compressed pattern tree instead of the string")
	straceIn := flag.Bool("strace", false, "input is an strace-style call log")
	passes := flag.Int("passes", 0, "compression passes (0 = paper default of 2, -1 = none)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "iok2str: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "iok2str: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	var (
		t   *trace.Trace
		err error
	)
	if *straceIn {
		t, err = trace.ParseStrace(in)
	} else {
		t, err = trace.Parse(in)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iok2str: %v\n", err)
		os.Exit(1)
	}

	opt := core.Options{IgnoreBytes: *noBytes}
	switch *passes {
	case 0:
	case -1:
		opt.Compress = tree.CompressOptions{Passes: core.NoCompression}
	default:
		opt.Compress = tree.CompressOptions{Passes: *passes}
	}
	if *showTree {
		fmt.Print(core.ConvertTree(t, opt).Render())
		return
	}
	fmt.Println(core.Convert(t, opt).Format())
}
