// Command iokpca projects a directory of traces into Kernel PCA space
// (paper Figs. 6 and 8) and prints the coordinates, plus an ASCII scatter
// plot with -plot.
//
// Usage:
//
//	iokpca -dir traces/ [-kernel kast] [-cut 2] [-components 2] [-nobytes] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"

	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/kpca"
	"iokast/internal/plot"
)

func main() {
	dir := flag.String("dir", "", "directory of .trace files (required)")
	kernelName := flag.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flag.Int("cut", 2, "cut weight")
	k := flag.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flag.Bool("count", false, "count occurrences instead of summing weights")
	components := flag.Int("components", 2, "number of principal components")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts")
	asciiPlot := flag.Bool("plot", false, "render an ASCII scatter of the first two components")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "iokpca: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	traces, err := cli.LoadTraceDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokpca: %v\n", err)
		os.Exit(1)
	}
	xs := core.ConvertAll(traces, core.Options{IgnoreBytes: *noBytes})
	spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
	sim, clipped, err := spec.Similarity(xs, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokpca: %v\n", err)
		os.Exit(1)
	}
	res, err := kpca.Analyze(sim, kpca.Options{Components: *components})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokpca: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("# clipped eigenvalues: %d\n", clipped)
	fmt.Print("# name\tlabel")
	for c := 0; c < res.Coords.Cols; c++ {
		fmt.Printf("\tPC%d", c+1)
	}
	fmt.Println()
	for i, t := range traces {
		fmt.Printf("%s\t%s", t.Name, t.Label)
		for c := 0; c < res.Coords.Cols; c++ {
			fmt.Printf("\t%.6f", res.Coords.At(i, c))
		}
		fmt.Println()
	}

	if *asciiPlot && res.Coords.Cols >= 2 {
		xsCoord := make([]float64, len(traces))
		ysCoord := make([]float64, len(traces))
		labels := make([]string, len(traces))
		for i, t := range traces {
			xsCoord[i] = res.Coords.At(i, 0)
			ysCoord[i] = res.Coords.At(i, 1)
			labels[i] = t.Label
		}
		sc := plot.DefaultScatter(fmt.Sprintf("Kernel PCA (%s)", *kernelName))
		sc.XLabel, sc.YLabel = "PC1", "PC2"
		fmt.Print(sc.Render(xsCoord, ysCoord, labels))
	}
}
