// Command iokvet runs the repo's static-analysis suite: five analyzers
// enforcing the determinism, durability, and locking invariants behind
// the system's bit-identical guarantees (see docs/ARCHITECTURE.md,
// "Enforced invariants"). CI's analysis job and local runs share this
// one entry point.
//
// Usage:
//
//	iokvet [-json] [-list] [-C dir] [packages]
//
// With no packages, ./... is checked. Exit status is 0 when clean, 1
// when findings were reported, 2 on a load or internal error.
//
// Intentional exceptions are exempted in place with a directive:
//
//	//iokvet:allow <analyzer>(reason)
//
// on the flagged line, or on its own line immediately above the
// flagged statement or declaration. The reason is mandatory; malformed
// or unknown-analyzer directives are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"iokast/tools/iokvet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iokvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (for CI annotations)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: iokvet [-json] [-list] [-C dir] [packages]\n\n")
		fmt.Fprintf(stderr, "Checks the repo's determinism, durability, and locking invariants.\nWith no packages, ./... is checked. Exit: 0 clean, 1 findings, 2 error.\n\nAnalyzers:\n")
		for _, a := range iokvet.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nExempt an intentional finding in place, reason mandatory:\n  //iokvet:allow <analyzer>(reason)\non the flagged line or alone on the line above the flagged\nstatement/declaration (above a func covers the whole function).\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range iokvet.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	pkgs, err := iokvet.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "iokvet: %v\n", err)
		return 2
	}
	diags, err := iokvet.Run(pkgs, iokvet.All())
	if err != nil {
		fmt.Fprintf(stderr, "iokvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     relPath(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "iokvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens an absolute filename relative to the working
// directory when that makes it shorter; CI annotations want
// repo-relative paths.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
