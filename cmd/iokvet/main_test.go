package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"mapiterorder", "nondeterm", "atomicwrite", "lockscope", "obsnil"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-no-such-flag) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: iokvet") {
		t.Errorf("usage text not printed on flag error:\n%s", stderr.String())
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", filepath.Join("testdata", "no-such-dir"), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run over missing dir = %d, want 2; stderr: %s", code, stderr.String())
	}
}

// TestJSONOverFixture drives the full load→run→report path over the
// nondeterm fixture module and checks the machine-readable output CI
// annotations consume.
func TestJSONOverFixture(t *testing.T) {
	fixture := filepath.Join("..", "..", "tools", "iokvet", "testdata", "src", "nondeterm")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over nondeterm fixture = %d, want 1 (findings); stderr: %s", code, stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced zero findings")
	}
	for _, d := range diags {
		if d.Analyzer != "nondeterm" {
			t.Errorf("unexpected analyzer %q in nondeterm fixture output", d.Analyzer)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestTextOverFixture checks the human-readable line format and the
// findings exit status.
func TestTextOverFixture(t *testing.T) {
	fixture := filepath.Join("..", "..", "tools", "iokvet", "testdata", "src", "atomicwrite")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixture, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over atomicwrite fixture = %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "[atomicwrite]") {
		t.Errorf("text output missing [atomicwrite] tag:\n%s", stdout.String())
	}
}
