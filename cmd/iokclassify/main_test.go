package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestClassifyFile(t *testing.T) {
	code, out, errb := runCmd(t, []string{"-refs", "testdata/refs", "-k", "3", "testdata/query_writer.trace"}, "")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.HasPrefix(out, "testdata/query_writer.trace: W\n") {
		t.Fatalf("output %q", out)
	}
	// Top matches listed with label and similarity columns.
	if !strings.Contains(out, "writer1") || !strings.Contains(out, "W") {
		t.Fatalf("matches missing from %q", out)
	}
}

func TestClassifyStdin(t *testing.T) {
	query, err := os.ReadFile("testdata/refs/reader2.trace")
	if err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCmd(t, []string{"-refs", "testdata/refs", "-top", "2"}, string(query))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.HasPrefix(out, "stdin: R\n") {
		t.Fatalf("output %q", out)
	}
	// -top bounds the match listing: header plus 2 rows.
	if lines := strings.Count(strings.TrimRight(out, "\n"), "\n"); lines != 2 {
		t.Fatalf("want 2 match rows, got output %q", out)
	}
}

func TestClassifyErrors(t *testing.T) {
	if code, _, _ := runCmd(t, nil, ""); code != 2 {
		t.Fatalf("missing -refs: exit %d", code)
	}
	if code, _, errb := runCmd(t, []string{"-refs", "testdata/does-not-exist"}, ""); code != 1 || !strings.Contains(errb, "iokclassify:") {
		t.Fatalf("bad refs dir: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runCmd(t, []string{"-refs", "testdata/refs", "a", "b"}, ""); code != 2 {
		t.Fatalf("two inputs: exit %d", code)
	}
	if code, _, errb := runCmd(t, []string{"-refs", "testdata/refs"}, "not a trace line"); code != 1 || !strings.Contains(errb, "iokclassify:") {
		t.Fatalf("bad stdin: exit %d, stderr %q", code, errb)
	}
	if code, _, _ := runCmd(t, []string{"-badflag"}, ""); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code, _, _ := runCmd(t, []string{"-h"}, ""); code != 0 {
		t.Fatal("help should exit 0")
	}
}
