// Command iokclassify labels an I/O trace by kernel similarity against a
// directory of labelled reference traces — the pattern-database use case
// the paper's related work motivates (Behzad et al.'s auto-tuning lookup).
//
// Usage:
//
//	iokclassify -refs traces/ [-k 3] [-cut 2] [-nobytes] input.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/classify"
	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/trace"
)

func main() {
	refDir := flag.String("refs", "", "directory of labelled .trace references (required)")
	k := flag.Int("k", 3, "number of nearest neighbours to vote")
	cut := flag.Int("cut", 2, "Kast cut weight")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts")
	top := flag.Int("top", 5, "matches to display")
	flag.Parse()

	if *refDir == "" {
		fmt.Fprintln(os.Stderr, "iokclassify: -refs is required")
		flag.Usage()
		os.Exit(2)
	}
	refs, err := cli.LoadTraceDir(*refDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokclassify: %v\n", err)
		os.Exit(1)
	}
	labels := make([]string, len(refs))
	for i, t := range refs {
		labels[i] = t.Label
		if labels[i] == "" {
			labels[i] = t.Name
		}
	}
	opt := core.Options{IgnoreBytes: *noBytes}
	refStrings := core.ConvertAll(refs, opt)
	c, err := classify.New(&core.Kast{CutWeight: *cut}, refStrings, labels, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokclassify: %v\n", err)
		os.Exit(1)
	}

	var in io.Reader = os.Stdin
	inputName := "stdin"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokclassify: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		inputName = flag.Arg(0)
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "iokclassify: at most one input file")
		os.Exit(2)
	}
	tr, err := trace.Parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokclassify: %v\n", err)
		os.Exit(1)
	}

	label, matches, err := c.Classify(core.Convert(tr, opt))
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokclassify: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s\n", inputName, label)
	n := *top
	if n > len(matches) {
		n = len(matches)
	}
	for _, m := range matches[:n] {
		fmt.Printf("  %-24s %-6s %.4f\n", refs[m.Index].Name, m.Label, m.Similarity)
	}
}
