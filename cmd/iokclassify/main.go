// Command iokclassify labels an I/O trace by kernel similarity against a
// directory of labelled reference traces — the pattern-database use case
// the paper's related work motivates (Behzad et al.'s auto-tuning lookup).
// It is a thin shell over internal/classify, the same implementation that
// serves POST /classify in iokserve.
//
// Usage:
//
//	iokclassify -refs traces/ [-k 3] [-cut 2] [-nobytes] input.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/classify"
	"iokast/internal/cli"
	"iokast/internal/core"
	"iokast/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of the command: flags and the input file come
// from args, the query trace falls back to stdin, and the exit code is
// returned instead of calling os.Exit.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("iokclassify", flag.ContinueOnError)
	flags.SetOutput(stderr)
	refDir := flags.String("refs", "", "directory of labelled .trace references (required)")
	k := flags.Int("k", 3, "number of nearest neighbours to vote")
	cut := flags.Int("cut", 2, "Kast cut weight")
	noBytes := flags.Bool("nobytes", false, "ignore byte counts")
	top := flags.Int("top", 5, "matches to display")
	if err := flags.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *refDir == "" {
		fmt.Fprintln(stderr, "iokclassify: -refs is required")
		flags.Usage()
		return 2
	}
	refs, err := cli.LoadTraceDir(*refDir)
	if err != nil {
		fmt.Fprintf(stderr, "iokclassify: %v\n", err)
		return 1
	}
	labels := make([]string, len(refs))
	for i, t := range refs {
		labels[i] = t.Label
		if labels[i] == "" {
			labels[i] = t.Name
		}
	}
	opt := core.Options{IgnoreBytes: *noBytes}
	c, err := classify.New(&core.Kast{CutWeight: *cut}, core.ConvertAll(refs, opt), labels, *k)
	if err != nil {
		fmt.Fprintf(stderr, "iokclassify: %v\n", err)
		return 1
	}

	in := stdin
	inputName := "stdin"
	if flags.NArg() == 1 {
		f, err := os.Open(flags.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "iokclassify: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
		inputName = flags.Arg(0)
	} else if flags.NArg() > 1 {
		fmt.Fprintln(stderr, "iokclassify: at most one input file")
		return 2
	}
	tr, err := trace.Parse(in)
	if err != nil {
		fmt.Fprintf(stderr, "iokclassify: %v\n", err)
		return 1
	}

	label, matches, err := c.Classify(core.Convert(tr, opt))
	if err != nil {
		fmt.Fprintf(stderr, "iokclassify: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %s\n", inputName, label)
	n := *top
	if n > len(matches) {
		n = len(matches)
	}
	for _, m := range matches[:n] {
		fmt.Fprintf(stdout, "  %-24s %-6s %.4f\n", refs[m.Index].Name, m.Label, m.Similarity)
	}
	return 0
}
