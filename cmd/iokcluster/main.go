// Command iokcluster clusters a directory of traces hierarchically (paper
// Figs. 7 and 9): it prints the dendrogram, the flat clustering at -clusters,
// and quality metrics when ground-truth labels are present. Instead of
// computing a kernel matrix it can also consume one written by iokmatrix
// (-matrix file.csv or file.json).
//
// Usage:
//
//	iokcluster -dir traces/ [-kernel kast] [-cut 2] [-clusters 3] [-linkage single] [-nobytes]
//	iokcluster -matrix sim.json [-clusters 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"iokast/internal/cli"
	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/plot"
)

func main() {
	dir := flag.String("dir", "", "directory of .trace files")
	matrixPath := flag.String("matrix", "", "precomputed similarity matrix (.csv/.json from iokmatrix) instead of -dir")
	kernelName := flag.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flag.Int("cut", 2, "cut weight")
	k := flag.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flag.Bool("count", false, "count occurrences instead of summing weights")
	clusters := flag.Int("clusters", 3, "flat cluster count to cut at")
	linkageName := flag.String("linkage", "single", "linkage: single, complete or average")
	noBytes := flag.Bool("nobytes", false, "ignore byte counts")
	depth := flag.Int("depth", 3, "dendrogram rendering depth")
	flag.Parse()

	if (*dir == "") == (*matrixPath == "") {
		fmt.Fprintln(os.Stderr, "iokcluster: exactly one of -dir or -matrix is required")
		flag.Usage()
		os.Exit(2)
	}
	var linkage cluster.Linkage
	switch *linkageName {
	case "single":
		linkage = cluster.Single
	case "complete":
		linkage = cluster.Complete
	case "average":
		linkage = cluster.Average
	default:
		fmt.Fprintf(os.Stderr, "iokcluster: unknown linkage %q\n", *linkageName)
		os.Exit(2)
	}

	var (
		sim     *linalg.Matrix
		clipped int
		labels  []string
		count2  int
	)
	haveLabels := false
	if *matrixPath != "" {
		named, err := cli.LoadMatrix(*matrixPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokcluster: %v\n", err)
			os.Exit(1)
		}
		sim = named.Matrix
		labels = named.Names
		count2 = sim.Rows
	} else {
		traces, err := cli.LoadTraceDir(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokcluster: %v\n", err)
			os.Exit(1)
		}
		xs := core.ConvertAll(traces, core.Options{IgnoreBytes: *noBytes})
		spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
		sim, clipped, err = spec.Similarity(xs, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokcluster: %v\n", err)
			os.Exit(1)
		}
		labels = make([]string, len(traces))
		for i, t := range traces {
			labels[i] = t.Label
			if t.Label != "" {
				haveLabels = true
			}
			if t.Label == "" {
				labels[i] = t.Name
			}
		}
		count2 = len(traces)
	}
	dg, err := cluster.Cluster(kernel.KernelDistance(sim), linkage)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokcluster: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%d traces, %d negative eigenvalues clipped, linkage=%s\n\n", count2, clipped, linkage)
	fmt.Printf("dendrogram (depth %d):\n%s\n", *depth, plot.RenderDendrogram(dg, labels, *depth, 4))
	assign := dg.Cut(*clusters)
	fmt.Printf("flat clustering at k=%d:\n%s", *clusters, plot.RenderClusterSummary(assign, labels))
	fmt.Printf("natural cluster count (largest height gap): %d\n", dg.NaturalK(6))

	if haveLabels {
		if p, err := cluster.Purity(assign, labels); err == nil {
			fmt.Printf("purity vs labels: %.4f\n", p)
		}
		if ari, err := cluster.AdjustedRandIndex(assign, labels); err == nil {
			fmt.Printf("adjusted Rand index vs labels: %.4f\n", ari)
		}
	}
}
