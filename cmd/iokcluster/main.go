// Command iokcluster clusters a directory of traces hierarchically (paper
// Figs. 7 and 9): it prints the dendrogram, the flat clustering at -clusters,
// and quality metrics when ground-truth labels are present. Instead of
// computing a kernel matrix it can also consume one written by iokmatrix
// (-matrix file.csv or file.json).
//
// Usage:
//
//	iokcluster -dir traces/ [-kernel kast] [-cut 2] [-clusters 3] [-linkage single] [-nobytes]
//	iokcluster -matrix sim.json [-clusters 3]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"iokast/internal/cli"
	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/plot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: flags come from args, output
// goes to the given writers, and the exit code is returned instead of
// calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("iokcluster", flag.ContinueOnError)
	flags.SetOutput(stderr)
	dir := flags.String("dir", "", "directory of .trace files")
	matrixPath := flags.String("matrix", "", "precomputed similarity matrix (.csv/.json from iokmatrix) instead of -dir")
	kernelName := flags.String("kernel", "kast", "kernel: kast, blended, spectrum or bagoftokens")
	cut := flags.Int("cut", 2, "cut weight")
	k := flags.Int("k", 0, "substring length bound for blended/spectrum (0 = default)")
	count := flags.Bool("count", false, "count occurrences instead of summing weights")
	clusters := flags.Int("clusters", 3, "flat cluster count to cut at")
	linkageName := flags.String("linkage", "single", "linkage: single, complete or average")
	noBytes := flags.Bool("nobytes", false, "ignore byte counts")
	depth := flags.Int("depth", 3, "dendrogram rendering depth")
	if err := flags.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if (*dir == "") == (*matrixPath == "") {
		fmt.Fprintln(stderr, "iokcluster: exactly one of -dir or -matrix is required")
		flags.Usage()
		return 2
	}
	var linkage cluster.Linkage
	switch *linkageName {
	case "single":
		linkage = cluster.Single
	case "complete":
		linkage = cluster.Complete
	case "average":
		linkage = cluster.Average
	default:
		fmt.Fprintf(stderr, "iokcluster: unknown linkage %q\n", *linkageName)
		return 2
	}

	var (
		sim     *linalg.Matrix
		clipped int
		labels  []string
		count2  int
	)
	haveLabels := false
	if *matrixPath != "" {
		named, err := cli.LoadMatrix(*matrixPath)
		if err != nil {
			fmt.Fprintf(stderr, "iokcluster: %v\n", err)
			return 1
		}
		sim = named.Matrix
		labels = named.Names
		count2 = sim.Rows
	} else {
		traces, err := cli.LoadTraceDir(*dir)
		if err != nil {
			fmt.Fprintf(stderr, "iokcluster: %v\n", err)
			return 1
		}
		xs := core.ConvertAll(traces, core.Options{IgnoreBytes: *noBytes})
		spec := cli.KernelSpec{Name: *kernelName, CutWeight: *cut, K: *k, Count: *count}
		sim, clipped, err = spec.Similarity(xs, true)
		if err != nil {
			fmt.Fprintf(stderr, "iokcluster: %v\n", err)
			return 1
		}
		labels = make([]string, len(traces))
		for i, t := range traces {
			labels[i] = t.Label
			if t.Label != "" {
				haveLabels = true
			}
			if t.Label == "" {
				labels[i] = t.Name
			}
		}
		count2 = len(traces)
	}
	dg, err := cluster.Cluster(kernel.KernelDistance(sim), linkage)
	if err != nil {
		fmt.Fprintf(stderr, "iokcluster: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "%d traces, %d negative eigenvalues clipped, linkage=%s\n\n", count2, clipped, linkage)
	fmt.Fprintf(stdout, "dendrogram (depth %d):\n%s\n", *depth, plot.RenderDendrogram(dg, labels, *depth, 4))
	assign := dg.Cut(*clusters)
	fmt.Fprintf(stdout, "flat clustering at k=%d:\n%s", *clusters, plot.RenderClusterSummary(assign, labels))
	fmt.Fprintf(stdout, "natural cluster count (largest height gap): %d\n", dg.NaturalK(6))

	if haveLabels {
		if p, err := cluster.Purity(assign, labels); err == nil {
			fmt.Fprintf(stdout, "purity vs labels: %.4f\n", p)
		}
		if ari, err := cluster.AdjustedRandIndex(assign, labels); err == nil {
			fmt.Fprintf(stdout, "adjusted Rand index vs labels: %.4f\n", ari)
		}
	}
	return 0
}
