package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runCluster invokes the command body and returns (stdout, stderr, code).
func runCluster(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func checkGolden(t *testing.T, got, goldenPath string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

func TestGoldenTraceDir(t *testing.T) {
	out, errOut, code := runCluster(t, "-dir", filepath.Join("testdata", "traces"), "-clusters", "2")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "traces.golden"))
}

func TestGoldenCompleteLinkage(t *testing.T) {
	out, errOut, code := runCluster(t, "-dir", filepath.Join("testdata", "traces"),
		"-clusters", "2", "-linkage", "complete", "-kernel", "blended")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "traces_complete.golden"))
}

func TestGoldenMatrix(t *testing.T) {
	out, errOut, code := runCluster(t, "-matrix", filepath.Join("testdata", "sim.json"), "-clusters", "2")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	checkGolden(t, out, filepath.Join("testdata", "matrix.golden"))
}

func TestErrors(t *testing.T) {
	if _, errOut, code := runCluster(t); code != 2 || !strings.Contains(errOut, "exactly one") {
		t.Fatalf("no input: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCluster(t, "-dir", "x", "-matrix", "y"); code != 2 || !strings.Contains(errOut, "exactly one") {
		t.Fatalf("both inputs: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCluster(t, "-dir", "testdata/traces", "-linkage", "nope"); code != 2 || !strings.Contains(errOut, "unknown linkage") {
		t.Fatalf("bad linkage: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCluster(t, "-dir", "testdata/does-not-exist"); code != 1 || errOut == "" {
		t.Fatalf("missing dir: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCluster(t, "-matrix", "testdata/does-not-exist.json"); code != 1 || errOut == "" {
		t.Fatalf("missing matrix: exit %d, stderr %q", code, errOut)
	}
	if _, errOut, code := runCluster(t, "-dir", "testdata/traces", "-kernel", "nope"); code != 1 || errOut == "" {
		t.Fatalf("bad kernel: exit %d, stderr %q", code, errOut)
	}
	if _, _, code := runCluster(t, "-badflag"); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
