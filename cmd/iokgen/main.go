// Command iokgen generates the synthetic evaluation dataset — the stand-in
// for the paper's IOR/FLASH benchmark traces — as a directory of .trace
// files in the canonical text format.
//
// Usage:
//
//	iokgen -out traces/ [-seed 20170904] [-bases-a 10 -bases-b 4 -bases-c 4 -bases-d 4] [-copies 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"iokast/internal/cli"
	"iokast/internal/iogen"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Uint64("seed", 20170904, "dataset seed")
	basesA := flag.Int("bases-a", 10, "base examples for category A (Flash I/O)")
	basesB := flag.Int("bases-b", 4, "base examples for category B (Random POSIX I/O)")
	basesC := flag.Int("bases-c", 4, "base examples for category C (Normal I/O)")
	basesD := flag.Int("bases-d", 4, "base examples for category D (Random Access I/O)")
	copies := flag.Int("copies", 4, "mutated copies per base example")
	mutations := flag.Int("mutations", 3, "mutations per copy")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "iokgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := iogen.Build(iogen.Options{
		Seed: *seed,
		Bases: map[iogen.Category]int{
			iogen.CatFlash:        *basesA,
			iogen.CatRandomPOSIX:  *basesB,
			iogen.CatNormal:       *basesC,
			iogen.CatRandomAccess: *basesD,
		},
		CopiesPerBase:    *copies,
		MutationsPerCopy: *mutations,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokgen: %v\n", err)
		os.Exit(1)
	}
	if err := cli.SaveTraceDir(*out, ds.Traces); err != nil {
		fmt.Fprintf(os.Stderr, "iokgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d traces to %s (seed %d)\n", ds.Len(), *out, *seed)
	for _, cat := range iogen.Categories {
		fmt.Printf("  %s: %d\n", cat, ds.CountLabel(string(cat)))
	}
}
