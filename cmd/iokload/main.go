// Command iokload is an open-loop workload generator and latency-SLO
// load harness for iokserve.
//
// It synthesizes a deterministic request schedule (or replays a recorded
// corpus directory), drives the target over HTTP honouring the schedule
// even when the server lags — so queueing delay shows up in the recorded
// latency instead of silently thinning the offered load — and reports
// per-endpoint latency quantiles, throughput, and error budget. SLO
// gates turn the report into an exit code for CI.
//
// Usage:
//
//	iokload -target http://127.0.0.1:8080 [flags]
//	iokload -spec workload.json -target ... [flag overrides]
//	iokload -replay corpus-dir -speed 2 -target ...
//	iokload -scrape-metrics -json report.json -target ...
//	iokload -dry-run [flags]        # print the schedule digest, send nothing
//
// Exit codes: 0 = run completed and all SLO gates passed; 1 = run failed
// or a gate failed; 2 = usage error.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"iokast/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// multiFlag collects every occurrence of a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// run is the testable body of the command (the cmd/iokstats style): all
// I/O goes through the arguments and the exit code is returned, so the
// end-to-end tests drive the exact shipped code path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("iokload", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		target   = flags.String("target", "", "base URL of the iokserve instance, e.g. http://127.0.0.1:8080")
		specPath = flags.String("spec", "", "JSON workload spec file; explicit flags below override its fields")
		clients  = flags.Int("clients", 4, "independent open-loop clients")
		duration = flags.Duration("duration", 10*time.Second, "timed-run length")
		rate     = flags.Float64("rate", 50, "per-client request rate (req/s); aggregate load is clients*rate")
		arrival  = flags.String("arrival", "poisson", "arrival process: constant, poisson, or gamma")
		shape    = flags.Float64("shape", 0, "gamma shape parameter (gamma only; 0 = default 0.5)")
		periods  = flags.String("periods", "", "bursty rate cycle for gamma arrivals, e.g. 200ms*4,800ms*0.25")
		mix      = flags.String("mix", "ingest=2,batch=0.5,similar_id=3,similar_trace=2,classify=2,delete=0.5,stream=1", "op mix weights (op=weight,...)")
		seed     = flags.Uint64("seed", 1, "run seed; the same seed always produces the same schedule")
		prefill  = flags.Int("prefill", 64, "traces ingested and labelled before the timed run")
		batch    = flags.Int("batch", 0, "traces per batch request (0 = default 4)")
		k        = flags.Int("k", 0, "neighbours per query op (0 = default 5)")
		workers  = flags.Int("workers", 0, "max in-flight requests (0 = 8 per CPU)")
		jsonPath = flags.String("json", "", "write the JSON report to this file ('-' = stdout)")
		replay   = flags.String("replay", "", "replay a recorded corpus directory instead of synthesizing")
		speed    = flags.Float64("speed", 1, "replay speed factor (2 = twice as fast as recorded)")
		dryRun   = flags.Bool("dry-run", false, "build and summarize the schedule without sending anything")
		scrape   = flags.Bool("scrape-metrics", false, "snapshot the target's /metrics before and after the timed run; deltas land in the JSON report")
	)
	var sloSpecs multiFlag
	flags.Var(&sloSpecs, "slo", "SLO gates, e.g. '/classify:p99<5ms,err<0.1%' (repeatable)")
	if err := flags.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if flags.NArg() > 0 {
		fmt.Fprintf(stderr, "iokload: unexpected arguments %q\n", flags.Args())
		return 2
	}

	var gates []load.Gate
	for _, s := range sloSpecs {
		gs, err := load.ParseSLO(s)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: -slo %q: %v\n", s, err)
			return 2
		}
		gates = append(gates, gs...)
	}

	arrivalSpec := load.ArrivalSpec{Process: *arrival, Shape: *shape}
	if *periods != "" {
		ps, err := load.ParsePeriods(*periods)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 2
		}
		arrivalSpec.Periods = ps
	}

	var (
		schedule []load.Request
		spec     *load.Spec
	)
	if *replay != "" {
		recs, err := load.LoadCorpusDir(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 2
		}
		schedule, err = load.BuildReplaySchedule(recs, *speed, *rate, *seed, arrivalSpec)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 2
		}
	} else {
		// Start from the spec file when given, then lay the explicitly-set
		// flags on top; without a file every flag (explicit or default)
		// defines the spec.
		set := map[string]bool{}
		flags.Visit(func(f *flag.Flag) { set[f.Name] = true })
		use := func(name string) bool { return *specPath == "" || set[name] }

		var s load.Spec
		if *specPath != "" {
			var err error
			if s, err = load.ReadSpec(*specPath); err != nil {
				fmt.Fprintf(stderr, "iokload: %v\n", err)
				return 2
			}
		}
		if use("clients") {
			s.Clients = *clients
		}
		if use("duration") {
			s.Duration = load.Duration(*duration)
		}
		if use("rate") {
			s.Rate = *rate
		}
		if use("arrival") || use("shape") || use("periods") {
			s.Arrival = arrivalSpec
		}
		if use("mix") {
			m, err := load.ParseMix(*mix)
			if err != nil {
				fmt.Fprintf(stderr, "iokload: %v\n", err)
				return 2
			}
			s.Mix = m
		}
		if use("seed") {
			s.Seed = *seed
		}
		if use("prefill") {
			s.Prefill = *prefill
		}
		if use("batch") {
			s.BatchSize = *batch
		}
		if use("k") {
			s.K = *k
		}
		var err error
		if schedule, err = load.BuildSchedule(s); err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 2
		}
		spec = &s
	}

	if *dryRun {
		printSchedule(stdout, schedule)
		return 0
	}
	if *target == "" {
		fmt.Fprintln(stderr, "iokload: -target is required (or use -dry-run)")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := &load.Runner{Target: strings.TrimRight(*target, "/"), Workers: *workers}

	if spec != nil && spec.Prefill > 0 {
		bodies, labels := load.PrefillBodies(*spec)
		n, err := runner.Prefill(ctx, bodies, labels)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "prefilled %d labelled traces\n", n)
	}

	// Scrape after prefill, not before it, so the deltas cover exactly the
	// timed run — the same window the client-side report counts.
	var before map[string]float64
	if *scrape {
		var err error
		if before, err = load.ScrapeMetrics(ctx, runner.Target); err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 1
		}
	}

	res, runErr := runner.Run(ctx, schedule)
	rep := load.BuildReport(runner.Target, spec, res)
	if *scrape {
		after, err := load.ScrapeMetrics(ctx, runner.Target)
		if err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 1
		}
		rep.ServerMetrics = load.MetricsDelta(before, after)
	}
	pass := load.Evaluate(gates, rep)
	rep.WriteHuman(stdout)
	if *jsonPath != "" {
		if err := writeReport(rep, *jsonPath, stdout); err != nil {
			fmt.Fprintf(stderr, "iokload: %v\n", err)
			return 1
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "iokload: %v\n", runErr)
		return 1
	}
	if !pass {
		fmt.Fprintln(stderr, "iokload: SLO gates failed")
		return 1
	}
	return 0
}

// printSchedule summarizes a dry-run schedule: per-endpoint counts plus
// a digest over every request field, so two runs with the same seed can
// be diffed line-for-line (the determinism contract, test-asserted).
func printSchedule(w io.Writer, schedule []load.Request) {
	counts := map[string]int{}
	h := sha256.New()
	var last time.Duration
	for i := range schedule {
		r := &schedule[i]
		counts[r.Op.Endpoint()]++
		fmt.Fprintf(h, "%d|%d|%s|%s|%s|%s\n", r.Client, r.Due, r.Op, r.Method, r.Path, r.Body)
		if r.Due > last {
			last = r.Due
		}
	}
	fmt.Fprintf(w, "schedule: %d requests over %v\n", len(schedule), last)
	eps := make([]string, 0, len(counts))
	for ep := range counts {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		fmt.Fprintf(w, "  %-22s %8d\n", ep, counts[ep])
	}
	fmt.Fprintf(w, "digest: sha256:%x\n", h.Sum(nil))
}

// writeReport writes the JSON report to path, with "-" meaning stdout.
func writeReport(rep *load.Report, path string, stdout io.Writer) error {
	if path == "-" {
		return rep.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
