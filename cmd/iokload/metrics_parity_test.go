package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/load"
	"iokast/internal/obs"
	"iokast/internal/serve"
	"iokast/internal/shard"
	"iokast/internal/store"
	"iokast/internal/stream"
)

// newObsServer builds a fully instrumented durable server the way
// cmd/iokserve wires one: every layer reporting into the one registry,
// telemetry middleware on top. shards == 1 is the single-engine path.
func newObsServer(t *testing.T, reg *obs.Registry, shards int) *serve.Server {
	t.Helper()
	var s *serve.Server
	if shards == 1 {
		sopt := store.Options{SnapshotEvery: -1, NoSync: true, Metrics: store.NewMetrics(reg, nil)}
		eopt := engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2, Metrics: engine.NewMetrics(reg, nil)}
		eng, st, err := store.Open(t.TempDir(), func() *engine.Engine { return engine.New(eopt) }, sopt)
		if err != nil {
			t.Fatal(err)
		}
		s = serve.New(eng, st, nil, core.Options{})
	} else {
		sh, err := shard.Open(t.TempDir(), shard.Options{
			Shards: shards,
			Seed:   7,
			Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2},
			Store:  store.Options{SnapshotEvery: -1, NoSync: true},
			Obs:    reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		s = serve.NewSharded(sh, nil, core.Options{})
	}
	s.ConfigureStream(stream.Config{Metrics: stream.NewMetrics(reg)})
	s.ConfigureTelemetry(serve.Telemetry{Registry: reg})
	return s
}

// TestMetricsParity is the server-side ground-truth check: a -scrape-
// metrics load run's request-counter deltas must equal the client's own
// per-endpoint attempt counts, in single-engine and 4-shard modes, and
// the full exposition must parse with every layer's families present
// (labelled per shard in sharded mode).
func TestMetricsParity(t *testing.T) {
	if testing.Short() {
		t.Skip("timed run per topology")
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single", 1},
		{"sharded4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			server := newObsServer(t, reg, tc.shards)
			defer server.Close()
			srv := httptest.NewServer(server)
			defer srv.Close()
			jsonPath := filepath.Join(t.TempDir(), "report.json")

			code, out, errOut := runLoad(
				"-target", srv.URL,
				"-clients", "2", "-rate", "30", "-duration", "1500ms",
				"-prefill", "16", "-seed", "7",
				"-scrape-metrics",
				"-json", jsonPath,
			)
			if code != 0 {
				t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
			}
			f, err := os.Open(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			rep, err := load.DecodeReport(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.ServerMetrics) == 0 {
				t.Fatal("report carries no server-metric deltas")
			}

			// Parity: for every endpoint the client drove, the server's
			// request-counter delta (summed over statuses) must equal the
			// client's attempt count. A mismatch means the harness dropped
			// or double-counted work, or the middleware missed requests.
			for ep, er := range rep.Endpoints {
				if er.TransportErrors != 0 {
					t.Fatalf("%s: %d transport errors break the parity premise", ep, er.TransportErrors)
				}
				method, path, ok := strings.Cut(ep, " ")
				if !ok {
					t.Fatalf("unparseable client endpoint label %q", ep)
				}
				prefix := fmt.Sprintf("iok_http_requests_total{endpoint=%q,method=%q,status=", path, method)
				var served float64
				for key, v := range rep.ServerMetrics {
					if strings.HasPrefix(key, prefix) {
						served += v
					}
				}
				if int64(served) != er.Requests {
					t.Errorf("%s: server counted %d requests, client sent %d", ep, int64(served), er.Requests)
				}
			}

			// The raw exposition parses strictly and covers every layer.
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			samples, err := load.ParseMetrics(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			if tc.shards == 1 {
				want = []string{
					"iok_engine_adds_total",
					"iok_sketch_searches_total",
					"iok_store_wal_appends_total",
					"iok_store_fsync_seconds_count",
				}
			} else {
				for i := 0; i < tc.shards; i++ {
					want = append(want,
						fmt.Sprintf(`iok_shard_traces{shard="%d"}`, i),
						fmt.Sprintf(`iok_engine_adds_total{shard="%d"}`, i),
						fmt.Sprintf(`iok_store_wal_appends_total{shard="%d"}`, i),
						fmt.Sprintf(`iok_shard_fanout_seconds_count{shard="%d"}`, i),
					)
				}
			}
			want = append(want,
				"iok_stream_sessions_total",
				"iok_stream_window_ticks_total",
				"iok_corpus_traces",
				"iok_interner_size",
				"iok_http_inflight_requests",
			)
			for _, key := range want {
				if _, ok := samples[key]; !ok {
					t.Errorf("exposition missing %s", key)
				}
			}

			// The corpus gauge sampled real state: prefill alone put 16
			// traces in, so zero means the gauge func is not wired.
			if samples["iok_corpus_traces"] <= 0 {
				t.Errorf("iok_corpus_traces = %v, want > 0", samples["iok_corpus_traces"])
			}
		})
	}
}
