package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/load"
	"iokast/internal/serve"
	"iokast/internal/shard"
	"iokast/internal/store"
)

// runLoad drives the shipped run() in-process.
func runLoad(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestDryRunDeterministic is the acceptance-criteria pin at the command
// level: two invocations with the same -seed print byte-identical
// schedule digests, and a different seed diverges.
func TestDryRunDeterministic(t *testing.T) {
	args := []string{"-dry-run", "-seed", "42", "-clients", "3", "-duration", "1s", "-rate", "40", "-prefill", "16"}
	c1, out1, _ := runLoad(args...)
	c2, out2, _ := runLoad(args...)
	if c1 != 0 || c2 != 0 {
		t.Fatalf("dry-run exit codes %d, %d", c1, c2)
	}
	if out1 != out2 {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", out1, out2)
	}
	if !strings.Contains(out1, "digest: sha256:") {
		t.Fatalf("no digest in dry-run output:\n%s", out1)
	}
	c3, out3, _ := runLoad("-dry-run", "-seed", "43", "-clients", "3", "-duration", "1s", "-rate", "40", "-prefill", "16")
	if c3 != 0 {
		t.Fatalf("dry-run exit code %d", c3)
	}
	if out1 == out3 {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDryRunGammaBursty: the full flag surface for the bursty arrival
// process parses and schedules deterministically.
func TestDryRunGammaBursty(t *testing.T) {
	args := []string{"-dry-run", "-seed", "7", "-clients", "2", "-duration", "1s", "-rate", "50",
		"-arrival", "gamma", "-shape", "0.5", "-periods", "200ms*4,800ms*0.25", "-prefill", "8"}
	c1, out1, _ := runLoad(args...)
	c2, out2, _ := runLoad(args...)
	if c1 != 0 || c2 != 0 {
		t.Fatalf("exit codes %d, %d", c1, c2)
	}
	if out1 != out2 {
		t.Fatal("gamma schedule not deterministic")
	}
}

// TestSpecFileOverride: a -spec file defines the run; explicit flags
// override individual fields, unset flags do not.
func TestSpecFileOverride(t *testing.T) {
	spec := load.Spec{
		Clients:  2,
		Duration: load.Duration(time.Second),
		Rate:     30,
		Arrival:  load.ArrivalSpec{Process: "poisson"},
		Mix:      []load.MixEntry{{Op: load.OpIngest, Weight: 1}},
		Seed:     9,
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	c1, base, _ := runLoad("-dry-run", "-spec", path)
	if c1 != 0 {
		t.Fatalf("spec-file dry-run exit %d", c1)
	}
	cSame, viaFlags, _ := runLoad("-dry-run", "-clients", "2", "-duration", "1s", "-rate", "30",
		"-arrival", "poisson", "-mix", "ingest=1", "-seed", "9", "-prefill", "0")
	if cSame != 0 {
		t.Fatalf("flag dry-run exit %d", cSame)
	}
	if base != viaFlags {
		t.Fatalf("spec file and equivalent flags diverged:\n%s\nvs\n%s", base, viaFlags)
	}
	c2, overridden, _ := runLoad("-dry-run", "-spec", path, "-seed", "10")
	if c2 != 0 {
		t.Fatalf("override dry-run exit %d", c2)
	}
	if base == overridden {
		t.Fatal("-seed override had no effect on a -spec run")
	}
}

// TestUsageErrors: malformed invocations exit 2 with a diagnostic, never
// 0 and never a run.
func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no target":       {"-duration", "1s"},
		"unknown flag":    {"-frobnicate"},
		"bad mix":         {"-dry-run", "-mix", "ingest"},
		"bad arrival":     {"-dry-run", "-arrival", "weibull"},
		"bad periods":     {"-dry-run", "-arrival", "gamma", "-periods", "xyz"},
		"bad slo":         {"-dry-run", "-slo", "p42<1ms", "-target", "http://x"},
		"bad spec path":   {"-dry-run", "-spec", "/nonexistent/spec.json"},
		"positional junk": {"-dry-run", "extra"},
		"missing prefill": {"-dry-run", "-prefill", "0"}, // default mix needs ids
		"bad replay dir":  {"-replay", "/nonexistent", "-target", "http://x"},
		"zero speed":      {"-replay", ".", "-speed", "0", "-target", "http://x"},
	} {
		code, _, errOut := runLoad(args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr %q)", name, code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", name)
		}
	}
}

func newSingleServer(t *testing.T) *serve.Server {
	t.Helper()
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2})
	return serve.New(eng, nil, nil, core.Options{})
}

func newShardedServer(t *testing.T, shards int) *serve.Server {
	t.Helper()
	sh, err := shard.New(shard.Options{
		Shards: shards,
		Seed:   7,
		Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2},
		Store:  store.Options{SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewSharded(sh, nil, core.Options{})
}

// TestLoadSmoke drives the full mixed profile against an in-process
// iokserve — the exact shipped handler, single-engine and 4-shard — for
// 2 seconds and holds the run to the CI contract: exit 0, zero 5xx and
// transport errors, every op exercised, every SLO gate evaluated, and a
// JSON report that round-trips.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2s timed run per topology")
	}
	for _, tc := range []struct {
		name   string
		server *serve.Server
	}{
		{"single", newSingleServer(t)},
		{"sharded4", newShardedServer(t, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.server)
			defer srv.Close()
			jsonPath := filepath.Join(t.TempDir(), "report.json")

			code, out, errOut := runLoad(
				"-target", srv.URL,
				"-clients", "3", "-rate", "30", "-duration", "2s",
				"-prefill", "32", "-seed", "42",
				"-slo", "*:p99<5s,err=0",
				"-slo", "/classify:p99<5s",
				"-json", jsonPath,
			)
			if code != 0 {
				t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
			}

			raw, err := os.ReadFile(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := load.DecodeReport(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			// Round trip: decode -> encode reproduces the artifact
			// byte-for-byte (CI tooling depends on the format).
			var again bytes.Buffer
			if err := rep.WriteJSON(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, again.Bytes()) {
				t.Fatalf("report did not round-trip:\n%s\nvs\n%s", raw, again.Bytes())
			}

			if rep.Requests == 0 {
				t.Fatal("no requests recorded")
			}
			for _, op := range load.Ops {
				ep, ok := rep.Endpoints[op.Endpoint()]
				if !ok || ep.Requests == 0 {
					t.Errorf("endpoint %s saw no traffic", op.Endpoint())
				}
			}
			for name, ep := range rep.Endpoints {
				if ep.Errors != 0 || ep.TransportErrors != 0 {
					t.Errorf("%s: %d errors (%d transport): statuses %v", name, ep.Errors, ep.TransportErrors, ep.Statuses)
				}
				for code := range ep.Statuses {
					if strings.HasPrefix(code, "5") {
						t.Errorf("%s: got status %s", name, code)
					}
				}
			}
			if len(rep.SLO) != 3 { // two gates in the first -slo, one in the second
				t.Fatalf("%d SLO results, want 3: %+v", len(rep.SLO), rep.SLO)
			}
			for _, g := range rep.SLO {
				if !g.Pass {
					t.Errorf("gate %q failed: %s", g.Gate, g.Detail)
				}
			}
			if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "PASS") {
				t.Errorf("human report incomplete:\n%s", out)
			}
		})
	}
}

// TestLoadSmokeGateFailure: an impossible gate turns into exit 1, not a
// silent pass — the property CI relies on.
func TestLoadSmokeGateFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("timed run")
	}
	srv := httptest.NewServer(newSingleServer(t))
	defer srv.Close()
	code, _, errOut := runLoad(
		"-target", srv.URL,
		"-clients", "1", "-rate", "20", "-duration", "500ms",
		"-prefill", "8", "-seed", "1",
		"-slo", "*:p99<1ns",
	)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "SLO") {
		t.Fatalf("stderr does not mention the gate failure: %q", errOut)
	}
}

// TestReplaySmoke: a recorded corpus replays end-to-end — timed mode
// honours the timeline, and every trace lands as POST /traces.
func TestReplaySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timed run")
	}
	dir := t.TempDir()
	const n = 12
	names, err := iogen.WriteCorpusDir(dir, n, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]time.Duration, n)
	for i := range offsets {
		offsets[i] = time.Duration(i) * 50 * time.Millisecond
	}
	if err := load.WriteTimeline(dir, names, offsets); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newSingleServer(t))
	defer srv.Close()
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	code, out, errOut := runLoad(
		"-target", srv.URL,
		"-replay", dir, "-speed", "2", // 550ms of recorded time in ~275ms
		"-slo", "*:err=0",
		"-json", jsonPath,
	)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := load.DecodeReport(f)
	if err != nil {
		t.Fatal(err)
	}
	ep := rep.Endpoints[load.OpIngest.Endpoint()]
	if ep.Requests != n {
		t.Fatalf("replayed %d requests, want %d", ep.Requests, n)
	}
	if ep.Statuses["201"] != n {
		t.Fatalf("statuses %v, want %d x 201", ep.Statuses, n)
	}
}
