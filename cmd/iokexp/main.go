// Command iokexp runs the paper's evaluation: every figure and claim
// (experiments E1-E8) plus the design ablations (A1-A3), printing a
// paper-vs-measured report. EXPERIMENTS.md records its output.
//
// Usage:
//
//	iokexp [-seed 20170904] [-run E3] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iokast/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", experiments.DefaultSeed, "dataset seed")
	runOnly := flag.String("run", "", "run only the experiment with this ID (e.g. E3)")
	ablations := flag.Bool("ablations", true, "also run the design ablations A1-A3")
	flag.Parse()

	reports, err := experiments.RunAll(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iokexp: %v\n", err)
		os.Exit(1)
	}
	if *ablations {
		abl, err := experiments.RunAblations(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokexp: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, abl...)
		x1, err := experiments.RunX1(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iokexp: %v\n", err)
			os.Exit(1)
		}
		reports = append(reports, x1)
	}

	matched, total := 0, 0
	for _, r := range reports {
		if *runOnly != "" && !strings.EqualFold(r.ID, *runOnly) {
			continue
		}
		fmt.Println(r.Render())
		total++
		if r.Pass {
			matched++
		}
	}
	if total == 0 {
		fmt.Fprintf(os.Stderr, "iokexp: no experiment named %q\n", *runOnly)
		os.Exit(2)
	}
	fmt.Printf("summary: %d/%d experiments match the paper (seed %d)\n", matched, total, *seed)
	if matched != total {
		os.Exit(1)
	}
}
