package iokast

import (
	"iokast/internal/classify"
	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/iofs"
	"iokast/internal/kernel"
	"iokast/internal/kpca"
	"iokast/internal/trace"
)

// Additional public surface: trace characterisation, pattern
// classification, out-of-sample KPCA projection, clustering quality, and
// the recording filesystem for capturing live workloads.

type (
	// TraceStats summarises a trace along the paper's §2.1 axes.
	TraceStats = trace.Stats
	// Classifier labels new patterns against a labelled reference set.
	Classifier = classify.Classifier
	// ClassifierMatch is one scored reference.
	ClassifierMatch = classify.Match
	// OnlineClassifier labels traces against a live corpus (Engine or
	// Sharded) by similarity-weighted k-NN vote, with labels held in a
	// LabelRegistry — the serving-path form of Classifier.
	OnlineClassifier = classify.Online
	// ClassifyCorpus is the similarity surface an OnlineClassifier needs;
	// both Engine and Sharded satisfy it.
	ClassifyCorpus = classify.Corpus
	// LabelRegistry assigns labels to corpus ids, optionally persisted as
	// an atomically committed labels file beside the corpus data.
	LabelRegistry = classify.Registry
	// ClassifyResult is one online classification: winning label,
	// confidence, per-label votes, and the scored neighbours.
	ClassifyResult = classify.Result
	// ClassifyVote is one label's aggregated ballot.
	ClassifyVote = classify.Vote
	// KPCAModel projects new examples into a fitted KPCA space.
	KPCAModel = kpca.StringModel
	// RecordingFS is an in-memory POSIX-like filesystem that records
	// every call as a trace operation.
	RecordingFS = iofs.FS
	// RecordedFile is an open handle on a RecordingFS.
	RecordedFile = iofs.File
	// SubsequenceKernel is the gap-weighted subsequence kernel baseline.
	SubsequenceKernel = kernel.Subsequence
)

// ComputeStats derives the trace characterisation summary.
func ComputeStats(t *Trace) TraceStats { return trace.ComputeStats(t) }

// NewRecordingFS returns an empty recording filesystem; run a workload
// against it and feed fs.Trace() to Convert.
func NewRecordingFS() *RecordingFS { return iofs.New() }

// NewClassifier builds a k-nearest-neighbour pattern classifier over
// labelled weighted strings using the given kernel (cosine-normalised
// internally).
func NewClassifier(k Kernel, refs []WeightedString, labels []string, neighbours int) (*Classifier, error) {
	return classify.New(k, refs, labels, neighbours)
}

// NewOnlineClassifier wires an online classifier over a live corpus — an
// Engine or a Sharded — and a label registry. Classify runs the corpus's
// SimilarTrace (sketch shortlist + exact rerank where enabled, fanned out
// across shards in parallel) and aggregates neighbour votes weighted by
// normalised similarity; with an exact rerank the result is bit-identical
// at any shard count.
func NewOnlineClassifier(c ClassifyCorpus, reg *LabelRegistry) *OnlineClassifier {
	return classify.NewOnline(c, reg)
}

// NewLabelRegistry returns an empty in-memory label registry.
func NewLabelRegistry() *LabelRegistry { return classify.NewRegistry() }

// OpenLabelRegistry loads (or initialises) a durable label registry backed
// by the file at path. Every mutation rewrites the CRC-framed table with an
// atomic temp+rename commit, so a kill at any point preserves the last
// complete assignment.
func OpenLabelRegistry(path string) (*LabelRegistry, error) {
	return classify.OpenRegistry(path)
}

// ClassifyTraces is a convenience wrapper: convert labelled reference
// traces, build a Kast classifier, and classify the query trace. It
// returns the winning label and the scored matches.
func ClassifyTraces(refs []*Trace, labels []string, query *Trace, cutWeight, neighbours int, opt ConvertOptions) (string, []ClassifierMatch, error) {
	c, err := classify.New(&core.Kast{CutWeight: cutWeight}, core.ConvertAll(refs, opt), labels, neighbours)
	if err != nil {
		return "", nil, err
	}
	return c.Classify(core.Convert(query, opt))
}

// FitKPCA fits a Kernel PCA model on training strings so new strings can
// be projected into the same space with Project.
func FitKPCA(k Kernel, train []WeightedString, components int) (*KPCAModel, error) {
	return kpca.FitStrings(k, train, kpca.Options{Components: components})
}

// Silhouette scores a flat clustering on a distance matrix (mean
// silhouette coefficient, -1..1).
func Silhouette(distances *Matrix, assignments []int) (float64, error) {
	return cluster.Silhouette(distances, assignments)
}

// CopheneticCorrelation measures how faithfully a dendrogram preserves the
// distances it was built from (1 = perfect ultrametric fit).
func CopheneticCorrelation(distances *Matrix, dg *Dendrogram) (float64, error) {
	return cluster.CopheneticCorrelation(distances, dg)
}

// KernelDistance converts a similarity matrix into the kernel-induced
// distance matrix d_ij = sqrt(max(0, k_ii + k_jj - 2 k_ij)).
func KernelDistance(similarity *Matrix) *Matrix {
	return kernel.KernelDistance(similarity)
}
