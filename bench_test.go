package iokast

// Benchmark harness: one benchmark per paper figure/claim (experiment
// index E1-E8 in DESIGN.md), plus micro-benchmarks for every pipeline
// stage. Absolute times are hardware-specific; the *shapes* the paper
// reports — notably E7's "the smaller the cut weight the most expensive
// the computation became" — are what these regenerate. bench_output.txt
// records a full run.

import (
	"fmt"
	"sync"
	"testing"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/experiments"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/kpca"
	"iokast/internal/token"
	"iokast/internal/trace"
	"iokast/internal/xrand"
)

var (
	benchOnce    sync.Once
	benchDataset *iogen.Dataset
	benchBytes   []token.String
	benchNoBytes []token.String
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := iogen.Build(iogen.PaperOptions(experiments.DefaultSeed))
		if err != nil {
			panic(err)
		}
		benchDataset = ds
		benchBytes = core.ConvertAll(ds.Traces, core.Options{})
		benchNoBytes = core.ConvertAll(ds.Traces, core.Options{IgnoreBytes: true})
	})
}

// kastSimilarity runs the paper's full post-processing once.
func kastSimilarity(b *testing.B, xs []token.String, cut int) *Matrix {
	b.Helper()
	raw := kernel.Gram(&core.Kast{CutWeight: cut}, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, cut)
	if err != nil {
		b.Fatal(err)
	}
	rep, _, err := kernel.PSDRepair(norm)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkE1WorkedExample times the kernel on the paper's §3.2 example
// (Figs. 3-5) and asserts its value each iteration.
func BenchmarkE1WorkedExample(b *testing.B) {
	x, y := experiments.WorkedExampleStrings()
	k := &core.Kast{CutWeight: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := k.Compare(x, y); got != 1018 {
			b.Fatalf("kernel drifted: %v", got)
		}
	}
}

// BenchmarkE2Fig6KastKPCA regenerates Fig. 6: Kast similarity (bytes, cut
// 2) plus Kernel PCA over the 110-example dataset.
func BenchmarkE2Fig6KastKPCA(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := kastSimilarity(b, benchBytes, 2)
		if _, err := kpca.Analyze(sim, kpca.Options{Components: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Fig7KastHC regenerates Fig. 7: the same similarity plus
// single-linkage clustering, asserting the paper grouping each iteration.
func BenchmarkE3Fig7KastHC(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := kastSimilarity(b, benchBytes, 2)
		dg, err := cluster.Cluster(kernel.KernelDistance(sim), cluster.Single)
		if err != nil {
			b.Fatal(err)
		}
		if !cluster.GroupsExactlyMatch(dg.Cut(3), benchDataset.Labels, experiments.PaperGroups) {
			b.Fatal("clustering drifted from the paper grouping")
		}
	}
}

// BenchmarkE4Fig8BlendedKPCA regenerates Fig. 8 with the Blended Spectrum
// baseline.
func BenchmarkE4Fig8BlendedKPCA(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := kernel.Gram(experiments.BlendedBaseline(), benchBytes)
		rep, _, err := kernel.PSDRepair(kernel.NormalizeCosine(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := kpca.Analyze(rep, kpca.Options{Components: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Fig9BlendedHC regenerates Fig. 9.
func BenchmarkE5Fig9BlendedHC(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := kernel.Gram(experiments.BlendedBaseline(), benchBytes)
		rep, _, err := kernel.PSDRepair(kernel.NormalizeCosine(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Cluster(kernel.KernelDistance(rep), cluster.Single); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6NoByteSweep regenerates the byte-free cut-weight sweep at
// three representative points of the paper's {2^1..2^10} range.
func BenchmarkE6NoByteSweep(b *testing.B) {
	benchSetup(b)
	for _, cw := range []int{2, 32, 1024} {
		b.Run(fmt.Sprintf("cut=%d", cw), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim := kastSimilarity(b, benchNoBytes, cw)
				if _, err := cluster.Cluster(kernel.KernelDistance(sim), cluster.Single); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7CutWeightCost regenerates the §4.2 cost claim: Gram
// computation time must grow as the cut weight shrinks.
func BenchmarkE7CutWeightCost(b *testing.B) {
	benchSetup(b)
	for _, cw := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		b.Run(fmt.Sprintf("cut=%d", cw), func(b *testing.B) {
			k := &core.Kast{CutWeight: cw}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kernel.Gram(k, benchBytes)
			}
		})
	}
}

// BenchmarkE8KSpectrum regenerates the k-Spectrum baseline comparison.
func BenchmarkE8KSpectrum(b *testing.B) {
	benchSetup(b)
	for _, k := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sp := &kernel.Spectrum{K: k, Mode: kernel.Count, CutWeight: 2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				raw := kernel.Gram(sp, benchBytes)
				rep, _, err := kernel.PSDRepair(kernel.NormalizeCosine(raw))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cluster.Cluster(kernel.KernelDistance(rep), cluster.Single); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Pipeline micro-benchmarks ---

// BenchmarkConvertTrace times the full trace-to-string conversion per
// category (parse is excluded; traces are pre-built).
func BenchmarkConvertTrace(b *testing.B) {
	for _, cat := range iogen.Categories {
		b.Run(string(cat), func(b *testing.B) {
			tr, err := iogen.Generate(cat, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Convert(tr, core.Options{})
			}
		})
	}
}

// BenchmarkTraceParse times the canonical text parser.
func BenchmarkTraceParse(b *testing.B) {
	tr, err := iogen.Generate(iogen.CatRandomPOSIX, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	text := trace.FormatString(tr)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ParseString(text); err != nil {
			b.Fatal(err)
		}
	}
}

// randomTokens builds a synthetic weighted string over a small alphabet.
func randomTokens(r *xrand.Rand, n int) token.String {
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{
			Literal: fmt.Sprintf("op%d", r.Intn(8)),
			Weight:  r.IntRange(1, 50),
		}
	}
	return s
}

// BenchmarkKastPair times a single kernel evaluation across string
// lengths (the kernel is quadratic in the compressed string length).
func BenchmarkKastPair(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			r := xrand.New(uint64(n))
			x := randomTokens(r, n)
			y := randomTokens(r, n)
			k := &core.Kast{CutWeight: 2}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k.Compare(x, y)
			}
		})
	}
}

// BenchmarkKastCompare is the flat-named single-pair kernel benchmark the
// CI regression gate tracks (length 64, the middle of BenchmarkKastPair's
// range): one Kast evaluation end to end, per-pair preprocessing included.
func BenchmarkKastCompare(b *testing.B) {
	r := xrand.New(64)
	x := randomTokens(r, 64)
	y := randomTokens(r, 64)
	k := &core.Kast{CutWeight: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Compare(x, y)
	}
}

// BenchmarkNaiveKastPair is the reference implementation at a size where
// it is still usable; contrast with BenchmarkKastPair/len=16.
func BenchmarkNaiveKastPair(b *testing.B) {
	r := xrand.New(16)
	x := randomTokens(r, 16)
	y := randomTokens(r, 16)
	k := &core.NaiveKast{CutWeight: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Compare(x, y)
	}
}

// BenchmarkGram110 times the parallel Gram computation on the evaluation
// dataset.
func BenchmarkGram110(b *testing.B) {
	benchSetup(b)
	k := &core.Kast{CutWeight: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kernel.Gram(k, benchBytes)
	}
}

// BenchmarkEigen110 times the Jacobi eigendecomposition used by both PSD
// repair and KPCA.
func BenchmarkEigen110(b *testing.B) {
	benchSetup(b)
	raw := kernel.Gram(&core.Kast{CutWeight: 2}, benchBytes)
	norm, err := core.NormalizeGramPaper(raw, benchBytes, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := kernel.PSDRepair(norm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHCluster110 times single-linkage clustering on the evaluation
// dataset.
func BenchmarkHCluster110(b *testing.B) {
	benchSetup(b)
	sim := kastSimilarity(b, benchBytes, 2)
	d := kernel.KernelDistance(sim)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Cluster(d, cluster.Single); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetBuild times synthetic dataset generation.
func BenchmarkDatasetBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := iogen.Build(iogen.PaperOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
