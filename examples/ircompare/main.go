// IR comparison: the paper's future-work direction (§6) — apply the same
// weighted-string representation and Kast kernel to compiler intermediate
// representations instead of I/O traces. Three mini-IR programs are
// compared: two loop-heavy numeric kernels and one branchy dispatcher.
package main

import (
	"fmt"
	"log"

	"iokast"
	"iokast/internal/ir"
)

var programs = map[string]string{
	"dot-product": `
module dot
func dot
block entry
  load 1
  load 1
  load 1
  load 1
  mul 2
  mul 2
  add 2
  add 2
  store 2
block exit
  ret 1
`,
	"sum-array": `
module sum
func sum
block entry
  load 1
  load 1
  load 1
  load 1
  add 2
  add 2
  add 2
  store 2
block exit
  ret 1
`,
	"dispatcher": `
module dispatch
func route
block entry
  cmp 2
  br 3
block case_a
  call 4
  br 1
block case_b
  call 4
  br 1
block merge
  phi 3
  ret 1
`,
}

func main() {
	names := []string{"dot-product", "sum-array", "dispatcher"}
	strs := map[string]iokast.WeightedString{}
	for _, name := range names {
		m, err := ir.ParseString(programs[name])
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		s := ir.ToString(m, ir.Options{})
		strs[name] = s
		fmt.Printf("%-12s -> %s\n", name, s.Format())
	}

	fmt.Println("\npairwise Kast similarity (cut weight 2, cosine-normalised):")
	k := iokast.CosineNormalized(iokast.NewKast(2))
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			fmt.Printf("  %-12s vs %-12s = %.4f\n",
				names[i], names[j], k.Compare(strs[names[i]], strs[names[j]]))
		}
	}
	fmt.Println("\nThe two arithmetic loops score far higher with each other than")
	fmt.Println("with the branchy dispatcher — the representation transfers from")
	fmt.Println("I/O traces to program structure, as the paper anticipates.")
}
