// KPCA: reproduce the paper's Kernel PCA scatter (Fig. 6) — the Kast
// Spectrum Kernel with byte information at cut weight 2 projects the 110
// synthetic traces into a plane where categories A, B, and C+D separate.
package main

import (
	"fmt"
	"log"

	"iokast"
)

func main() {
	ds, err := iokast.GeneratePaperDataset(20170904)
	if err != nil {
		log.Fatal(err)
	}
	xs := iokast.ConvertAll(ds.Traces, iokast.ConvertOptions{})
	sim, _, err := iokast.PaperSimilarity(xs, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iokast.KernelPCA(sim, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explained variance: PC1 %.1f%%, PC2 %.1f%%\n\n",
		100*res.ExplainedVariance[0], 100*res.ExplainedVariance[1])

	// A compact text scatter: bucket PC1 into 60 columns, PC2 into 20 rows.
	const w, h = 60, 20
	minX, maxX := res.Coords.At(0, 0), res.Coords.At(0, 0)
	minY, maxY := res.Coords.At(0, 1), res.Coords.At(0, 1)
	for i := 0; i < res.Coords.Rows; i++ {
		x, y := res.Coords.At(i, 0), res.Coords.At(i, 1)
		minX, maxX = min(minX, x), max(maxX, x)
		minY, maxY = min(minY, y), max(maxY, y)
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = make([]byte, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for i := 0; i < res.Coords.Rows; i++ {
		cx := int((res.Coords.At(i, 0) - minX) / (maxX - minX) * (w - 1))
		cy := int((res.Coords.At(i, 1) - minY) / (maxY - minY) * (h - 1))
		grid[h-1-cy][cx] = ds.Labels[i][0]
	}
	for _, row := range grid {
		fmt.Printf("|%s|\n", row)
	}
	fmt.Println("\nA = Flash I/O, B = Random POSIX I/O, C = Normal I/O, D = Random Access I/O")
	fmt.Println("As in the paper's Fig. 6: A and B separate; C and D overlap in one group.")
}
