// Capture: record the access pattern of a live workload with the iofs
// recording filesystem (the role the paper's instrumented applications
// play), convert it, and classify it against the synthetic dataset. The
// workload below is a checkpoint writer, so it should classify as
// category A (Flash I/O).
package main

import (
	"fmt"
	"log"

	"iokast"
	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/iofs"
	"iokast/internal/trace"
)

// runCheckpointWorkload simulates an application dumping three HDF5-style
// checkpoint files: header records, attributes, then large data blocks.
func runCheckpointWorkload(fs *iofs.FS) error {
	for file := 0; file < 3; file++ {
		f, err := fs.Open(fmt.Sprintf("chk_%04d.h5", file), iofs.WriteOnly)
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ { // header records
			if _, err := f.Write(make([]byte, 96)); err != nil {
				return err
			}
		}
		for i := 0; i < 30; i++ { // attributes
			if _, err := f.Write(make([]byte, 8)); err != nil {
				return err
			}
		}
		for i := 0; i < 1200; i++ { // data blocks
			if _, err := f.Write(make([]byte, 32768)); err != nil {
				return err
			}
		}
		for i := 0; i < 600; i++ {
			if _, err := f.Write(make([]byte, 16384)); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	// 1. Run the workload against the recording filesystem.
	fs := iofs.New()
	fs.SetName("captured-checkpointer", "")
	if err := runCheckpointWorkload(fs); err != nil {
		log.Fatal(err)
	}
	captured := fs.Trace()
	fmt.Printf("captured %d operations over %d files\n", captured.Len(), len(fs.Paths()))

	// 2. Characterise and convert it.
	fmt.Println("\ntrace statistics:")
	fmt.Print(trace.ComputeStats(captured).String())
	s := iokast.Convert(captured, iokast.ConvertOptions{})
	fmt.Printf("\nweighted string (%d tokens):\n%s\n", len(s), s.Format())

	// 3. Classify against the synthetic reference dataset.
	ds, err := iokast.GeneratePaperDataset(20170904)
	if err != nil {
		log.Fatal(err)
	}
	refs := iokast.ConvertAll(ds.Traces, iokast.ConvertOptions{})
	clf, err := classify.New(&core.Kast{CutWeight: 2}, refs, ds.Labels, 3)
	if err != nil {
		log.Fatal(err)
	}
	label, matches, err := clf.Classify(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassified as category %s (A = Flash I/O)\n", label)
	fmt.Println("closest references:")
	for _, m := range matches[:3] {
		fmt.Printf("  %-10s %-3s similarity %.4f\n", ds.Traces[m.Index].Name, m.Label, m.Similarity)
	}
}
