// Capture: record the access pattern of a live workload with the iofs
// recording filesystem (the role the paper's instrumented applications
// play), convert it, and classify it against the synthetic dataset. The
// workload below is a checkpoint writer, so it should classify as
// category A (Flash I/O).
package main

import (
	"fmt"
	"log"

	"iokast"
	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iofs"
	"iokast/internal/stream"
	"iokast/internal/trace"
)

// runCheckpointWorkload simulates an application dumping three HDF5-style
// checkpoint files: header records, attributes, then large data blocks.
func runCheckpointWorkload(fs *iofs.FS) error {
	for file := 0; file < 3; file++ {
		f, err := fs.Open(fmt.Sprintf("chk_%04d.h5", file), iofs.WriteOnly)
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ { // header records
			if _, err := f.Write(make([]byte, 96)); err != nil {
				return err
			}
		}
		for i := 0; i < 30; i++ { // attributes
			if _, err := f.Write(make([]byte, 8)); err != nil {
				return err
			}
		}
		for i := 0; i < 1200; i++ { // data blocks
			if _, err := f.Write(make([]byte, 32768)); err != nil {
				return err
			}
		}
		for i := 0; i < 600; i++ {
			if _, err := f.Write(make([]byte, 16384)); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	// 1. Run the workload against the recording filesystem.
	fs := iofs.New()
	fs.SetName("captured-checkpointer", "")
	if err := runCheckpointWorkload(fs); err != nil {
		log.Fatal(err)
	}
	captured := fs.Trace()
	fmt.Printf("captured %d operations over %d files\n", captured.Len(), len(fs.Paths()))

	// 2. Characterise and convert it.
	fmt.Println("\ntrace statistics:")
	fmt.Print(trace.ComputeStats(captured).String())
	s := iokast.Convert(captured, iokast.ConvertOptions{})
	fmt.Printf("\nweighted string (%d tokens):\n%s\n", len(s), s.Format())

	// 3. Classify against the synthetic reference dataset.
	ds, err := iokast.GeneratePaperDataset(20170904)
	if err != nil {
		log.Fatal(err)
	}
	refs := iokast.ConvertAll(ds.Traces, iokast.ConvertOptions{})
	clf, err := classify.New(&core.Kast{CutWeight: 2}, refs, ds.Labels, 3)
	if err != nil {
		log.Fatal(err)
	}
	label, matches, err := clf.Classify(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassified as category %s (A = Flash I/O)\n", label)
	fmt.Println("closest references:")
	for _, m := range matches[:3] {
		fmt.Printf("  %-10s %-3s similarity %.4f\n", ds.Traces[m.Index].Name, m.Label, m.Similarity)
	}

	// 4. Replay the capture through the streaming path — the live form of
	// the same application: operations arrive one at a time (as POST
	// /ingest would deliver them), a sliding window is classified as the
	// workload runs, and the final whole-trace verdict matches the batch
	// answer above.
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	if _, err := eng.AddBatch(refs); err != nil {
		log.Fatal(err)
	}
	reg := classify.NewRegistry()
	assign := make(map[int]string, len(ds.Labels))
	for i, l := range ds.Labels {
		assign[i] = l
	}
	if err := reg.SetLabels(assign); err != nil {
		log.Fatal(err)
	}
	sessions := stream.NewRegistry(stream.Config{
		Window: 1024, Stride: 512,
		Classifier: classify.NewOnline(eng, reg),
	})
	sess, err := sessions.Get(captured.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstreaming the same capture live:")
	for _, op := range captured.Ops {
		res, err := sess.Feed(stream.Event{Op: op.Name, Handle: op.Handle, Bytes: op.Bytes, Addr: op.Addr, Path: op.Path}, 3, -1)
		if err != nil {
			log.Fatal(err)
		}
		if res != nil && !res.Cached {
			fmt.Printf("  after %5d ops: window looks like %s (confidence %.3f)\n", res.Ops, res.Label, res.Confidence)
		}
	}
	final, err := sess.Finish(3, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed final verdict: %s (confidence %.3f), matches batch classification: %v\n",
		final.Label, final.Confidence, final.Label == label)
}
