// Clustering: reproduce the paper's headline hierarchical-clustering
// result (Fig. 7) on the full 110-example synthetic dataset — three
// clusters {A}, {B}, {C+D} with no misplaced examples.
package main

import (
	"fmt"
	"log"

	"iokast"
)

func main() {
	ds, err := iokast.GeneratePaperDataset(20170904)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d traces (A:%d B:%d C:%d D:%d)\n",
		ds.Len(), ds.CountLabel("A"), ds.CountLabel("B"), ds.CountLabel("C"), ds.CountLabel("D"))

	xs := iokast.ConvertAll(ds.Traces, iokast.ConvertOptions{})
	sim, clipped, err := iokast.PaperSimilarity(xs, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("similarity matrix built (cut weight 2, %d negative eigenvalues clipped)\n\n", clipped)

	dg, err := iokast.HCluster(sim, iokast.SingleLinkage)
	if err != nil {
		log.Fatal(err)
	}
	assign := dg.Cut(3)

	sizes := map[int]map[string]int{}
	for i, c := range assign {
		if sizes[c] == nil {
			sizes[c] = map[string]int{}
		}
		sizes[c][ds.Labels[i]]++
	}
	fmt.Println("three-cluster cut:")
	for c := 0; c < 3; c++ {
		fmt.Printf("  cluster %d: %v\n", c+1, sizes[c])
	}

	purity, err := iokast.Purity(assign, ds.Labels)
	if err != nil {
		log.Fatal(err)
	}
	ari, err := iokast.AdjustedRandIndex(assign, ds.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npurity %.4f (C and D share one cluster by design, as in the paper)\n", purity)
	fmt.Printf("ARI vs raw labels %.4f; natural cluster count %d\n", ari, dg.NaturalK(6))
}
