// Quickstart: convert two small I/O traces to weighted strings and compare
// them with the Kast Spectrum Kernel — the library's minimal end-to-end
// flow (paper §3).
package main

import (
	"fmt"
	"log"

	"iokast"
)

const sequentialWriter = `
% name="sequential-writer"
open fh=1 path="out.dat"
write fh=1 bytes=4096
write fh=1 bytes=4096
write fh=1 bytes=4096
write fh=1 bytes=4096
close fh=1
`

const checkpointer = `
% name="checkpointer"
open fh=1 path="chk.dat"
write fh=1 bytes=4096
write fh=1 bytes=4096
write fh=1 bytes=4096
close fh=1
open fh=2 path="chk.meta"
write fh=2 bytes=64
close fh=2
`

const randomReader = `
% name="random-reader"
open fh=1 path="in.dat"
lseek fh=1
read fh=1 bytes=8192
lseek fh=1
read fh=1 bytes=8192
lseek fh=1
read fh=1 bytes=8192
close fh=1
`

func main() {
	var strings []iokast.WeightedString
	var names []string
	for _, text := range []string{sequentialWriter, checkpointer, randomReader} {
		tr, err := iokast.ParseTraceString(text)
		if err != nil {
			log.Fatal(err)
		}
		s := iokast.Convert(tr, iokast.ConvertOptions{})
		fmt.Printf("%-18s -> %s\n", tr.Name, s.Format())
		strings = append(strings, s)
		names = append(names, tr.Name)
	}

	fmt.Println("\npairwise Kast similarity (cut weight 2, cosine-normalised):")
	k := iokast.CosineNormalized(iokast.NewKast(2))
	for i := range strings {
		for j := i + 1; j < len(strings); j++ {
			fmt.Printf("  %-18s vs %-18s = %.4f\n", names[i], names[j], k.Compare(strings[i], strings[j]))
		}
	}
	fmt.Println("\nThe two writers share their write pattern and score high; the")
	fmt.Println("seek-driven reader shares only the structural skeleton and scores low.")
}
