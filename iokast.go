// Package iokast is the public API of the iokast library, a from-scratch
// reproduction of "A Novel String Representation and Kernel Function for
// the Comparison of I/O Access Patterns" (Torres, Kunkel, Dolz, Ludwig —
// PaCT 2017).
//
// The library turns plain-text I/O traces into weighted token strings via a
// four-level pattern tree with pattern compression (§3.1 of the paper),
// compares the strings with the Kast Spectrum Kernel (§3.2) or baseline
// string kernels, and analyses the resulting similarity matrices with
// Kernel PCA and hierarchical clustering (§4).
//
// Quick start:
//
//	tr, _ := iokast.ParseTraceString("open fh=1\nwrite fh=1 bytes=8\nclose fh=1")
//	s := iokast.Convert(tr, iokast.ConvertOptions{})
//	k := iokast.NewKast(2)
//	similarity := iokast.CosineNormalized(k).Compare(s, other)
//
// See examples/ for end-to-end programs and internal/experiments for the
// paper's full evaluation.
package iokast

import (
	"fmt"
	"io"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/kpca"
	"iokast/internal/linalg"
	"iokast/internal/shard"
	"iokast/internal/store"
	"iokast/internal/token"
	"iokast/internal/trace"
)

// Core data types, re-exported from the implementation packages.
type (
	// Trace is a chronological I/O access pattern.
	Trace = trace.Trace
	// Op is one I/O operation in a trace.
	Op = trace.Op
	// Token is a weighted token of the string representation.
	Token = token.Token
	// WeightedString is the paper's string representation.
	WeightedString = token.String
	// ConvertOptions configure trace-to-string conversion (§3.1).
	ConvertOptions = core.Options
	// Kernel is a similarity function over weighted strings.
	Kernel = kernel.Kernel
	// KastKernel is the paper's Kast Spectrum Kernel (§3.2).
	KastKernel = core.Kast
	// BlendedKernel is the Blended Spectrum baseline.
	BlendedKernel = kernel.Blended
	// SpectrumKernel is the k-Spectrum baseline.
	SpectrumKernel = kernel.Spectrum
	// Matrix is a dense matrix (kernel/Gram/distance matrices, KPCA
	// coordinates).
	Matrix = linalg.Matrix
	// Dendrogram is a hierarchical-clustering merge tree.
	Dendrogram = cluster.Dendrogram
	// KPCAResult holds Kernel PCA projections.
	KPCAResult = kpca.Result
	// Dataset is a labelled trace collection.
	Dataset = iogen.Dataset
	// Engine is an incremental Gram engine: a stateful corpus whose kernel
	// matrix is maintained under single-trace Add/Remove, paying O(N)
	// kernel evaluations per insertion instead of a full O(N^2) recompute.
	// It also maintains a fixed-width sketch per entry (internal/sketch),
	// so Engine.SimilarApprox and Engine.SimilarTrace answer similarity
	// queries from an O(N*dim) index scan plus an exact rerank of a small
	// shortlist — including query-by-trace for strings never ingested.
	Engine = engine.Engine
	// EngineOptions configure NewEngine.
	EngineOptions = engine.Options
	// Neighbor is one result of an Engine top-k similarity query.
	Neighbor = engine.Neighbor
	// Store is the durability sidecar of an Engine: a CRC-checked
	// write-ahead log plus periodic atomic snapshots in a data directory.
	Store = store.Store
	// StoreOptions configure OpenEngine's persistence (snapshot cadence,
	// fsync policy).
	StoreOptions = store.Options
	// StoreStats is a point-in-time view of a Store.
	StoreStats = store.Stats
	// Sharded is a hash-routed multi-shard corpus: N independent
	// Engine+Store pairs behind one id space, with mutations routed to a
	// single shard and similarity queries fanned out to all shards in
	// parallel and merged exactly (bit-identical to a single engine over
	// the same corpus).
	Sharded = shard.Sharded
	// ShardedOptions configure NewSharded / OpenSharded.
	ShardedOptions = shard.Options
)

// Linkage strategies for hierarchical clustering.
const (
	SingleLinkage   = cluster.Single
	CompleteLinkage = cluster.Complete
	AverageLinkage  = cluster.Average
)

// ParseTrace reads a trace in the canonical text format (one operation per
// line; see internal/trace).
func ParseTrace(r io.Reader) (*Trace, error) { return trace.Parse(r) }

// ParseTraceString is ParseTrace over a string.
func ParseTraceString(s string) (*Trace, error) { return trace.ParseString(s) }

// ParseStrace reads a minimal strace-style call log.
func ParseStrace(r io.Reader) (*Trace, error) { return trace.ParseStrace(r) }

// FormatTrace writes a trace in the canonical text format.
func FormatTrace(w io.Writer, t *Trace) error { return trace.Format(w, t) }

// Convert runs the full §3.1 pipeline: negligible-operation filtering,
// optional byte erasure, pattern-tree building, compression, and
// flattening into a weighted string.
func Convert(t *Trace, opt ConvertOptions) WeightedString { return core.Convert(t, opt) }

// ConvertAll converts a slice of traces with shared options.
func ConvertAll(ts []*Trace, opt ConvertOptions) []WeightedString {
	return core.ConvertAll(ts, opt)
}

// ParseWeightedString reads the textual weighted-string form produced by
// WeightedString.Format ("literal:weight" tokens).
func ParseWeightedString(s string) (WeightedString, error) { return token.Parse(s) }

// NewKast returns a Kast Spectrum Kernel with the given cut weight.
func NewKast(cutWeight int) *KastKernel { return &core.Kast{CutWeight: cutWeight} }

// CosineNormalized wraps any kernel with cosine normalisation
// k/sqrt(k(a,a)k(b,b)).
func CosineNormalized(k Kernel) Kernel { return kernel.Normalized{K: k} }

// PaperNormalized wraps a Kast kernel with the paper's Eq. 12
// normalisation (division by the product of the strings' >=cut token
// weights).
func PaperNormalized(k *KastKernel) Kernel { return core.PaperNormalized{K: k} }

// Gram computes the kernel matrix over the examples (parallelised).
func Gram(k Kernel, xs []WeightedString) *Matrix { return kernel.Gram(k, xs) }

// NewEngine returns an empty incremental Gram engine. A nil Kernel in the
// options means the paper's default, NewKast(2). Engine.Add of each string
// computes only the new row/column of the Gram matrix, reusing cached
// per-string representations, and Engine.Gram / Engine.NormalizedGram
// return snapshots matching what the batch pipeline (Gram, PaperSimilarity)
// would compute over the same corpus.
func NewEngine(opt EngineOptions) *Engine { return engine.New(opt) }

// OpenEngine recovers (or initialises) a durable engine from dir: the
// newest readable snapshot is restored, log records after it are replayed,
// and the returned engine persists every further mutation to the store's
// write-ahead log. After a crash or kill, reopening the same directory
// yields a bit-identical Gram matrix — no client re-ingestion needed.
// Close the store to checkpoint and detach; the engine stays usable in
// memory afterwards.
func OpenEngine(dir string, eopt EngineOptions, sopt StoreOptions) (*Engine, *Store, error) {
	eopt.Log = nil // the store attaches itself after replay
	return store.Open(dir, func() *engine.Engine { return engine.New(eopt) }, sopt)
}

// NewSharded returns an in-memory sharded corpus: Options.Shards
// independent engines behind one global id space. Mutations touch only the
// shard their id hashes to; Similar, SimilarApprox and SimilarTrace fan out
// to every shard in parallel and merge the per-shard top-k exactly, so
// results are bit-identical to a single engine over the same corpus.
func NewSharded(opt ShardedOptions) (*Sharded, error) { return shard.New(opt) }

// OpenSharded recovers (or initialises) a durable sharded corpus from dir:
// a CRC-guarded MANIFEST pins the shard count, routing seed, and
// kernel/sketch configuration, and each shard owns its own WAL and snapshot
// chain in a subdirectory, recovered concurrently. A manifest that
// disagrees with opt is refused. Close the corpus to checkpoint every
// shard.
func OpenSharded(dir string, opt ShardedOptions) (*Sharded, error) { return shard.Open(dir, opt) }

// PaperSimilarity runs the paper's full §4.1 post-processing for the Kast
// kernel: raw Gram, Eq. 12 normalisation, and PSD repair (negative
// eigenvalues clipped to zero, matrix rebuilt). It returns the repaired
// similarity matrix and the number of clipped eigenvalues.
func PaperSimilarity(xs []WeightedString, cutWeight int) (*Matrix, int, error) {
	raw := kernel.Gram(&core.Kast{CutWeight: cutWeight}, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, cutWeight)
	if err != nil {
		return nil, 0, err
	}
	return kernel.PSDRepair(norm)
}

// CosineSimilarity computes a cosine-normalised, PSD-repaired similarity
// matrix for any kernel — the post-processing used for the baseline
// kernels in the evaluation.
func CosineSimilarity(k Kernel, xs []WeightedString) (*Matrix, int, error) {
	return kernel.PSDRepair(kernel.NormalizeCosine(kernel.Gram(k, xs)))
}

// KernelPCA projects a similarity matrix onto its top principal components
// (feature-space centring included).
func KernelPCA(similarity *Matrix, components int) (*KPCAResult, error) {
	return kpca.Analyze(similarity, kpca.Options{Components: components})
}

// HCluster converts a similarity matrix into the kernel-induced distance
// d = sqrt(k_ii + k_jj - 2k_ij) and runs agglomerative clustering.
func HCluster(similarity *Matrix, linkage cluster.Linkage) (*Dendrogram, error) {
	return cluster.Cluster(kernel.KernelDistance(similarity), linkage)
}

// Purity scores a flat clustering against ground-truth labels.
func Purity(assignments []int, labels []string) (float64, error) {
	return cluster.Purity(assignments, labels)
}

// AdjustedRandIndex scores a flat clustering against ground-truth labels.
func AdjustedRandIndex(assignments []int, labels []string) (float64, error) {
	return cluster.AdjustedRandIndex(assignments, labels)
}

// GeneratePaperDataset builds the 110-example synthetic dataset standing in
// for the paper's IOR/FLASH traces: categories A (Flash I/O, 50), B
// (Random POSIX I/O, 20), C (Normal I/O, 20), D (Random Access I/O, 20),
// deterministically from the seed.
func GeneratePaperDataset(seed uint64) (*Dataset, error) {
	return iogen.Build(iogen.PaperOptions(seed))
}

// GenerateTrace builds one synthetic trace of the given category ("A", "B",
// "C", or "D") deterministically from the seed.
func GenerateTrace(category string, seed uint64) (*Trace, error) {
	cat := iogen.Category(category)
	for _, c := range iogen.Categories {
		if c == cat {
			return iogen.Generate(cat, newRand(seed))
		}
	}
	return nil, fmt.Errorf("iokast: unknown category %q (want A, B, C or D)", category)
}
