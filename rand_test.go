package iokast

import (
	"testing"

	"iokast/internal/xrand"
)

// TestNewRandMatchesXrand: the façade's RNG is the project RNG, stream
// for stream — callers seeding through the public surface get the same
// reproducibility contract the internal packages pin.
func TestNewRandMatchesXrand(t *testing.T) {
	a, b := newRand(20240817), xrand.New(20240817)
	for i := 0; i < 100; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream %d: newRand %#x != xrand %#x", i, got, want)
		}
	}
}

// TestNewRandSeedSensitive: different seeds diverge immediately.
func TestNewRandSeedSensitive(t *testing.T) {
	if newRand(1).Uint64() == newRand(2).Uint64() {
		t.Fatal("seeds 1 and 2 produced identical first outputs")
	}
}
