module iokast

go 1.21
