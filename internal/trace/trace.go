// Package trace models plain-text I/O access patterns: chronological lists
// of I/O operations, each carrying an operation name, a file handle, and an
// optional byte count and memory address.
//
// This is the representation described in §3.1 of Torres et al. (PaCT 2017):
// "The I/O access pattern files are plain text files where each line
// corresponds to an operation." Operations are registered chronologically;
// several file handles may be interleaved.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a single I/O operation from a trace.
type Op struct {
	// Name is the operation name, e.g. "open", "read", "write", "lseek",
	// "close". Names are case-sensitive and compared verbatim.
	Name string
	// Handle identifies the file handle (descriptor) the operation acts on.
	Handle int
	// Bytes is the number of bytes involved in the operation, or 0 when the
	// operation has no byte count (open, close, lseek, ...).
	Bytes int64
	// Addr is the memory address associated with data operations, or 0. The
	// paper ignores addresses entirely (§3.1: "the memory addresses are
	// ignored completely"); they are retained here only so traces round-trip
	// through the text format.
	Addr uint64
	// Path is the file path associated with open operations, if known.
	Path string
}

// IsOpen reports whether the operation opens its handle.
func (o Op) IsOpen() bool { return o.Name == "open" }

// IsClose reports whether the operation closes its handle.
func (o Op) IsClose() bool { return o.Name == "close" }

// String renders the op in the canonical one-line text format.
func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Name)
	fmt.Fprintf(&b, " fh=%d", o.Handle)
	if o.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", o.Bytes)
	}
	if o.Addr != 0 {
		fmt.Fprintf(&b, " addr=0x%x", o.Addr)
	}
	if o.Path != "" {
		fmt.Fprintf(&b, " path=%q", o.Path)
	}
	return b.String()
}

// Trace is a chronological I/O access pattern.
type Trace struct {
	// Name is an optional identifier (file name, benchmark run id, ...).
	Name string
	// Label is an optional ground-truth category used by the evaluation
	// harness (e.g. "A" for Flash I/O). It is not part of the on-disk format
	// header unless set.
	Label string
	// Ops are the operations in chronological order.
	Ops []Op
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, Label: t.Label, Ops: make([]Op, len(t.Ops))}
	copy(c.Ops, t.Ops)
	return c
}

// Append adds an operation.
func (t *Trace) Append(op Op) { t.Ops = append(t.Ops, op) }

// Len returns the number of operations.
func (t *Trace) Len() int { return len(t.Ops) }

// Handles returns the distinct handles in order of first appearance.
func (t *Trace) Handles() []int {
	seen := map[int]bool{}
	var hs []int
	for _, op := range t.Ops {
		if !seen[op.Handle] {
			seen[op.Handle] = true
			hs = append(hs, op.Handle)
		}
	}
	return hs
}

// OpNames returns the distinct operation names, sorted.
func (t *Trace) OpNames() []string {
	seen := map[string]bool{}
	for _, op := range t.Ops {
		seen[op.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the sum of byte counts over all operations.
func (t *Trace) TotalBytes() int64 {
	var sum int64
	for _, op := range t.Ops {
		sum += op.Bytes
	}
	return sum
}

// CountByName returns how many operations have the given name.
func (t *Trace) CountByName(name string) int {
	n := 0
	for _, op := range t.Ops {
		if op.Name == name {
			n++
		}
	}
	return n
}

// ZeroBytes returns a copy of the trace with every byte count set to zero.
// This implements the paper's byte-ignoring string variant ("ignoring is
// made by assuming all byte values are zero"), applied before tree building
// so that the compression rules operate on zeroed byte counts.
func (t *Trace) ZeroBytes() *Trace {
	c := t.Clone()
	for i := range c.Ops {
		c.Ops[i].Bytes = 0
	}
	return c
}

// Validate checks structural sanity: every close has a preceding open on the
// same handle that has not already been closed, and handles are non-negative.
// Traces violating this are still convertible (the tree builder tolerates
// them), but generators and parsers use Validate in tests.
func (t *Trace) Validate() error {
	open := map[int]bool{}
	for i, op := range t.Ops {
		if op.Handle < 0 {
			return fmt.Errorf("trace %q: op %d (%s): negative handle %d", t.Name, i, op.Name, op.Handle)
		}
		switch {
		case op.IsOpen():
			if open[op.Handle] {
				return fmt.Errorf("trace %q: op %d: handle %d opened twice without close", t.Name, i, op.Handle)
			}
			open[op.Handle] = true
		case op.IsClose():
			if !open[op.Handle] {
				return fmt.Errorf("trace %q: op %d: close of handle %d that is not open", t.Name, i, op.Handle)
			}
			open[op.Handle] = false
		}
	}
	return nil
}
