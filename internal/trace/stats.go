package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarises an access pattern along the characterisation axes the
// paper lists in §2.1: "access granularity, randomness, concurrency, load
// balance, access type and predictability", plus Liu et al.'s burstiness.
// These are diagnostic features for humans and tools; the kernel pipeline
// itself never consumes them.
type Stats struct {
	Ops         int     // total operations
	Reads       int     // read-like operation count
	Writes      int     // write-like operation count
	Seeks       int     // lseek count
	Opens       int     // open count
	BytesRead   int64   // total read volume
	BytesWrite  int64   // total written volume
	Granularity float64 // mean bytes per data operation
	Randomness  float64 // seeks / data operations (0 = sequential)
	Concurrency int     // maximum simultaneously open handles
	LoadBalance float64 // 0..1; 1 = operations spread evenly over handles
	ReadRatio   float64 // reads / (reads + writes)
	Burstiness  float64 // mean run length of identical consecutive ops
}

// ComputeStats derives the summary from a trace.
func ComputeStats(t *Trace) Stats {
	var s Stats
	s.Ops = t.Len()

	perHandle := map[int]int{}
	openNow := 0
	var runLen, runCount int
	var prev Op
	first := true

	for _, op := range t.Ops {
		perHandle[op.Handle]++
		switch {
		case op.IsOpen():
			s.Opens++
			openNow++
			if openNow > s.Concurrency {
				s.Concurrency = openNow
			}
		case op.IsClose():
			if openNow > 0 {
				openNow--
			}
		case op.Name == "lseek":
			s.Seeks++
		case isReadLike(op.Name):
			s.Reads++
			s.BytesRead += op.Bytes
		case isWriteLike(op.Name):
			s.Writes++
			s.BytesWrite += op.Bytes
		}
		if first || prev.Name != op.Name || prev.Bytes != op.Bytes || prev.Handle != op.Handle {
			runCount++
			runLen = 1
		} else {
			runLen++
		}
		_ = runLen
		prev, first = op, false
	}

	dataOps := s.Reads + s.Writes
	if dataOps > 0 {
		s.Granularity = float64(s.BytesRead+s.BytesWrite) / float64(dataOps)
		s.Randomness = float64(s.Seeks) / float64(dataOps)
		s.ReadRatio = float64(s.Reads) / float64(dataOps)
	}
	if runCount > 0 {
		s.Burstiness = float64(s.Ops) / float64(runCount)
	}
	s.LoadBalance = loadBalance(perHandle)
	return s
}

// loadBalance is 1 - normalised Shannon imbalance: 1 when every handle
// carries the same operation count, approaching 0 as one handle dominates.
func loadBalance(perHandle map[int]int) float64 {
	if len(perHandle) <= 1 {
		return 1
	}
	total := 0
	for _, c := range perHandle {
		total += c
	}
	if total == 0 {
		return 1
	}
	var entropy float64
	for _, c := range perHandle {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		entropy -= p * math.Log(p)
	}
	return entropy / math.Log(float64(len(perHandle)))
}

func isReadLike(name string) bool {
	return strings.Contains(name, "read") || name == "recv" || name == "fscanf"
}

func isWriteLike(name string) bool {
	return strings.Contains(name, "write") || name == "send" || name == "fprintf"
}

// String renders the stats as a compact one-per-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops:          %d\n", s.Ops)
	fmt.Fprintf(&b, "reads/writes: %d/%d (read ratio %.2f)\n", s.Reads, s.Writes, s.ReadRatio)
	fmt.Fprintf(&b, "seeks:        %d (randomness %.3f)\n", s.Seeks, s.Randomness)
	fmt.Fprintf(&b, "volume:       %dB read, %dB written\n", s.BytesRead, s.BytesWrite)
	fmt.Fprintf(&b, "granularity:  %.1fB/op\n", s.Granularity)
	fmt.Fprintf(&b, "concurrency:  %d handles\n", s.Concurrency)
	fmt.Fprintf(&b, "load balance: %.3f\n", s.LoadBalance)
	fmt.Fprintf(&b, "burstiness:   %.2f ops/run\n", s.Burstiness)
	return b.String()
}

// ByteHistogram counts data operations per (operation name, byte count)
// pair, sorted by descending count then key — a quick vocabulary view of a
// trace.
func ByteHistogram(t *Trace) []HistogramEntry {
	counts := map[string]*HistogramEntry{}
	for _, op := range t.Ops {
		if op.IsOpen() || op.IsClose() {
			continue
		}
		key := fmt.Sprintf("%s[%d]", op.Name, op.Bytes)
		e, ok := counts[key]
		if !ok {
			e = &HistogramEntry{Key: key}
			counts[key] = e
		}
		e.Count++
		e.Bytes += op.Bytes
	}
	out := make([]HistogramEntry, 0, len(counts))
	for _, e := range counts {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// HistogramEntry is one row of ByteHistogram.
type HistogramEntry struct {
	Key   string // "name[bytes]"
	Count int    // occurrences
	Bytes int64  // total volume
}
