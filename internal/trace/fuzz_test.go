package trace

import (
	"strings"
	"testing"
)

// FuzzParse checks that the canonical parser never panics and that
// anything it accepts survives a format/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("open fh=1\nwrite fh=1 bytes=8\nclose fh=1\n")
	f.Add("% name=\"x\" label=\"A\"\nread fh=3 bytes=10 addr=0xff\n")
	f.Add("# comment only\n")
	f.Add("read fh=1 bytes=99999999999\n")
	f.Add("open fh=0 path=\"with space\"\n")
	f.Add("write fh=1\tbytes=2")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseString(input)
		if err != nil {
			return
		}
		text := FormatString(tr)
		again, err := ParseString(text)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\nformatted: %q", err, text)
		}
		if len(again.Ops) != len(tr.Ops) {
			t.Fatalf("round trip changed op count %d -> %d", len(tr.Ops), len(again.Ops))
		}
		for i := range tr.Ops {
			if again.Ops[i] != tr.Ops[i] {
				t.Fatalf("round trip changed op %d: %+v -> %+v", i, tr.Ops[i], again.Ops[i])
			}
		}
	})
}

// FuzzParseStrace checks the strace adapter never panics and always
// produces traces the rest of the pipeline can digest.
func FuzzParseStrace(f *testing.F) {
	f.Add(`open("x", O_RDONLY) = 3`)
	f.Add(`read(3, "...", 4096) = 4096`)
	f.Add(`1234 write(5, "abc", 3) = 3`)
	f.Add(`--- SIGCHLD ---`)
	f.Add(`close(3) = 0`)
	f.Add(`weird((nested(parens)), "quo\"te") = -1`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseStrace(strings.NewReader(input))
		if err != nil || tr == nil {
			return
		}
		for _, op := range tr.Ops {
			if op.Name == "" {
				t.Fatalf("strace produced unnamed op from %q", input)
			}
			if op.Bytes < 0 {
				t.Fatalf("strace produced negative byte count from %q", input)
			}
		}
	})
}
