package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseStrace reads a minimal strace/ltrace-style call log and converts it
// to a Trace. This adapter exists so that real captures can be fed to the
// pipeline without preprocessing. The recognised shapes are:
//
//	open("file.dat", O_RDONLY) = 3
//	read(3, ..., 4096) = 4096
//	write(3, ..., 1024) = 1024
//	lseek(3, 8192, SEEK_SET) = 8192
//	close(3) = 0
//
// Decorations real captures carry are stripped before parsing:
//
//	1234  read(3, ...) = 4096              (bare PID column, strace -f)
//	[pid 1234] read(3, ...) = 4096         (alternate PID column)
//	12:34:56 read(3, ...) = 4096           (strace -t)
//	12:34:56.789012 read(3, ...) = 4096    (strace -tt)
//	1628773289.123456 read(3, ...) = 4096  (strace -ttt)
//	read(3, ...) = 4096 <0.000042>         (strace -T duration suffix)
//
// Calls split by a context switch are re-paired per PID and emitted once,
// as the completed call:
//
//	read(3, " <unfinished ...>
//	<... read resumed> ", 4096) = 4096
//
// Rules:
//   - The operation name is the identifier before '('.
//   - open: the handle is the return value (after '='); the first quoted
//     argument, if any, becomes the path.
//   - close and other calls: the handle is the first argument.
//   - read/write/pread/pwrite and friends: the byte count is the return
//     value when non-negative, else the last integer argument.
//   - Lines that do not look like calls (signals, exits) are skipped.
//   - An unfinished call whose resumption never arrives is dropped at EOF.
func ParseStrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	p := NewLineParser()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		op, ok, err := p.Line(sc.Text())
		if err != nil {
			return nil, &ParseError{lineno, err.Error()}
		}
		if ok {
			t.Ops = append(t.Ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

// LineParser parses strace output one line at a time, carrying the state
// that spans lines: calls interrupted by a context switch are printed as
// an `<unfinished ...>` half and a `<... name resumed>` half, possibly far
// apart and interleaved across PIDs, so the parser stashes the unfinished
// fragment per PID and emits the completed call when its resumption
// arrives. This is the streaming core behind ParseStrace and the
// per-session assembly in internal/stream.
//
// A LineParser is not safe for concurrent use; each capture stream needs
// its own.
type LineParser struct {
	// pending maps a PID to the stashed head of its unfinished call (the
	// text before the `<unfinished ...>` marker). Lines without any PID
	// column share the key 0, matching strace output for a single process.
	pending map[int]string
}

// NewLineParser returns an empty LineParser.
func NewLineParser() *LineParser {
	return &LineParser{pending: make(map[int]string)}
}

// Pending reports how many unfinished calls are stashed awaiting their
// resumption.
func (p *LineParser) Pending() int { return len(p.pending) }

// Line consumes one raw capture line and returns the completed operation,
// if the line (possibly joined with a stashed unfinished fragment)
// completes one. Non-call lines (signals, exits, noise) return ok = false.
func (p *LineParser) Line(line string) (Op, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Op{}, false, nil
	}
	pid, line := stripColumns(line)
	line = stripDuration(line)

	// First half of a split call: stash the fragment and wait for the
	// resumption. The marker may or may not be preceded by a space.
	if i := strings.Index(line, "<unfinished ...>"); i >= 0 {
		frag := strings.TrimRight(line[:i], " \t")
		if frag != "" {
			p.pending[pid] = frag
		}
		return Op{}, false, nil
	}
	// Second half: `<... name resumed> rest-of-args-and-return`.
	if rest, ok := strings.CutPrefix(line, "<..."); ok {
		rest = strings.TrimSpace(rest)
		j := strings.Index(rest, "resumed>")
		if j < 0 {
			return Op{}, false, nil // not a resumption after all
		}
		frag, ok := p.pending[pid]
		if !ok {
			// The unfinished half predates this capture (or was itself
			// dropped): nothing to complete.
			return Op{}, false, nil
		}
		delete(p.pending, pid)
		line = frag + " " + strings.TrimSpace(rest[j+len("resumed>"):])
	}
	return parseStraceLine(line)
}

func parseStraceLine(line string) (Op, bool, error) {
	lp := strings.IndexByte(line, '(')
	if lp <= 0 {
		return Op{}, false, nil // not a call line
	}
	name := line[:lp]
	if !isIdent(name) {
		return Op{}, false, nil
	}
	rp := matchingParen(line, lp)
	if rp < 0 {
		return Op{}, false, nil // truncated call
	}
	argstr := line[lp+1 : rp]
	retstr := ""
	if eq := strings.Index(line[rp:], "="); eq >= 0 {
		retstr = strings.TrimSpace(line[rp+eq+1:])
		if sp := strings.IndexAny(retstr, " \t"); sp >= 0 {
			retstr = retstr[:sp]
		}
	}
	args := splitArgs(argstr)
	op := Op{Name: name}
	ret, retOK := parseInt(retstr)

	switch name {
	case "open", "openat", "creat", "fopen":
		if !retOK || ret < 0 {
			return Op{}, false, nil // failed open: no handle to track
		}
		op.Name = "open"
		op.Handle = int(ret)
		for _, a := range args {
			if len(a) >= 2 && a[0] == '"' {
				if p, err := unquote(a); err == nil {
					op.Path = p
				}
				break
			}
		}
		return op, true, nil
	default:
		if len(args) == 0 {
			return Op{}, false, nil
		}
		h, ok := parseInt(args[0])
		if !ok {
			return Op{}, false, nil
		}
		op.Handle = int(h)
		if isDataOp(name) {
			switch {
			case retOK && ret >= 0:
				op.Bytes = ret
			default:
				// Fall back to the last integer argument (the count).
				for i := len(args) - 1; i >= 1; i-- {
					if v, ok := parseInt(args[i]); ok && v >= 0 {
						op.Bytes = v
						break
					}
				}
			}
		}
		return op, true, nil
	}
}

// stripColumns removes the leading decoration columns strace prepends —
// a PID in either form and/or a timestamp in any of the -t/-tt/-ttt
// shapes — and returns the PID (0 when the line carries none) with the
// undecorated remainder. Columns may appear in combination
// ("1234 12:34:56.789012 read(...)"), so stripping loops until the next
// token is not a recognised column.
func stripColumns(line string) (pid int, rest string) {
	rest = line
	for {
		if after, ok := strings.CutPrefix(rest, "[pid"); ok {
			if i := strings.IndexByte(after, ']'); i >= 0 {
				if v, err := strconv.Atoi(strings.TrimSpace(after[:i])); err == nil {
					pid = v
				}
				rest = strings.TrimLeft(after[i+1:], " \t")
				continue
			}
			return pid, rest
		}
		tok := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			tok = rest[:i]
		} else {
			// A column is always followed by more line; a bare token is
			// the call itself (or noise), never a column.
			return pid, rest
		}
		switch {
		case tok != "" && isDigits(tok):
			// Bare PID column (strace -f without the [pid] decoration).
			if v, err := strconv.Atoi(tok); err == nil {
				pid = v
			}
		case isTimestamp(tok):
			// -t/-tt wall-clock or -ttt epoch-seconds column.
		default:
			return pid, rest
		}
		rest = strings.TrimLeft(rest[len(tok):], " \t")
	}
}

// isDigits reports whether s is entirely ASCII digits.
func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// isTimestamp recognises the strace time columns: HH:MM:SS, HH:MM:SS.ffff
// (-t/-tt) and epoch seconds with a fractional part (-ttt). The token must
// contain only digits plus ':' or '.' separators and at least one
// separator (a separator-free digit run is a PID, not a time).
func isTimestamp(s string) bool {
	if s == "" {
		return false
	}
	seps := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
		case c == ':' || c == '.':
			// Separators are always between digits.
			if i == 0 || i == len(s)-1 {
				return false
			}
			seps++
		default:
			return false
		}
	}
	return seps > 0
}

// stripDuration removes a trailing `<0.000042>` syscall-duration suffix
// (strace -T). Only a suffix whose content parses as a number is cut, so
// the `<unfinished ...>` marker survives.
func stripDuration(line string) string {
	if !strings.HasSuffix(line, ">") {
		return line
	}
	i := strings.LastIndexByte(line, '<')
	if i < 0 {
		return line
	}
	if _, err := strconv.ParseFloat(line[i+1:len(line)-1], 64); err != nil {
		return line
	}
	return strings.TrimRight(line[:i], " \t")
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

func isDataOp(name string) bool {
	switch name {
	case "read", "write", "pread", "pwrite", "pread64", "pwrite64",
		"readv", "writev", "fread", "fwrite", "recv", "send":
		return true
	}
	return false
}

func matchingParen(s string, lp int) int {
	depth := 0
	inQuote := false
	for i := lp; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func splitArgs(s string) []string {
	var args []string
	var cur strings.Builder
	depth := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				cur.WriteByte(s[i])
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
			cur.WriteByte(c)
		case c == '(' || c == '[' || c == '{':
			depth++
			cur.WriteByte(c)
		case c == ')' || c == ']' || c == '}':
			depth--
			cur.WriteByte(c)
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		args = append(args, t)
	}
	return args
}

func parseInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
