package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseStrace reads a minimal strace/ltrace-style call log and converts it
// to a Trace. This adapter exists so that real captures can be fed to the
// pipeline without preprocessing. The recognised shapes are:
//
//	open("file.dat", O_RDONLY) = 3
//	read(3, ..., 4096) = 4096
//	write(3, ..., 1024) = 1024
//	lseek(3, 8192, SEEK_SET) = 8192
//	close(3) = 0
//
// Rules:
//   - The operation name is the identifier before '('.
//   - open: the handle is the return value (after '='); the first quoted
//     argument, if any, becomes the path.
//   - close and other calls: the handle is the first argument.
//   - read/write/pread/pwrite and friends: the byte count is the return
//     value when non-negative, else the last integer argument.
//   - Lines that do not look like calls (signals, exits, unfinished
//     continuations) are skipped.
func ParseStrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, ok, err := parseStraceLine(line)
		if err != nil {
			return nil, &ParseError{lineno, err.Error()}
		}
		if ok {
			t.Ops = append(t.Ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

func parseStraceLine(line string) (Op, bool, error) {
	// Strip a leading PID column ("1234  read(...)" or "[pid 1234] ...").
	line = strings.TrimSpace(strings.TrimPrefix(line, stripPID(line)))
	lp := strings.IndexByte(line, '(')
	if lp <= 0 {
		return Op{}, false, nil // not a call line
	}
	name := line[:lp]
	if !isIdent(name) {
		return Op{}, false, nil
	}
	rp := matchingParen(line, lp)
	if rp < 0 {
		return Op{}, false, nil // unfinished call
	}
	argstr := line[lp+1 : rp]
	retstr := ""
	if eq := strings.Index(line[rp:], "="); eq >= 0 {
		retstr = strings.TrimSpace(line[rp+eq+1:])
		if sp := strings.IndexAny(retstr, " \t"); sp >= 0 {
			retstr = retstr[:sp]
		}
	}
	args := splitArgs(argstr)
	op := Op{Name: name}
	ret, retOK := parseInt(retstr)

	switch name {
	case "open", "openat", "creat", "fopen":
		if !retOK || ret < 0 {
			return Op{}, false, nil // failed open: no handle to track
		}
		op.Name = "open"
		op.Handle = int(ret)
		for _, a := range args {
			if len(a) >= 2 && a[0] == '"' {
				if p, err := unquote(a); err == nil {
					op.Path = p
				}
				break
			}
		}
		return op, true, nil
	default:
		if len(args) == 0 {
			return Op{}, false, nil
		}
		h, ok := parseInt(args[0])
		if !ok {
			return Op{}, false, nil
		}
		op.Handle = int(h)
		if isDataOp(name) {
			switch {
			case retOK && ret >= 0:
				op.Bytes = ret
			default:
				// Fall back to the last integer argument (the count).
				for i := len(args) - 1; i >= 1; i-- {
					if v, ok := parseInt(args[i]); ok && v >= 0 {
						op.Bytes = v
						break
					}
				}
			}
		}
		return op, true, nil
	}
}

func stripPID(line string) string {
	if strings.HasPrefix(line, "[pid") {
		if i := strings.IndexByte(line, ']'); i >= 0 {
			return line[:i+1]
		}
	}
	i := 0
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	if i > 0 && i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		return line[:i]
	}
	return ""
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

func isDataOp(name string) bool {
	switch name {
	case "read", "write", "pread", "pwrite", "pread64", "pwrite64",
		"readv", "writev", "fread", "fwrite", "recv", "send":
		return true
	}
	return false
}

func matchingParen(s string, lp int) int {
	depth := 0
	inQuote := false
	for i := lp; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

func splitArgs(s string) []string {
	var args []string
	var cur strings.Builder
	depth := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				cur.WriteByte(s[i])
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
			cur.WriteByte(c)
		case c == '(' || c == '[' || c == '{':
			depth++
			cur.WriteByte(c)
		case c == ')' || c == ']' || c == '}':
			depth--
			cur.WriteByte(c)
		case c == ',' && depth == 0:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		args = append(args, t)
	}
	return args
}

func parseInt(s string) (int64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
