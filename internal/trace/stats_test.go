package trace

import (
	"math"
	"strings"
	"testing"
)

func statsTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := ParseString(`
open fh=1
read fh=1 bytes=100
read fh=1 bytes=100
lseek fh=1
write fh=1 bytes=200
open fh=2
write fh=2 bytes=50
close fh=2
close fh=1
`)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestComputeStatsCounts(t *testing.T) {
	s := ComputeStats(statsTrace(t))
	if s.Ops != 9 || s.Reads != 2 || s.Writes != 2 || s.Seeks != 1 || s.Opens != 2 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.BytesRead != 200 || s.BytesWrite != 250 {
		t.Fatalf("volumes wrong: %+v", s)
	}
}

func TestComputeStatsDerived(t *testing.T) {
	s := ComputeStats(statsTrace(t))
	if math.Abs(s.Granularity-450.0/4.0) > 1e-9 {
		t.Fatalf("granularity %v", s.Granularity)
	}
	if math.Abs(s.Randomness-0.25) > 1e-9 {
		t.Fatalf("randomness %v", s.Randomness)
	}
	if math.Abs(s.ReadRatio-0.5) > 1e-9 {
		t.Fatalf("read ratio %v", s.ReadRatio)
	}
	if s.Concurrency != 2 {
		t.Fatalf("concurrency %d", s.Concurrency)
	}
}

func TestLoadBalance(t *testing.T) {
	balanced := &Trace{Ops: []Op{
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 2, Bytes: 1},
	}}
	if lb := ComputeStats(balanced).LoadBalance; math.Abs(lb-1) > 1e-9 {
		t.Fatalf("balanced load = %v", lb)
	}
	skewed := &Trace{Ops: []Op{
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 1, Bytes: 1},
		{Name: "read", Handle: 2, Bytes: 1},
	}}
	if lb := ComputeStats(skewed).LoadBalance; lb >= 0.99 {
		t.Fatalf("skewed load = %v, want < 0.99", lb)
	}
	single := &Trace{Ops: []Op{{Name: "read", Handle: 1, Bytes: 1}}}
	if lb := ComputeStats(single).LoadBalance; lb != 1 {
		t.Fatalf("single-handle load = %v", lb)
	}
}

func TestBurstiness(t *testing.T) {
	bursty := &Trace{Ops: []Op{
		{Name: "write", Handle: 1, Bytes: 8},
		{Name: "write", Handle: 1, Bytes: 8},
		{Name: "write", Handle: 1, Bytes: 8},
		{Name: "write", Handle: 1, Bytes: 8},
	}}
	if b := ComputeStats(bursty).Burstiness; b != 4 {
		t.Fatalf("burstiness %v, want 4", b)
	}
	alternating := &Trace{Ops: []Op{
		{Name: "read", Handle: 1, Bytes: 8},
		{Name: "write", Handle: 1, Bytes: 8},
		{Name: "read", Handle: 1, Bytes: 8},
		{Name: "write", Handle: 1, Bytes: 8},
	}}
	if b := ComputeStats(alternating).Burstiness; b != 1 {
		t.Fatalf("alternating burstiness %v, want 1", b)
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	s := ComputeStats(&Trace{})
	if s.Ops != 0 || s.Granularity != 0 || s.LoadBalance != 1 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	out := ComputeStats(statsTrace(t)).String()
	for _, want := range []string{"ops:", "granularity:", "load balance:", "burstiness:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats string lacks %q:\n%s", want, out)
		}
	}
}

func TestByteHistogram(t *testing.T) {
	h := ByteHistogram(statsTrace(t))
	if len(h) != 4 {
		t.Fatalf("histogram %v", h)
	}
	if h[0].Key != "read[100]" || h[0].Count != 2 || h[0].Bytes != 200 {
		t.Fatalf("top entry %+v", h[0])
	}
	// opens/closes excluded.
	for _, e := range h {
		if strings.HasPrefix(e.Key, "open") || strings.HasPrefix(e.Key, "close") {
			t.Fatalf("open/close leaked into histogram: %v", e)
		}
	}
}

func TestByteHistogramDeterministicOrder(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Name: "a", Handle: 1, Bytes: 1},
		{Name: "b", Handle: 1, Bytes: 1},
	}}
	h := ByteHistogram(tr)
	if h[0].Key != "a[1]" || h[1].Key != "b[1]" {
		t.Fatalf("tie-break order %v", h)
	}
}
