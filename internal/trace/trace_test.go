package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"iokast/internal/xrand"
)

func sample() *Trace {
	return &Trace{
		Name:  "t1",
		Label: "A",
		Ops: []Op{
			{Name: "open", Handle: 1, Path: "out.dat"},
			{Name: "write", Handle: 1, Bytes: 1024},
			{Name: "read", Handle: 1, Bytes: 512, Addr: 0x7f001000},
			{Name: "close", Handle: 1},
		},
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := sample()
	b := a.Clone()
	b.Ops[0].Name = "mutated"
	b.Name = "other"
	if a.Ops[0].Name != "open" || a.Name != "t1" {
		t.Fatal("Clone shares state with original")
	}
}

func TestHandlesFirstAppearanceOrder(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Name: "open", Handle: 3},
		{Name: "open", Handle: 1},
		{Name: "write", Handle: 3, Bytes: 8},
		{Name: "open", Handle: 2},
	}}
	got := tr.Handles()
	want := []int{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Handles = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Handles = %v, want %v", got, want)
		}
	}
}

func TestOpNamesSorted(t *testing.T) {
	tr := sample()
	got := tr.OpNames()
	want := []string{"close", "open", "read", "write"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("OpNames = %v, want %v", got, want)
	}
}

func TestTotalBytesAndCount(t *testing.T) {
	tr := sample()
	if tr.TotalBytes() != 1536 {
		t.Fatalf("TotalBytes = %d, want 1536", tr.TotalBytes())
	}
	if tr.CountByName("read") != 1 || tr.CountByName("nope") != 0 {
		t.Fatal("CountByName wrong")
	}
}

func TestZeroBytes(t *testing.T) {
	tr := sample()
	z := tr.ZeroBytes()
	if z.TotalBytes() != 0 {
		t.Fatalf("ZeroBytes left %d bytes", z.TotalBytes())
	}
	if tr.TotalBytes() == 0 {
		t.Fatal("ZeroBytes mutated the original")
	}
	if z.Len() != tr.Len() {
		t.Fatal("ZeroBytes changed op count")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsDoubleOpen(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Name: "open", Handle: 1},
		{Name: "open", Handle: 1},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("expected error for double open")
	}
}

func TestValidateRejectsStrayClose(t *testing.T) {
	tr := &Trace{Ops: []Op{{Name: "close", Handle: 1}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("expected error for close without open")
	}
}

func TestValidateRejectsNegativeHandle(t *testing.T) {
	tr := &Trace{Ops: []Op{{Name: "read", Handle: -1}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("expected error for negative handle")
	}
}

func TestValidateAllowsReopen(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Name: "open", Handle: 1},
		{Name: "close", Handle: 1},
		{Name: "open", Handle: 1},
		{Name: "close", Handle: 1},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFilterDefault(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Name: "open", Handle: 1},
		{Name: "fileno", Handle: 1},
		{Name: "mmap", Handle: 1},
		{Name: "read", Handle: 1, Bytes: 8},
		{Name: "fscanf", Handle: 1},
		{Name: "close", Handle: 1},
	}}
	f := tr.Filter(nil)
	if f.Len() != 3 {
		t.Fatalf("Filter left %d ops, want 3: %v", f.Len(), f.Ops)
	}
	for _, op := range f.Ops {
		if DefaultNegligible[op.Name] {
			t.Fatalf("negligible op %q survived", op.Name)
		}
	}
}

func TestFilterCustomSet(t *testing.T) {
	tr := sample()
	f := tr.Filter(map[string]bool{"read": true})
	if f.CountByName("read") != 0 || f.Len() != 3 {
		t.Fatal("custom filter not applied")
	}
}

func TestFilterPreservesMetadata(t *testing.T) {
	f := sample().Filter(nil)
	if f.Name != "t1" || f.Label != "A" {
		t.Fatal("Filter dropped metadata")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	s := FormatString(tr)
	got, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v\ninput:\n%s", err, s)
	}
	if got.Name != tr.Name || got.Label != tr.Label {
		t.Fatalf("metadata round-trip: got %q/%q", got.Name, got.Label)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("op count %d, want %d", len(got.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if got.Ops[i] != tr.Ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got.Ops[i], tr.Ops[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	names := []string{"open", "read", "write", "lseek", "close", "fsync"}
	f := func(seed uint64, n uint8) bool {
		r := xrand.New(seed)
		tr := &Trace{Name: "q", Label: "X"}
		for i := 0; i < int(n%50)+1; i++ {
			op := Op{
				Name:   names[r.Intn(len(names))],
				Handle: r.Intn(8),
			}
			if op.Name == "read" || op.Name == "write" {
				op.Bytes = int64(r.Intn(1 << 20))
			}
			if r.Bool(0.2) {
				op.Addr = r.Uint64() >> 16
			}
			if op.Name == "open" && r.Bool(0.5) {
				op.Path = "file with space.dat"
			}
			tr.Append(op)
		}
		got, err := ParseString(FormatString(tr))
		if err != nil {
			return false
		}
		if len(got.Ops) != len(tr.Ops) {
			return false
		}
		for i := range tr.Ops {
			if got.Ops[i] != tr.Ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
% name="x" label="B"

read fh=3 bytes=10
`
	tr, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "x" || tr.Label != "B" || tr.Len() != 1 {
		t.Fatalf("parsed %+v", tr)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing fh", "read bytes=10"},
		{"bad fh", "read fh=zz"},
		{"bad bytes", "read fh=1 bytes=abc"},
		{"negative bytes", "read fh=1 bytes=-5"},
		{"unknown key", "read fh=1 color=red"},
		{"bad header", "% nope"},
		{"unknown header key", "% foo=bar"},
		{"bad addr", "read fh=1 addr=0xZZ"},
		{"not key=value", "read fh"},
		{"unterminated quote", `open fh=1 path="broken`},
	}
	for _, c := range cases {
		if _, err := ParseString(c.in); err == nil {
			t.Errorf("%s: expected error for %q", c.name, c.in)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := ParseString("read fh=1 bytes=4\nbogus line here\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("message %q lacks line info", pe.Error())
	}
}

func TestOpStringOmitsZeroFields(t *testing.T) {
	s := Op{Name: "close", Handle: 2}.String()
	if strings.Contains(s, "bytes") || strings.Contains(s, "addr") || strings.Contains(s, "path") {
		t.Fatalf("zero fields leaked into %q", s)
	}
}

func TestParseStraceBasic(t *testing.T) {
	in := `
open("data.bin", O_RDONLY) = 3
read(3, "...", 4096) = 4096
lseek(3, 8192, SEEK_SET) = 8192
write(3, "...", 512) = 512
close(3) = 0
`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Name: "open", Handle: 3, Path: "data.bin"},
		{Name: "read", Handle: 3, Bytes: 4096},
		{Name: "lseek", Handle: 3},
		{Name: "write", Handle: 3, Bytes: 512},
		{Name: "close", Handle: 3},
	}
	if len(tr.Ops) != len(want) {
		t.Fatalf("got %d ops %v, want %d", len(tr.Ops), tr.Ops, len(want))
	}
	for i := range want {
		if tr.Ops[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, tr.Ops[i], want[i])
		}
	}
}

func TestParseStraceSkipsNoise(t *testing.T) {
	// The unfinished read is completed by its resumption two lines later
	// (both halves under the same PID); the signal, exit, failed open, and
	// the resumption with no stashed half are dropped.
	in := `
--- SIGCHLD {si_signo=SIGCHLD} ---
+++ exited with 0 +++
open("x", O_RDONLY) = -1 ENOENT (No such file)
read(3 <unfinished ...>
1234  write(5, "abc", 3) = 3
<... read resumed> , "...", 8192) = 8192
<... pread resumed> ...) = 64
`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Name: "write", Handle: 5, Bytes: 3},
		{Name: "read", Handle: 3, Bytes: 8192},
	}
	if len(tr.Ops) != len(want) {
		t.Fatalf("got %d ops %v, want %v", len(tr.Ops), tr.Ops, want)
	}
	for i := range want {
		if tr.Ops[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, tr.Ops[i], want[i])
		}
	}
}

// TestParseStraceDecorations pins the column stripping: every -t/-tt/-ttt
// timestamp shape, both PID column forms, combinations of the two, and
// the -T duration suffix must all leave the call parsable. Before the
// streaming rework each of these lines was silently dropped.
func TestParseStraceDecorations(t *testing.T) {
	cases := []struct {
		name string
		line string
		want Op
	}{
		{"plain", `read(3, "...", 4096) = 4096`, Op{Name: "read", Handle: 3, Bytes: 4096}},
		{"t", `12:34:56 read(3, "...", 4096) = 4096`, Op{Name: "read", Handle: 3, Bytes: 4096}},
		{"tt", `12:34:56.789012 read(3, "...", 4096) = 4096`, Op{Name: "read", Handle: 3, Bytes: 4096}},
		{"ttt", `1628773289.123456 read(3, "...", 4096) = 4096`, Op{Name: "read", Handle: 3, Bytes: 4096}},
		{"pid", `1234  write(5, "abc", 3) = 3`, Op{Name: "write", Handle: 5, Bytes: 3}},
		{"pid-bracket", `[pid 1234] write(5, "abc", 3) = 3`, Op{Name: "write", Handle: 5, Bytes: 3}},
		{"pid-then-tt", `1234 12:34:56.789012 lseek(3, 8192, SEEK_SET) = 8192`, Op{Name: "lseek", Handle: 3}},
		{"bracket-then-ttt", `[pid 7] 1628773289.000001 close(3) = 0`, Op{Name: "close", Handle: 3}},
		{"duration", `write(3, "x", 512) = 512 <0.000042>`, Op{Name: "write", Handle: 3, Bytes: 512}},
		{"tt-and-duration", `12:34:56.789012 pread64(4, "x", 64, 0) = 64 <0.000007>`, Op{Name: "pread64", Handle: 4, Bytes: 64}},
		{"t-open", `12:34:56 openat(AT_FDCWD, "f.dat", O_WRONLY) = 4 <0.000100>`, Op{Name: "open", Handle: 4, Path: "f.dat"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseStrace(strings.NewReader(tc.line))
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Ops) != 1 || tr.Ops[0] != tc.want {
				t.Fatalf("line %q: got %v, want %+v", tc.line, tr.Ops, tc.want)
			}
		})
	}
}

// TestParseStraceUnfinishedResumed pins the per-PID pairing: interleaved
// split calls from two PIDs complete in resumption order, decorations and
// all, and an unfinished call with no resumption is dropped at EOF.
func TestParseStraceUnfinishedResumed(t *testing.T) {
	in := `
[pid 100] 12:00:00.000001 read(3, " <unfinished ...>
[pid 200] write(7, "abc" <unfinished ...>
[pid 100] 12:00:00.000500 <... read resumed> ", 4096) = 4096 <0.000499>
[pid 200] <... write resumed> , 3) = 3
[pid 300] open("never.dat", O_RDONLY <unfinished ...>
`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Name: "read", Handle: 3, Bytes: 4096},
		{Name: "write", Handle: 7, Bytes: 3},
	}
	if len(tr.Ops) != len(want) {
		t.Fatalf("got %d ops %v, want %v", len(tr.Ops), tr.Ops, want)
	}
	for i := range want {
		if tr.Ops[i] != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, tr.Ops[i], want[i])
		}
	}

	// Streaming form: the LineParser exposes the stash so callers can see
	// an in-flight split call.
	p := NewLineParser()
	if _, ok, _ := p.Line(`1234 read(3, " <unfinished ...>`); ok {
		t.Fatal("unfinished half produced an op")
	}
	if p.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", p.Pending())
	}
	op, ok, err := p.Line(`1234 <... read resumed> ", 65536) = 65536`)
	if err != nil || !ok || op != (Op{Name: "read", Handle: 3, Bytes: 65536}) {
		t.Fatalf("resumed: op %+v ok %v err %v", op, ok, err)
	}
	if p.Pending() != 0 {
		t.Fatalf("pending after resume = %d, want 0", p.Pending())
	}
}

// TestParseStraceTimestampedCapture is the probe from the bug report: a
// four-line capture with one timestamped read must parse all four ops
// (the timestamped line used to fail the identifier check and vanish).
func TestParseStraceTimestampedCapture(t *testing.T) {
	in := `open("d", O_RDONLY) = 3
12:34:56.789012 read(3, "...", 4096) = 4096
write(3, "x", 1) = 1
close(3) = 0
`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 4 {
		t.Fatalf("got %d ops %v, want 4", len(tr.Ops), tr.Ops)
	}
	if tr.Ops[1] != (Op{Name: "read", Handle: 3, Bytes: 4096}) {
		t.Fatalf("timestamped read parsed as %+v", tr.Ops[1])
	}
}

func TestParseStraceTruncatedReadUsesCountArg(t *testing.T) {
	in := `read(7, "...", 65536) = -1`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 1 || tr.Ops[0].Bytes != 65536 {
		t.Fatalf("got %v", tr.Ops)
	}
}

func TestParseStraceOpenat(t *testing.T) {
	in := `openat(AT_FDCWD, "f.dat", O_WRONLY|O_CREAT, 0644) = 4`
	tr, err := ParseStrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 1 || tr.Ops[0].Name != "open" || tr.Ops[0].Handle != 4 || tr.Ops[0].Path != "f.dat" {
		t.Fatalf("got %+v", tr.Ops)
	}
}
