package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Canonical text format, one operation per line:
//
//	# comment
//	% name=<trace name> label=<category>     (optional header directives)
//	open fh=1 path="out.dat"
//	write fh=1 bytes=1024
//	read fh=1 bytes=512 addr=0x7f001000
//	close fh=1
//
// The first whitespace-separated field is the operation name; the remaining
// fields are key=value pairs in any order. Unknown keys are rejected so that
// format drift is caught early. Blank lines and lines starting with '#' are
// ignored.

// ParseError describes a parse failure with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Msg)
}

// Parse reads a trace in the canonical text format.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "%") {
			if err := parseHeader(t, strings.TrimSpace(line[1:])); err != nil {
				return nil, &ParseError{lineno, err.Error()}
			}
			continue
		}
		op, err := parseOpLine(line)
		if err != nil {
			return nil, &ParseError{lineno, err.Error()}
		}
		t.Ops = append(t.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return t, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Trace, error) {
	return Parse(strings.NewReader(s))
}

func parseHeader(t *Trace, rest string) error {
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("header field %q is not key=value", f)
		}
		switch k {
		case "name":
			name, err := unquote(v)
			if err != nil {
				return err
			}
			t.Name = name
		case "label":
			label, err := unquote(v)
			if err != nil {
				return err
			}
			t.Label = label
		default:
			return fmt.Errorf("unknown header key %q", k)
		}
	}
	return nil
}

func parseOpLine(line string) (Op, error) {
	fields, err := splitFields(line)
	if err != nil {
		return Op{}, err
	}
	if len(fields) == 0 {
		return Op{}, fmt.Errorf("empty operation line")
	}
	op := Op{Name: fields[0]}
	if op.Name == "" {
		return Op{}, fmt.Errorf("missing operation name")
	}
	sawHandle := false
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Op{}, fmt.Errorf("field %q is not key=value", f)
		}
		switch k {
		case "fh":
			h, err := strconv.Atoi(v)
			if err != nil {
				return Op{}, fmt.Errorf("bad handle %q: %v", v, err)
			}
			op.Handle = h
			sawHandle = true
		case "bytes":
			b, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Op{}, fmt.Errorf("bad byte count %q: %v", v, err)
			}
			if b < 0 {
				return Op{}, fmt.Errorf("negative byte count %d", b)
			}
			op.Bytes = b
		case "addr":
			a, err := strconv.ParseUint(strings.TrimPrefix(v, "0x"), 16, 64)
			if err != nil {
				return Op{}, fmt.Errorf("bad address %q: %v", v, err)
			}
			op.Addr = a
		case "path":
			path, err := unquote(v)
			if err != nil {
				return Op{}, err
			}
			op.Path = path
		default:
			return Op{}, fmt.Errorf("unknown key %q", k)
		}
	}
	if !sawHandle {
		return Op{}, fmt.Errorf("operation %q missing fh=", op.Name)
	}
	return op, nil
}

// splitFields splits on whitespace but keeps quoted values (path="a b")
// intact, honouring backslash escapes inside quotes so values produced by
// %q round-trip.
func splitFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote && c == '\\':
			cur.WriteByte(c)
			if i+1 < len(line) {
				i++
				cur.WriteByte(line[i])
			}
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			if cur.Len() > 0 {
				fields = append(fields, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	if cur.Len() > 0 {
		fields = append(fields, cur.String())
	}
	return fields, nil
}

// unquote decodes a quoted value. Unquoted values pass through verbatim;
// anything that starts with '"' must be a well-formed Go quoted string in
// its entirety (trailing garbage after the closing quote is an error, so
// malformed inputs are rejected instead of silently mangled).
func unquote(s string) (string, error) {
	if len(s) == 0 || s[0] != '"' {
		return s, nil
	}
	u, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("malformed quoted value %s", s)
	}
	return u, nil
}

// Format writes the trace in the canonical text format. Parse(Format(t))
// round-trips exactly.
func Format(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if t.Name != "" || t.Label != "" {
		fmt.Fprint(bw, "%")
		if t.Name != "" {
			fmt.Fprintf(bw, " name=%q", t.Name)
		}
		if t.Label != "" {
			fmt.Fprintf(bw, " label=%q", t.Label)
		}
		fmt.Fprintln(bw)
	}
	for _, op := range t.Ops {
		fmt.Fprintln(bw, op.String())
	}
	return bw.Flush()
}

// FormatString is Format into a string.
func FormatString(t *Trace) string {
	var b strings.Builder
	_ = Format(&b, t) // strings.Builder writes cannot fail
	return b.String()
}
