package trace

// DefaultNegligible is the set of operation names ignored when building
// pattern trees. The paper (§3.1) lists "fileno, nmap and fscanf" as
// negligible; "nmap" is almost certainly a typo for "mmap", so both are
// included, along with other metadata-only calls of the same character.
var DefaultNegligible = map[string]bool{
	"fileno": true,
	"nmap":   true,
	"mmap":   true,
	"fscanf": true,
	"fstat":  true,
	"stat":   true,
	"ftell":  true,
}

// Filter returns a copy of the trace with every operation whose name is in
// negligible removed. A nil map means DefaultNegligible.
func (t *Trace) Filter(negligible map[string]bool) *Trace {
	if negligible == nil {
		negligible = DefaultNegligible
	}
	c := &Trace{Name: t.Name, Label: t.Label}
	for _, op := range t.Ops {
		if !negligible[op.Name] {
			c.Ops = append(c.Ops, op)
		}
	}
	return c
}
