package stream

import (
	"sync"
	"testing"
)

var fuzzSession struct {
	once sync.Once
	s    *Session
	mu   sync.Mutex
}

// FuzzStreamEvent hammers the ingest boundary: arbitrary bytes must never
// panic ParseEvent, anything it accepts must re-validate, and feeding the
// accepted event through a live session (line parsing, incremental sketch,
// windowed classification) must not panic either.
func FuzzStreamEvent(f *testing.F) {
	f.Add([]byte(`{"op":"write","handle":3,"bytes":32768}`))
	f.Add([]byte(`{"op":"open","handle":3,"path":"chk.h5"}`))
	f.Add([]byte(`{"session":"job-42","op":"read","handle":5,"bytes":4096}`))
	f.Add([]byte(`{"line":"12:34:56.789012 write(3, \"...\", 32768) = 32768 <0.000042>"}`))
	f.Add([]byte(`{"line":"[pid 99] read(3,  <unfinished ...>"}`))
	f.Add([]byte(`{"line":"<... read resumed> \"\", 4096) = 4096"}`))
	f.Add([]byte(`{"end":true,"session":"job-42"}`))
	f.Add([]byte(`{"op":"mmap","addr":139637976727552,"bytes":8192}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := ParseEvent(data)
		if err != nil {
			return
		}
		if verr := ev.Validate(); verr != nil {
			t.Fatalf("ParseEvent accepted an event Validate rejects: %v (%q)", verr, data)
		}
		if ev.End {
			return
		}
		fuzzSession.once.Do(func() {
			reg := NewRegistry(Config{
				Window: 32, Stride: 8, MaxOps: 1 << 16,
				Classifier: newTestClassifier(t),
			})
			s, err := reg.Get("fuzz")
			if err != nil {
				t.Fatalf("fuzz session: %v", err)
			}
			fuzzSession.s = s
		})
		fuzzSession.mu.Lock()
		defer fuzzSession.mu.Unlock()
		// Feed errors (parse failures, op cap) are fine; panics are not.
		_, _ = fuzzSession.s.Feed(ev, 3, 0)
	})
}
