// Package stream is the live-ingest path: raw syscall events arrive one
// NDJSON line at a time (structured events or raw strace lines), are
// assembled server-side into canonical traces per session, and sliding
// windows of each in-flight session are classified against the labelled
// corpus — "this job looks like a checkpointer right now" — while the
// job is still running.
//
// The pipeline per session is event -> op -> window -> classify:
//
//   - An Event is either a structured operation ({"op": "write",
//     "handle": 3, "bytes": 32768}), a raw capture line ({"line":
//     "12:34:56 write(3, ...) = 32768"}) fed through the streaming
//     strace parser (trace.LineParser, which re-pairs unfinished/resumed
//     halves per PID), or an end marker requesting the final
//     classification.
//   - Completed operations append to the session's assembled trace and
//     to an incremental sliding-window sketch (sketch.Accum): O(MaxLen)
//     work per op instead of re-embedding the window from scratch.
//   - Every Stride ops the window is classified. The accumulated sketch
//     gates the work: when the window's embedding is within Epsilon
//     (cosine) of the last classified window, the previous result is
//     re-emitted with Cached set and no re-embedding or kernel work
//     happens — a stationary workload costs O(delta) per tick, not
//     O(window).
//   - Finish classifies the entire assembled trace through exactly the
//     batch path (core.Convert + classify.Online.Classify), so a
//     streamed trace's final classification is bit-identical to POSTing
//     the assembled trace to /classify, at any shard count.
//
// Sessions are bounded three ways — a registry-wide session cap, a
// per-session op cap, and idle eviction — so an open firehose cannot
// grow server memory without limit. See docs/ARCHITECTURE.md for the
// data-flow diagram and internal/serve for the HTTP surface
// (POST /ingest).
package stream
