package stream

import (
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"iokast/internal/trace"
)

// Event is one NDJSON ingest line. Exactly one of the three forms must be
// present:
//
//	{"session": "job-42", "op": "write", "handle": 3, "bytes": 32768}
//	{"session": "job-42", "line": "write(3, \"...\", 32768) = 32768"}
//	{"session": "job-42", "end": true}
//
// The op form maps directly onto one trace operation. The line form is a
// raw strace capture line, decorations and all; it may complete zero ops
// (noise, the unfinished half of a split call) or one. The end form asks
// for the session's final whole-trace classification and releases it.
//
// Session names a server-side assembly session so one connection can
// interleave several jobs (and a job can span connections). An empty
// session is the connection's own anonymous session, finalised when the
// request body ends.
type Event struct {
	Session string `json:"session,omitempty"`
	Op      string `json:"op,omitempty"`
	Handle  int    `json:"handle,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Addr    uint64 `json:"addr,omitempty"`
	Path    string `json:"path,omitempty"`
	Line    string `json:"line,omitempty"`
	End     bool   `json:"end,omitempty"`
}

// MaxSessionName bounds the session identifier length.
const MaxSessionName = 128

// ParseEvent decodes and validates one NDJSON event line.
func ParseEvent(b []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(b, &ev); err != nil {
		return Event{}, fmt.Errorf("stream: bad event JSON: %v", err)
	}
	if err := ev.Validate(); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// Validate checks the event's form: exactly one of op/line/end, sane
// numeric fields, and a well-formed session name.
func (ev Event) Validate() error {
	forms := 0
	if ev.Op != "" {
		forms++
	}
	if ev.Line != "" {
		forms++
	}
	if ev.End {
		forms++
	}
	if forms == 0 {
		return fmt.Errorf(`stream: event carries none of "op", "line", "end"`)
	}
	if forms > 1 {
		return fmt.Errorf(`stream: event mixes "op", "line" and/or "end"; send one per event`)
	}
	if ev.Op != "" {
		if ev.Handle < 0 {
			return fmt.Errorf("stream: negative handle %d", ev.Handle)
		}
		if ev.Bytes < 0 {
			return fmt.Errorf("stream: negative byte count %d", ev.Bytes)
		}
	}
	if len(ev.Session) > MaxSessionName {
		return fmt.Errorf("stream: session name exceeds %d bytes", MaxSessionName)
	}
	if !utf8.ValidString(ev.Session) {
		return fmt.Errorf("stream: session name is not valid UTF-8")
	}
	for _, c := range ev.Session {
		if c < 0x20 || c == 0x7f {
			return fmt.Errorf("stream: session name contains control characters")
		}
	}
	return nil
}

// op converts a structured event into its trace operation. Only valid on
// the op form.
func (ev Event) op() trace.Op {
	return trace.Op{Name: ev.Op, Handle: ev.Handle, Bytes: ev.Bytes, Addr: ev.Addr, Path: ev.Path}
}
