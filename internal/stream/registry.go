package stream

import (
	"fmt"
	"sync"
	"time"
)

// Registry owns the in-flight sessions: bounded creation, lookup, and
// idle eviction. It is safe for concurrent use.
//
// Idle eviction runs on a background ticker owned by the registry (see
// Config.SweepEvery), not on health probes: scrape frequency must never
// control session TTL semantics. Get additionally sweeps on demand
// before refusing a new session, so an abandoned firehose frees its
// slot even if the sweeper has not come around yet.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session

	done      chan struct{}
	closeOnce sync.Once
}

// NewRegistry builds a registry over the config (defaults applied) and
// starts its idle sweeper unless SweepEvery is negative. Call Close to
// stop the sweeper when the registry is replaced or discarded.
func NewRegistry(cfg Config) *Registry {
	if cfg.Classifier == nil {
		panic("stream: NewRegistry without a classifier")
	}
	r := &Registry{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*Session),
		done:     make(chan struct{}),
	}
	if r.cfg.SweepEvery > 0 {
		go r.sweep()
	}
	return r
}

// sweep evicts idle sessions every SweepEvery until Close.
func (r *Registry) sweep() {
	t := time.NewTicker(r.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.EvictIdle()
		case <-r.done:
			return
		}
	}
}

// Close stops the background sweeper. Sessions are left in place (the
// registry remains usable without a sweeper); safe to call twice.
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.done) })
}

// Config returns the registry's effective (default-applied) config.
func (r *Registry) Config() Config { return r.cfg }

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Get returns the named session, creating it if absent. Creation first
// sweeps idle sessions, then enforces MaxSessions: a full registry
// refuses new sessions rather than evicting live ones (the caller maps
// this to HTTP 503).
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[name]; ok {
		return s, nil
	}
	r.evictIdleLocked()
	if len(r.sessions) >= r.cfg.MaxSessions {
		return nil, fmt.Errorf("stream: session limit reached (%d in flight); retry after idle sessions expire", r.cfg.MaxSessions)
	}
	s := newSession(name, &r.cfg)
	r.sessions[name] = s
	r.cfg.Metrics.Sessions.Inc()
	return s, nil
}

// Remove drops a session (after Finish, or on a fatal feed error).
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, name)
}

// EvictIdle sweeps sessions idle longer than IdleTTL and reports how
// many were dropped. The background sweeper calls this on its ticker;
// Get runs the same sweep before refusing a new session.
func (r *Registry) EvictIdle() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictIdleLocked()
}

func (r *Registry) evictIdleLocked() int {
	cutoff := r.cfg.now().Add(-r.cfg.IdleTTL)
	n := 0
	for name, s := range r.sessions {
		if s.idleSince().Before(cutoff) {
			delete(r.sessions, name)
			n++
		}
	}
	r.cfg.Metrics.Evictions.Add(int64(n))
	return n
}
