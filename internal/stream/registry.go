package stream

import (
	"fmt"
	"sync"
)

// Registry owns the in-flight sessions: bounded creation, lookup, and
// idle eviction. It is safe for concurrent use.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewRegistry builds a registry over the config (defaults applied).
// Config.Classifier must be set.
func NewRegistry(cfg Config) *Registry {
	if cfg.Classifier == nil {
		panic("stream: NewRegistry without a classifier")
	}
	return &Registry{cfg: cfg.withDefaults(), sessions: make(map[string]*Session)}
}

// Config returns the registry's effective (default-applied) config.
func (r *Registry) Config() Config { return r.cfg }

// Len returns the number of live sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Get returns the named session, creating it if absent. Creation first
// sweeps idle sessions, then enforces MaxSessions: a full registry
// refuses new sessions rather than evicting live ones (the caller maps
// this to HTTP 503).
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sessions[name]; ok {
		return s, nil
	}
	r.evictIdleLocked()
	if len(r.sessions) >= r.cfg.MaxSessions {
		return nil, fmt.Errorf("stream: session limit reached (%d in flight); retry after idle sessions expire", r.cfg.MaxSessions)
	}
	s := newSession(name, &r.cfg)
	r.sessions[name] = s
	return s, nil
}

// Remove drops a session (after Finish, or on a fatal feed error).
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, name)
}

// EvictIdle sweeps sessions idle longer than IdleTTL and reports how
// many were dropped. Get runs the same sweep before refusing a new
// session, so an abandoned firehose frees its slot on the next demand.
func (r *Registry) EvictIdle() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictIdleLocked()
}

func (r *Registry) evictIdleLocked() int {
	cutoff := r.cfg.now().Add(-r.cfg.IdleTTL)
	n := 0
	for name, s := range r.sessions {
		if s.idleSince().Before(cutoff) {
			delete(r.sessions, name)
			n++
		}
	}
	return n
}
