package stream

import "iokast/internal/obs"

// Metrics are the streaming layer's telemetry hooks. The zero value
// disables them (obs instruments are nil-safe). Live-session counts are
// a registry property, not a counter, so the serving layer exposes them
// as a gauge sampled from Registry.Len.
type Metrics struct {
	// Sessions counts sessions started.
	Sessions *obs.Counter
	// WindowTicks counts window classifications emitted (cached or not).
	WindowTicks *obs.Counter
	// CacheHits counts window ticks answered by the epsilon re-embed
	// gate without a kernel classification; CacheHits/WindowTicks is the
	// gate's hit rate, the number that says whether Epsilon is tuned.
	CacheHits *obs.Counter
	// Evictions counts sessions dropped by the idle sweep.
	Evictions *obs.Counter
}

// NewMetrics registers the stream family on reg.
func NewMetrics(reg *obs.Registry) Metrics {
	return Metrics{
		Sessions:    reg.Counter("iok_stream_sessions_total", "Streaming sessions started.", nil),
		WindowTicks: reg.Counter("iok_stream_window_ticks_total", "Window classifications emitted.", nil),
		CacheHits:   reg.Counter("iok_stream_cache_hits_total", "Window ticks served by the epsilon re-embed gate.", nil),
		Evictions:   reg.Counter("iok_stream_evictions_total", "Sessions dropped by the idle sweep.", nil),
	}
}
