package stream

import (
	"sync"
	"testing"
	"time"

	"iokast/internal/obs"
)

// TestBackgroundSweep pins satellite semantics: idle sessions are
// evicted by the registry's own ticker, with no health probe or Get
// call involved.
func TestBackgroundSweep(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}

	reg := obs.NewRegistry()
	cfg := Config{
		Classifier:  newTestClassifier(t),
		MaxSessions: 4,
		IdleTTL:     time.Minute,
		SweepEvery:  5 * time.Millisecond,
		Metrics:     NewMetrics(reg),
		now:         clock,
	}
	r := NewRegistry(cfg)
	defer r.Close()

	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}

	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for r.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never evicted the idle session")
		}
		time.Sleep(time.Millisecond)
	}
	if got := cfg.Metrics.Evictions.Value(); got < 1 {
		t.Fatalf("evictions counter = %d, want >= 1", got)
	}
	if got := cfg.Metrics.Sessions.Value(); got != 1 {
		t.Fatalf("sessions counter = %d, want 1", got)
	}

	// Close stops the sweeper; an idle session now outlives its TTL.
	r.Close()
	r.Close() // idempotent
	if _, err := r.Get("b"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	if r.Len() != 1 {
		t.Fatalf("len after Close = %d, want 1 (no sweeping)", r.Len())
	}
}

// TestSweepDisabled pins that a negative SweepEvery starts no sweeper
// while Get's on-demand sweep still works.
func TestSweepDisabled(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	cfg := Config{
		Classifier:  newTestClassifier(t),
		MaxSessions: 1,
		IdleTTL:     time.Minute,
		SweepEvery:  -1,
		now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		},
	}
	r := NewRegistry(cfg)
	defer r.Close()
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	if r.Len() != 1 {
		t.Fatal("session evicted with the sweeper disabled")
	}
	// Get at the session cap sweeps on demand.
	if _, err := r.Get("b"); err != nil {
		t.Fatalf("get after on-demand sweep: %v", err)
	}
}
