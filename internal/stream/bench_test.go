package stream

import (
	"fmt"
	"testing"

	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/xrand"
)

// benchClassifier labels a generated corpus across the paper's synthetic
// categories, mirroring the classify benchmarks.
func benchClassifier(b *testing.B, perCat int) *classify.Online {
	b.Helper()
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 4})
	reg := classify.NewRegistry()
	r := xrand.New(0xbeef)
	assign := map[int]string{}
	for ci, cat := range iogen.Categories {
		for i := 0; i < perCat; i++ {
			tr, err := iogen.Generate(cat, r)
			if err != nil {
				b.Fatal(err)
			}
			id := eng.Add(core.Convert(tr, core.Options{}))
			assign[id] = fmt.Sprintf("family-%d", ci)
		}
	}
	if err := reg.SetLabels(assign); err != nil {
		b.Fatal(err)
	}
	return classify.NewOnline(eng, reg)
}

// BenchmarkStreamWindowClassify measures the steady-state per-event cost
// of the streaming path: incremental sketch append/evict on every op plus
// a window classification (or a gate-cached re-emit) every stride.
func BenchmarkStreamWindowClassify(b *testing.B) {
	cls := benchClassifier(b, 8)
	// A mildly non-stationary event stream so the epsilon gate is exercised
	// but not always taken.
	r := xrand.New(0x5eed)
	src, err := iogen.Generate(iogen.CatNormal, r)
	if err != nil {
		b.Fatal(err)
	}
	events := make([]Event, len(src.Ops))
	for i, op := range src.Ops {
		events[i] = Event{Op: op.Name, Handle: op.Handle, Bytes: op.Bytes, Addr: op.Addr}
	}
	reg := NewRegistry(Config{Window: 128, Stride: 16, MaxOps: 1 << 30, Classifier: cls})
	s, err := reg.Get("bench")
	if err != nil {
		b.Fatal(err)
	}
	// Prime past the first window so b.N iterations measure steady state.
	for _, ev := range events {
		if _, err := s.Feed(ev, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Feed(events[i%len(events)], 5, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s.Ops() != len(events)+b.N {
		b.Fatalf("assembled %d ops", s.Ops())
	}
}
