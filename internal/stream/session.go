package stream

import (
	"fmt"
	"sync"
	"time"

	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/sketch"
	"iokast/internal/token"
	"iokast/internal/trace"
)

// Defaults for Config.
const (
	// DefaultWindow is the classification window in operations.
	DefaultWindow = 256
	// DefaultStride is how many completed operations pass between window
	// classifications.
	DefaultStride = 64
	// DefaultMaxOps bounds one session's assembled trace.
	DefaultMaxOps = 1 << 20
	// DefaultMaxSessions bounds the registry.
	DefaultMaxSessions = 1024
	// DefaultIdleTTL evicts sessions that have not seen an event for this
	// long.
	DefaultIdleTTL = 5 * time.Minute
	// DefaultEpsilon is the re-embed gate: a window whose incremental
	// sketch stays within this cosine distance of the last classified
	// window re-emits the previous result instead of re-embedding.
	DefaultEpsilon = 0.005
)

// Config wires a session registry to a classifier. The zero value of
// every bound picks its default; Epsilon < 0 disables the re-embed gate
// (every tick classifies in full).
type Config struct {
	// Window is the classification window, in completed operations.
	Window int
	// Stride is how many completed operations pass between window
	// classifications.
	Stride int
	// MaxOps bounds one session's assembled trace; a session exceeding
	// it is terminated with ErrSessionFull.
	MaxOps int
	// MaxSessions bounds concurrently assembling sessions.
	MaxSessions int
	// IdleTTL evicts sessions with no events for this long.
	IdleTTL time.Duration
	// Epsilon is the re-embed gate width (cosine distance); 0 means
	// DefaultEpsilon, negative disables gating.
	Epsilon float64
	// Classifier answers the window and final classifications. Required.
	Classifier *classify.Online
	// Convert configures the trace -> weighted-string conversion; must
	// match the server's ingest configuration for corpus-comparable
	// classifications.
	Convert core.Options
	// Sketcher embeds windows for the re-embed gate; nil builds a
	// default-width sketcher. The gate is internal to the session, so
	// this does not need to match the corpus sketch configuration.
	Sketcher *sketch.Sketcher
	// SweepEvery is the background idle-sweep period; 0 means IdleTTL/4
	// (clamped to at least a second), negative disables the sweeper
	// (Get still sweeps on demand before refusing a new session).
	SweepEvery time.Duration
	// Metrics are the telemetry hooks; the zero value disables them.
	Metrics Metrics
	// now overrides time.Now for idle-eviction tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Stride <= 0 {
		c.Stride = DefaultStride
	}
	if c.Stride > c.Window {
		c.Stride = c.Window
	}
	if c.MaxOps <= 0 {
		c.MaxOps = DefaultMaxOps
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = DefaultIdleTTL
	}
	if c.Epsilon == 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.Sketcher == nil {
		c.Sketcher = sketch.New(sketch.Options{})
	}
	if c.SweepEvery == 0 {
		c.SweepEvery = c.IdleTTL / 4
		if c.SweepEvery < time.Second {
			c.SweepEvery = time.Second
		}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrSessionFull reports a session that outgrew Config.MaxOps.
var ErrSessionFull = fmt.Errorf("stream: session exceeds the buffered-operation limit")

// Result is one classification emitted on a session's stream: a window
// tick (every Stride completed ops) or the final whole-trace verdict.
type Result struct {
	// Session is the session the result belongs to.
	Session string `json:"session"`
	// Seq numbers this session's results from 1.
	Seq int `json:"seq"`
	// Ops is how many operations the session has assembled so far.
	Ops int `json:"ops"`
	// Window is how many of those the classified window covered (equal
	// to Ops for a final result).
	Window int `json:"window"`
	// Final marks the whole-trace classification that ends a session.
	Final bool `json:"final,omitempty"`
	// Cached marks a tick that re-emitted the previous classification
	// because the window's incremental sketch stayed within Epsilon of
	// the last classified window — no re-embedding happened.
	Cached bool `json:"cached,omitempty"`
	// Label, Confidence and Votes mirror the /classify response.
	Label      string          `json:"label"`
	Confidence float64         `json:"confidence"`
	Votes      []classify.Vote `json:"votes"`
}

// Session assembles one in-flight workload. All methods are safe for
// concurrent use; a session serialises its own feeds, so two connections
// streaming into one session interleave at event granularity.
type Session struct {
	name string
	cfg  *Config

	mu         sync.Mutex
	lp         *trace.LineParser
	ops        []trace.Op
	accum      *sketch.Accum
	sinceTick  int
	seq        int
	lastVec    []float64 // accum vector at the last full classification
	lastRes    *Result   // last fully classified window result
	lastActive time.Time
	done       bool
}

func newSession(name string, cfg *Config) *Session {
	return &Session{
		name:       name,
		cfg:        cfg,
		lp:         trace.NewLineParser(),
		accum:      cfg.Sketcher.NewAccum(),
		lastActive: cfg.now(),
	}
}

// Name returns the session identifier.
func (s *Session) Name() string { return s.name }

// Ops returns how many operations the session has assembled.
func (s *Session) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ops)
}

// Feed consumes one event. It returns a non-nil Result when the event
// crossed a stride boundary (a window classification) and nil otherwise.
// k and rerank follow the /classify conventions.
func (s *Session) Feed(ev Event, k, rerank int) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("stream: session %q already finished", s.name)
	}
	s.lastActive = s.cfg.now()

	var op trace.Op
	if ev.Line != "" {
		var ok bool
		var err error
		op, ok, err = s.lp.Line(ev.Line)
		if err != nil {
			return nil, fmt.Errorf("stream: session %q: %v", s.name, err)
		}
		if !ok {
			return nil, nil // noise or an unfinished half: no op yet
		}
	} else {
		op = ev.op()
	}

	if len(s.ops) >= s.cfg.MaxOps {
		return nil, fmt.Errorf("%w (%d ops); session %q dropped", ErrSessionFull, s.cfg.MaxOps, s.name)
	}
	s.ops = append(s.ops, op)
	s.accum.Append(token.Token{Literal: token.OpLiteral(op.Name, op.Bytes), Weight: 1})
	for s.accum.Len() > s.cfg.Window {
		s.accum.Evict()
	}
	s.sinceTick++
	if s.sinceTick < s.cfg.Stride {
		return nil, nil
	}
	s.sinceTick = 0
	return s.classifyWindowLocked(k, rerank)
}

// classifyWindowLocked classifies the trailing window, short-circuiting
// through the re-embed gate when the incrementally maintained sketch says
// the window still looks like the last one classified.
func (s *Session) classifyWindowLocked(k, rerank int) (*Result, error) {
	s.seq++
	s.cfg.Metrics.WindowTicks.Inc()
	vec := s.accum.Vector()
	if s.lastRes != nil && s.cfg.Epsilon > 0 && sketch.Dot(vec, s.lastVec) >= 1-s.cfg.Epsilon {
		out := *s.lastRes
		out.Seq = s.seq
		out.Ops = len(s.ops)
		out.Cached = true
		s.cfg.Metrics.CacheHits.Inc()
		return &out, nil
	}
	lo := len(s.ops) - s.cfg.Window
	if lo < 0 {
		lo = 0
	}
	window := s.ops[lo:]
	sub := &trace.Trace{Name: s.name, Ops: window}
	res, err := s.cfg.Classifier.Classify(core.Convert(sub, s.cfg.Convert), k, rerank)
	if err != nil {
		return nil, fmt.Errorf("stream: session %q: %w", s.name, err)
	}
	out := &Result{
		Session: s.name, Seq: s.seq, Ops: len(s.ops), Window: len(window),
		Label: res.Label, Confidence: res.Confidence, Votes: res.Votes,
	}
	s.lastVec = vec
	s.lastRes = out
	return out, nil
}

// Finish classifies the entire assembled trace — exactly the batch
// /classify path over the same operations, so the result is bit-identical
// to POSTing the assembled trace — and marks the session done.
func (s *Session) Finish(k, rerank int) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("stream: session %q already finished", s.name)
	}
	s.done = true
	whole := &trace.Trace{Name: s.name, Ops: s.ops}
	res, err := s.cfg.Classifier.Classify(core.Convert(whole, s.cfg.Convert), k, rerank)
	if err != nil {
		return nil, fmt.Errorf("stream: session %q: %w", s.name, err)
	}
	s.seq++
	return &Result{
		Session: s.name, Seq: s.seq, Ops: len(s.ops), Window: len(s.ops), Final: true,
		Label: res.Label, Confidence: res.Confidence, Votes: res.Votes,
	}, nil
}

// idleSince reports the last event time.
func (s *Session) idleSince() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastActive
}
