package stream

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/sketch"
	"iokast/internal/trace"
)

// Two small workload families: a checkpoint-style writer and a scanner.
const writerTrace = `open fh=1
write fh=1 bytes=32768
write fh=1 bytes=32768
write fh=1 bytes=32768
write fh=1 bytes=16384
close fh=1
`

const readerTrace = `open fh=1
read fh=1 bytes=4096
read fh=1 bytes=4096
read fh=1 bytes=4096
read fh=1 bytes=4096
close fh=1
`

// newTestClassifier builds an in-memory labelled corpus: several writer
// and reader traces, labelled "writer"/"reader".
func newTestClassifier(t testing.TB) *classify.Online {
	t.Helper()
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2})
	reg := classify.NewRegistry()
	assign := map[int]string{}
	for i := 0; i < 3; i++ {
		for _, body := range []string{writerTrace, readerTrace} {
			tr, err := trace.ParseString(body)
			if err != nil {
				t.Fatal(err)
			}
			id := eng.Add(core.Convert(tr, core.Options{}))
			if body == writerTrace {
				assign[id] = "writer"
			} else {
				assign[id] = "reader"
			}
		}
	}
	if err := reg.SetLabels(assign); err != nil {
		t.Fatal(err)
	}
	return classify.NewOnline(eng, reg)
}

// writerEvents synthesizes n write-heavy structured events with the
// open/close framing of writerTrace.
func writerEvents(n int) []Event {
	evs := []Event{{Op: "open", Handle: 1}}
	for i := 0; i < n; i++ {
		b := int64(32768)
		if i%4 == 3 {
			b = 16384
		}
		evs = append(evs, Event{Op: "write", Handle: 1, Bytes: b})
	}
	return append(evs, Event{Op: "close", Handle: 1})
}

func TestSessionWindowedClassification(t *testing.T) {
	reg := NewRegistry(Config{
		Window: 16, Stride: 4, Classifier: newTestClassifier(t),
	})
	s, err := reg.Get("job-1")
	if err != nil {
		t.Fatal(err)
	}
	var results []*Result
	for _, ev := range writerEvents(40) {
		res, err := s.Feed(ev, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			results = append(results, res)
		}
	}
	if len(results) < 5 {
		t.Fatalf("only %d window results from 42 ops at stride 4", len(results))
	}
	for i, res := range results {
		if res.Seq != i+1 {
			t.Fatalf("result %d: seq %d", i, res.Seq)
		}
		if res.Label != "writer" {
			t.Fatalf("window %d classified as %q (confidence %v), want writer", i, res.Label, res.Confidence)
		}
		if res.Window > 16 {
			t.Fatalf("window %d spans %d ops, cap is 16", i, res.Window)
		}
	}
	fin, err := s.Finish(3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Final || fin.Label != "writer" || fin.Ops != 42 || fin.Window != 42 {
		t.Fatalf("final = %+v", fin)
	}
	// A finished session refuses further traffic.
	if _, err := s.Feed(Event{Op: "read", Handle: 1}, 3, -1); err == nil {
		t.Fatal("feed after finish succeeded")
	}
}

// TestFinishBitIdenticalToBatch is the acceptance property at package
// level: the final classification of a streamed session equals running
// the assembled trace through the batch classify path — same label, and
// bit-identical confidence at full rerank.
func TestFinishBitIdenticalToBatch(t *testing.T) {
	cls := newTestClassifier(t)
	for _, rerank := range []int{-1, 0, 1 << 20} {
		reg := NewRegistry(Config{Window: 8, Stride: 4, Classifier: cls})
		s, err := reg.Get(fmt.Sprintf("job-r%d", rerank))
		if err != nil {
			t.Fatal(err)
		}
		var assembled []trace.Op
		for _, ev := range writerEvents(20) {
			if _, err := s.Feed(ev, 5, rerank); err != nil {
				t.Fatal(err)
			}
			assembled = append(assembled, trace.Op{Name: ev.Op, Handle: ev.Handle, Bytes: ev.Bytes})
		}
		fin, err := s.Finish(5, rerank)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := cls.Classify(core.Convert(&trace.Trace{Ops: assembled}, core.Options{}), 5, rerank)
		if err != nil {
			t.Fatal(err)
		}
		if fin.Label != batch.Label {
			t.Fatalf("rerank %d: streamed %q vs batch %q", rerank, fin.Label, batch.Label)
		}
		if math.Float64bits(fin.Confidence) != math.Float64bits(batch.Confidence) {
			t.Fatalf("rerank %d: confidence %v vs %v (not bit-identical)", rerank, fin.Confidence, batch.Confidence)
		}
	}
}

// TestSessionLineEvents drives a session with raw strace lines, including
// the shapes the parser used to drop: timestamped, duration-suffixed, and
// a split unfinished/resumed call.
func TestSessionLineEvents(t *testing.T) {
	reg := NewRegistry(Config{Window: 8, Stride: 2, Classifier: newTestClassifier(t)})
	s, err := reg.Get("capture")
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		`open("chk.h5", O_WRONLY) = 3`,
		`12:34:56.789012 write(3, "...", 32768) = 32768`,
		`write(3, "...", 32768) = 32768 <0.000042>`,
		`--- SIGCHLD {si_signo=SIGCHLD} ---`,
		`write(3, " <unfinished ...>`,
		`<... write resumed> ", 32768) = 32768`,
		`1628773289.123456 write(3, "...", 16384) = 16384`,
		`close(3) = 0`,
	}
	for _, l := range lines {
		if _, err := s.Feed(Event{Line: l}, 3, -1); err != nil {
			t.Fatal(err)
		}
	}
	// 8 lines, 1 noise, 2 halves of one call: 6 assembled ops.
	if s.Ops() != 6 {
		t.Fatalf("assembled %d ops, want 6", s.Ops())
	}
	fin, err := s.Finish(3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Label != "writer" {
		t.Fatalf("capture classified as %q", fin.Label)
	}
}

// TestCachedTicksSkipReembedding pins the O(delta) property: on a
// stationary workload the incremental sketch gate re-emits the previous
// result, and the process-wide embedding counter proves the skipped ticks
// did no full re-embeds.
func TestCachedTicksSkipReembedding(t *testing.T) {
	reg := NewRegistry(Config{Window: 16, Stride: 4, Classifier: newTestClassifier(t)})
	s, err := reg.Get("steady")
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past the first full classification.
	var ticks, cached int
	before := sketch.SketchOps()
	for i := 0; i < 400; i++ {
		res, err := s.Feed(Event{Op: "write", Handle: 1, Bytes: 32768}, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			ticks++
			if res.Cached {
				cached++
			}
		}
	}
	embeds := sketch.SketchOps() - before
	if ticks < 90 {
		t.Fatalf("ticks = %d", ticks)
	}
	if cached < ticks-5 {
		t.Fatalf("only %d/%d ticks were gate-cached on a stationary stream", cached, ticks)
	}
	// Each full classification costs a handful of embeddings (query prep);
	// cached ticks must cost none, so the total stays far below one embed
	// per tick.
	if embeds > uint64(ticks-cached)*4+4 {
		t.Fatalf("%d embeddings for %d ticks (%d cached): gate is not skipping re-embeds", embeds, ticks, cached)
	}
	// The gate must not survive a workload shift: flip to reads and the
	// next tick reclassifies.
	var shifted *Result
	for i := 0; i < 32 && (shifted == nil || shifted.Cached); i++ {
		shifted, err = s.Feed(Event{Op: "read", Handle: 1, Bytes: 4096}, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if shifted == nil || shifted.Cached {
		t.Fatalf("workload shift never broke the gate: %+v", shifted)
	}
	// Once the window has fully turned over to reads the ticks settle on
	// the reader label.
	for i := 0; i < 64; i++ {
		res, err := s.Feed(Event{Op: "read", Handle: 1, Bytes: 4096}, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			shifted = res
		}
	}
	if shifted.Label != "reader" {
		t.Fatalf("post-shift window classified as %q", shifted.Label)
	}
}

func TestSessionMaxOps(t *testing.T) {
	reg := NewRegistry(Config{Window: 4, Stride: 2, MaxOps: 10, Classifier: newTestClassifier(t)})
	s, err := reg.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Feed(Event{Op: "write", Handle: 1, Bytes: 1}, 3, -1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Feed(Event{Op: "write", Handle: 1, Bytes: 1}, 3, -1); err == nil || !strings.Contains(err.Error(), "buffered-operation limit") {
		t.Fatalf("11th op: err = %v", err)
	}
}

func TestRegistryBoundsAndIdleEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		Window: 4, Stride: 2, MaxSessions: 2, IdleTTL: time.Minute,
		Classifier: newTestClassifier(t),
		now:        func() time.Time { return now },
	}
	reg := NewRegistry(cfg)
	if _, err := reg.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("b"); err != nil {
		t.Fatal(err)
	}
	// Same name: not a new session.
	if _, err := reg.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("c"); err == nil {
		t.Fatal("third distinct session admitted past MaxSessions=2")
	}
	if reg.Len() != 2 {
		t.Fatalf("len = %d", reg.Len())
	}
	// Time passes: the idle sweep frees both slots and "c" fits.
	now = now.Add(2 * time.Minute)
	if _, err := reg.Get("c"); err != nil {
		t.Fatalf("get after idle eviction: %v", err)
	}
	if reg.Len() != 1 {
		t.Fatalf("len after eviction sweep = %d", reg.Len())
	}
	reg.Remove("c")
	if reg.Len() != 0 {
		t.Fatalf("len after remove = %d", reg.Len())
	}
	if n := reg.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle on empty registry = %d", n)
	}
}

func TestParseEventValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"op", `{"op":"write","handle":3,"bytes":32768}`, true},
		{"op-path", `{"op":"open","handle":3,"path":"x.dat"}`, true},
		{"line", `{"line":"read(3, \"\", 64) = 64"}`, true},
		{"end", `{"end":true,"session":"j"}`, true},
		{"not-json", `write(3)`, false},
		{"empty", `{}`, false},
		{"op-and-line", `{"op":"read","handle":1,"line":"x"}`, false},
		{"op-and-end", `{"op":"read","handle":1,"end":true}`, false},
		{"negative-handle", `{"op":"read","handle":-1}`, false},
		{"negative-bytes", `{"op":"read","handle":1,"bytes":-5}`, false},
		{"session-too-long", `{"op":"read","handle":1,"session":"` + strings.Repeat("s", MaxSessionName+1) + `"}`, false},
		{"session-control", `{"op":"read","handle":1,"session":"a\u0007b"}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseEvent([]byte(tc.in))
			if (err == nil) != tc.ok {
				t.Fatalf("ParseEvent(%s): err = %v, want ok=%v", tc.in, err, tc.ok)
			}
		})
	}
}
