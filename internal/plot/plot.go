// Package plot renders the project's evaluation artefacts as plain text:
// scatter plots (the Kernel PCA figures), dendrograms (the hierarchical
// clustering figures), similarity heat maps, and aligned tables. Terminal
// output replaces the paper's graphical figures with the same information
// content, and the deterministic renderings double as golden-test targets.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scatter renders labelled 2-D points on a width x height character grid.
// Each point is drawn as the first byte of its label; collisions keep the
// earlier point's glyph except that differing labels show '*'.
type Scatter struct {
	Width, Height int
	Title         string
	XLabel        string
	YLabel        string
}

// DefaultScatter returns a scatter sized like the paper's figures.
func DefaultScatter(title string) Scatter {
	return Scatter{Width: 72, Height: 24, Title: title}
}

// Render draws the points. xs and ys are coordinates; labels give one
// string per point (empty labels render as '.').
func (s Scatter) Render(xs, ys []float64, labels []string) string {
	w, h := s.Width, s.Height
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	if len(xs) != len(ys) || len(xs) != len(labels) {
		return "plot: mismatched point slices\n"
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if len(xs) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for i := range xs {
		cx := int(math.Round((xs[i] - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((ys[i] - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy // y grows upward
		glyph := byte('.')
		if labels[i] != "" {
			glyph = labels[i][0]
		}
		cur := grid[row][cx]
		switch {
		case cur == ' ':
			grid[row][cx] = glyph
		case cur != glyph:
			grid[row][cx] = '*'
		}
	}
	border := "+" + strings.Repeat("-", w) + "+"
	fmt.Fprintln(&b, border)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", row)
	}
	fmt.Fprintln(&b, border)
	fmt.Fprintf(&b, "x: [%.4g, %.4g] %s   y: [%.4g, %.4g] %s\n",
		minX, maxX, s.XLabel, minY, maxY, s.YLabel)
	return b.String()
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Table renders rows as an aligned text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render aligns all columns.
func (t *Table) Render() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Heatmap renders a similarity matrix as a character grid using a ramp from
// ' ' (minimum) to '#' (maximum), with optional row labels.
func Heatmap(values [][]float64, rowLabels []string) string {
	ramp := []byte(" .:-=+*#")
	if len(values) == 0 {
		return "(empty matrix)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for i, row := range values {
		cells := make([]byte, len(row))
		for j, v := range row {
			idx := int((v - lo) / (hi - lo) * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			cells[j] = ramp[idx]
		}
		if rowLabels != nil && i < len(rowLabels) {
			fmt.Fprintf(&b, "%-10s |%s|\n", clip(rowLabels[i], 10), cells)
		} else {
			fmt.Fprintf(&b, "|%s|\n", cells)
		}
	}
	fmt.Fprintf(&b, "scale: ' '=%.3g  '#'=%.3g\n", lo, hi)
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// SortedCounts renders a label histogram like "A:50 B:20 C:20 D:20".
func SortedCounts(labels []string) string {
	counts := map[string]int{}
	for _, l := range labels {
		counts[l]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}
