package plot

import (
	"strings"
	"testing"

	"iokast/internal/cluster"
	"iokast/internal/linalg"
)

func TestScatterBasic(t *testing.T) {
	s := Scatter{Width: 20, Height: 8, Title: "demo", XLabel: "x", YLabel: "y"}
	out := s.Render([]float64{0, 1}, []float64{0, 1}, []string{"A", "B"})
	if !strings.Contains(out, "demo") || !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("scatter missing content:\n%s", out)
	}
	if !strings.Contains(out, "x:") || !strings.Contains(out, "y:") {
		t.Fatalf("scatter missing axes info:\n%s", out)
	}
}

func TestScatterCollisionGlyph(t *testing.T) {
	s := Scatter{Width: 10, Height: 4}
	out := s.Render([]float64{0, 0}, []float64{0, 0}, []string{"A", "B"})
	if !strings.Contains(out, "*") {
		t.Fatalf("collision glyph missing:\n%s", out)
	}
}

func TestScatterDegenerate(t *testing.T) {
	s := DefaultScatter("t")
	if out := s.Render(nil, nil, nil); !strings.Contains(out, "no points") {
		t.Fatalf("empty scatter: %s", out)
	}
	// Identical coordinates must not divide by zero.
	out := s.Render([]float64{1, 1}, []float64{2, 2}, []string{"A", "A"})
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into render")
	}
	// Mismatched lengths are reported, not panicked on.
	if out := s.Render([]float64{1}, []float64{1, 2}, []string{"A"}); !strings.Contains(out, "mismatched") {
		t.Fatalf("mismatch not reported: %s", out)
	}
}

func TestScatterEmptyLabelDot(t *testing.T) {
	s := Scatter{Width: 10, Height: 4}
	out := s.Render([]float64{0}, []float64{0}, []string{""})
	if !strings.Contains(out, ".") {
		t.Fatalf("default glyph missing:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.Add("x", 1)
	tbl.Add("longer", 2.5)
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "2.5000") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.Add("a")
	if strings.Contains(tbl.Render(), "---") {
		t.Fatal("separator printed without header")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([][]float64{{0, 1}, {1, 0}}, []string{"r1", "r2"})
	if !strings.Contains(out, "#") || !strings.Contains(out, "r1") {
		t.Fatalf("heatmap:\n%s", out)
	}
	if !strings.Contains(Heatmap(nil, nil), "empty") {
		t.Fatal("empty heatmap not handled")
	}
	// Constant matrix: no division by zero.
	if out := Heatmap([][]float64{{3, 3}}, nil); strings.Contains(out, "NaN") {
		t.Fatal("NaN in constant heatmap")
	}
}

func TestSortedCounts(t *testing.T) {
	got := SortedCounts([]string{"B", "A", "A"})
	if got != "A:2 B:1" {
		t.Fatalf("SortedCounts = %q", got)
	}
	if SortedCounts(nil) != "" {
		t.Fatal("empty counts not empty")
	}
}

func smallDendrogram(t *testing.T) *cluster.Dendrogram {
	t.Helper()
	d := linalg.FromRows([][]float64{
		{0, 1, 9, 9},
		{1, 0, 9, 9},
		{9, 9, 0, 2},
		{9, 9, 2, 0},
	})
	dg, err := cluster.Cluster(d, cluster.Single)
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

func TestRenderDendrogram(t *testing.T) {
	dg := smallDendrogram(t)
	out := RenderDendrogram(dg, []string{"A", "A", "B", "B"}, 10, 0)
	if !strings.Contains(out, "- A") || !strings.Contains(out, "- B") {
		t.Fatalf("leaves missing:\n%s", out)
	}
	if !strings.Contains(out, "h=") {
		t.Fatalf("heights missing:\n%s", out)
	}
}

func TestRenderDendrogramSummarises(t *testing.T) {
	dg := smallDendrogram(t)
	out := RenderDendrogram(dg, []string{"A", "A", "B", "B"}, 0, 0)
	// Depth 0: the whole tree is one summary line.
	if !strings.Contains(out, "size=4") || !strings.Contains(out, "A:2 B:2") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

func TestRenderDendrogramEmpty(t *testing.T) {
	if out := RenderDendrogram(&cluster.Dendrogram{}, nil, 3, 0); !strings.Contains(out, "empty") {
		t.Fatalf("empty dendrogram: %s", out)
	}
}

func TestRenderDendrogramSingleLeaf(t *testing.T) {
	dg := &cluster.Dendrogram{N: 1}
	out := RenderDendrogram(dg, []string{"X"}, 3, 0)
	if !strings.Contains(out, "X") {
		t.Fatalf("single leaf: %s", out)
	}
}

func TestRenderClusterSummary(t *testing.T) {
	out := RenderClusterSummary([]int{0, 0, 1}, []string{"A", "A", "B"})
	if !strings.Contains(out, "cluster 1: size=2 {A:2}") {
		t.Fatalf("summary:\n%s", out)
	}
	if !strings.Contains(out, "cluster 2: size=1 {B:1}") {
		t.Fatalf("summary:\n%s", out)
	}
	// Without labels, indices are used.
	out = RenderClusterSummary([]int{0}, nil)
	if !strings.Contains(out, "#0") {
		t.Fatalf("label fallback:\n%s", out)
	}
}
