package plot

import (
	"fmt"
	"sort"
	"strings"

	"iokast/internal/cluster"
)

// Dendrogram renders a merge tree as indented text, leaves ordered by the
// merge structure. For the paper-sized datasets (110 leaves) the full tree
// is long, so RenderDendrogram offers a maximum depth after which subtrees
// are summarised by their label composition — which is exactly what the
// paper's dendrogram figures are read for.

// RenderDendrogram renders the dendrogram; subtrees deeper than maxDepth
// (or smaller than minSize) are summarised as one line with their size and
// label histogram. labels may be nil.
func RenderDendrogram(dg *cluster.Dendrogram, labels []string, maxDepth, minSize int) string {
	n := dg.N
	if n == 0 {
		return "(empty dendrogram)\n"
	}
	type node struct {
		merge    *cluster.Merge
		children [2]int
		leaf     int
	}
	nodes := make([]node, n+len(dg.Merges))
	for i := 0; i < n; i++ {
		nodes[i] = node{leaf: i, children: [2]int{-1, -1}}
	}
	for i := range dg.Merges {
		m := dg.Merges[i]
		nodes[n+i] = node{merge: &dg.Merges[i], children: [2]int{m.A, m.B}, leaf: -1}
	}
	root := n + len(dg.Merges) - 1
	if len(dg.Merges) == 0 {
		root = 0
	}

	var leavesOf func(id int) []int
	leavesOf = func(id int) []int {
		nd := nodes[id]
		if nd.leaf >= 0 {
			return []int{nd.leaf}
		}
		return append(leavesOf(nd.children[0]), leavesOf(nd.children[1])...)
	}

	labelOf := func(leaf int) string {
		if labels != nil && leaf < len(labels) {
			return labels[leaf]
		}
		return fmt.Sprintf("#%d", leaf)
	}

	var b strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		indent := strings.Repeat("| ", depth)
		nd := nodes[id]
		if nd.leaf >= 0 {
			fmt.Fprintf(&b, "%s- %s\n", indent, labelOf(nd.leaf))
			return
		}
		leaves := leavesOf(id)
		if depth >= maxDepth || len(leaves) <= minSize {
			ls := make([]string, len(leaves))
			for i, l := range leaves {
				ls[i] = labelOf(l)
			}
			fmt.Fprintf(&b, "%s+ h=%.4f size=%d {%s}\n", indent, nd.merge.Height, len(leaves), SortedCounts(ls))
			return
		}
		fmt.Fprintf(&b, "%s+ h=%.4f size=%d\n", indent, nd.merge.Height, len(leaves))
		walk(nd.children[0], depth+1)
		walk(nd.children[1], depth+1)
	}
	walk(root, 0)
	return b.String()
}

// RenderClusterSummary prints, for a cut into k clusters, one line per
// cluster with its size and label composition, ordered by cluster size
// descending — a compact rendering of what the paper's dendrogram figures
// demonstrate.
func RenderClusterSummary(assign []int, labels []string) string {
	groups := map[int][]string{}
	for i, c := range assign {
		lab := fmt.Sprintf("#%d", i)
		if labels != nil && i < len(labels) {
			lab = labels[i]
		}
		groups[c] = append(groups[c], lab)
	}
	ids := make([]int, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(groups[ids[i]]) != len(groups[ids[j]]) {
			return len(groups[ids[i]]) > len(groups[ids[j]])
		}
		return ids[i] < ids[j]
	})
	var b strings.Builder
	for rank, id := range ids {
		fmt.Fprintf(&b, "cluster %d: size=%d {%s}\n", rank+1, len(groups[id]), SortedCounts(groups[id]))
	}
	return b.String()
}
