package ir

import (
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
)

const loopProgram = `
module demo
func sum
block entry
  load 1
  add 2
  add 2
  add 2
  store 2
block exit
  ret 1
`

func TestParseBasic(t *testing.T) {
	m, err := ParseString(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" || len(m.Funcs) != 1 {
		t.Fatalf("module: %+v", m)
	}
	f := m.Funcs[0]
	if f.Name != "sum" || len(f.Blocks) != 2 {
		t.Fatalf("func: %+v", f)
	}
	if len(f.Blocks[0].Insts) != 5 || f.Blocks[0].Insts[1].Opcode != "add" || f.Blocks[0].Insts[1].Arity != 2 {
		t.Fatalf("insts: %+v", f.Blocks[0].Insts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module",                             // missing name
		"func",                               // missing name
		"block entry",                        // block outside func
		"add 2",                              // instruction outside block
		"module m\nfunc f\nadd 1",            // instruction outside block
		"module m\nfunc f\nblock b\nadd x",   // bad arity
		"module m\nfunc f\nblock b\nadd 1 2", // too many fields
		"module m\nfunc f\nblock b\nadd -1",  // negative arity
	}
	for _, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestParseSkipsComments(t *testing.T) {
	m, err := ParseString("# hi\nmodule m\n\nfunc f\nblock b\nret 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs[0].Blocks[0].Insts) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestToStringCompressesRuns(t *testing.T) {
	m, err := ParseString(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := ToString(m, Options{})
	text := s.Format()
	if !strings.Contains(text, "add[2]:3") {
		t.Fatalf("run not compressed: %q", text)
	}
	if !strings.Contains(text, "[ROOT]:1 [HANDLE]:1 [BLOCK]:1") {
		t.Fatalf("structure tokens missing: %q", text)
	}
}

func TestIgnoreArity(t *testing.T) {
	m, _ := ParseString(loopProgram)
	s := ToString(m, Options{IgnoreArity: true})
	if strings.Contains(s.Format(), "[2]") {
		t.Fatalf("arity leaked: %q", s.Format())
	}
}

func TestTreeValid(t *testing.T) {
	m, _ := ParseString(loopProgram)
	if err := Tree(m, Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// Programs with similar structure must score higher under the Kast kernel
// than structurally different ones — the paper's future-work hypothesis.
func TestKastSeparatesPrograms(t *testing.T) {
	loopA, _ := ParseString(loopProgram)
	loopB, _ := ParseString(strings.ReplaceAll(loopProgram, "add 2\n  add 2\n  add 2", "add 2\n  add 2\n  add 2\n  add 2"))
	branchy, _ := ParseString(`
module other
func dispatch
block entry
  cmp 2
  br 3
block then
  call 4
  br 1
block else
  call 4
  ret 1
`)
	k := kernel.Normalized{K: &core.Kast{CutWeight: 2}}
	opt := Options{}
	simLoops := k.Compare(ToString(loopA, opt), ToString(loopB, opt))
	simCross := k.Compare(ToString(loopA, opt), ToString(branchy, opt))
	if simLoops <= simCross {
		t.Fatalf("loop-loop similarity %v not above loop-branch %v", simLoops, simCross)
	}
}

func TestEmptyModule(t *testing.T) {
	m := &Module{Name: "empty"}
	s := ToString(m, Options{})
	if len(s) != 1 || s[0].Literal != "[ROOT]" {
		t.Fatalf("empty module string: %v", s)
	}
}
