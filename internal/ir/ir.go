// Package ir is the paper's future-work demonstration (§6: "Future efforts
// of this project will focus on the comparison of the intermediate
// representation delivered by the LLVM Compiler Infrastructure using the
// string representation and kernel method here proposed").
//
// It defines a miniature SSA-flavoured intermediate representation —
// modules of functions of basic blocks of instructions — plus a parser for
// a small textual form, and converts programs into the same weighted-token
// strings the I/O pipeline produces, so the Kast Spectrum Kernel can
// compare programs exactly as it compares access patterns. The conversion
// reuses the paper's tree layout: MODULE plays ROOT, FUNC plays HANDLE,
// BLOCK stays BLOCK, and instructions are leaves whose repetition count is
// folded by the same run-compression rule.
package ir

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"iokast/internal/token"
	"iokast/internal/tree"
)

// Instruction is one IR operation. Opcode examples: add, mul, load, store,
// br, phi, ret, call. Arity is the operand count; it plays the role the
// byte count plays for I/O operations (a secondary discriminator the
// string representation can keep or ignore).
type Instruction struct {
	Opcode string
	Arity  int
}

// Block is a labelled basic block.
type Block struct {
	Label string
	Insts []Instruction
}

// Function is a named sequence of basic blocks.
type Function struct {
	Name   string
	Blocks []Block
}

// Module is a compilation unit.
type Module struct {
	Name  string
	Funcs []Function
}

// Parse reads the textual mini-IR form:
//
//	module demo
//	func compute
//	block entry
//	  load 1
//	  add 2
//	  store 2
//	block exit
//	  ret 1
//
// Indentation is ignored; "opcode arity" lines belong to the innermost
// block. Blank lines and '#' comments are skipped.
func Parse(r io.Reader) (*Module, error) {
	m := &Module{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "module":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ir: line %d: module needs a name", lineno)
			}
			m.Name = fields[1]
		case "func":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ir: line %d: func needs a name", lineno)
			}
			m.Funcs = append(m.Funcs, Function{Name: fields[1]})
		case "block":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ir: line %d: block needs a label", lineno)
			}
			if len(m.Funcs) == 0 {
				return nil, fmt.Errorf("ir: line %d: block outside func", lineno)
			}
			f := &m.Funcs[len(m.Funcs)-1]
			f.Blocks = append(f.Blocks, Block{Label: fields[1]})
		default:
			if len(m.Funcs) == 0 || len(m.Funcs[len(m.Funcs)-1].Blocks) == 0 {
				return nil, fmt.Errorf("ir: line %d: instruction outside block", lineno)
			}
			inst := Instruction{Opcode: fields[0]}
			if len(fields) > 2 {
				return nil, fmt.Errorf("ir: line %d: instruction is 'opcode [arity]'", lineno)
			}
			if len(fields) == 2 {
				if _, err := fmt.Sscanf(fields[1], "%d", &inst.Arity); err != nil {
					return nil, fmt.Errorf("ir: line %d: bad arity %q", lineno, fields[1])
				}
				if inst.Arity < 0 {
					return nil, fmt.Errorf("ir: line %d: negative arity", lineno)
				}
			}
			f := &m.Funcs[len(m.Funcs)-1]
			b := &f.Blocks[len(f.Blocks)-1]
			b.Insts = append(b.Insts, inst)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ir: read: %w", err)
	}
	return m, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Module, error) { return Parse(strings.NewReader(s)) }

// Options configure the module-to-string conversion.
type Options struct {
	// IgnoreArity zeroes operand counts, the analogue of the byte-free
	// string variant.
	IgnoreArity bool
	// Compress overrides the compression configuration (zero Passes means
	// the paper default).
	Compress tree.CompressOptions
}

// Tree converts the module into a pattern tree: MODULE/FUNC/BLOCK levels
// map onto the paper's ROOT/HANDLE/BLOCK levels and instructions become
// leaves ("the proposed string representation is independent from the
// domain").
func Tree(m *Module, opt Options) *tree.Node {
	root := tree.NewInterior(tree.Root)
	for _, f := range m.Funcs {
		fn := tree.NewInterior(tree.Handle)
		for _, blk := range f.Blocks {
			bn := tree.NewInterior(tree.Block)
			for _, inst := range blk.Insts {
				arity := int64(inst.Arity)
				if opt.IgnoreArity {
					arity = 0
				}
				bn.Children = append(bn.Children, tree.NewOp(inst.Opcode, arity))
			}
			fn.Children = append(fn.Children, bn)
		}
		root.Children = append(root.Children, fn)
	}
	passes := opt.Compress
	if passes.Passes == 0 {
		passes = tree.DefaultCompress()
	}
	tree.Compress(root, passes)
	return root
}

// ToString converts the module to its weighted string.
func ToString(m *Module, opt Options) token.String {
	return token.FromTree(Tree(m, opt))
}
