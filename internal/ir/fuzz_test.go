package ir

import "testing"

// FuzzParse checks the mini-IR parser never panics and that accepted
// modules always convert to valid trees and weighted strings.
func FuzzParse(f *testing.F) {
	f.Add("module m\nfunc f\nblock b\nadd 2\nret 1\n")
	f.Add("# comment\nmodule x\n")
	f.Add("module m\nfunc f\nblock b\nop 0\nop 0\nop 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ParseString(input)
		if err != nil {
			return
		}
		root := Tree(m, Options{})
		if err := root.Validate(); err != nil {
			t.Fatalf("invalid tree from accepted module: %v", err)
		}
		s := ToString(m, Options{})
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid string from accepted module: %v", err)
		}
	})
}
