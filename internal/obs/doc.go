// Package obs is the zero-dependency telemetry registry behind
// iokserve's GET /metrics endpoint.
//
// A Registry owns named metric families — counters, gauges, and
// log-linear latency histograms — and renders them in the Prometheus
// text exposition format. Histograms reuse internal/load's HDR bucket
// geometry (via load.Histogram), so the latencies the server exposes
// and the latencies the load harness records are quantized identically
// and can be compared bucket for bucket.
//
// Instruments are nil-safe: every method on a nil *Counter, *Gauge, or
// *Histogram is a no-op. Deep layers (store, engine, sketch, shard,
// stream) therefore hold plain Metrics structs whose zero value disables
// telemetry entirely — no registry, no conditionals at call sites, and
// no cost beyond a nil check when observability is off.
package obs
