package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second) // must not panic
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("iok_test_total", "help", Labels{"shard": "0"})
	b := r.Counter("iok_test_total", "help", Labels{"shard": "0"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("iok_test_total", "help", Labels{"shard": "1"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("iok_test_total", "help", nil)
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_requests_total", "Total requests.", Labels{"endpoint": "/classify", "status": "200"}).Add(7)
	r.Counter("iok_requests_total", "Total requests.", Labels{"endpoint": "/classify", "status": "400"}).Add(2)
	r.Gauge("iok_inflight", "In-flight requests.", nil).Set(3)
	r.GaugeFunc("iok_corpus_traces", "Corpus size.", nil, func() float64 { return 42 })
	h := r.Histogram("iok_request_seconds", "Request latency.", Labels{"endpoint": "/classify"})
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(30 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	has := func(s string) bool {
		for _, l := range lines {
			if l == s {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"# HELP iok_requests_total Total requests.",
		"# TYPE iok_requests_total counter",
		`iok_requests_total{endpoint="/classify",status="200"} 7`,
		`iok_requests_total{endpoint="/classify",status="400"} 2`,
		"# TYPE iok_inflight gauge",
		"iok_inflight 3",
		"iok_corpus_traces 42",
		"# TYPE iok_request_seconds histogram",
		`iok_request_seconds_bucket{endpoint="/classify",le="+Inf"} 3`,
		`iok_request_seconds_count{endpoint="/classify"} 3`,
	} {
		if !has(want) {
			t.Fatalf("exposition missing line %q\n---\n%s", want, out)
		}
	}

	// Histogram buckets are cumulative and end at the total count.
	var lastCum string
	for _, l := range lines {
		if strings.HasPrefix(l, "iok_request_seconds_bucket") {
			lastCum = l[strings.LastIndexByte(l, ' ')+1:]
		}
	}
	if lastCum != "3" {
		t.Fatalf("final cumulative bucket = %s, want 3", lastCum)
	}

	// Deterministic output: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("WriteText is not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_esc_total", "", Labels{"path": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `iok_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped line %q missing from:\n%s", want, sb.String())
	}
}

func TestHandlerMethodChecked(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_x_total", "", nil).Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "iok_x_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics = %d body=%d bytes", rec.Code, rec.Body.Len())
	}
}
