package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second) // must not panic
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("iok_test_total", "help", Labels{"shard": "0"})
	b := r.Counter("iok_test_total", "help", Labels{"shard": "0"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("iok_test_total", "help", Labels{"shard": "1"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("iok_test_total", "help", nil)
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_requests_total", "Total requests.", Labels{"endpoint": "/classify", "status": "200"}).Add(7)
	r.Counter("iok_requests_total", "Total requests.", Labels{"endpoint": "/classify", "status": "400"}).Add(2)
	r.Gauge("iok_inflight", "In-flight requests.", nil).Set(3)
	r.GaugeFunc("iok_corpus_traces", "Corpus size.", nil, func() float64 { return 42 })
	h := r.Histogram("iok_request_seconds", "Request latency.", Labels{"endpoint": "/classify"})
	h.Observe(500 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(30 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	has := func(s string) bool {
		for _, l := range lines {
			if l == s {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"# HELP iok_requests_total Total requests.",
		"# TYPE iok_requests_total counter",
		`iok_requests_total{endpoint="/classify",status="200"} 7`,
		`iok_requests_total{endpoint="/classify",status="400"} 2`,
		"# TYPE iok_inflight gauge",
		"iok_inflight 3",
		"iok_corpus_traces 42",
		"# TYPE iok_request_seconds histogram",
		`iok_request_seconds_bucket{endpoint="/classify",le="+Inf"} 3`,
		`iok_request_seconds_count{endpoint="/classify"} 3`,
	} {
		if !has(want) {
			t.Fatalf("exposition missing line %q\n---\n%s", want, out)
		}
	}

	// Histogram buckets are cumulative and end at the total count.
	var lastCum string
	for _, l := range lines {
		if strings.HasPrefix(l, "iok_request_seconds_bucket") {
			lastCum = l[strings.LastIndexByte(l, ' ')+1:]
		}
	}
	if lastCum != "3" {
		t.Fatalf("final cumulative bucket = %s, want 3", lastCum)
	}

	// Deterministic output: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("WriteText is not deterministic")
	}
}

// TestWriteTextConcurrentWithRegistration pins the scrape/registration
// race: series are created lazily at request time (the serve middleware
// mints a counter for each new endpoint/method/status), so a /metrics
// render must not iterate the live series maps after dropping the
// registry lock. Under -race this fails loudly without the snapshot;
// even without -race a concurrent map read/write fatals the runtime.
func TestWriteTextConcurrentWithRegistration(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			l := Labels{"i": strconv.Itoa(i % 128)}
			r.Counter("iok_race_total", "Racing counter.", l).Inc()
			r.Histogram("iok_race_seconds", "Racing histogram.", l).Observe(time.Millisecond)
			r.GaugeFunc("iok_race_live", "Racing sampled gauge.", l, func() float64 { return 1 })
		}
	}()
	for i := 0; i < 200; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestFuncSeriesLastWins pins the reopen contract: re-registering a
// sampled series replaces its func (so closures re-bind to fresh
// objects), while a series backed by a real instrument stays exclusive.
func TestFuncSeriesLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("iok_live", "Live objects.", nil, func() float64 { return 1 })
	r.GaugeFunc("iok_live", "Live objects.", nil, func() float64 { return 2 })
	r.CounterFunc("iok_seen_total", "Objects seen.", nil, func() float64 { return 3 })
	r.CounterFunc("iok_seen_total", "Objects seen.", nil, func() float64 { return 4 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"iok_live 2", "iok_seen_total 4"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q (last registration must win):\n%s", want, sb.String())
		}
	}

	r.Gauge("iok_g", "An instrument gauge.", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("GaugeFunc over an instrument-backed gauge did not panic")
		}
	}()
	r.GaugeFunc("iok_g", "An instrument gauge.", nil, func() float64 { return 0 })
}

// TestHelpConflictPanics pins the documented wiring check: two layers
// disagreeing on a family's help string is a bug, not a silent
// first-wins.
func TestHelpConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_h_total", "One help.", nil)
	r.Counter("iok_h_total", "One help.", nil) // identical re-registration is fine
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting help did not panic")
		}
	}()
	r.Counter("iok_h_total", "Another help.", nil)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_esc_total", "", Labels{"path": "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `iok_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped line %q missing from:\n%s", want, sb.String())
	}
}

func TestHandlerMethodChecked(t *testing.T) {
	r := NewRegistry()
	r.Counter("iok_x_total", "", nil).Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "iok_x_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/metrics", nil))
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics = %d body=%d bytes", rec.Code, rec.Body.Len())
	}
}
