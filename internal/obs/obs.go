package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iokast/internal/hdr"
)

// Labels attaches dimension values to one series within a family, e.g.
// Labels{"endpoint": "/classify", "status": "200"}. Label order never
// matters: series identity and exposition order use the sorted form.
type Labels map[string]string

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (no-ops), so uninstrumented components cost nothing.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records durations into internal/hdr's log-linear bucket
// geometry (the same geometry the load harness records with). Unlike the load harness's per-worker histograms this one is
// shared across request goroutines, so observations take a mutex; the
// critical section is a handful of integer ops.
type Histogram struct {
	mu sync.Mutex
	h  hdr.Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Record(d)
	h.mu.Unlock()
}

// snapshot returns the buckets, count, and sum under the lock.
func (h *Histogram) snapshot() (buckets []hdr.Bucket, count int64, sum time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Buckets(), h.h.Count(), h.h.Sum()
}

// metric kinds, also the TYPE strings in the exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labelled member of a family: exactly one of the value
// fields is set. fn-backed series are sampled at exposition time.
type series struct {
	labels  string // rendered, sorted: `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with a fixed type and help string.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
}

// Registry is the single pane of glass: every layer registers its
// instruments here and WriteText renders them all. Registration is
// get-or-create — asking twice for the same name and labels returns the
// same instrument, which is how shard-shared counters (every shard's
// engine pointing at one iok_engine_adds_total) fall out for free.
// Func-backed series (GaugeFunc/CounterFunc) are last-wins instead:
// re-registering replaces the sampling func. Registering the same name
// with a different type or help panics: that is a wiring bug, and
// wiring runs once at startup.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// getSeries returns the series for name+labels, creating family and
// series as needed. Panics on type/help conflicts. Callers must hold
// r.mu: series fields are published to WriteText's snapshot under the
// same lock, so instrument assignment has to stay inside the critical
// section too.
func (r *Registry) getSeries(name, help, kind string, labels Labels) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
		}
		if f.help != help {
			panic(fmt.Sprintf("obs: metric %q registered with help %q, requested with %q", name, f.help, help))
		}
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, kindCounter, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as a func", name, s.labels))
	}
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, kindGauge, labels)
	if s.fn != nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as a func", name, s.labels))
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for name+labels, creating it on first
// use.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, kindHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{}
	}
	return s.hist
}

// GaugeFunc registers a gauge whose value is sampled by calling f at
// exposition time — for values something else already owns (corpus
// size, interner size, live sessions) where mirroring into a Gauge
// would just invite drift. Registering the same series again replaces
// the sampling func (last-wins), so a layer closed and reopened against
// the same registry samples the live object, not a stale closure.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, kindGauge, labels)
	if s.gauge != nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as an instrument", name, s.labels))
	}
	s.fn = f
}

// CounterFunc registers a counter sampled by calling f at exposition
// time. f must be monotone for the exposition to be honest; the
// registry cannot check that. Re-registration replaces the sampling
// func, like GaugeFunc.
func (r *Registry) CounterFunc(name, help string, labels Labels, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.getSeries(name, help, kindCounter, labels)
	if s.counter != nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as an instrument", name, s.labels))
	}
	s.fn = f
}

// renderLabels renders labels in sorted-key order with Prometheus
// escaping, or "" when empty.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
