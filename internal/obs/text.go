package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition media type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format (0.0.4): families sorted by name, series sorted by
// label signature, histograms as cumulative le-buckets in seconds plus
// _sum and _count. Output is deterministic for a given registry state,
// which the tests lean on.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')

		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSeries(bw, f, f.series[k])
		}
	}
	return bw.Flush()
}

// writeSeries renders one labelled series of f.
func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch {
	case s.hist != nil:
		buckets, count, sum := s.hist.snapshot()
		var cum int64
		for _, b := range buckets {
			cum += b.Count
			writeSample(bw, f.name+"_bucket", withLE(s.labels, formatFloat(float64(b.UpperMicros)/1e6)), strconv.FormatInt(cum, 10))
		}
		writeSample(bw, f.name+"_bucket", withLE(s.labels, "+Inf"), strconv.FormatInt(count, 10))
		writeSample(bw, f.name+"_sum", s.labels, formatFloat(sum.Seconds()))
		writeSample(bw, f.name+"_count", s.labels, strconv.FormatInt(count, 10))
	case s.fn != nil:
		writeSample(bw, f.name, s.labels, formatFloat(s.fn()))
	case s.counter != nil:
		writeSample(bw, f.name, s.labels, strconv.FormatInt(s.counter.Value(), 10))
	case s.gauge != nil:
		writeSample(bw, f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	}
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// withLE appends the le label to an already-rendered label set. The
// text format does not require sorted labels within a line, only that
// the set identifies the series, so appending keeps this simple and
// deterministic.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics endpoint: method-checked, read-only,
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteText(w)
	})
}
