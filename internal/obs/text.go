package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// ContentType is the Prometheus text exposition media type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// famSnapshot is one family copied out of the registry under its lock:
// the immutable header plus a value copy of every series. Series are
// inserted (and their instrument fields assigned) by getSeries under
// r.mu, so rendering must not touch the live maps or series structs once
// the lock is dropped — a scrape concurrent with a lazily created
// request counter would otherwise be a concurrent map read/write.
type famSnapshot struct {
	name, help, kind string
	series           []series
}

// WriteText renders every registered family in the Prometheus text
// exposition format (0.0.4): families sorted by name, series sorted by
// label signature, histograms as cumulative le-buckets in seconds plus
// _sum and _count. Output is deterministic for a given registry state,
// which the tests lean on. The registry lock is held only while
// snapshotting, never during instrument reads (atomic / independently
// locked), fn sampling, or the writes to w.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		fs := famSnapshot{name: f.name, help: f.help, kind: f.kind, series: make([]series, 0, len(f.series))}
		for _, s := range f.series {
			fs.series = append(fs.series, *s)
		}
		sort.Slice(fs.series, func(i, j int) bool { return fs.series[i].labels < fs.series[j].labels })
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')

		for i := range f.series {
			writeSeries(bw, f.name, &f.series[i])
		}
	}
	return bw.Flush()
}

// writeSeries renders one labelled series of the named family.
func writeSeries(bw *bufio.Writer, name string, s *series) {
	switch {
	case s.hist != nil:
		buckets, count, sum := s.hist.snapshot()
		var cum int64
		for _, b := range buckets {
			cum += b.Count
			writeSample(bw, name+"_bucket", withLE(s.labels, formatFloat(float64(b.UpperMicros)/1e6)), strconv.FormatInt(cum, 10))
		}
		writeSample(bw, name+"_bucket", withLE(s.labels, "+Inf"), strconv.FormatInt(count, 10))
		writeSample(bw, name+"_sum", s.labels, formatFloat(sum.Seconds()))
		writeSample(bw, name+"_count", s.labels, strconv.FormatInt(count, 10))
	case s.fn != nil:
		writeSample(bw, name, s.labels, formatFloat(s.fn()))
	case s.counter != nil:
		writeSample(bw, name, s.labels, strconv.FormatInt(s.counter.Value(), 10))
	case s.gauge != nil:
		writeSample(bw, name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	}
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// withLE appends the le label to an already-rendered label set. The
// text format does not require sorted labels within a line, only that
// the set identifies the series, so appending keeps this simple and
// deterministic.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns the GET /metrics endpoint: method-checked, read-only,
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WriteText(w)
	})
}
