package core

import (
	"sync"

	"iokast/internal/token"
)

// Prepared is a weighted string preprocessed for repeated Kast kernel
// evaluations: literals interned to integer ids over a shared table, plus
// the prefix-weight and rolling-hash arrays Kast.Compare builds internally
// for every pair. Preparing once and comparing many times removes the
// per-pair preprocessing cost, which is what makes incremental Gram updates
// cheap (compare internal/engine).
//
// A Prepared view is independent of the kernel's cut weight and viability
// variant, so the same view can be reused across kernels with different
// parameters without invalidation.
type Prepared struct {
	view seqView
	str  token.String
	// unknown holds the literals that were absent from the shared table when
	// an ephemeral view was prepared (nil for interned views). They carry
	// negative scratch ids, which can never collide with table ids; Stale
	// reports whether any of them has been interned since.
	unknown []string
}

// String returns the original weighted string the view was prepared from.
func (p *Prepared) String() token.String { return p.str }

// Len returns the token length of the underlying string.
func (p *Prepared) Len() int { return len(p.view.ids) }

// Interner interns token literals to dense int32 ids shared by every string
// prepared through it. Views prepared by the same Interner are mutually
// comparable with Kast.ComparePrepared; views from different Interners are
// not (their ids come from different tables).
//
// Prepare is safe for concurrent use. The table only grows: preparing new
// strings never invalidates previously returned views.
type Interner struct {
	mu   sync.Mutex
	idOf map[string]int32
	next int32
}

// NewInterner returns an empty literal table.
func NewInterner() *Interner {
	return &Interner{idOf: make(map[string]int32), next: 1}
}

// Prepare interns x and precomputes its prefix structures. The input string
// is copied, so later mutation of x does not affect the view.
func (in *Interner) Prepare(x token.String) *Prepared {
	cp := make(token.String, len(x))
	copy(cp, x)

	n := len(cp)
	v := seqView{
		ids:  make([]int32, n),
		pw:   make([]int, n+1),
		h1:   make([]uint64, n+1),
		h2:   make([]uint64, n+1),
		pow1: make([]uint64, n+1),
		pow2: make([]uint64, n+1),
	}
	v.pow1[0], v.pow2[0] = 1, 1
	// Only the id table needs the lock; the O(n) prefix/hash build below
	// runs outside it so concurrent Prepare calls overlap.
	in.mu.Lock()
	for i, t := range cp {
		id, ok := in.idOf[t.Literal]
		if !ok {
			id = in.next
			in.next++
			in.idOf[t.Literal] = id
		}
		v.ids[i] = id
	}
	in.mu.Unlock()
	for i, t := range cp {
		id := v.ids[i]
		v.pw[i+1] = v.pw[i] + t.Weight
		v.h1[i+1] = v.h1[i]*hashBase1 + uint64(id)
		v.h2[i+1] = v.h2[i]*hashBase2 + uint64(id)
		v.pow1[i+1] = v.pow1[i] * hashBase1
		v.pow2[i+1] = v.pow2[i] * hashBase2
	}
	return &Prepared{view: v, str: cp}
}

// Size returns the number of distinct literals interned so far.
func (in *Interner) Size() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.idOf)
}

// PrepareEphemeral is Prepare for query-only strings: literals already in
// the table resolve to their shared ids, but unknown literals are NOT
// interned — they get negative scratch ids unique within this view, so the
// shared table never grows from query traffic. A scratch id can never equal
// a table id (those start at 1 and only grow), and the kernel only compares
// ids for equality, so an unknown query literal simply never matches any
// corpus literal — which is exactly right, because a literal absent from
// the table is absent from every prepared corpus string.
//
// The returned view is valid against corpus views prepared before it. If a
// concurrent Prepare interns one of the unknown literals afterwards, newer
// corpus views would carry the table id while this view still carries the
// scratch id; Stale detects that so callers can re-prepare. Views with no
// unknown literals are never stale.
func (in *Interner) PrepareEphemeral(x token.String) *Prepared {
	cp := make(token.String, len(x))
	copy(cp, x)

	n := len(cp)
	v := seqView{
		ids:  make([]int32, n),
		pw:   make([]int, n+1),
		h1:   make([]uint64, n+1),
		h2:   make([]uint64, n+1),
		pow1: make([]uint64, n+1),
		pow2: make([]uint64, n+1),
	}
	v.pow1[0], v.pow2[0] = 1, 1
	var unknown []string
	scratch := make(map[string]int32)
	in.mu.Lock()
	for i, t := range cp {
		id, ok := in.idOf[t.Literal]
		if !ok {
			id, ok = scratch[t.Literal]
			if !ok {
				id = -int32(len(unknown)) - 1
				scratch[t.Literal] = id
				unknown = append(unknown, t.Literal)
			}
		}
		v.ids[i] = id
	}
	in.mu.Unlock()
	for i, t := range cp {
		id := v.ids[i]
		v.pw[i+1] = v.pw[i] + t.Weight
		v.h1[i+1] = v.h1[i]*hashBase1 + uint64(id)
		v.h2[i+1] = v.h2[i]*hashBase2 + uint64(id)
		v.pow1[i+1] = v.pow1[i] * hashBase1
		v.pow2[i+1] = v.pow2[i] * hashBase2
	}
	return &Prepared{view: v, str: cp, unknown: unknown}
}

// Stale reports whether any literal that was unknown when p was prepared
// with PrepareEphemeral has since been interned into the table. A stale
// view must not be compared against views prepared after the interning;
// re-prepare instead. Views from Prepare are never stale.
func (in *Interner) Stale(p *Prepared) bool {
	if len(p.unknown) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, lit := range p.unknown {
		if _, ok := in.idOf[lit]; ok {
			return true
		}
	}
	return false
}

// ComparePrepared is Compare over views prepared by a shared Interner. It
// produces exactly the same value as Compare on the original strings (the
// kernel only depends on literal equality, which interning preserves) while
// skipping the per-pair interning and prefix-structure work.
func (k *Kast) ComparePrepared(a, b *Prepared) float64 {
	return k.compareViews(a.view, b.view)
}
