package core

import (
	"strings"
	"testing"

	"iokast/internal/trace"
	"iokast/internal/tree"
)

func mustTrace(t *testing.T, text string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const sampleTrace = `
open fh=1
write fh=1 bytes=8
write fh=1 bytes=8
write fh=1 bytes=8
fileno fh=1
close fh=1
open fh=2
lseek fh=2
read fh=2 bytes=4096
lseek fh=2
read fh=2 bytes=4096
close fh=2
`

func TestConvertWithBytes(t *testing.T) {
	s := Convert(mustTrace(t, sampleTrace), Options{})
	got := s.Format()
	want := "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[8]:3 [LEVEL_UP]:3 [HANDLE]:1 [BLOCK]:1 lseek+read[4096]:2"
	if got != want {
		t.Fatalf("Convert:\n got %q\nwant %q", got, want)
	}
}

func TestConvertIgnoreBytes(t *testing.T) {
	s := Convert(mustTrace(t, sampleTrace), Options{IgnoreBytes: true})
	got := s.Format()
	// With bytes zeroed, lseek/read merge under rule 3 (same zero count).
	want := "[ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[0]:3 [LEVEL_UP]:3 [HANDLE]:1 [BLOCK]:1 lseek+read[0]:2"
	if got != want {
		t.Fatalf("Convert(no bytes):\n got %q\nwant %q", got, want)
	}
}

func TestConvertDoesNotMutateInput(t *testing.T) {
	tr := mustTrace(t, sampleTrace)
	before := tr.TotalBytes()
	Convert(tr, Options{IgnoreBytes: true})
	if tr.TotalBytes() != before {
		t.Fatal("IgnoreBytes mutated the input trace")
	}
}

func TestConvertNoCompression(t *testing.T) {
	s := Convert(mustTrace(t, sampleTrace), Options{Compress: tree.CompressOptions{Passes: NoCompression}})
	// Three separate write tokens survive.
	if !strings.Contains(s.Format(), "write[8]:1 [LEVEL_UP]:1 write[8]:1") {
		t.Fatalf("compression not disabled: %q", s.Format())
	}
}

func TestConvertCustomPasses(t *testing.T) {
	one := Convert(mustTrace(t, sampleTrace), Options{Compress: tree.CompressOptions{Passes: 1}})
	two := Convert(mustTrace(t, sampleTrace), Options{})
	// One pass merges lseek+read pairs (rule 4) but cannot collapse the
	// resulting run (rule 1 already ran this pass); two passes can.
	if one.Equal(two) {
		t.Fatalf("pass count had no effect: %q", one.Format())
	}
}

func TestConvertCustomNegligible(t *testing.T) {
	s := Convert(mustTrace(t, sampleTrace), Options{Negligible: map[string]bool{
		"write": true, "fileno": true,
	}})
	if strings.Contains(s.Format(), "write") {
		t.Fatalf("negligible op survived: %q", s.Format())
	}
}

func TestConvertTreeMatchesConvert(t *testing.T) {
	tr := mustTrace(t, sampleTrace)
	n := ConvertTree(tr, Options{})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Convert(tr, Options{}); got.Format() == "" || n.CountLeaves() == 0 {
		t.Fatal("degenerate conversion")
	}
}

func TestConvertAll(t *testing.T) {
	tr := mustTrace(t, sampleTrace)
	out := ConvertAll([]*trace.Trace{tr, tr}, Options{})
	if len(out) != 2 || !out[0].Equal(out[1]) {
		t.Fatal("ConvertAll inconsistent")
	}
}

// The two string variants of the same trace must produce identical
// structures when the trace carries no byte info at all.
func TestConvertVariantsAgreeOnBytelessTrace(t *testing.T) {
	tr := mustTrace(t, "open fh=1\nlseek fh=1\nlseek fh=1\nclose fh=1\n")
	a := Convert(tr, Options{})
	b := Convert(tr, Options{IgnoreBytes: true})
	if !a.Equal(b) {
		t.Fatalf("variants differ on byteless trace: %q vs %q", a.Format(), b.Format())
	}
}
