package core

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/kernel"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

func ws(pairs ...any) token.String {
	var s token.String
	for i := 0; i < len(pairs); i += 2 {
		s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
	}
	return s
}

// paperExample reconstructs strings with exactly the quantities of the
// paper's worked example (§3.2, Figs. 3-5): three shared substrings S1 =
// (a b c), S2 = (d e), S3 = (f) with per-string feature weights {19, 13,
// 15} and {35, 11, 14}, weight_{>=4}(A) = 64 and weight_{>=4}(B) = 52.
// Unique separator tokens (u*, x*, y*) prevent any other shared substring
// from becoming viable at cut weight 4.
func paperExample() (a, b token.String) {
	a = ws(
		"a", 5, "b", 7, "c", 7, // S1 in A: 19
		"u", 22, // filler unique to A, >= 4 so it counts toward weight(A)
		"d", 3, "e", 4, // S2 occurrence 1: 7
		"x1", 1,
		"d", 2, "e", 4, // S2 occurrence 2: 6
		"x2", 1,
		"f", 6, // S3 occurrence 1
		"x3", 2,
		"f", 9, // S3 occurrence 2
	)
	b = ws(
		"a", 2, "b", 7, "c", 8, // S1 in B, occurrence 1: 17
		"y1", 1,
		"a", 3, "b", 7, "c", 8, // S1 in B, occurrence 2: 18
		"y2", 1,
		"d", 2, "e", 4, // S2 occurrence 1: 6
		"y3", 1,
		"d", 1, "e", 4, // S2 occurrence 2: 5
		"y4", 1,
		"f", 8, // S3 occurrence 1
		"y5", 1,
		"f", 6, // S3 occurrence 2
	)
	return a, b
}

// TestKastPaperWorkedExample is experiment E1: it reproduces every number
// of the paper's §3.2 example.
func TestKastPaperWorkedExample(t *testing.T) {
	a, b := paperExample()

	if got := a.WeightAtLeast(4); got != 64 {
		t.Fatalf("weight_{>=4}(A) = %d, want 64 (Eq. 1)", got)
	}
	if got := b.WeightAtLeast(4); got != 52 {
		t.Fatalf("weight_{>=4}(B) = %d, want 52 (Eq. 2)", got)
	}

	k := &Kast{CutWeight: 4}
	if got := k.Compare(a, b); got != 1018 {
		t.Fatalf("k_{w>=4}(A,B) = %v, want 1018 (Eq. 11)", got)
	}

	n := PaperNormalized{K: k}
	want := 1018.0 / 3328.0 // = 0.3059 (Eq. 13)
	if got := n.Compare(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("normalised = %v, want %v", got, want)
	}
	if math.Abs(n.Compare(a, b)-0.3059) > 0.0001 {
		t.Fatalf("normalised = %v, want 0.3059 to 4 decimals", n.Compare(a, b))
	}
}

// The naive reference must agree on the worked example too.
func TestNaiveKastPaperWorkedExample(t *testing.T) {
	a, b := paperExample()
	k := &NaiveKast{CutWeight: 4}
	if got := k.Compare(a, b); got != 1018 {
		t.Fatalf("naive k = %v, want 1018", got)
	}
}

func TestKastEmptyStrings(t *testing.T) {
	k := &Kast{CutWeight: 2}
	if k.Compare(nil, nil) != 0 || k.Compare(ws("a", 1), nil) != 0 || k.Compare(nil, ws("a", 1)) != 0 {
		t.Fatal("empty strings must give 0")
	}
}

func TestKastDisjointAlphabets(t *testing.T) {
	k := &Kast{CutWeight: 1}
	if got := k.Compare(ws("a", 5, "b", 5), ws("c", 5, "d", 5)); got != 0 {
		t.Fatalf("disjoint strings = %v, want 0", got)
	}
}

func TestKastIdenticalStringsSelfKernel(t *testing.T) {
	// For cut <= total weight, the only feature of (a, a) is the maximal
	// shared substring — the whole string — so k(a,a) = Weight(a)^2.
	a := ws("x", 3, "y", 2, "x", 3, "z", 1)
	k := &Kast{CutWeight: 2}
	w := float64(a.Weight())
	if got := k.Compare(a, a); got != w*w {
		t.Fatalf("self kernel = %v, want %v", got, w*w)
	}
}

func TestKastSelfBelowCutIsZero(t *testing.T) {
	a := ws("x", 1, "y", 1) // total weight 2
	k := &Kast{CutWeight: 10}
	if got := k.Compare(a, a); got != 0 {
		t.Fatalf("self kernel below cut = %v, want 0", got)
	}
}

func TestKastRepeatedSubstringCounts(t *testing.T) {
	// "m" (weight 5) occurs twice in a, once in b, with unique separators,
	// so the feature value is 10 * 5 = 50.
	a := ws("m", 5, "s1", 1, "m", 5)
	b := ws("m", 5)
	k := &Kast{CutWeight: 4}
	if got := k.Compare(a, b); got != 50 {
		t.Fatalf("Compare = %v, want 50", got)
	}
}

func TestKastCoveredSubstringExcluded(t *testing.T) {
	// (p q) is shared and viable, but every occurrence of (p) and (q) sits
	// inside a (p q) occurrence in both strings, so only (p q) is a
	// feature: k = 8 * 8 = 64.
	a := ws("p", 4, "q", 4)
	b := ws("p", 4, "q", 4)
	k := &Kast{CutWeight: 4}
	if got := k.Compare(a, b); got != 64 {
		t.Fatalf("Compare = %v, want 64", got)
	}
}

func TestKastIndependentOccurrenceSurvives(t *testing.T) {
	// (p) also occurs OUTSIDE the shared (p q) region in a, so (p) has an
	// uncovered occurrence and becomes a feature alongside (p q).
	// Features: (p q): (8)*(8) = 64; (p): (4+4)*(4) = 32. Total 96.
	a := ws("p", 4, "q", 4, "z", 1, "p", 4)
	b := ws("p", 4, "q", 4)
	k := &Kast{CutWeight: 4}
	if got := k.Compare(a, b); got != 96 {
		t.Fatalf("Compare = %v, want 96", got)
	}
}

func TestKastCutWeightGates(t *testing.T) {
	a := ws("a", 1, "b", 1)
	b := ws("a", 1, "b", 1)
	low := &Kast{CutWeight: 2}
	if low.Compare(a, b) == 0 {
		t.Fatal("cut 2 should accept the weight-2 shared substring")
	}
	high := &Kast{CutWeight: 3}
	if got := high.Compare(a, b); got != 0 {
		t.Fatalf("cut 3 = %v, want 0", got)
	}
}

func TestKastViaTotalWeight(t *testing.T) {
	// (m) occurs 3 times with weight 2 in each string: no single occurrence
	// reaches cut 5, but the total (6) does.
	a := ws("m", 2, "x", 1, "m", 2, "y", 1, "m", 2)
	b := ws("m", 2, "p", 1, "m", 2, "q", 1, "m", 2)
	maxOcc := &Kast{CutWeight: 5, Viability: ViaMaxOccurrence}
	if got := maxOcc.Compare(a, b); got != 0 {
		t.Fatalf("maxocc = %v, want 0", got)
	}
	total := &Kast{CutWeight: 5, Viability: ViaTotalWeight}
	if got := total.Compare(a, b); got != 36 { // 6 * 6
		t.Fatalf("total = %v, want 36", got)
	}
}

func TestKastNames(t *testing.T) {
	if (&Kast{CutWeight: 2}).Name() != "kast(cut=2,maxocc)" {
		t.Fatalf("name = %q", (&Kast{CutWeight: 2}).Name())
	}
	if (&NaiveKast{CutWeight: 3, Viability: ViaTotalWeight}).Name() != "kast-naive(cut=3,total)" {
		t.Fatalf("naive name = %q", (&NaiveKast{CutWeight: 3, Viability: ViaTotalWeight}).Name())
	}
	if Viability(9).String() != "unknown" {
		t.Fatal("unknown viability name")
	}
}

func randString(r *xrand.Rand, maxLen, alphabet int) token.String {
	n := r.IntRange(0, maxLen)
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{
			Literal: string(rune('a' + r.Intn(alphabet))),
			Weight:  r.IntRange(1, 6),
		}
	}
	return s
}

// Property: the optimised kernel agrees exactly with the executable
// specification, across cut weights and viability variants. Small alphabet
// forces overlapping and nested matches.
func TestQuickKastMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 14, 3)
		b := randString(r, 14, 3)
		for _, cut := range []int{1, 2, 4, 7} {
			for _, via := range []Viability{ViaMaxOccurrence, ViaTotalWeight} {
				fast := (&Kast{CutWeight: cut, Viability: via}).Compare(a, b)
				slow := (&NaiveKast{CutWeight: cut, Viability: via}).Compare(a, b)
				if fast != slow {
					t.Logf("seed=%d cut=%d via=%v fast=%v slow=%v\na=%s\nb=%s",
						seed, cut, via, fast, slow, a.Format(), b.Format())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetry.
func TestQuickKastSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 20, 4)
		b := randString(r, 20, 4)
		k := &Kast{CutWeight: 2}
		return k.Compare(a, b) == k.Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: non-negativity (feature values are products of non-negative
// sums).
func TestQuickKastNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 20, 3)
		b := randString(r, 20, 3)
		return (&Kast{CutWeight: 3}).Compare(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: self kernel equals squared weight when viable (see
// TestKastIdenticalStringsSelfKernel for the reasoning).
func TestQuickKastSelfKernel(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		a := randString(r, 15, 3)
		if len(a) == 0 {
			return true
		}
		k := &Kast{CutWeight: 2}
		w := float64(a.Weight())
		want := w * w
		if a.Weight() < 2 {
			want = 0
		}
		return k.Compare(a, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineNormalizedKastSelfIsOne(t *testing.T) {
	a := ws("a", 3, "b", 4, "a", 3)
	n := kernel.Normalized{K: &Kast{CutWeight: 2}}
	if got := n.Compare(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine self = %v", got)
	}
}

func TestNormalizeGramPaperMatchesPairwise(t *testing.T) {
	r := xrand.New(11)
	xs := make([]token.String, 6)
	for i := range xs {
		xs[i] = randString(r, 12, 3)
	}
	k := &Kast{CutWeight: 2}
	g := kernel.Gram(k, xs)
	norm, err := NormalizeGramPaper(g, xs, k.CutWeight)
	if err != nil {
		t.Fatal(err)
	}
	p := PaperNormalized{K: k}
	for i := range xs {
		for j := range xs {
			if math.Abs(norm.At(i, j)-p.Compare(xs[i], xs[j])) > 1e-12 {
				t.Fatalf("paper norm mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestNormalizeGramPaperShapeError(t *testing.T) {
	g := kernel.Gram(&Kast{}, []token.String{ws("a", 1)})
	if _, err := NormalizeGramPaper(g, nil, 1); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPaperNormalizedZeroWeight(t *testing.T) {
	// All token weights below cut: weight_{>=c} is 0, normalised value 0.
	a := ws("a", 1)
	b := ws("a", 1)
	p := PaperNormalized{K: &Kast{CutWeight: 5}}
	if got := p.Compare(a, b); got != 0 {
		t.Fatalf("zero-weight normalised = %v", got)
	}
}

// The random-string property test uses synthetic alphabets; this test
// cross-checks the optimised kernel against the executable specification
// on strings produced by the real pipeline (structural tokens, compound
// literals, heavy run weights).
func TestKastMatchesNaiveOnPipelineStrings(t *testing.T) {
	traces := []string{
		`open fh=1
write fh=1 bytes=96
write fh=1 bytes=96
write fh=1 bytes=8
write fh=1 bytes=32768
write fh=1 bytes=32768
close fh=1`,
		`open fh=1
read fh=1 bytes=512
lseek fh=1
read fh=1 bytes=4096
lseek fh=1
read fh=1 bytes=4096
lseek fh=1
write fh=1 bytes=4096
write fh=1 bytes=512
close fh=1`,
		`open fh=1
read fh=1 bytes=512
read fh=1 bytes=65536
read fh=1 bytes=65536
write fh=1 bytes=65536
write fh=1 bytes=512
close fh=1
open fh=2
read fh=2 bytes=65536
write fh=2 bytes=65536
close fh=2`,
	}
	var xs []token.String
	for _, text := range traces {
		tr := mustTrace(t, text)
		xs = append(xs, Convert(tr, Options{}))
		xs = append(xs, Convert(tr, Options{IgnoreBytes: true}))
	}
	for _, cut := range []int{1, 2, 4, 8, 64} {
		fast := &Kast{CutWeight: cut}
		slow := &NaiveKast{CutWeight: cut}
		for i := range xs {
			for j := range xs {
				f, s := fast.Compare(xs[i], xs[j]), slow.Compare(xs[i], xs[j])
				if f != s {
					t.Fatalf("cut=%d pair(%d,%d): fast %v != naive %v\nx=%s\ny=%s",
						cut, i, j, f, s, xs[i].Format(), xs[j].Format())
				}
			}
		}
	}
}

// High weights must not overflow the feature arithmetic: weights in the
// hundreds of thousands square into the 1e10 range, well within float64
// and int64 capacity, and the kernel must stay finite and exact.
func TestKastLargeWeights(t *testing.T) {
	a := ws("w", 500000, "x", 1, "w", 400000)
	b := ws("w", 300000)
	k := &Kast{CutWeight: 2}
	got := k.Compare(a, b)
	want := float64(500000+400000) * float64(300000)
	if got != want {
		t.Fatalf("large-weight kernel %v, want %v", got, want)
	}
}
