// Package core implements the paper's primary contribution: the Kast
// Spectrum Kernel (§3.2 of Torres et al., PaCT 2017) and the end-to-end
// pipeline that turns raw I/O traces into weighted strings.
//
// # Kernel definition
//
// Given two weighted strings A and B and a cut weight c, the kernel's
// features are the substrings t (by token-literal sequence) such that:
//
//  1. t occurs in both strings (a "shared" substring);
//  2. t is viable: it has at least one occurrence whose weight — the sum of
//     the weights of the tokens it spans — is >= c, in each string ("strings
//     with a weight value that is smaller than the cut weight are ignored";
//     "the weight of a target substring might be different in each string");
//  3. t is maximal somewhere: at least one occurrence of t, in at least one
//     of the strings, is not properly contained in an occurrence of a longer
//     viable shared substring ("a target substring must not be a substring
//     of another matching substring in at least one of the original
//     strings").
//
// The feature value of t in a string is the summation of the weights of all
// its appearances there ("its value is the summation of the weights of all
// the substring appearances in a string"), and the kernel value is the inner
// product of the two feature vectors. The paper's fully worked example
// (Figs. 3-5: k = 1018, normalised 1018/3328) is reproduced under these
// semantics in the package tests.
package core

import (
	"fmt"

	"iokast/internal/token"
)

// Viability selects how condition (2) above is evaluated. The paper's text
// supports ViaMaxOccurrence (each counted appearance carries its own weight
// and too-light substrings are ignored); ViaTotalWeight is a plausible
// alternative reading kept for the ablation study.
type Viability int

const (
	// ViaMaxOccurrence: viable iff some single occurrence reaches the cut
	// weight in each string. Default.
	ViaMaxOccurrence Viability = iota
	// ViaTotalWeight: viable iff the summed occurrence weight reaches the
	// cut weight in each string.
	ViaTotalWeight
)

// String returns the variant name.
func (v Viability) String() string {
	switch v {
	case ViaMaxOccurrence:
		return "maxocc"
	case ViaTotalWeight:
		return "total"
	}
	return "unknown"
}

// Kast is the Kast Spectrum Kernel. The zero value is a valid kernel with
// cut weight 0 (every shared substring viable) and ViaMaxOccurrence.
type Kast struct {
	// CutWeight is the minimum occurrence weight (see Viability) for a
	// shared substring to produce a feature.
	CutWeight int
	// Viability selects the cut-weight semantics.
	Viability Viability
}

// Name implements kernel.Kernel.
func (k *Kast) Name() string {
	return fmt.Sprintf("kast(cut=%d,%s)", k.CutWeight, k.Viability)
}

// Compare implements kernel.Kernel. It runs in O(|A|*|B| + occ) time where
// occ is the number of common-substring occurrences, using a longest-match
// DP plus double rolling hashes to group occurrences by substring identity.
// The naive reference implementation in naive.go cross-checks it in tests.
func (k *Kast) Compare(a, b token.String) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	av, bv := internPair(a, b)
	return k.compareViews(av, bv)
}

// compareViews runs the kernel over two interned views. The views must have
// been interned over a common literal table (internPair or a shared
// Interner) so that equal literals carry equal ids.
func (k *Kast) compareViews(av, bv seqView) float64 {
	if len(av.ids) == 0 || len(bv.ids) == 0 {
		return 0
	}

	// Longest common extension: LA[i] = longest match starting at A[i]
	// anywhere in B; LB[j] symmetric.
	la, lb := matchLengths(av.ids, bv.ids)

	table := newStatsTable(len(av.ids) + len(bv.ids))

	// Phase 1: register substrings that have a >= cut occurrence, per side.
	// Occurrence weight grows with length at a fixed start, so only lengths
	// >= the minimal qualifying length need registering (for cut <= 1 that
	// is every length). For ViaTotalWeight all occurrences must accumulate,
	// so registration starts at length 1.
	minLen := k.registerFrom
	registerSide(table, av, la, k.CutWeight, k.Viability, sideA, minLen)
	registerSide(table, bv, lb, k.CutWeight, k.Viability, sideB, minLen)

	// Phase 2 (ViaMaxOccurrence only): accumulate the weights of ALL
	// occurrences of registered substrings — including sub-cut occurrences,
	// which count toward feature values once the substring is viable.
	if k.Viability == ViaMaxOccurrence {
		accumulateSide(table, av, la, sideA)
		accumulateSide(table, bv, lb, sideB)
	}

	// Phase 3: per-start maximal viable occurrence length, per side.
	cut := k.CutWeight
	viable := func(st *substringStats) bool { return st.isViable(cut, k.Viability) }
	mvA := maxViableLens(table, av, la, viable)
	mvB := maxViableLens(table, bv, lb, viable)

	// Phase 4: mark substrings with at least one uncovered occurrence.
	markUncovered(table, av, la, mvA, viable)
	markUncovered(table, bv, lb, mvB, viable)

	// Phase 5: inner product over surviving features, accumulated in
	// registration order — a deterministic function of the inputs — so
	// the float sum is bit-identical across runs (map order would not
	// be; iokvet's mapiterorder analyzer enforces this).
	var sum float64
	for _, st := range table.order {
		if st.uncovered && viable(st) {
			sum += float64(st.sumA) * float64(st.sumB)
		}
	}
	return sum
}

// registerFrom returns the minimal occurrence length to register at start i
// for phase 1.
func (k *Kast) registerFrom(v seqView, i int, maxLen int) int {
	if k.Viability == ViaTotalWeight || k.CutWeight <= 1 {
		return 1
	}
	// Smallest l with pw[i+l]-pw[i] >= cut; weights are >= 1 so l exists
	// within maxLen or not at all.
	lo, hi := 1, maxLen
	if v.pw[i+maxLen]-v.pw[i] < k.CutWeight {
		return maxLen + 1 // nothing qualifies at this start
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if v.pw[i+mid]-v.pw[i] >= k.CutWeight {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

type side int

const (
	sideA side = iota
	sideB
)

// substringKey identifies a substring by double hash and length; with two
// independent 64-bit rolling hashes keyed together with the length, a
// collision between distinct substrings is vanishingly unlikely
// (~2^-128 per pair) and non-adversarial inputs cannot steer it.
type substringKey struct {
	h1, h2 uint64
	length int32
}

// statsTable is the shared-substring table plus its insertion order.
// The order is a deterministic function of the two inputs (registration
// scans positions and lengths in fixed order), so iterating it — never
// the map — keeps float accumulation bit-identical across runs.
type statsTable struct {
	m     map[substringKey]*substringStats
	order []*substringStats
}

func newStatsTable(capHint int) *statsTable {
	return &statsTable{m: make(map[substringKey]*substringStats, capHint)}
}

// lookup returns the stats registered for k, or nil.
func (t *statsTable) lookup(k substringKey) *substringStats {
	return t.m[k]
}

// getOrCreate returns the stats for k, registering a fresh entry in
// insertion order on first sight.
func (t *statsTable) getOrCreate(k substringKey) *substringStats {
	st := t.m[k]
	if st == nil {
		st = &substringStats{}
		t.m[k] = st
		t.order = append(t.order, st)
	}
	return st
}

type substringStats struct {
	sumA, sumB int64 // total occurrence weight per side
	maxA, maxB int32 // maximal single-occurrence weight per side
	uncovered  bool  // has an occurrence not covered by a longer viable one
}

func (st *substringStats) isViable(cut int, v Viability) bool {
	switch v {
	case ViaTotalWeight:
		return st.sumA >= int64(cut) && st.sumB >= int64(cut)
	default:
		return int(st.maxA) >= cut && int(st.maxB) >= cut
	}
}

// seqView is an interned weighted string with prefix weights and rolling
// hashes for O(1) substring identity.
type seqView struct {
	ids  []int32
	pw   []int // pw[i] = sum of weights of tokens [0, i)
	h1   []uint64
	h2   []uint64
	pow1 []uint64
	pow2 []uint64
}

const (
	hashBase1 = 0x9e3779b97f4a7c15 | 1
	hashBase2 = 0xc2b2ae3d27d4eb4f | 1
)

// internPair interns both strings over a shared literal table and
// precomputes prefix structures.
func internPair(a, b token.String) (seqView, seqView) {
	idOf := make(map[string]int32, len(a)+len(b))
	next := int32(1)
	intern := func(s token.String) seqView {
		n := len(s)
		v := seqView{
			ids:  make([]int32, n),
			pw:   make([]int, n+1),
			h1:   make([]uint64, n+1),
			h2:   make([]uint64, n+1),
			pow1: make([]uint64, n+1),
			pow2: make([]uint64, n+1),
		}
		v.pow1[0], v.pow2[0] = 1, 1
		for i, t := range s {
			id, ok := idOf[t.Literal]
			if !ok {
				id = next
				next++
				idOf[t.Literal] = id
			}
			v.ids[i] = id
			v.pw[i+1] = v.pw[i] + t.Weight
			v.h1[i+1] = v.h1[i]*hashBase1 + uint64(id)
			v.h2[i+1] = v.h2[i]*hashBase2 + uint64(id)
			v.pow1[i+1] = v.pow1[i] * hashBase1
			v.pow2[i+1] = v.pow2[i] * hashBase2
		}
		return v
	}
	return intern(a), intern(b)
}

// key returns the identity key of the substring [i, i+l).
func (v seqView) key(i, l int) substringKey {
	return substringKey{
		h1:     v.h1[i+l] - v.h1[i]*v.pow1[l],
		h2:     v.h2[i+l] - v.h2[i]*v.pow2[l],
		length: int32(l),
	}
}

// weight returns the occurrence weight of the substring [i, i+l).
func (v seqView) weight(i, l int) int { return v.pw[i+l] - v.pw[i] }

// matchLengths computes, for every start position of each sequence, the
// length of the longest substring starting there that also occurs in the
// other sequence, via the classic longest-common-extension DP with rolling
// rows (O(n*m) time, O(m) space).
func matchLengths(a, b []int32) (la, lb []int32) {
	n, m := len(a), len(b)
	la = make([]int32, n)
	lb = make([]int32, m)
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	for i := n - 1; i >= 0; i-- {
		ai := a[i]
		for j := m - 1; j >= 0; j-- {
			var e int32
			if ai == b[j] {
				e = prev[j+1] + 1
			}
			cur[j] = e
			if e > la[i] {
				la[i] = e
			}
			if e > lb[j] {
				lb[j] = e
			}
		}
		prev, cur = cur, prev
	}
	return la, lb
}

// registerSide inserts phase-1 qualifying occurrences into the table.
func registerSide(table *statsTable, v seqView, lens []int32, cut int, via Viability, s side, minLenAt func(seqView, int, int) int) {
	for i := range v.ids {
		maxLen := int(lens[i])
		if maxLen == 0 {
			continue
		}
		start := minLenAt(v, i, maxLen)
		for l := start; l <= maxLen; l++ {
			st := table.getOrCreate(v.key(i, l))
			w := v.weight(i, l)
			if s == sideA {
				if via == ViaTotalWeight {
					st.sumA += int64(w)
				}
				if int32(w) > st.maxA {
					st.maxA = int32(w)
				}
			} else {
				if via == ViaTotalWeight {
					st.sumB += int64(w)
				}
				if int32(w) > st.maxB {
					st.maxB = int32(w)
				}
			}
		}
	}
}

// accumulateSide adds the weights of every occurrence of already-registered
// substrings (lookup-only; unregistered substrings cannot become viable).
func accumulateSide(table *statsTable, v seqView, lens []int32, s side) {
	for i := range v.ids {
		maxLen := int(lens[i])
		for l := 1; l <= maxLen; l++ {
			st := table.lookup(v.key(i, l))
			if st == nil {
				continue
			}
			w := int64(v.weight(i, l))
			if s == sideA {
				st.sumA += w
			} else {
				st.sumB += w
			}
		}
	}
}

// maxViableLens returns, per start position, the length of the longest
// viable shared substring starting there (0 if none).
func maxViableLens(table *statsTable, v seqView, lens []int32, viable func(*substringStats) bool) []int32 {
	out := make([]int32, len(v.ids))
	for i := range v.ids {
		for l := int(lens[i]); l >= 1; l-- {
			if st := table.lookup(v.key(i, l)); st != nil && viable(st) {
				out[i] = int32(l)
				break
			}
		}
	}
	return out
}

// markUncovered sets the uncovered flag on every viable substring that has
// at least one occurrence in v not properly contained in a longer viable
// occurrence. An occurrence [i, i+l) is covered iff a viable occurrence
// [i', i'+l') exists with i' <= i, i'+l' >= i+l and l' > l; using the
// farthest reach of viable occurrences per start, that reduces to:
//
//	prefixReach(i-1) >= i+l  (some earlier start covers it), or
//	maxViable[i] > l         (a longer viable occurrence at the same start).
func markUncovered(table *statsTable, v seqView, lens []int32, maxViable []int32, viable func(*substringStats) bool) {
	n := len(v.ids)
	// prefixReach[i] = max over i' <= i of i' + maxViable[i'] (0 when none).
	prefixReach := make([]int32, n)
	var best int32
	for i := 0; i < n; i++ {
		if maxViable[i] > 0 {
			if r := int32(i) + maxViable[i]; r > best {
				best = r
			}
		}
		prefixReach[i] = best
	}
	for i := 0; i < n; i++ {
		maxLen := int(lens[i])
		for l := 1; l <= maxLen; l++ {
			st := table.lookup(v.key(i, l))
			if st == nil || st.uncovered || !viable(st) {
				continue
			}
			end := int32(i + l)
			coveredByEarlier := i > 0 && prefixReach[i-1] >= end
			coveredAtSameStart := maxViable[i] > int32(l)
			if !coveredByEarlier && !coveredAtSameStart {
				st.uncovered = true
			}
		}
	}
}
