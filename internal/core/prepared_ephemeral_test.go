package core

import (
	"fmt"
	"math"
	"testing"

	"iokast/internal/token"
)

func wsOf(pairs ...any) token.String {
	var s token.String
	for i := 0; i < len(pairs); i += 2 {
		s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
	}
	return s
}

// PrepareEphemeral must produce kernel values bit-identical to Prepare when
// compared against interned corpus views — for queries whose literals are
// all known, partially known, and entirely unknown — while never growing
// the table.
func TestPrepareEphemeralMatchesPrepare(t *testing.T) {
	corpus := []token.String{
		wsOf("root", 1, "open", 2, "write", 8, "close", 2),
		wsOf("root", 1, "open", 2, "read", 4, "lseek", 1, "read", 4),
		wsOf("root", 1, "write", 8, "write", 8),
	}
	queries := []token.String{
		wsOf("root", 1, "open", 2, "write", 8),              // all known
		wsOf("root", 1, "mmap", 3, "write", 8, "mmap", 3),   // partially known
		wsOf("alpha", 2, "beta", 3, "alpha", 2, "gamma", 1), // all unknown
	}
	for _, k := range []*Kast{{CutWeight: 0}, {CutWeight: 2}, {CutWeight: 4}, {CutWeight: 2, Viability: ViaTotalWeight}} {
		in := NewInterner()
		preps := make([]*Prepared, len(corpus))
		for i, x := range corpus {
			preps[i] = in.Prepare(x)
		}
		base := in.Size()
		for qi, q := range queries {
			eq := in.PrepareEphemeral(q)
			if in.Size() != base {
				t.Fatalf("query %d grew the table: %d -> %d", qi, base, in.Size())
			}
			// Reference: a throwaway interner that does intern the query.
			ref := NewInterner()
			refPreps := make([]*Prepared, len(corpus))
			for i, x := range corpus {
				refPreps[i] = ref.Prepare(x)
			}
			rq := ref.Prepare(q)
			for i := range corpus {
				got := k.ComparePrepared(eq, preps[i])
				want := k.ComparePrepared(rq, refPreps[i])
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%s: query %d vs corpus %d: ephemeral %v, interned %v", k.Name(), qi, i, got, want)
				}
				// And both must equal the plain two-string kernel.
				if direct := k.Compare(q, corpus[i]); math.Float64bits(got) != math.Float64bits(direct) {
					t.Errorf("%s: query %d vs corpus %d: ephemeral %v, direct %v", k.Name(), qi, i, got, direct)
				}
			}
			// Self-comparison is internally consistent too.
			if got, want := k.ComparePrepared(eq, eq), k.Compare(q, q); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: query %d self: ephemeral %v, direct %v", k.Name(), qi, got, want)
			}
		}
	}
}

// Stale must flip exactly when a previously unknown literal gets interned.
func TestPrepareEphemeralStale(t *testing.T) {
	in := NewInterner()
	in.Prepare(wsOf("known", 1))

	allKnown := in.PrepareEphemeral(wsOf("known", 2))
	if in.Stale(allKnown) {
		t.Fatal("view with no unknown literals reported stale")
	}
	mixed := in.PrepareEphemeral(wsOf("known", 2, "fresh", 3))
	if in.Stale(mixed) {
		t.Fatal("stale before anything was interned")
	}
	in.Prepare(wsOf("unrelated", 1))
	if in.Stale(mixed) {
		t.Fatal("stale after interning an unrelated literal")
	}
	in.Prepare(wsOf("fresh", 5))
	if !in.Stale(mixed) {
		t.Fatal("not stale after the unknown literal was interned")
	}
	if in.Stale(allKnown) {
		t.Fatal("fully known view became stale")
	}
	// Re-preparing resolves the literal to the now-shared id.
	again := in.PrepareEphemeral(wsOf("known", 2, "fresh", 3))
	if in.Stale(again) {
		t.Fatal("re-prepared view still stale")
	}
}

// Many distinct ephemeral views must not interfere with each other or the
// table, whatever order they are built in.
func TestPrepareEphemeralManyUniqueLiterals(t *testing.T) {
	in := NewInterner()
	p := in.Prepare(wsOf("a", 1, "b", 2))
	k := &Kast{CutWeight: 2}
	want := k.ComparePrepared(p, p)
	for i := 0; i < 100; i++ {
		q := in.PrepareEphemeral(wsOf(fmt.Sprintf("lit-%d", i), 3, "a", 1, "b", 2))
		if got := k.ComparePrepared(q, p); got <= 0 {
			t.Fatalf("query %d lost the shared substring: %v", i, got)
		}
		_ = want
	}
	if in.Size() != 2 {
		t.Fatalf("table grew to %d literals from ephemeral queries", in.Size())
	}
}
