package core

import (
	"testing"

	"iokast/internal/token"
)

// decodeWeighted turns fuzz bytes into a weighted string: each byte yields
// one token whose literal is drawn from a small alphabet (high nibble, so
// shared substrings are common) and whose weight is 1..16 (low nibble).
// Small alphabets maximise the chance of exercising the interesting kernel
// phases (shared substrings, coverage, viability).
func decodeWeighted(data []byte, maxLen int) token.String {
	if len(data) > maxLen {
		data = data[:maxLen]
	}
	s := make(token.String, len(data))
	for i, b := range data {
		s[i] = token.Token{
			Literal: string(rune('a' + (b>>4)%4)),
			Weight:  int(b&0x0f) + 1,
		}
	}
	return s
}

// FuzzKastMatchesNaive cross-checks the optimised Kast kernel against the
// per-definition NaiveKast reference on random weighted strings, cut
// weights, and both viability variants. The naive implementation is
// O(n^3)-ish, so inputs are truncated to keep iterations fast.
func FuzzKastMatchesNaive(f *testing.F) {
	f.Add([]byte{0x11, 0x22, 0x11}, []byte{0x11, 0x22}, uint8(2), false)
	f.Add([]byte{0x14, 0x24, 0x14, 0x24}, []byte{0x14, 0x24, 0x14}, uint8(4), false)
	f.Add([]byte{0xf1, 0x01, 0xf1}, []byte{0xf1, 0x01}, uint8(3), true)
	f.Add([]byte{}, []byte{0x55}, uint8(0), false)
	f.Add([]byte{0x33, 0x33, 0x33, 0x33, 0x33}, []byte{0x33, 0x33, 0x33}, uint8(6), true)

	f.Fuzz(func(t *testing.T, rawA, rawB []byte, cut uint8, total bool) {
		a := decodeWeighted(rawA, 12)
		b := decodeWeighted(rawB, 12)
		via := ViaMaxOccurrence
		if total {
			via = ViaTotalWeight
		}
		// Weights are <= 16 and strings <= 12 tokens, so cut weights above
		// 16*12 are all equivalent to "nothing viable"; cap keeps the
		// space dense without losing that case.
		k := &Kast{CutWeight: int(cut), Viability: via}
		naive := &NaiveKast{CutWeight: int(cut), Viability: via}

		fast := k.Compare(a, b)
		slow := naive.Compare(a, b)
		if fast != slow {
			t.Fatalf("Kast(%v) mismatch on\n a=%v\n b=%v\n fast=%g slow=%g",
				k.Name(), a, b, fast, slow)
		}

		// The kernel must be symmetric too.
		if rev := k.Compare(b, a); rev != fast {
			t.Fatalf("asymmetric: k(a,b)=%g k(b,a)=%g", fast, rev)
		}

		// And ComparePrepared over a shared interner must agree exactly
		// with the pairwise-interned path.
		in := NewInterner()
		pa, pb := in.Prepare(a), in.Prepare(b)
		if prep := k.ComparePrepared(pa, pb); prep != fast {
			t.Fatalf("ComparePrepared=%g, Compare=%g", prep, fast)
		}
	})
}
