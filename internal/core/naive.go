package core

import (
	"fmt"
	"sort"
	"strings"

	"iokast/internal/token"
)

// NaiveKast is a direct, per-definition implementation of the Kast Spectrum
// Kernel. It enumerates substrings explicitly and is O(n^3)-ish per string
// pair, so it is only suitable for small inputs — its purpose is to serve
// as an executable specification that cross-checks the optimised Kast
// implementation in property-based tests, and to make the kernel semantics
// auditable line by line.
type NaiveKast struct {
	CutWeight int
	Viability Viability
}

// Name implements kernel.Kernel.
func (k *NaiveKast) Name() string {
	return fmt.Sprintf("kast-naive(cut=%d,%s)", k.CutWeight, k.Viability)
}

type occurrence struct {
	start, length int
	weight        int
}

// Compare implements kernel.Kernel.
func (k *NaiveKast) Compare(a, b token.String) float64 {
	occsA := substringOccurrences(a)
	occsB := substringOccurrences(b)

	// Shared substrings only.
	type entry struct {
		occsA, occsB []occurrence
	}
	shared := map[string]*entry{}
	for key, oa := range occsA {
		if ob, ok := occsB[key]; ok {
			shared[key] = &entry{occsA: oa, occsB: ob}
		}
	}

	// Iterate shared substrings in sorted-key order everywhere below: the
	// executable specification must be as bit-deterministic as the
	// optimised implementation it cross-checks (the final sum is a float
	// accumulation, and map order would leak into its rounding).
	keys := make([]string, 0, len(shared))
	for key := range shared {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	// Viability per the selected variant.
	viable := map[string]bool{}
	for _, key := range keys {
		e := shared[key]
		switch k.Viability {
		case ViaTotalWeight:
			viable[key] = totalWeight(e.occsA) >= k.CutWeight && totalWeight(e.occsB) >= k.CutWeight
		default:
			viable[key] = maxWeight(e.occsA) >= k.CutWeight && maxWeight(e.occsB) >= k.CutWeight
		}
	}

	// Collect all viable occurrences per string for the coverage test.
	var viableOccsA, viableOccsB []occurrence
	for _, key := range keys {
		if viable[key] {
			e := shared[key]
			viableOccsA = append(viableOccsA, e.occsA...)
			viableOccsB = append(viableOccsB, e.occsB...)
		}
	}

	uncovered := func(o occurrence, all []occurrence) bool {
		for _, c := range all {
			if c.length > o.length && c.start <= o.start && c.start+c.length >= o.start+o.length {
				return false
			}
		}
		return true
	}

	var sum float64
	for _, key := range keys {
		e := shared[key]
		if !viable[key] {
			continue
		}
		feature := false
		for _, o := range e.occsA {
			if uncovered(o, viableOccsA) {
				feature = true
				break
			}
		}
		if !feature {
			for _, o := range e.occsB {
				if uncovered(o, viableOccsB) {
					feature = true
					break
				}
			}
		}
		if feature {
			sum += float64(totalWeight(e.occsA)) * float64(totalWeight(e.occsB))
		}
	}
	return sum
}

// substringOccurrences enumerates every substring of x keyed by its literal
// sequence, with all its occurrences.
func substringOccurrences(x token.String) map[string][]occurrence {
	out := map[string][]occurrence{}
	n := len(x)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		weight := 0
		for l := 1; i+l <= n; l++ {
			if l > 1 {
				sb.WriteString("\x1f")
			}
			sb.WriteString(x[i+l-1].Literal)
			weight += x[i+l-1].Weight
			out[sb.String()] = append(out[sb.String()], occurrence{start: i, length: l, weight: weight})
		}
	}
	return out
}

func totalWeight(os []occurrence) int {
	t := 0
	for _, o := range os {
		t += o.weight
	}
	return t
}

func maxWeight(os []occurrence) int {
	m := 0
	for _, o := range os {
		if o.weight > m {
			m = o.weight
		}
	}
	return m
}
