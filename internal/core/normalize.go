package core

import (
	"fmt"

	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/token"
)

// PaperNormalized wraps a Kast kernel with the paper's Eq. 12
// normalisation:
//
//	k̄(A, B) = k(A, B) / (weight_{>=c}(A) * weight_{>=c}(B))
//
// where weight_{>=c}(X) is the summation of the weights of X's tokens whose
// weight is at least the cut weight c (Eq. 1/2: weight_{w>=4}(A) = 64).
// The paper presents this as equal to k/sqrt(k(A,A)k(B,B)); the equality
// does not hold in general, and the value the paper actually computes
// (1018/3328 = 0.3059) is the weight-product form implemented here. Use
// kernel.Normalized for true cosine normalisation.
type PaperNormalized struct {
	K *Kast
}

// Name implements kernel.Kernel.
func (p PaperNormalized) Name() string { return p.K.Name() + "+paper" }

// Compare implements kernel.Kernel.
func (p PaperNormalized) Compare(a, b token.String) float64 {
	wa := a.WeightAtLeast(p.K.CutWeight)
	wb := b.WeightAtLeast(p.K.CutWeight)
	if wa == 0 || wb == 0 {
		return 0
	}
	return p.K.Compare(a, b) / (float64(wa) * float64(wb))
}

var _ kernel.Kernel = PaperNormalized{}
var _ kernel.Kernel = (*Kast)(nil)
var _ kernel.Kernel = (*NaiveKast)(nil)

// NormalizeGramPaper applies the Eq. 12 normalisation to a raw Kast Gram
// matrix given the strings it was computed from (avoids recomputing the
// kernel): out[i][j] = g[i][j] / (weight_{>=c}(x_i) * weight_{>=c}(x_j)).
func NormalizeGramPaper(g *linalg.Matrix, xs []token.String, cutWeight int) (*linalg.Matrix, error) {
	if g.Rows != len(xs) || g.Cols != len(xs) {
		return nil, fmt.Errorf("core: gram is %dx%d but %d strings given", g.Rows, g.Cols, len(xs))
	}
	w := make([]float64, len(xs))
	for i, x := range xs {
		w[i] = float64(x.WeightAtLeast(cutWeight))
	}
	out := linalg.NewMatrix(g.Rows, g.Cols)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if w[i] > 0 && w[j] > 0 {
				out.Set(i, j, g.At(i, j)/(w[i]*w[j]))
			}
		}
	}
	return out, nil
}
