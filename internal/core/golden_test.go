package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iokast/internal/trace"
)

// Golden tests: full-pipeline conversions pinned to files in testdata/, so
// a change anywhere in filtering, tree building, compression, or
// serialisation that alters output is caught with a readable diff.
func TestConvertGolden(t *testing.T) {
	cases := []struct {
		traceFile  string
		goldenFile string
		opt        Options
	}{
		{"checkpoint.trace", "checkpoint.golden", Options{}},
		{"seeker.trace", "seeker.golden", Options{}},
		{"seeker.trace", "seeker.nobytes.golden", Options{IgnoreBytes: true}},
		{"copier.trace", "copier.golden", Options{}},
	}
	for _, c := range cases {
		t.Run(c.goldenFile, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", c.traceFile))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.ParseString(string(raw))
			if err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(filepath.Join("testdata", c.goldenFile))
			if err != nil {
				t.Fatal(err)
			}
			want := strings.TrimSpace(string(golden))
			if got := Convert(tr, c.opt).Format(); got != want {
				t.Fatalf("conversion drifted:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// The copier golden also documents a subtlety: the interleaved read/write
// run does NOT merge under rule 3 because the operations live on different
// handles and therefore in different BLOCK nodes.
func TestCopierKeepsHandlesApart(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "copier.trace"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ParseString(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	s := Convert(tr, Options{})
	if strings.Contains(s.Format(), "read+write") {
		t.Fatalf("cross-handle ops merged: %q", s.Format())
	}
}
