package core

import (
	"iokast/internal/token"
	"iokast/internal/trace"
	"iokast/internal/tree"
)

// Options configure the trace-to-weighted-string conversion (§3.1). The
// zero value is the paper's default configuration with byte information
// retained.
type Options struct {
	// IgnoreBytes produces the second string variant: every byte count is
	// assumed to be zero before tree building, so the compression rules and
	// the token literals carry no byte information.
	IgnoreBytes bool
	// Negligible overrides the set of ignored operations (nil means
	// trace.DefaultNegligible).
	Negligible map[string]bool
	// Compress overrides the compression configuration. A zero Passes value
	// means the paper default (2 passes); use NoCompression to disable.
	Compress tree.CompressOptions
}

// NoCompression is a sentinel pass count for Options.Compress disabling the
// compression step entirely (Passes: NoCompression).
const NoCompression = -1 << 30

func (o Options) compressOptions() tree.CompressOptions {
	switch o.Compress.Passes {
	case 0:
		return tree.DefaultCompress()
	case NoCompression:
		return tree.CompressOptions{Passes: 0}
	default:
		return o.Compress
	}
}

// Convert runs the full §3.1 pipeline on one trace: negligible-operation
// filtering, optional byte erasure, tree building, compression, and
// flattening to a weighted string.
func Convert(t *trace.Trace, opt Options) token.String {
	if opt.IgnoreBytes {
		t = t.ZeroBytes()
	}
	root := tree.BuildCompressed(t, tree.BuildOptions{Negligible: opt.Negligible}, opt.compressOptions())
	return token.FromTree(root)
}

// ConvertTree is Convert stopping at the compressed tree, for tools that
// want to render the intermediate representation.
func ConvertTree(t *trace.Trace, opt Options) *tree.Node {
	if opt.IgnoreBytes {
		t = t.ZeroBytes()
	}
	return tree.BuildCompressed(t, tree.BuildOptions{Negligible: opt.Negligible}, opt.compressOptions())
}

// ConvertAll converts a slice of traces with shared options.
func ConvertAll(ts []*trace.Trace, opt Options) []token.String {
	out := make([]token.String, len(ts))
	for i, t := range ts {
		out[i] = Convert(t, opt)
	}
	return out
}
