package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/linalg"
	"iokast/internal/xrand"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	d := pointsDist([]float64{0, 0.1, 10, 10.1})
	s, err := Silhouette(d, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("silhouette %v for well-separated clusters", s)
	}
	// Deliberately bad assignment scores much lower.
	bad, err := Silhouette(d, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad >= s {
		t.Fatalf("bad assignment %v not below good %v", bad, s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	d := pointsDist([]float64{0, 1})
	if _, err := Silhouette(linalg.NewMatrix(2, 3), []int{0, 1}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Silhouette(d, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Silhouette(d, []int{0, 0}); err == nil {
		t.Fatal("single cluster accepted")
	}
	if _, err := Silhouette(linalg.NewMatrix(0, 0), nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	d := pointsDist([]float64{0, 5, 10})
	s, err := Silhouette(d, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("all-singleton silhouette %v, want 0", s)
	}
}

// Property: silhouette is within [-1, 1].
func TestQuickSilhouetteBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 4
		r := xrand.New(seed)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = r.Intn(2)
		}
		// Ensure two clusters exist.
		assign[0], assign[1] = 0, 1
		s, err := Silhouette(pointsDist(pts), assign)
		if err != nil {
			return false
		}
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCopheneticDistances(t *testing.T) {
	// Points 0,1 close; 10 far. Single linkage: merge {0,1} at 1, then
	// with {2} at 9.
	d := pointsDist([]float64{0, 1, 10})
	dg, err := Cluster(d, Single)
	if err != nil {
		t.Fatal(err)
	}
	coph := dg.CopheneticDistances()
	if coph.At(0, 1) != 1 {
		t.Fatalf("coph(0,1) = %v", coph.At(0, 1))
	}
	if coph.At(0, 2) != 9 || coph.At(1, 2) != 9 {
		t.Fatalf("coph to outlier: %v, %v", coph.At(0, 2), coph.At(1, 2))
	}
	if coph.At(0, 0) != 0 {
		t.Fatal("self cophenetic distance nonzero")
	}
	if !coph.IsSymmetric(0) {
		t.Fatal("cophenetic matrix asymmetric")
	}
}

func TestCopheneticCorrelationUltrametric(t *testing.T) {
	// An ultrametric input is fit perfectly: correlation 1.
	d := linalg.FromRows([][]float64{
		{0, 1, 4, 4},
		{1, 0, 4, 4},
		{4, 4, 0, 2},
		{4, 4, 2, 0},
	})
	dg, err := Cluster(d, Single)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CopheneticCorrelation(d, dg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-1) > 1e-12 {
		t.Fatalf("ultrametric correlation %v", c)
	}
}

func TestCopheneticCorrelationErrors(t *testing.T) {
	d := pointsDist([]float64{0, 1, 2})
	dg, _ := Cluster(d, Single)
	if _, err := CopheneticCorrelation(linalg.NewMatrix(2, 2), dg); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	one := &Dendrogram{N: 1}
	if _, err := CopheneticCorrelation(linalg.NewMatrix(1, 1), one); err == nil {
		t.Fatal("single leaf accepted")
	}
	// Constant distances: zero variance.
	flat := linalg.FromRows([][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}})
	dgf, _ := Cluster(flat, Single)
	if _, err := CopheneticCorrelation(flat, dgf); err == nil {
		t.Fatal("zero-variance input accepted")
	}
}

// Property: cophenetic distances from single linkage never underestimate
// ... they never exceed the maximum input distance, and dominate the
// minimum spanning path: coph(i,j) <= max input distance and coph is an
// ultrametric (coph(i,k) <= max(coph(i,j), coph(j,k))).
func TestQuickCopheneticUltrametric(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 3
		r := xrand.New(seed)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		d := pointsDist(pts)
		dg, err := Cluster(d, Single)
		if err != nil {
			return false
		}
		coph := dg.CopheneticDistances()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if coph.At(i, k) > math.Max(coph.At(i, j), coph.At(j, k))+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
