// Package cluster implements agglomerative hierarchical clustering — the
// second learning algorithm the paper applies to Kast similarity matrices
// (§4.1: "Hierarchical Clustering, the latest using the simple linkage
// method") — together with dendrogram cutting and external cluster-quality
// metrics (purity, Rand index, adjusted Rand index, NMI).
package cluster

import (
	"fmt"
	"math"

	"iokast/internal/linalg"
)

// Linkage selects the inter-cluster distance update rule.
type Linkage int

const (
	// Single linkage (nearest neighbour) — the paper's choice.
	Single Linkage = iota
	// Complete linkage (furthest neighbour).
	Complete
	// Average linkage (UPGMA).
	Average
	// Ward linkage (minimum within-cluster variance increase). Input
	// distances are treated as Euclidean; heights are reported on the
	// original distance scale.
	Ward
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	}
	return fmt.Sprintf("Linkage(%d)", int(l))
}

// Merge records one agglomeration step. Cluster ids: 0..n-1 are leaves;
// n+i is the cluster created by Merges[i].
type Merge struct {
	A, B   int     // merged cluster ids
	Height float64 // distance at which the merge happened
	Size   int     // size of the resulting cluster
}

// Dendrogram is the full merge tree over n leaves.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Cluster runs agglomerative clustering on a symmetric distance matrix
// using the Lance-Williams update for the chosen linkage. O(n^3) worst
// case, O(n^2) memory — ample for the paper's 110 examples.
func Cluster(dist *linalg.Matrix, linkage Linkage) (*Dendrogram, error) {
	n := dist.Rows
	if dist.Cols != n {
		return nil, fmt.Errorf("cluster: distance matrix is %dx%d, want square", n, dist.Cols)
	}
	if !dist.IsSymmetric(1e-9 * (1 + dist.FrobeniusNorm())) {
		return nil, fmt.Errorf("cluster: distance matrix not symmetric")
	}
	d := dist.Clone()
	// Ward's Lance-Williams update operates on squared Euclidean
	// distances; work on squares internally and report sqrt heights.
	if linkage == Ward {
		for i := range d.Data {
			d.Data[i] *= d.Data[i]
		}
	}
	active := make([]bool, n)
	id := make([]int, n)   // current cluster id occupying row i
	size := make([]int, n) // cluster size per row
	for i := 0; i < n; i++ {
		active[i] = true
		id[i] = i
		size[i] = 1
	}
	dg := &Dendrogram{N: n}
	nextID := n

	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if v := d.At(i, j); v < best {
					best, bi, bj = v, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi.
		height := best
		if linkage == Ward {
			height = math.Sqrt(math.Max(0, best))
		}
		dg.Merges = append(dg.Merges, Merge{
			A: id[bi], B: id[bj], Height: height, Size: size[bi] + size[bj],
		})
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := d.At(bi, k), d.At(bj, k)
			var nd float64
			switch linkage {
			case Complete:
				nd = math.Max(dik, djk)
			case Average:
				nd = (float64(size[bi])*dik + float64(size[bj])*djk) / float64(size[bi]+size[bj])
			case Ward:
				ni, nj, nk := float64(size[bi]), float64(size[bj]), float64(size[k])
				nd = ((ni+nk)*dik + (nj+nk)*djk - nk*best) / (ni + nj + nk)
			default: // Single
				nd = math.Min(dik, djk)
			}
			d.Set(bi, k, nd)
			d.Set(k, bi, nd)
		}
		size[bi] += size[bj]
		id[bi] = nextID
		nextID++
		active[bj] = false
	}
	return dg, nil
}

// Cut returns cluster assignments (labels 0..k-1, renumbered by first
// appearance) obtained by stopping the agglomeration after n-k merges —
// i.e. cutting the dendrogram so exactly k clusters remain. k is clamped
// to [1, n].
func (dg *Dendrogram) Cut(k int) []int {
	n := dg.N
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	parent := make([]int, n+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merges := n - k
	if merges > len(dg.Merges) {
		merges = len(dg.Merges)
	}
	for s := 0; s < merges; s++ {
		m := dg.Merges[s]
		newID := n + s
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, n)
	next := 0
	seen := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}

// CutHeight cuts the dendrogram at a distance threshold: merges with
// Height <= h are applied.
func (dg *Dendrogram) CutHeight(h float64) []int {
	k := dg.N
	for _, m := range dg.Merges {
		if m.Height <= h {
			k--
		}
	}
	return dg.Cut(k)
}

// Heights returns the merge heights in order.
func (dg *Dendrogram) Heights() []float64 {
	hs := make([]float64, len(dg.Merges))
	for i, m := range dg.Merges {
		hs[i] = m.Height
	}
	return hs
}

// NaturalK estimates how many clusters the dendrogram "identifies": the k
// in [2, maxK] whose formation is followed by the largest jump in merge
// height — the gap a human reads off a dendrogram figure. Returns 1 when
// there are no merges to compare.
func (dg *Dendrogram) NaturalK(maxK int) int {
	n := dg.N
	if len(dg.Merges) == 0 || n < 2 {
		return 1
	}
	if maxK > n-1 {
		maxK = n - 1
	}
	bestK, bestGap := 1, -1.0
	for k := 2; k <= maxK; k++ {
		// With k clusters remaining, the next merge is index n-k; the one
		// before it (which produced the k clusters) is n-k-1.
		destroyed := dg.Merges[n-k].Height
		var formed float64
		if n-k-1 >= 0 {
			formed = dg.Merges[n-k-1].Height
		}
		if gap := destroyed - formed; gap > bestGap {
			bestGap, bestK = gap, k
		}
	}
	return bestK
}
