package cluster

import (
	"fmt"
	"math"

	"iokast/internal/linalg"
)

// Silhouette computes the mean silhouette coefficient of a flat clustering
// over a distance matrix: for each example, s = (b - a) / max(a, b) where
// a is its mean distance to its own cluster and b the smallest mean
// distance to another cluster. Values near 1 mean tight, well-separated
// clusters; singletons score 0 by convention.
func Silhouette(dist *linalg.Matrix, assign []int) (float64, error) {
	n := dist.Rows
	if dist.Cols != n {
		return 0, fmt.Errorf("cluster: distance matrix is %dx%d, want square", n, dist.Cols)
	}
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d examples", len(assign), n)
	}
	if n == 0 {
		return 0, fmt.Errorf("cluster: empty input")
	}
	members := map[int][]int{}
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	if len(members) < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs at least 2 clusters")
	}
	var total float64
	for i := 0; i < n; i++ {
		own := members[assign[i]]
		if len(own) == 1 {
			continue // convention: singleton silhouette is 0
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += dist.At(i, j)
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for c, m := range members {
			if c == assign[i] {
				continue
			}
			var d float64
			for _, j := range m {
				d += dist.At(i, j)
			}
			d /= float64(len(m))
			if d < b {
				b = d
			}
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n), nil
}

// CopheneticDistances returns the matrix of cophenetic distances: entry
// (i, j) is the merge height at which examples i and j first share a
// cluster.
func (dg *Dendrogram) CopheneticDistances() *linalg.Matrix {
	n := dg.N
	out := linalg.NewMatrix(n, n)
	// Union-find with explicit member lists; on each merge, all cross
	// pairs receive the merge height. Total work is O(n^2) across all
	// merges since each pair is set exactly once.
	parent := make([]int, n+len(dg.Merges))
	membersOf := make([][]int, n+len(dg.Merges))
	for i := 0; i < n; i++ {
		parent[i] = i
		membersOf[i] = []int{i}
	}
	for s, m := range dg.Merges {
		id := n + s
		parent[id] = id
		a, b := rootOf(parent, m.A), rootOf(parent, m.B)
		for _, i := range membersOf[a] {
			for _, j := range membersOf[b] {
				out.Set(i, j, m.Height)
				out.Set(j, i, m.Height)
			}
		}
		membersOf[id] = append(membersOf[a], membersOf[b]...)
		parent[a], parent[b] = id, id
		membersOf[a], membersOf[b] = nil, nil
	}
	return out
}

func rootOf(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// CopheneticCorrelation measures how faithfully a dendrogram preserves the
// original pairwise distances: the Pearson correlation between the input
// distances and the cophenetic distances over all pairs. 1 means the tree
// is a perfect ultrametric fit.
func CopheneticCorrelation(dist *linalg.Matrix, dg *Dendrogram) (float64, error) {
	n := dg.N
	if dist.Rows != n || dist.Cols != n {
		return 0, fmt.Errorf("cluster: distance matrix is %dx%d for %d leaves", dist.Rows, dist.Cols, n)
	}
	if n < 2 {
		return 0, fmt.Errorf("cluster: need at least 2 leaves")
	}
	coph := dg.CopheneticDistances()
	var xs, ys []float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			xs = append(xs, dist.At(i, j))
			ys = append(ys, coph.At(i, j))
		}
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("cluster: zero variance in distances")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
