package cluster

import (
	"fmt"
	"math"
	"sort"
)

// contingency builds the confusion table between two labelings.
func contingency(pred []int, truth []string) (map[[2]string]int, map[int]int, map[string]int, error) {
	if len(pred) != len(truth) {
		return nil, nil, nil, fmt.Errorf("cluster: %d predictions vs %d truths", len(pred), len(truth))
	}
	joint := map[[2]string]int{}
	predCount := map[int]int{}
	truthCount := map[string]int{}
	for i, p := range pred {
		joint[[2]string{fmt.Sprint(p), truth[i]}]++
		predCount[p]++
		truthCount[truth[i]]++
	}
	return joint, predCount, truthCount, nil
}

// Purity is the fraction of examples assigned to a cluster whose majority
// ground-truth label matches theirs: sum over clusters of the cluster's
// majority count, divided by n. 1.0 means every cluster is label-pure.
func Purity(pred []int, truth []string) (float64, error) {
	if len(pred) == 0 {
		return 0, fmt.Errorf("cluster: empty labeling")
	}
	joint, predCount, _, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	majority := map[int]int{}
	for key, c := range joint {
		var p int
		fmt.Sscan(key[0], &p)
		if c > majority[p] {
			majority[p] = c
		}
	}
	total := 0
	for p := range predCount {
		total += majority[p]
	}
	return float64(total) / float64(len(pred)), nil
}

// RandIndex is the fraction of example pairs on which the two labelings
// agree (same-same or different-different).
func RandIndex(pred []int, truth []string) (float64, error) {
	n := len(pred)
	if n != len(truth) {
		return 0, fmt.Errorf("cluster: %d predictions vs %d truths", n, len(truth))
	}
	if n < 2 {
		return 1, nil
	}
	agree := 0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samePred := pred[i] == pred[j]
			sameTruth := truth[i] == truth[j]
			if samePred == sameTruth {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs), nil
}

// AdjustedRandIndex is the Rand index corrected for chance (Hubert &
// Arabie). 1 = perfect agreement, ~0 = random labeling.
func AdjustedRandIndex(pred []int, truth []string) (float64, error) {
	n := len(pred)
	if n != len(truth) {
		return 0, fmt.Errorf("cluster: %d predictions vs %d truths", n, len(truth))
	}
	if n == 0 {
		return 0, fmt.Errorf("cluster: empty labeling")
	}
	joint, predCount, truthCount, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumJoint, sumPred, sumTruth float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range predCount {
		sumPred += choose2(c)
	}
	for _, c := range truthCount {
		sumTruth += choose2(c)
	}
	total := choose2(n)
	expected := sumPred * sumTruth / total
	maxIndex := (sumPred + sumTruth) / 2
	if maxIndex == expected {
		return 1, nil // both labelings trivial (all same or all distinct)
	}
	return (sumJoint - expected) / (maxIndex - expected), nil
}

// NMI is the normalised mutual information between the labelings (0..1,
// arithmetic-mean normalisation).
func NMI(pred []int, truth []string) (float64, error) {
	n := len(pred)
	if n != len(truth) {
		return 0, fmt.Errorf("cluster: %d predictions vs %d truths", n, len(truth))
	}
	if n == 0 {
		return 0, fmt.Errorf("cluster: empty labeling")
	}
	joint, predCount, truthCount, err := contingency(pred, truth)
	if err != nil {
		return 0, err
	}
	fn := float64(n)
	var mi float64
	for key, c := range joint {
		var p int
		fmt.Sscan(key[0], &p)
		pxy := float64(c) / fn
		px := float64(predCount[p]) / fn
		py := float64(truthCount[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(counts map[int]int) float64 {
		var h float64
		for _, c := range counts {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	hPred := entropy(predCount)
	var hTruth float64
	for _, c := range truthCount {
		p := float64(c) / fn
		hTruth -= p * math.Log(p)
	}
	denom := (hPred + hTruth) / 2
	if denom == 0 {
		return 1, nil // both labelings constant
	}
	v := mi / denom
	if v < 0 {
		v = 0 // numerical noise
	}
	return v, nil
}

// GroupsExactlyMatch reports whether the predicted clustering, as sets of
// example indices, equals the given partition of ground-truth label groups.
// Each element of wantGroups is a set of truth labels expected to form one
// predicted cluster (e.g. {{"A"}, {"B"}, {"C", "D"}} for the paper's Fig. 7
// result). All truth labels must be covered.
func GroupsExactlyMatch(pred []int, truth []string, wantGroups [][]string) bool {
	if len(pred) != len(truth) {
		return false
	}
	// Map each truth label to its expected group index.
	groupOf := map[string]int{}
	for gi, g := range wantGroups {
		for _, label := range g {
			groupOf[label] = gi
		}
	}
	// Every example's expected group.
	expected := make([]int, len(truth))
	for i, lab := range truth {
		gi, ok := groupOf[lab]
		if !ok {
			return false
		}
		expected[i] = gi
	}
	// The predicted partition must induce exactly the same equivalence.
	predToGroup := map[int]int{}
	groupToPred := map[int]int{}
	for i := range pred {
		if g, ok := predToGroup[pred[i]]; ok {
			if g != expected[i] {
				return false
			}
		} else {
			predToGroup[pred[i]] = expected[i]
		}
		if p, ok := groupToPred[expected[i]]; ok {
			if p != pred[i] {
				return false
			}
		} else {
			groupToPred[expected[i]] = pred[i]
		}
	}
	return true
}

// Misplaced counts examples whose predicted cluster's majority truth-group
// differs from their own, under the expected grouping. It quantifies the
// paper's "there were not misplaced examples" claim.
func Misplaced(pred []int, truth []string, wantGroups [][]string) int {
	groupOf := map[string]int{}
	for gi, g := range wantGroups {
		for _, label := range g {
			groupOf[label] = gi
		}
	}
	// Majority expected-group per predicted cluster.
	counts := map[int]map[int]int{}
	for i := range pred {
		if counts[pred[i]] == nil {
			counts[pred[i]] = map[int]int{}
		}
		counts[pred[i]][groupOf[truth[i]]]++
	}
	majority := map[int]int{}
	for p, m := range counts {
		bestG, bestC := -1, -1
		gs := make([]int, 0, len(m))
		for g := range m {
			gs = append(gs, g)
		}
		sort.Ints(gs) // deterministic tie-break
		for _, g := range gs {
			if m[g] > bestC {
				bestG, bestC = g, m[g]
			}
		}
		majority[p] = bestG
	}
	mis := 0
	for i := range pred {
		if groupOf[truth[i]] != majority[pred[i]] {
			mis++
		}
	}
	return mis
}
