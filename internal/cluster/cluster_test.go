package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/linalg"
	"iokast/internal/xrand"
)

// pointsDist builds a Euclidean distance matrix from 1-D points.
func pointsDist(xs []float64) *linalg.Matrix {
	n := len(xs)
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, math.Abs(xs[i]-xs[j]))
		}
	}
	return d
}

func TestClusterRejectsBadInput(t *testing.T) {
	if _, err := Cluster(linalg.NewMatrix(2, 3), Single); err == nil {
		t.Fatal("non-square accepted")
	}
	bad := linalg.FromRows([][]float64{{0, 1}, {5, 0}})
	if _, err := Cluster(bad, Single); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestTwoObviousClusters(t *testing.T) {
	// Points: {0, 1, 2} and {10, 11}.
	d := pointsDist([]float64{0, 1, 2, 10, 11})
	for _, link := range []Linkage{Single, Complete, Average} {
		dg, err := Cluster(d, link)
		if err != nil {
			t.Fatal(err)
		}
		labels := dg.Cut(2)
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Fatalf("%v: first blob split: %v", link, labels)
		}
		if labels[3] != labels[4] || labels[3] == labels[0] {
			t.Fatalf("%v: second blob wrong: %v", link, labels)
		}
	}
}

func TestSingleLinkageChaining(t *testing.T) {
	// A chain 0-1-2-3 with gaps 1 and an outlier at 100. Single linkage
	// chains the whole run together before absorbing the outlier.
	d := pointsDist([]float64{0, 1, 2, 3, 100})
	dg, err := Cluster(d, Single)
	if err != nil {
		t.Fatal(err)
	}
	labels := dg.Cut(2)
	for i := 1; i < 4; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("chain broken: %v", labels)
		}
	}
	if labels[4] == labels[0] {
		t.Fatalf("outlier absorbed: %v", labels)
	}
}

func TestCompleteVsSingleDiffer(t *testing.T) {
	// Chain of equidistant points then a slightly separated pair; complete
	// linkage is more eager to keep compact groups. We only check both
	// produce valid (possibly different) dendrograms with n-1 merges.
	d := pointsDist([]float64{0, 1, 2, 3, 4, 5})
	for _, link := range []Linkage{Single, Complete, Average} {
		dg, err := Cluster(d, link)
		if err != nil {
			t.Fatal(err)
		}
		if len(dg.Merges) != 5 {
			t.Fatalf("%v: %d merges, want 5", link, len(dg.Merges))
		}
	}
}

func TestCutExtremes(t *testing.T) {
	d := pointsDist([]float64{0, 1, 5})
	dg, err := Cluster(d, Single)
	if err != nil {
		t.Fatal(err)
	}
	one := dg.Cut(1)
	for _, l := range one {
		if l != 0 {
			t.Fatalf("Cut(1) = %v", one)
		}
	}
	all := dg.Cut(3)
	seen := map[int]bool{}
	for _, l := range all {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Cut(n) = %v", all)
	}
	// Clamping.
	if got := dg.Cut(0); len(got) != 3 {
		t.Fatal("Cut(0) wrong length")
	}
	if got := dg.Cut(99); len(got) != 3 {
		t.Fatal("Cut(99) wrong length")
	}
}

func TestCutHeight(t *testing.T) {
	d := pointsDist([]float64{0, 1, 10})
	dg, err := Cluster(d, Single)
	if err != nil {
		t.Fatal(err)
	}
	labels := dg.CutHeight(2)
	if labels[0] != labels[1] || labels[0] == labels[2] {
		t.Fatalf("CutHeight(2) = %v", labels)
	}
	labels = dg.CutHeight(0.5)
	if labels[0] == labels[1] {
		t.Fatalf("CutHeight(0.5) merged too much: %v", labels)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	dg, err := Cluster(linalg.NewMatrix(0, 0), Single)
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.Cut(1); got != nil {
		t.Fatalf("empty Cut = %v", got)
	}
	dg, err = Cluster(linalg.NewMatrix(1, 1), Single)
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.Cut(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton Cut = %v", got)
	}
}

// Property: merge heights are non-decreasing for the three monotone
// linkages.
func TestQuickMonotoneHeights(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := xrand.New(seed)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		d := pointsDist(pts)
		for _, link := range []Linkage{Single, Complete, Average} {
			dg, err := Cluster(d, link)
			if err != nil {
				return false
			}
			hs := dg.Heights()
			for i := 1; i < len(hs); i++ {
				if hs[i] < hs[i-1]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-linkage first merge joins the globally closest pair and
// its height is the minimum off-diagonal distance (MST edge order).
func TestQuickFirstMergeIsClosestPair(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%7) + 2
		r := xrand.New(seed)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		d := pointsDist(pts)
		dg, err := Cluster(d, Single)
		if err != nil {
			return false
		}
		min := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d.At(i, j) < min {
					min = d.At(i, j)
				}
			}
		}
		return math.Abs(dg.Merges[0].Height-min) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cut(k) always yields exactly min(k, n) distinct labels.
func TestQuickCutLabelCount(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 1
		k := int(kRaw%10) + 1
		r := xrand.New(seed)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 10
		}
		dg, err := Cluster(pointsDist(pts), Average)
		if err != nil {
			return false
		}
		labels := dg.Cut(k)
		seen := map[int]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		want := k
		if want > n {
			want = n
		}
		return len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	truth := []string{"A", "A", "B", "B"}
	p, err := Purity(pred, truth)
	if err != nil || p != 1 {
		t.Fatalf("Purity = %v, %v", p, err)
	}
	pred = []int{0, 0, 0, 1}
	p, _ = Purity(pred, truth)
	if p != 0.75 {
		t.Fatalf("Purity = %v, want 0.75", p)
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Purity([]int{0}, []string{"A", "B"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRandIndex(t *testing.T) {
	pred := []int{0, 0, 1, 1}
	truth := []string{"A", "A", "B", "B"}
	ri, err := RandIndex(pred, truth)
	if err != nil || ri != 1 {
		t.Fatalf("RandIndex = %v, %v", ri, err)
	}
	// Completely merged prediction: pairs within truth groups agree (2),
	// cross pairs disagree (4): RI = 2/6.
	ri, _ = RandIndex([]int{0, 0, 0, 0}, truth)
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Fatalf("RandIndex = %v", ri)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	truth := []string{"A", "A", "B", "B"}
	ari, err := AdjustedRandIndex([]int{1, 1, 0, 0}, truth)
	if err != nil || math.Abs(ari-1) > 1e-12 {
		t.Fatalf("perfect ARI = %v, %v", ari, err)
	}
	// All-in-one clustering has expected-level agreement: ARI ~ 0.
	ari, _ = AdjustedRandIndex([]int{0, 0, 0, 0}, truth)
	if math.Abs(ari) > 1e-9 {
		t.Fatalf("trivial ARI = %v, want 0", ari)
	}
}

func TestNMI(t *testing.T) {
	truth := []string{"A", "A", "B", "B"}
	nmi, err := NMI([]int{5, 5, 9, 9}, truth)
	if err != nil || math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("perfect NMI = %v, %v", nmi, err)
	}
	nmi, _ = NMI([]int{0, 1, 0, 1}, truth)
	if nmi > 1e-9 {
		t.Fatalf("independent NMI = %v, want 0", nmi)
	}
}

func TestGroupsExactlyMatch(t *testing.T) {
	truth := []string{"A", "A", "B", "C", "D", "C", "D"}
	// Prediction: A alone, B alone, C+D together.
	pred := []int{0, 0, 1, 2, 2, 2, 2}
	want := [][]string{{"A"}, {"B"}, {"C", "D"}}
	if !GroupsExactlyMatch(pred, truth, want) {
		t.Fatal("exact grouping not recognised")
	}
	// One C example misplaced into the A cluster.
	bad := []int{0, 0, 1, 0, 2, 2, 2}
	if GroupsExactlyMatch(bad, truth, want) {
		t.Fatal("misplacement not detected")
	}
	// Wrong number of predicted groups.
	if GroupsExactlyMatch([]int{0, 0, 0, 0, 0, 0, 0}, truth, want) {
		t.Fatal("merged clustering accepted")
	}
	// Unknown truth label.
	if GroupsExactlyMatch(pred, []string{"A", "A", "B", "C", "Z", "C", "D"}, want) {
		t.Fatal("unknown label accepted")
	}
}

func TestMisplaced(t *testing.T) {
	truth := []string{"A", "A", "B", "B"}
	groups := [][]string{{"A"}, {"B"}}
	if m := Misplaced([]int{0, 0, 1, 1}, truth, groups); m != 0 {
		t.Fatalf("Misplaced = %d, want 0", m)
	}
	if m := Misplaced([]int{0, 0, 0, 1}, truth, groups); m != 1 {
		t.Fatalf("Misplaced = %d, want 1", m)
	}
}

func TestLinkageString(t *testing.T) {
	if Single.String() != "single" || Complete.String() != "complete" || Average.String() != "average" {
		t.Fatal("linkage names wrong")
	}
}

func TestWardLinkageBlobs(t *testing.T) {
	d := pointsDist([]float64{0, 0.5, 1, 20, 20.5, 21})
	dg, err := Cluster(d, Ward)
	if err != nil {
		t.Fatal(err)
	}
	labels := dg.Cut(2)
	for i := 1; i < 3; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("first blob split: %v", labels)
		}
	}
	for i := 4; i < 6; i++ {
		if labels[i] != labels[3] {
			t.Fatalf("second blob split: %v", labels)
		}
	}
	if labels[0] == labels[3] {
		t.Fatalf("blobs merged: %v", labels)
	}
}

func TestWardHeightsMonotone(t *testing.T) {
	d := pointsDist([]float64{0, 1, 3, 9, 10, 30})
	dg, err := Cluster(d, Ward)
	if err != nil {
		t.Fatal(err)
	}
	hs := dg.Heights()
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1]-1e-9 {
			t.Fatalf("ward heights not monotone: %v", hs)
		}
	}
}

func TestWardFirstMergeHeightIsDistance(t *testing.T) {
	// For two singletons, the Ward merge cost equals half the squared
	// distance scaled... reported on the original scale it must equal the
	// pair distance itself for the very first merge of nearest singletons.
	d := pointsDist([]float64{0, 2, 10})
	dg, err := Cluster(d, Ward)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dg.Merges[0].Height-2) > 1e-12 {
		t.Fatalf("first ward height %v, want 2", dg.Merges[0].Height)
	}
}

func TestLinkageStringWard(t *testing.T) {
	if Ward.String() != "ward" {
		t.Fatal("ward name wrong")
	}
	if Linkage(99).String() == "" {
		t.Fatal("unknown linkage name empty")
	}
}
