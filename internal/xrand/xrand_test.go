package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestKnownStream(t *testing.T) {
	// Golden values pinned from the canonical SplitMix64 algorithm. The
	// seed-0 triple is the published reference vector (Steele/Lea/Flood
	// appendix; also xoshiro.di.unimi.it's splitmix64.c), so this test
	// catches both a broken refactor and a silent divergence from the
	// canonical constants. Every seeded dataset and load schedule in the
	// project is downstream of these values.
	for seed, want := range map[uint64][]uint64{
		0: {0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f},
		1234567: {
			0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
			0x3fbef740e9177b3f, 0xe3b8346708cb5ecd,
		},
	} {
		r := New(seed)
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Errorf("seed %d output[%d] = %#016x, want %#016x", seed, i, got, w)
			}
		}
	}
}

// TestUint64Uniformity: a chi-square test over 256 byte-buckets of the
// high byte. With 100000 draws and 255 degrees of freedom the statistic
// stays below ~330 for any healthy generator (p ~ 0.001); a biased or
// broken mixer blows far past it.
func TestUint64Uniformity(t *testing.T) {
	const n = 100000
	const buckets = 256
	var counts [buckets]int
	r := New(987654321)
	for i := 0; i < n; i++ {
		counts[r.Uint64()>>56]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 330 {
		t.Fatalf("chi-square %.1f over %d buckets (expected < 330 at p~0.001)", chi2, buckets)
	}
}

// TestSplitDeterminism: Split is itself a pure function of the parent
// state — the property ClientSeed-style per-stream derivation relies on.
func TestSplitDeterminism(t *testing.T) {
	s1 := New(77).Split()
	s2 := New(77).Split()
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("split streams diverged at %d", i)
		}
	}
}

func TestSeedDifferentiates(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced identical first output")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("IntRange(3,6) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for IntRange(5,4)")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPickCoversAll(t *testing.T) {
	r := New(19)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick did not cover all elements: %v", seen)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	s := r.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d times", same)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := New(seed)
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
