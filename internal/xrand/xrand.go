// Package xrand provides a small, deterministic pseudo-random number
// generator used across the project for reproducible synthetic datasets and
// property-based tests.
//
// The generator is SplitMix64 (Steele, Lea, Flood: "Fast splittable
// pseudorandom number generators", OOPSLA 2014). It is not cryptographically
// secure; it is chosen because it is tiny, fast, passes statistical tests
// adequate for workload generation, and — critically for reproduction — its
// output stream for a given seed is identical across platforms and Go
// versions, unlike math/rand's default source.
package xrand

// Rand is a deterministic SplitMix64 generator. The zero value is a valid
// generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Rejection sampling to avoid modulo bias. For the small n used by the
	// generators the first draw almost always succeeds.
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a pseudo-random element of xs. It panics on an empty slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Split returns a new generator whose stream is independent of r's
// continuation; it is derived from the next value of r. Useful to give each
// sub-generator its own stream so that inserting a new consumer does not
// shift every later stream.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}
