package store

import "iokast/internal/obs"

// Metrics are the store's telemetry hooks. The zero value disables
// telemetry: every instrument is nil and obs instruments are nil-safe,
// so an unconfigured store pays nothing on the durability path.
type Metrics struct {
	// WALAppends counts records appended to the WAL.
	WALAppends *obs.Counter
	// WALBytes counts bytes appended to the WAL (frame included).
	WALBytes *obs.Counter
	// FsyncSeconds is the latency of the per-append fsync (absent under
	// NoSync). This is the floor under every acknowledged mutation.
	FsyncSeconds *obs.Histogram
	// Snapshots counts snapshots written.
	Snapshots *obs.Counter
	// SnapshotSeconds is the wall time of each snapshot write.
	SnapshotSeconds *obs.Histogram
	// SnapshotBytes is the size of the newest snapshot.
	SnapshotBytes *obs.Gauge
	// ReplayRecords counts WAL records applied during recovery.
	ReplayRecords *obs.Counter
}

// NewMetrics registers the store family on reg. labels (e.g. the shard
// number) distinguish multiple stores in one process; series are
// get-or-create, so shards sharing labels share counters.
func NewMetrics(reg *obs.Registry, labels obs.Labels) Metrics {
	return Metrics{
		WALAppends:      reg.Counter("iok_store_wal_appends_total", "WAL records appended.", labels),
		WALBytes:        reg.Counter("iok_store_wal_appended_bytes_total", "WAL bytes appended, framing included.", labels),
		FsyncSeconds:    reg.Histogram("iok_store_fsync_seconds", "Per-append fsync latency.", labels),
		Snapshots:       reg.Counter("iok_store_snapshots_total", "Snapshots written.", labels),
		SnapshotSeconds: reg.Histogram("iok_store_snapshot_seconds", "Snapshot write wall time.", labels),
		SnapshotBytes:   reg.Gauge("iok_store_snapshot_bytes", "Size of the newest snapshot.", labels),
		ReplayRecords:   reg.Counter("iok_store_replay_records_total", "WAL records applied during recovery.", labels),
	}
}
