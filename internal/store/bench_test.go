package store

import (
	"fmt"
	"testing"
	"time"

	"iokast/internal/engine"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// benchTraces builds n converted traces from the paper generator, cycling
// if n exceeds the dataset.
func benchTraces(b *testing.B, n int) []token.String {
	base := corpus(b, 64, 77)
	xs := make([]token.String, n)
	for i := range xs {
		xs[i] = base[i%len(base)]
	}
	return xs
}

// smallStrings builds n short synthetic weighted strings (the small-trace
// regime where the WAL commit, not the kernel, bounds ingest throughput).
func smallStrings(n int) []token.String {
	r := xrand.New(123)
	xs := make([]token.String, n)
	for i := range xs {
		s := make(token.String, 1+r.Intn(2))
		for j := range s {
			s[j] = token.Token{Literal: fmt.Sprintf("op%d", r.Intn(8)), Weight: r.IntRange(1, 5)}
		}
		xs[i] = s
	}
	return xs
}

// BenchmarkDurableAddSequential ingests n traces one Add at a time into a
// durable engine: n WAL records, n fsyncs.
func BenchmarkDurableAddSequential(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchTraces(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, st, err := Open(b.TempDir(), kastEngine, Options{SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, x := range xs {
					eng.Add(x)
				}
				b.StopTimer()
				if err := eng.Err(); err != nil {
					b.Fatal(err)
				}
				st.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDurableAddBatch ingests the same n traces as one AddBatch: one
// WAL record, one fsync, one Gram block growth.
func BenchmarkDurableAddBatch(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			xs := benchTraces(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, st, err := Open(b.TempDir(), kastEngine, Options{SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := eng.AddBatch(xs); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.Close()
				b.StartTimer()
			}
		})
	}
}

// TestAddBatchSpeedupAtN64 is the acceptance bound for batched ingestion:
// on a durable engine, one AddBatch of 64 traces must run at least 2x
// faster than 64 sequential Adds of the same traces. The margin comes from
// commit batching — one WAL record and one fsync instead of 64 — plus one
// block growth and one kernel fan-out instead of 64 row updates. The test
// uses small traces (a few dozen tokens), where the per-commit cost is the
// bottleneck; that is precisely the heavy-traffic regime batching exists
// for. Large traces shift the ratio toward 1 on a single core because both
// paths evaluate the identical n(n+1)/2 kernel values (see the Durable*
// benchmarks for the realistic-trace numbers). Best-of-3 trials on each
// side to shed scheduler noise.
func TestAddBatchSpeedupAtN64(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	xs := smallStrings(64)

	trial := func(ingest func(eng *engine.Engine) error) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			eng, st, err := Open(t.TempDir(), kastEngine, Options{SnapshotEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if err := ingest(eng); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if err := eng.Err(); err != nil {
				t.Fatal(err)
			}
			st.Close()
		}
		return best
	}

	seq := trial(func(eng *engine.Engine) error {
		for _, x := range xs {
			eng.Add(x)
		}
		return nil
	})
	batch := trial(func(eng *engine.Engine) error {
		_, err := eng.AddBatch(xs)
		return err
	})

	t.Logf("sequential: %v, batch: %v, speedup %.2fx", seq, batch, float64(seq)/float64(batch))
	if batch*2 > seq {
		t.Errorf("AddBatch speedup %.2fx < 2x (sequential %v, batch %v)", float64(seq)/float64(batch), seq, batch)
	}
}
