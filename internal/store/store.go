package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"iokast/internal/engine"
	"iokast/internal/token"
)

// File layout inside the data directory:
//
//	snap-<seq>.iok   engine snapshot taken with <seq> mutations applied
//	wal-<seq>.log    log segment whose first record is mutation <seq>
//
// Segments are contiguous: each rotation starts the next segment at the
// current sequence number, so segment k ends where segment k+1 begins.
// Recovery restores the newest readable snapshot, then replays every
// record at or after its sequence number from the covering segments.
const (
	snapPattern = "snap-%016d.iok"
	walPattern  = "wal-%016d.log"
)

// Options configure a Store.
type Options struct {
	// SnapshotEvery is the number of mutations between automatic
	// background snapshots; 0 means the default (1024), negative disables
	// automatic snapshots (Snapshot can still be called manually).
	SnapshotEvery int
	// NoSync skips the fsync after each appended record. Throughput rises
	// sharply, but a machine crash (not just a process crash) can lose
	// recent mutations. Process kills lose nothing either way: the data
	// reaches the kernel on every append.
	NoSync bool
	// Metrics are the telemetry hooks; the zero value disables them.
	Metrics Metrics
}

// Store is the durability sidecar of one engine: it implements engine.Log
// by appending to the current WAL segment, and takes snapshots that bound
// replay time. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	eng  *engine.Engine

	mu        sync.Mutex
	f         *os.File  // current segment, append-only
	segments  []segment // on-disk segments, ascending start; last is current
	nextSeq   uint64    // sequence number of the next record
	snapSeq   uint64    // newest durable snapshot's sequence number
	appends   uint64    // records appended since Open
	appBytes  int64     // bytes appended since Open
	snapCount uint64    // snapshots written since Open
	snapBytes int64     // size of the newest snapshot
	torn      bool      // recovery stopped at a torn/corrupt record
	closed    bool

	snapMu     sync.Mutex // serialises snapshot writers
	snapQueued bool       // an automatic snapshot is scheduled (under mu)
	wg         sync.WaitGroup
	buf        bytes.Buffer // append scratch (under mu)
}

type segment struct {
	start uint64
	path  string
}

// Stats is a point-in-time view of the store, served by GET /debug/store.
type Stats struct {
	Dir             string `json:"dir"`
	Seq             uint64 `json:"seq"`
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	ReplayBacklog   uint64 `json:"replay_backlog"` // mutations a restart would replay
	WALSegments     int    `json:"wal_segments"`
	AppendedRecords uint64 `json:"appended_records"`
	AppendedBytes   int64  `json:"appended_bytes"`
	Snapshots       uint64 `json:"snapshots"`
	SnapshotBytes   int64  `json:"snapshot_bytes"`
	RecoveredTorn   bool   `json:"recovered_torn_tail,omitempty"`
	Sync            bool   `json:"sync"`
	Err             string `json:"err,omitempty"`
}

// Open recovers (or initialises) a durable engine from dir. newEngine must
// return a fresh, empty engine configured with the target kernel and
// options; it may be called more than once if an older snapshot has to be
// tried. On success the returned engine has the store attached as its
// mutation log, and the store owns a freshly rotated WAL segment.
//
// Recovery is fail-safe, not fail-silent: an unreadable snapshot falls
// back to the next older one, a torn record ends replay at the last intact
// mutation, but a sequence gap (files deleted by hand) is an error.
func Open(dir string, newEngine func() *engine.Engine, opts Options) (*engine.Engine, *Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	// A MANIFEST marks a sharded corpus (internal/shard): its WAL segments
	// live in per-shard subdirectories this store would never read, so
	// opening the root as a single-engine store would silently serve an
	// empty corpus — refuse instead.
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); err == nil {
		return nil, nil, fmt.Errorf("store: %s is a sharded corpus directory (MANIFEST present); open it with iokast.OpenSharded or iokserve -shards", dir)
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	s := &Store{dir: dir, opts: opts}
	eng, torn, err := s.recover(newEngine, snaps, segs)
	if err != nil {
		return nil, nil, err
	}
	s.eng = eng
	s.torn = torn

	// Checkpoint the recovered state and start a fresh segment, so the
	// directory always holds one snapshot plus the segments after it, and
	// everything older can be deleted.
	if err := s.writeSnapshot(); err != nil {
		return nil, nil, fmt.Errorf("store: initial snapshot: %w", err)
	}
	s.mu.Lock()
	s.nextSeq = eng.Seq()
	err = s.rotateLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	s.removeObsolete()

	eng.SetLog(s)
	return eng, s, nil
}

// scanDir inventories snapshots (descending seq) and segments (ascending
// start). Unrelated files are ignored; temp files from crashed snapshot
// writes are deleted.
func scanDir(dir string) (snaps []segment, segs []segment, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var seq uint64
		switch {
		case matchSeq(name, snapPattern, &seq):
			snaps = append(snaps, segment{seq, filepath.Join(dir, name)})
		case matchSeq(name, walPattern, &seq):
			segs = append(segs, segment{seq, filepath.Join(dir, name)})
		case len(name) > 4 && name[len(name)-4:] == ".tmp":
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	// Starts are unique (one file per name) so the ascending sort is a
	// total order; contiguity is checked during replay, not here.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].start > snaps[j].start })
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return snaps, segs, nil
}

func matchSeq(name, pattern string, seq *uint64) bool {
	i := strings.IndexByte(pattern, '%')
	prefix, suffix := pattern[:i], pattern[i+5:] // skip the "%016d" verb
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) != 16 {
		return false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return false
	}
	*seq = v
	return true
}

// recover builds an engine from the newest usable snapshot plus replay.
func (s *Store) recover(newEngine func() *engine.Engine, snaps, segs []segment) (*engine.Engine, bool, error) {
	// Try snapshots newest-first; append the "no snapshot" case.
	candidates := append(append([]segment(nil), snaps...), segment{0, ""})
	var lastErr error
	for _, snap := range candidates {
		eng := newEngine()
		if snap.path != "" {
			if err := restoreSnapshot(eng, snap.path); err != nil {
				lastErr = err
				continue
			}
			if eng.Seq() != snap.start {
				lastErr = fmt.Errorf("store: snapshot %s holds seq %d", snap.path, eng.Seq())
				continue
			}
		}
		torn, err := s.replay(eng, segs, snap.start)
		if err != nil {
			lastErr = err
			continue
		}
		return eng, torn, nil
	}
	return nil, false, fmt.Errorf("store: recovery failed: %w", lastErr)
}

func restoreSnapshot(eng *engine.Engine, path string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return eng.Restore(f)
}

// replay applies every record at or after fromSeq. It returns torn=true if
// it stopped at an unreadable record (everything before it was applied).
func (s *Store) replay(eng *engine.Engine, segs []segment, fromSeq uint64) (torn bool, err error) {
	for i, seg := range segs {
		// A segment is entirely superseded if the next one starts at or
		// before fromSeq.
		if i+1 < len(segs) && segs[i+1].start <= fromSeq {
			continue
		}
		if seg.start > fromSeq && i == 0 {
			return false, fmt.Errorf("store: replay gap: oldest segment starts at %d, snapshot at %d", seg.start, fromSeq)
		}
		torn, err = s.replaySegment(eng, seg, fromSeq)
		if err != nil {
			return false, err
		}
		if torn {
			// Records after a torn one cannot be ordered reliably; later
			// segments (there should be none — the torn tail is the crash
			// point) are ignored.
			return true, nil
		}
	}
	return false, nil
}

func (s *Store) replaySegment(eng *engine.Engine, seg segment, fromSeq uint64) (torn bool, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	seq := seg.start
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			return false, nil
		}
		if errors.Is(err, errTornRecord) {
			return true, nil
		}
		if err != nil {
			return false, fmt.Errorf("store: %s: %w", seg.path, err)
		}
		end := seq + rec.ops()
		switch {
		case end <= fromSeq: // fully covered by the snapshot
		case seq >= fromSeq:
			if err := apply(eng, rec); err != nil {
				return false, fmt.Errorf("store: %s at seq %d: %w", seg.path, seq, err)
			}
			s.opts.Metrics.ReplayRecords.Inc()
		default:
			return false, fmt.Errorf("store: %s: snapshot seq %d splits record [%d,%d)", seg.path, fromSeq, seq, end)
		}
		seq = end
	}
}

// apply replays one record. The engine has no log attached during replay,
// so nothing is re-appended.
func apply(eng *engine.Engine, rec record) error {
	switch rec.typ {
	case recAdd:
		if next := eng.NextID(); next != rec.id {
			return fmt.Errorf("add record for id %d, engine at %d", rec.id, next)
		}
		eng.Add(rec.strings[0])
	case recBatch:
		if next := eng.NextID(); next != rec.id {
			return fmt.Errorf("batch record for id %d, engine at %d", rec.id, next)
		}
		if _, err := eng.AddBatch(rec.strings); err != nil {
			return err
		}
	case recRemove:
		return eng.Remove(rec.id)
	}
	return nil
}

// --- engine.Log implementation -------------------------------------------

// LogAdd, LogAddBatch and LogRemove append one framed record and flush it
// to the OS (plus fsync unless NoSync). They are called under the engine's
// write lock, which serialises them and keeps the log order equal to the
// id order.

func (s *Store) LogAdd(id int, x token.String) error {
	return s.append(record{typ: recAdd, id: id, strings: []token.String{x}})
}

func (s *Store) LogAddBatch(firstID int, xs []token.String) error {
	return s.append(record{typ: recBatch, id: firstID, strings: xs})
}

func (s *Store) LogRemove(id int) error {
	return s.append(record{typ: recRemove, id: id})
}

func (s *Store) append(rec record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.buf.Reset()
	encodeRecord(&s.buf, rec)
	if payload := s.buf.Len() - 8; payload > maxRecordLen {
		// Refuse rather than write: a frame the reader rejects would be
		// fsynced, acknowledged as durable, and then silently dropped as a
		// torn tail on the next recovery — the one way to break the
		// "acknowledged is never lost" contract. The error surfaces
		// through engine.Err; callers should split the batch.
		return fmt.Errorf("store: record of %d bytes exceeds limit %d", payload, maxRecordLen)
	}
	if _, err := s.f.Write(s.buf.Bytes()); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if !s.opts.NoSync {
		var t0 time.Time
		if s.opts.Metrics.FsyncSeconds != nil {
			t0 = time.Now()
		}
		//iokvet:allow lockscope(WAL fsync under s.mu is the durability point: Append must not return — and no later writer may proceed — until this record is on disk)
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: sync: %w", err)
		}
		if s.opts.Metrics.FsyncSeconds != nil {
			s.opts.Metrics.FsyncSeconds.Observe(time.Since(t0))
		}
	}
	s.nextSeq += rec.ops()
	s.appends++
	s.appBytes += int64(s.buf.Len())
	s.opts.Metrics.WALAppends.Inc()
	s.opts.Metrics.WALBytes.Add(int64(s.buf.Len()))
	if s.opts.SnapshotEvery > 0 && !s.snapQueued &&
		s.nextSeq-s.snapSeq >= uint64(s.opts.SnapshotEvery) {
		s.snapQueued = true
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.Snapshot() // failure leaves the WAL authoritative
		}()
	}
	return nil
}

// --- snapshots ------------------------------------------------------------

// Snapshot checkpoints the engine now: it writes a snapshot atomically
// (temp file, fsync, rename), rotates the WAL, and deletes files the new
// snapshot supersedes. Replay work after a crash is bounded by the
// mutations since the last call. Safe to call at any time; concurrent
// calls are serialised.
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	defer func() {
		s.mu.Lock()
		s.snapQueued = false
		s.mu.Unlock()
	}()
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.rotateLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.removeObsolete()
	return nil
}

// writeSnapshot dumps the engine to snap-<seq>.iok with an atomic rename.
// Callers must hold snapMu (or be single-threaded, as in Open).
func (s *Store) writeSnapshot() error {
	var t0 time.Time
	if s.opts.Metrics.SnapshotSeconds != nil {
		t0 = time.Now()
	}
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	seq, err := s.eng.Snapshot(tmp)
	if err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	size, _ := tmp.Seek(0, io.SeekCurrent)
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	final := filepath.Join(s.dir, fmt.Sprintf(snapPattern, seq))
	//iokvet:allow atomicwrite(snapshot commit is itself a temp+fsync+rename sequence: this rename is the atomic publish step, not a raw overwrite)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: snapshot commit: %w", err)
	}
	syncDir(s.dir)
	s.mu.Lock()
	if seq > s.snapSeq {
		s.snapSeq = seq
	}
	s.snapCount++
	s.snapBytes = size
	s.mu.Unlock()
	s.opts.Metrics.Snapshots.Inc()
	s.opts.Metrics.SnapshotBytes.Set(size)
	if s.opts.Metrics.SnapshotSeconds != nil {
		s.opts.Metrics.SnapshotSeconds.Observe(time.Since(t0))
	}
	return nil
}

// rotateLocked closes the current segment (if any) and opens a new one
// starting at nextSeq. Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if n := len(s.segments); s.f != nil && n > 0 && s.segments[n-1].start == s.nextSeq {
		// No records since the last rotation: the current segment already
		// starts at nextSeq and is empty. Rotating would reopen (and
		// truncate) the same file and duplicate its segment entry, which
		// the cleanup pass would then mistake for an obsolete segment and
		// unlink out from under the writer.
		return nil
	}
	if s.f != nil {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: rotate sync: %w", err)
		}
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("store: rotate close: %w", err)
		}
		s.f = nil
	}
	// O_TRUNC, not O_APPEND-onto-whatever-exists: rotation always follows
	// a committed snapshot covering everything below nextSeq, so a
	// leftover file at this name (e.g. the torn head of a segment a crash
	// interrupted at its very first record) is garbage that must not
	// precede the new records — replay stops at the first torn frame.
	path := filepath.Join(s.dir, fmt.Sprintf(walPattern, s.nextSeq))
	//iokvet:allow atomicwrite(segment rotation IS the WAL writer: the new segment is created empty and becomes durable record by record via Append fsyncs)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: rotate: %w", err)
	}
	s.f = f
	s.segments = append(s.segments, segment{s.nextSeq, path})
	syncDir(s.dir)
	return nil
}

// removeObsolete deletes snapshots older than the newest one, tracked
// segments every record of which is covered by it, and untracked wal files
// left over from before recovery (the post-recovery checkpoint supersedes
// them in full).
func (s *Store) removeObsolete() {
	s.mu.Lock()
	snapSeq := s.snapSeq
	keep := s.segments[:0]
	var drop []string
	for i, seg := range s.segments {
		if i+1 < len(s.segments) && s.segments[i+1].start <= snapSeq {
			drop = append(drop, seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	s.segments = append([]segment(nil), keep...)
	tracked := make(map[string]bool, len(s.segments))
	for _, seg := range s.segments {
		tracked[seg.path] = true
	}
	s.mu.Unlock()

	for _, path := range drop {
		_ = os.Remove(path)
	}
	snaps, segs, err := scanDir(s.dir)
	if err != nil {
		return
	}
	for _, snap := range snaps {
		if snap.start < snapSeq {
			_ = os.Remove(snap.path)
		}
	}
	for _, seg := range segs {
		if !tracked[seg.path] {
			_ = os.Remove(seg.path)
		}
	}
}

// --- lifecycle ------------------------------------------------------------

// Close detaches the store from the engine, waits for in-flight snapshot
// work, takes a final checkpoint, and closes the segment. The engine stays
// usable in memory; further mutations are no longer persisted.
func (s *Store) Close() error {
	s.eng.SetLog(nil)
	s.wg.Wait()
	snapErr := s.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var closeErr error
	if s.f != nil {
		//iokvet:allow lockscope(final fsync on Close under s.mu: the store is shutting down and no concurrent reader exists to stall)
		if err := s.f.Sync(); err != nil {
			closeErr = err
		}
		if err := s.f.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
		s.f = nil
	}
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	// The engine error is read before s.mu: engine mutators call append
	// while holding the engine write lock, so acquiring an engine lock
	// with s.mu held would invert that order and deadlock.
	engErr := s.eng.Err()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:             s.dir,
		Seq:             s.nextSeq,
		SnapshotSeq:     s.snapSeq,
		ReplayBacklog:   s.nextSeq - s.snapSeq,
		WALSegments:     len(s.segments),
		AppendedRecords: s.appends,
		AppendedBytes:   s.appBytes,
		Snapshots:       s.snapCount,
		SnapshotBytes:   s.snapBytes,
		RecoveredTorn:   s.torn,
		Sync:            !s.opts.NoSync,
	}
	if engErr != nil {
		st.Err = engErr.Error()
	}
	return st
}

// AtomicWriteFile commits data to path with the same discipline snapshots
// use: write to a temp file in the same directory, fsync, rename over the
// final name, and fsync the directory. Readers therefore always see either
// the old contents or the complete new ones, never a torn write.
// internal/shard uses it for the sharded-corpus MANIFEST.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	//iokvet:allow atomicwrite(this IS AtomicWriteFile: the rename after fsync is the atomic publish the rest of the tree is routed through)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: commit %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir best-effort fsyncs a directory so renames and creates are
// durable. Some filesystems (and macOS) reject directory fsync; that is
// not worth failing a commit over.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
