package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"

	"iokast/internal/token"
)

// walBytes builds a small valid WAL stream for the seed corpus.
func walBytes() []byte {
	x1, _ := token.Parse("[ROOT]:1 open[0]:1 write[1024]:3 [LEVEL_UP]:2")
	x2, _ := token.Parse("[ROOT]:1 read[512]:7")
	var buf bytes.Buffer
	encodeRecord(&buf, record{typ: recAdd, id: 0, strings: []token.String{x1}})
	encodeRecord(&buf, record{typ: recBatch, id: 1, strings: []token.String{x2, x1}})
	encodeRecord(&buf, record{typ: recRemove, id: 0})
	return buf.Bytes()
}

// FuzzWALRecordParsing throws arbitrary bytes at the record reader: it must
// never panic, and whatever prefix it does accept must re-encode to records
// that parse back identically (decode∘encode is the identity on accepted
// records).
func FuzzWALRecordParsing(f *testing.F) {
	good := walBytes()
	f.Add(good)
	for cut := 0; cut < len(good); cut += 7 {
		f.Add(good[:cut])
	}
	mut := append([]byte(nil), good...)
	mut[11] ^= 0xFF
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var accepted []record
		for {
			rec, err := readRecord(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, errTornRecord) {
					t.Fatalf("unexpected error class: %v", err)
				}
				break
			}
			if rec.typ != recAdd && rec.typ != recRemove && rec.typ != recBatch {
				t.Fatalf("reader accepted unknown type %d", rec.typ)
			}
			accepted = append(accepted, rec)
			if len(accepted) > 1<<12 {
				break // bound fuzz cost on adversarial many-record inputs
			}
		}
		// Round-trip what was accepted.
		var buf bytes.Buffer
		for _, rec := range accepted {
			encodeRecord(&buf, rec)
		}
		rr := bytes.NewReader(buf.Bytes())
		for i, want := range accepted {
			got, err := readRecord(rr)
			if err != nil {
				t.Fatalf("re-read record %d: %v", i, err)
			}
			if got.typ != want.typ || got.id != want.id || len(got.strings) != len(want.strings) {
				t.Fatalf("record %d mutated on round trip: %+v vs %+v", i, got, want)
			}
			for j := range want.strings {
				if !got.strings[j].Equal(want.strings[j]) {
					t.Fatalf("record %d string %d mutated on round trip", i, j)
				}
			}
		}
	})
}

// FuzzWALTailTruncation: for every truncation of a valid WAL, replaying
// through a real store directory must recover a clean prefix — never
// panic, never invent state.
func FuzzWALTailTruncation(f *testing.F) {
	good := walBytes()
	for cut := 0; cut <= len(good); cut += 13 {
		f.Add(good[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		eng := kastEngine()
		torn, err := (&Store{}).replaySegment(eng, segment{start: 0, path: writeTempSegment(t, data)}, 0)
		if err != nil {
			// Only sequencing errors (id mismatches) are allowed to surface;
			// they must be deterministic, not panics. Anything CRC-invalid
			// must have been reported as torn instead.
			return
		}
		_ = torn
		// The recovered engine must be internally consistent.
		g, ids := eng.Gram()
		if g.Rows != len(ids) {
			t.Fatalf("replayed engine inconsistent: %d ids, %dx%d gram", len(ids), g.Rows, g.Cols)
		}
	})
}

func writeTempSegment(t *testing.T, data []byte) string {
	t.Helper()
	path := t.TempDir() + "/wal-0000000000000000.log"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
