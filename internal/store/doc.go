// Package store persists the incremental Gram engine: an append-only,
// CRC-checked write-ahead log of canonicalized traces plus periodic binary
// snapshots of the full engine state, committed with atomic renames. A
// killed process restarts into a bit-identical engine by restoring the
// newest snapshot and replaying only the log records after it.
//
// # Durability contract
//
// A mutation is durable once the engine call that performed it returns —
// the log record is appended, flushed, and (unless Options.NoSync) fsynced
// under the engine's write lock, before the in-memory state changes. A
// crash may preserve a mutation that was never acknowledged (record
// written, response lost), but never loses one that was. Batched ingestion
// (Engine.AddBatch) pays one record and one fsync per batch, which is the
// point: per-trace fsync is the dominant cost of durable single-trace
// Adds.
//
// # File layout
//
// A data directory holds snap-<seq>.iok snapshots and wal-<seq>.log
// segments; <seq> is the mutation count at which the file begins, so
// segments tile the history contiguously and recovery replays exactly the
// records a snapshot has not yet captured. A torn record at the tail of
// the last segment — the normal result of kill -9 mid-write — cleanly ends
// replay at the last intact mutation. Writes that must be atomic as a
// whole (snapshots; the shard MANIFEST and classify LABELS files reuse
// AtomicWriteFile) go to a temp file, fsync, then rename.
//
// See docs/ARCHITECTURE.md for the record framing and the snapshot wire
// format, and package shard for how one store per shard composes into a
// sharded data directory.
package store
