package store

import (
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
)

func sketchEngine() *engine.Engine {
	return engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 11})
}

// sameSketches asserts the two engines hold bit-identical sketch indexes:
// same id space, same tombstones, identical vector bits per id.
func sameSketches(t *testing.T, a, b *engine.Engine, context string) {
	t.Helper()
	if a.NextID() != b.NextID() {
		t.Fatalf("%s: id space %d vs %d", context, a.NextID(), b.NextID())
	}
	for id := 0; id < a.NextID(); id++ {
		va, vb := a.SketchVec(id), b.SketchVec(id)
		if (va == nil) != (vb == nil) {
			t.Fatalf("%s: id %d sketch presence mismatch", context, id)
		}
		for i := range va {
			if math.Float64bits(va[i]) != math.Float64bits(vb[i]) {
				t.Fatalf("%s: id %d sketch bit mismatch at %d", context, id, i)
			}
		}
	}
}

// TestSketchCrashRecovery covers both recovery paths for the sketch
// index: WAL-only replay (sketches recomputed deterministically from the
// replayed traces) and snapshot restore (sketches loaded from persisted
// bits), each interleaved with single Adds, a batch, and a removal. The
// recovered index must be bit-identical and answer approximate queries
// identically.
func TestSketchCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 20, 3)

	eng, st, err := Open(dir, sketchEngine, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:5] {
		eng.Add(x)
	}
	if _, err := eng.AddBatch(xs[5:12]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(2); err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-stream: everything up to here restores from persisted
	// vector bits.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail after the snapshot: replayed from the WAL, sketches recomputed.
	for _, x := range xs[12:] {
		eng.Add(x)
	}
	if err := eng.Remove(15); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close.

	reng, st2, err := Open(dir, sketchEngine, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sameSketches(t, eng, reng, "after crash recovery")

	for _, id := range []int{0, 7, 18} {
		want, err := eng.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reng.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("id %d: %d vs %d neighbors", id, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("id %d neighbor %d: %+v vs %+v", id, i, want[i], got[i])
			}
		}
	}
	// Tombstones survived into the index.
	if reng.SketchVec(2) != nil || reng.SketchVec(15) != nil {
		t.Fatal("tombstoned ids still have sketches after recovery")
	}
}
