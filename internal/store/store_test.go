package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/token"
)

// corpus builds converted weighted strings from the paper's synthetic
// generator, deterministically.
func corpus(t testing.TB, n int, seed uint64) []token.String {
	t.Helper()
	ds, err := iogen.Build(iogen.PaperOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if n > len(ds.Traces) {
		t.Fatalf("dataset has %d traces, want %d", len(ds.Traces), n)
	}
	return core.ConvertAll(ds.Traces[:n], core.Options{})
}

func kastEngine() *engine.Engine {
	return engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
}

// mustOpen opens a store over dir with automatic snapshots disabled (tests
// trigger snapshots explicitly for determinism).
func mustOpen(t *testing.T, dir string) (*engine.Engine, *Store) {
	t.Helper()
	eng, st, err := Open(dir, kastEngine, Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return eng, st
}

func sameGram(t *testing.T, a, b *engine.Engine, context string) {
	t.Helper()
	ga, idsA := a.Gram()
	gb, idsB := b.Gram()
	if len(idsA) != len(idsB) {
		t.Fatalf("%s: %d ids vs %d", context, len(idsA), len(idsB))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("%s: ids %v vs %v", context, idsA, idsB)
		}
	}
	if d := ga.MaxAbsDiff(gb); d != 0 {
		t.Fatalf("%s: Gram differs by %g (must be bit-identical)", context, d)
	}
}

// TestCrashRecoveryWALOnly is the headline crash test: mutations are
// written to the WAL but no snapshot is taken after them; the process
// "dies" (the store is abandoned without Close), and a reopened store must
// serve the exact pre-kill matrix.
func TestCrashRecoveryWALOnly(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 20, 1)

	eng, _ := mustOpen(t, dir)
	for _, x := range xs[:6] {
		eng.Add(x)
	}
	if _, err := eng.AddBatch(xs[6:14]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(3); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[14:] {
		eng.Add(x)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close, no snapshot since the initial empty checkpoint.

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	sameGram(t, eng, reng, "after WAL-only recovery")
	if reng.Seq() != eng.Seq() {
		t.Fatalf("recovered seq %d, want %d", reng.Seq(), eng.Seq())
	}
	if reng.Len() != 19 {
		t.Fatalf("recovered %d live entries, want 19", reng.Len())
	}
	// The tombstone survived: id 3 must be gone.
	if err := reng.Remove(3); err == nil {
		t.Fatal("id 3 still present after recovery; tombstone was not durable")
	}
}

// TestCrashRecoverySnapshotPlusTail: snapshot mid-stream, more mutations
// after it, kill, reopen. Recovery must restore the snapshot and replay
// only the tail.
func TestCrashRecoverySnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 24, 2)

	eng, st := mustOpen(t, dir)
	for _, x := range xs[:10] {
		eng.Add(x)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().SnapshotSeq; got != 10 {
		t.Fatalf("snapshot seq %d, want 10", got)
	}
	if _, err := eng.AddBatch(xs[10:20]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(12); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[20:] {
		eng.Add(x)
	}
	// Kill without Close.

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	sameGram(t, eng, reng, "after snapshot+tail recovery")
	if reng.Seq() != eng.Seq() {
		t.Fatalf("recovered seq %d, want %d", reng.Seq(), eng.Seq())
	}
}

// TestRecoveredNormalizedGramMatchesBatchRebuild: the acceptance bound —
// after kill+reload, the paper-pipeline similarity matrix must match a
// from-scratch batch rebuild over the same strings within 1e-12.
func TestRecoveredNormalizedGramMatchesBatchRebuild(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 30, 3)

	eng, st := mustOpen(t, dir)
	if _, err := eng.AddBatch(xs[:15]); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[15:] {
		eng.Add(x)
	}
	// Kill without Close.

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	got, ids, _, err := reng.NormalizedGram()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(xs) {
		t.Fatalf("recovered %d ids, want %d", len(ids), len(xs))
	}

	raw := kernel.Gram(&core.Kast{CutWeight: 2}, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := kernel.PSDRepair(norm)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("recovered NormalizedGram differs from batch rebuild by %g > 1e-12", d)
	}
}

// TestGracefulCloseFastRestart: Close checkpoints, so a reopen restores
// purely from the snapshot (empty WAL) and still matches.
func TestGracefulCloseFastRestart(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 12, 4)

	eng, st := mustOpen(t, dir)
	if _, err := eng.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	sameGram(t, eng, reng, "after graceful restart")
	stats := st2.Stats()
	if stats.SnapshotSeq != uint64(len(xs)) || stats.ReplayBacklog != 0 {
		t.Fatalf("stats after graceful restart: %+v", stats)
	}
}

// TestAutomaticSnapshots: with SnapshotEvery set, ingesting past the
// threshold must produce a snapshot without manual calls.
func TestAutomaticSnapshots(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 20, 5)
	eng, st, err := Open(dir, kastEngine, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		eng.Add(x)
	}
	if err := st.Close(); err != nil { // waits for background snapshot work
		t.Fatal(err)
	}
	if got := st.Stats().SnapshotSeq; got < 8 {
		t.Fatalf("snapshot seq %d after %d adds with SnapshotEvery=8", got, len(xs))
	}
}

// TestTornTailRecovery truncates the WAL at every byte of its tail record
// and asserts recovery still reaches the last intact mutation.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 8, 6)

	eng, _ := mustOpen(t, dir)
	for _, x := range xs {
		eng.Add(x)
	}
	seg := currentSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Reference engine over the first 7 adds.
	ref := kastEngine()
	for _, x := range xs[:7] {
		ref.Add(x)
	}

	// Find the last record's start: replay lengths from the frame headers.
	offsets := frameOffsets(t, full)
	if len(offsets) != len(xs)+1 {
		t.Fatalf("%d frame offsets for %d records", len(offsets), len(xs))
	}
	lastStart, end := offsets[len(offsets)-2], offsets[len(offsets)-1]
	if end != len(full) {
		t.Fatalf("frame walk ended at %d of %d bytes", end, len(full))
	}
	for cut := lastStart; cut < end; cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(seg)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reng, st := mustOpen(t, cutDir)
		if !st.Stats().RecoveredTorn && cut != lastStart {
			t.Errorf("cut at %d: torn tail not reported", cut)
		}
		sameGram(t, ref, reng, "after torn-tail recovery")
		st.Close()
	}
}

// TestCorruptMidRecordStopsReplay: flipping a byte in an early record must
// not panic or produce garbage — replay stops at the corruption and
// everything before it is intact.
func TestCorruptMidRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 6, 7)
	eng, _ := mustOpen(t, dir)
	for _, x := range xs {
		eng.Add(x)
	}
	seg := currentSegment(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offsets := frameOffsets(t, full)
	// Corrupt the third record's payload.
	bad := append([]byte(nil), full...)
	bad[offsets[2]+9] ^= 0xFF

	cutDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(seg)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	reng, st := mustOpen(t, cutDir)
	defer st.Close()
	if !st.Stats().RecoveredTorn {
		t.Error("corruption not reported as torn recovery")
	}
	ref := kastEngine()
	for _, x := range xs[:2] {
		ref.Add(x)
	}
	sameGram(t, ref, reng, "after mid-record corruption")
}

// TestCorruptSnapshotFallsBackToWAL: an unreadable snapshot must not brick
// the store — recovery falls back to an older snapshot or pure replay.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 10, 8)
	eng, st := mustOpen(t, dir)
	for _, x := range xs {
		eng.Add(x)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot; the WAL still holds everything (the segment
	// before rotation covers seq 0..10 and is only removed once obsolete —
	// but rotation already dropped it, so corrupt-snapshot recovery must
	// fail cleanly instead of inventing data).
	snaps, _, err := scanDir(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("scan: %v, %d snaps", err, len(snaps))
	}
	raw, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(snaps[0].path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, kastEngine, Options{SnapshotEvery: -1}); err == nil {
		t.Fatal("Open succeeded with a corrupt snapshot and no covering WAL")
	} else if !strings.Contains(err.Error(), "recovery failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestStatsShape sanity-checks the /debug/store payload fields.
func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 5, 9)
	eng, st := mustOpen(t, dir)
	defer st.Close()
	for _, x := range xs {
		eng.Add(x)
	}
	stats := st.Stats()
	if stats.Dir != dir || stats.Seq != 5 || stats.AppendedRecords != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.AppendedBytes <= 0 || !stats.Sync {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.ReplayBacklog != 5 {
		t.Fatalf("backlog = %d, want 5", stats.ReplayBacklog)
	}
}

// currentSegment returns the single WAL segment in dir.
func currentSegment(t *testing.T, dir string) string {
	t.Helper()
	_, segs, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d wal segments, want 1", len(segs))
	}
	return segs[0].path
}

// frameOffsets walks the frame headers and returns every record's start
// offset plus the final end offset.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offsets []int
	pos := 0
	for pos < len(data) {
		offsets = append(offsets, pos)
		if pos+8 > len(data) {
			t.Fatalf("torn frame header at %d", pos)
		}
		length := int(uint32(data[pos]) | uint32(data[pos+1])<<8 | uint32(data[pos+2])<<16 | uint32(data[pos+3])<<24)
		pos += 8 + length
	}
	if pos != len(data) {
		t.Fatalf("frame walk overran: %d of %d", pos, len(data))
	}
	offsets = append(offsets, pos)
	return offsets
}

// TestReplayAppliesBatchBoundaries: a snapshot taken exactly at a batch
// boundary replays cleanly; the mixed history (add, batch, remove) lands
// on the same state as a reference engine.
func TestReplayAppliesBatchBoundaries(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 12, 10)
	eng, st := mustOpen(t, dir)
	eng.Add(xs[0])
	if _, err := eng.AddBatch(xs[1:5]); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil { // seq 5, exactly after the batch
		t.Fatal(err)
	}
	if _, err := eng.AddBatch(xs[5:9]); err != nil {
		t.Fatal(err)
	}
	if err := eng.Remove(2); err != nil {
		t.Fatal(err)
	}
	eng.Add(xs[9])

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	sameGram(t, eng, reng, "after batch-boundary recovery")
}

// TestOpenEmptyDirAndReopen: opening a brand-new directory works and
// leaves it recoverable.
func TestOpenEmptyDirAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	eng, st := mustOpen(t, dir)
	if eng.Len() != 0 || eng.Seq() != 0 {
		t.Fatalf("fresh engine len=%d seq=%d", eng.Len(), eng.Seq())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, st2 := mustOpen(t, dir)
	defer st2.Close()
	if eng2.Len() != 0 {
		t.Fatalf("reopened empty store has %d entries", eng2.Len())
	}
}

// TestWALRecordRoundTrip checks the record codec directly.
func TestWALRecordRoundTrip(t *testing.T) {
	xs := corpus(t, 3, 11)
	recs := []record{
		{typ: recAdd, id: 0, strings: xs[:1]},
		{typ: recBatch, id: 1, strings: xs[1:]},
		{typ: recRemove, id: 1},
		{typ: recAdd, id: 7, strings: []token.String{{}}}, // empty string
	}
	var buf bytes.Buffer
	for _, r := range recs {
		encodeRecord(&buf, r)
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range recs {
		got, err := readRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.typ != want.typ || got.id != want.id || len(got.strings) != len(want.strings) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		for j := range want.strings {
			if !got.strings[j].Equal(want.strings[j]) {
				t.Fatalf("record %d string %d mismatch", i, j)
			}
		}
	}
	if _, err := readRecord(r); err == nil || err.Error() != "EOF" {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// TestConcurrentIngestWithAutoSnapshots hammers a durable engine from
// several writers while automatic snapshots run in the background — the
// lock-ordering proof for append (engine lock -> store lock) vs snapshot
// (engine read lock, then store lock, never both). The recovered state
// must equal the survivor's.
func TestConcurrentIngestWithAutoSnapshots(t *testing.T) {
	dir := t.TempDir()
	xs := corpus(t, 40, 21)
	eng, st, err := Open(dir, kastEngine, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, x := range xs[:16] {
			eng.Add(x)
		}
	}()
	go func() {
		defer wg.Done()
		for lo := 16; lo < 32; lo += 4 {
			if _, err := eng.AddBatch(xs[lo : lo+4]); err != nil {
				t.Errorf("AddBatch: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, x := range xs[32:] {
			id := eng.Add(x)
			if id%2 == 1 {
				if err := eng.Remove(id); err != nil {
					t.Errorf("Remove(%d): %v", id, err)
				}
			}
		}
	}()
	wg.Wait()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reng, st2 := mustOpen(t, dir)
	defer st2.Close()
	sameGram(t, eng, reng, "after concurrent ingest + auto snapshots")
	if reng.Seq() != eng.Seq() {
		t.Fatalf("recovered seq %d, want %d", reng.Seq(), eng.Seq())
	}
}
