package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"iokast/internal/token"
)

// Record types. A record is one engine mutation in the canonical trace
// representation (token.String text form), so logs are self-contained and
// survive changes to internal caches.
const (
	recAdd    byte = 1 // one string inserted: uvarint id, string
	recRemove byte = 2 // tombstone: uvarint id
	recBatch  byte = 3 // batch insert: uvarint firstID, uvarint n, n strings
)

// record is one decoded WAL entry.
type record struct {
	typ     byte
	id      int            // add: id; remove: id; batch: first id
	strings []token.String // add: 1 entry; batch: n entries
}

// ops returns how many engine mutations the record represents, which is
// what sequence numbers count.
func (r record) ops() uint64 {
	if r.typ == recBatch {
		return uint64(len(r.strings))
	}
	return 1
}

// maxRecordLen bounds a record frame so a corrupted length field cannot
// force a huge allocation before its CRC is checked. 64 MiB comfortably
// holds the largest batch the HTTP service accepts.
const maxRecordLen = 64 << 20

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord reports an unreadable record: a torn write at the tail of
// the newest segment (expected after a crash) or corruption. Replay stops
// at the first one; everything before it is intact by CRC.
var errTornRecord = errors.New("store: torn or corrupt wal record")

// appendString writes a length-prefixed canonical string.
func appendString(buf *bytes.Buffer, x token.String) {
	var scratch [binary.MaxVarintLen64]byte
	text := x.Format()
	n := binary.PutUvarint(scratch[:], uint64(len(text)))
	buf.Write(scratch[:n])
	buf.WriteString(text)
}

// encodeRecord frames a record: u32 payload length, u32 CRC-32C of the
// payload, payload. The frame is appended to buf.
func encodeRecord(buf *bytes.Buffer, r record) {
	var scratch [binary.MaxVarintLen64]byte
	var payload bytes.Buffer
	payload.WriteByte(r.typ)
	n := binary.PutUvarint(scratch[:], uint64(r.id))
	payload.Write(scratch[:n])
	switch r.typ {
	case recAdd:
		appendString(&payload, r.strings[0])
	case recBatch:
		n = binary.PutUvarint(scratch[:], uint64(len(r.strings)))
		payload.Write(scratch[:n])
		for _, x := range r.strings {
			appendString(&payload, x)
		}
	case recRemove:
	default:
		panic(fmt.Sprintf("store: encode unknown record type %d", r.typ))
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(payload.Len()))
	buf.Write(scratch[:4])
	binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(payload.Bytes(), walCRCTable))
	buf.Write(scratch[:4])
	buf.Write(payload.Bytes())
}

// readRecord reads one framed record. It returns io.EOF at a clean segment
// end and errTornRecord (possibly wrapped) for anything unparseable —
// short frames, CRC mismatches, or malformed payloads.
func readRecord(r io.Reader) (record, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: short header: %v", errTornRecord, err)
	}
	length := binary.LittleEndian.Uint32(head[:4])
	if length == 0 || length > maxRecordLen {
		return record{}, fmt.Errorf("%w: implausible length %d", errTornRecord, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return record{}, fmt.Errorf("%w: short payload: %v", errTornRecord, err)
	}
	if want, got := binary.LittleEndian.Uint32(head[4:]), crc32.Checksum(payload, walCRCTable); want != got {
		return record{}, fmt.Errorf("%w: crc stored %08x, computed %08x", errTornRecord, want, got)
	}
	return decodePayload(payload)
}

func decodePayload(payload []byte) (record, error) {
	br := bytes.NewReader(payload)
	typ, err := br.ReadByte()
	if err != nil {
		return record{}, fmt.Errorf("%w: empty payload", errTornRecord)
	}
	rec := record{typ: typ}
	id, err := binary.ReadUvarint(br)
	if err != nil {
		return record{}, fmt.Errorf("%w: bad id", errTornRecord)
	}
	rec.id = int(id)
	readString := func() (token.String, error) {
		textLen, err := binary.ReadUvarint(br)
		if err != nil || textLen > maxRecordLen {
			return nil, fmt.Errorf("%w: bad string length", errTornRecord)
		}
		text := make([]byte, textLen)
		if _, err := io.ReadFull(br, text); err != nil {
			return nil, fmt.Errorf("%w: short string", errTornRecord)
		}
		x, err := token.Parse(string(text))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errTornRecord, err)
		}
		return x, nil
	}
	switch typ {
	case recAdd:
		x, err := readString()
		if err != nil {
			return record{}, err
		}
		rec.strings = []token.String{x}
	case recBatch:
		count, err := binary.ReadUvarint(br)
		if err != nil || count == 0 || count > maxRecordLen/2 {
			return record{}, fmt.Errorf("%w: bad batch count", errTornRecord)
		}
		rec.strings = make([]token.String, 0, min(int(count), 1<<16))
		for i := uint64(0); i < count; i++ {
			x, err := readString()
			if err != nil {
				return record{}, err
			}
			rec.strings = append(rec.strings, x)
		}
	case recRemove:
	default:
		return record{}, fmt.Errorf("%w: unknown type %d", errTornRecord, typ)
	}
	if br.Len() != 0 {
		return record{}, fmt.Errorf("%w: %d trailing bytes", errTornRecord, br.Len())
	}
	return rec, nil
}
