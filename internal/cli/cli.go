// Package cli holds the shared, testable logic behind the cmd/ binaries:
// loading trace directories, constructing kernels from flag values, and
// writing matrices as CSV.
package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/matrixio"
	"iokast/internal/token"
	"iokast/internal/trace"
)

// TraceFileExt is the extension LoadTraceDir scans for.
const TraceFileExt = ".trace"

// LoadTraceDir reads every *.trace file in dir (sorted by name) using the
// canonical text format. The trace Name defaults to the file stem when the
// file has no name header.
func LoadTraceDir(dir string) ([]*trace.Trace, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cli: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), TraceFileExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("cli: no %s files in %s", TraceFileExt, dir)
	}
	traces := make([]*trace.Trace, 0, len(names))
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("cli: %w", err)
		}
		t, err := trace.Parse(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("cli: %s: %w", name, err)
		}
		if t.Name == "" {
			t.Name = strings.TrimSuffix(name, TraceFileExt)
		}
		traces = append(traces, t)
	}
	return traces, nil
}

// SaveTraceDir writes each trace as <index>_<name>.trace under dir,
// creating it if needed.
func SaveTraceDir(dir string, traces []*trace.Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cli: %w", err)
	}
	for i, t := range traces {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("trace%03d", i)
		}
		path := filepath.Join(dir, fmt.Sprintf("%03d_%s%s", i, sanitize(name), TraceFileExt))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cli: %w", err)
		}
		if err := trace.Format(f, t); err != nil {
			f.Close()
			return fmt.Errorf("cli: %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cli: %s: %w", path, err)
		}
	}
	return nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		}
		return '_'
	}, name)
}

// KernelSpec describes a kernel selected on the command line.
type KernelSpec struct {
	Name      string // kast | blended | spectrum | bagoftokens
	CutWeight int
	K         int  // spectrum length / blended max length
	Count     bool // count mode instead of weight-sum (baselines only)
}

// Build constructs the kernel.
func (s KernelSpec) Build() (kernel.Kernel, error) {
	mode := kernel.WeightSum
	if s.Count {
		mode = kernel.Count
	}
	switch s.Name {
	case "kast", "":
		return &core.Kast{CutWeight: s.CutWeight}, nil
	case "blended":
		k := s.K
		if k == 0 {
			k = 5
		}
		return &kernel.Blended{P: k, Mode: mode, CutWeight: s.CutWeight}, nil
	case "spectrum":
		k := s.K
		if k == 0 {
			k = 3
		}
		return &kernel.Spectrum{K: k, Mode: mode, CutWeight: s.CutWeight}, nil
	case "bagoftokens":
		return &kernel.BagOfTokens{Mode: mode}, nil
	}
	return nil, fmt.Errorf("cli: unknown kernel %q (want kast, blended, spectrum or bagoftokens)", s.Name)
}

// Similarity computes the post-processed similarity matrix for the spec:
// Eq. 12 normalisation for kast, cosine for baselines, both PSD-repaired
// when repair is true.
func (s KernelSpec) Similarity(xs []token.String, repair bool) (*linalg.Matrix, int, error) {
	k, err := s.Build()
	if err != nil {
		return nil, 0, err
	}
	raw := kernel.Gram(k, xs)
	var norm *linalg.Matrix
	if s.Name == "kast" || s.Name == "" {
		norm, err = core.NormalizeGramPaper(raw, xs, s.CutWeight)
		if err != nil {
			return nil, 0, err
		}
	} else {
		norm = kernel.NormalizeCosine(raw)
	}
	if !repair {
		return norm, 0, nil
	}
	return kernel.PSDRepair(norm)
}

// WriteMatrixCSV renders the matrix as CSV with row/column headers.
func WriteMatrixCSV(w interface{ Write([]byte) (int, error) }, m *linalg.Matrix, headers []string) error {
	var sb strings.Builder
	sb.WriteString("name")
	for j := 0; j < m.Cols; j++ {
		sb.WriteByte(',')
		sb.WriteString(header(headers, j))
	}
	sb.WriteByte('\n')
	for i := 0; i < m.Rows; i++ {
		sb.WriteString(header(headers, i))
		for j := 0; j < m.Cols; j++ {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(m.At(i, j), 'g', 10, 64))
		}
		sb.WriteByte('\n')
	}
	_, err := w.Write([]byte(sb.String()))
	return err
}

func header(headers []string, i int) string {
	if i < len(headers) && headers[i] != "" {
		return headers[i]
	}
	return fmt.Sprintf("x%d", i)
}

// LoadMatrix reads a named matrix written by matrixio (JSON when the path
// ends in .json, CSV otherwise).
func LoadMatrix(path string) (matrixio.Named, error) {
	f, err := os.Open(path)
	if err != nil {
		return matrixio.Named{}, fmt.Errorf("cli: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return matrixio.ReadJSON(f)
	}
	return matrixio.ReadCSV(f)
}
