package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/linalg"
	"iokast/internal/matrixio"
	"iokast/internal/trace"
)

func sampleTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	a, err := trace.ParseString("open fh=1\nwrite fh=1 bytes=8\nclose fh=1\n")
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "first"
	b, err := trace.ParseString("open fh=1\nread fh=1 bytes=4\nclose fh=1\n")
	if err != nil {
		t.Fatal(err)
	}
	b.Name = "second"
	return []*trace.Trace{a, b}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	traces := sampleTraces(t)
	if err := SaveTraceDir(dir, traces); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d traces", len(got))
	}
	if got[0].Name != "first" || got[1].Name != "second" {
		t.Fatalf("names %q, %q", got[0].Name, got[1].Name)
	}
	if got[0].Ops[1].Name != "write" {
		t.Fatal("content lost")
	}
}

func TestLoadTraceDirErrors(t *testing.T) {
	if _, err := LoadTraceDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := LoadTraceDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadNamesFromFileStem(t *testing.T) {
	dir := t.TempDir()
	traces := sampleTraces(t)
	traces[0].Name = ""
	if err := SaveTraceDir(dir, traces); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTraceDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name == "" {
		t.Fatal("name not defaulted from file stem")
	}
}

func TestSanitize(t *testing.T) {
	if s := sanitize("a b/c:d"); strings.ContainsAny(s, " /:") {
		t.Fatalf("sanitize left separators: %q", s)
	}
}

func TestKernelSpecBuild(t *testing.T) {
	for _, name := range []string{"", "kast", "blended", "spectrum", "bagoftokens"} {
		if _, err := (KernelSpec{Name: name, CutWeight: 2}).Build(); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := (KernelSpec{Name: "nope"}).Build(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestKernelSpecSimilarity(t *testing.T) {
	traces := sampleTraces(t)
	xs := core.ConvertAll(traces, core.Options{})
	for _, spec := range []KernelSpec{
		{Name: "kast", CutWeight: 2},
		{Name: "blended", CutWeight: 2, K: 3, Count: true},
	} {
		sim, clipped, err := spec.Similarity(xs, true)
		if err != nil {
			t.Fatal(err)
		}
		if sim.Rows != 2 || clipped < 0 {
			t.Fatalf("%s: shape %d clipped %d", spec.Name, sim.Rows, clipped)
		}
		min, err := linalg.MinEigenvalue(sim)
		if err != nil {
			t.Fatal(err)
		}
		if min < -1e-9 {
			t.Fatalf("%s: not repaired (%v)", spec.Name, min)
		}
	}
	// Without repair the normalised matrix is returned as-is.
	if _, clipped, err := (KernelSpec{Name: "kast", CutWeight: 2}).Similarity(xs, false); err != nil || clipped != 0 {
		t.Fatalf("no-repair path: %v %d", err, clipped)
	}
}

func TestWriteMatrixCSV(t *testing.T) {
	m := linalg.FromRows([][]float64{{1, 0.5}, {0.5, 1}})
	var sb strings.Builder
	if err := WriteMatrixCSV(&sb, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %d\n%s", len(lines), out)
	}
	if lines[0] != "name,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,1,0.5") {
		t.Fatalf("row %q", lines[1])
	}
	// Missing headers fall back to indices.
	sb.Reset()
	if err := WriteMatrixCSV(&sb, m, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x0") {
		t.Fatal("fallback headers missing")
	}
}

func TestLoadMatrix(t *testing.T) {
	dir := t.TempDir()
	m := linalg.FromRows([][]float64{{1, 0.5}, {0.5, 1}})
	named := matrixio.Named{Names: []string{"p", "q"}, Matrix: m}

	jsonPath := filepath.Join(dir, "m.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrixio.WriteJSON(jf, named); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	got, err := LoadMatrix(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix.MaxAbsDiff(m) != 0 || got.Names[0] != "p" {
		t.Fatal("json matrix load wrong")
	}

	csvPath := filepath.Join(dir, "m.csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrixio.WriteCSV(cf, named); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	got, err = LoadMatrix(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix.MaxAbsDiff(m) > 1e-12 {
		t.Fatal("csv matrix load wrong")
	}

	if _, err := LoadMatrix(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
