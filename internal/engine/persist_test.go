package engine

import (
	"bytes"
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/token"
)

// TestAddBatchMatchesSequential: a batch insert must leave the engine in
// exactly the state m sequential Adds would — same ids, bitwise-equal Gram
// matrix — for both the Kast and the featured-kernel paths.
func TestAddBatchMatchesSequential(t *testing.T) {
	xs := corpus(t, 24, 11)
	for _, kern := range []kernel.Kernel{
		&core.Kast{CutWeight: 2},
		&kernel.Spectrum{K: 3, Mode: kernel.Count, CutWeight: 2},
	} {
		seqEng := New(Options{Kernel: kern})
		for _, x := range xs {
			seqEng.Add(x)
		}
		batchEng := New(Options{Kernel: kern})
		// Split across three batches, with a plain Add in between.
		if ids, err := batchEng.AddBatch(xs[:10]); err != nil || len(ids) != 10 || ids[0] != 0 || ids[9] != 9 {
			t.Fatalf("%s: first batch ids %v err %v", kern.Name(), ids, err)
		}
		if id := batchEng.Add(xs[10]); id != 10 {
			t.Fatalf("%s: interleaved Add id %d", kern.Name(), id)
		}
		if ids, err := batchEng.AddBatch(xs[11:]); err != nil || len(ids) != 13 || ids[0] != 11 {
			t.Fatalf("%s: second batch ids %v err %v", kern.Name(), ids, err)
		}
		gs, _ := seqEng.Gram()
		gb, idsB := batchEng.Gram()
		if len(idsB) != len(xs) {
			t.Fatalf("%s: %d ids after batches, want %d", kern.Name(), len(idsB), len(xs))
		}
		if d := gs.MaxAbsDiff(gb); d != 0 {
			t.Errorf("%s: batch Gram differs from sequential by %g", kern.Name(), d)
		}
	}
}

// TestAddBatchEmptyAndAfterRemove covers the edge cases: empty batch is a
// no-op; a batch after a removal compares only against live entries.
func TestAddBatchEmptyAndAfterRemove(t *testing.T) {
	xs := corpus(t, 8, 5)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	if ids, err := e.AddBatch(nil); err != nil || ids != nil {
		t.Fatalf("empty batch: ids %v err %v", ids, err)
	}
	if _, err := e.AddBatch(xs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddBatch(xs[4:]); err != nil {
		t.Fatal(err)
	}
	// Reference: sequential engine with the same history.
	ref := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range xs[:4] {
		ref.Add(x)
	}
	if err := ref.Remove(1); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[4:] {
		ref.Add(x)
	}
	got, gotIDs := e.Gram()
	want, wantIDs := ref.Gram()
	if len(gotIDs) != len(wantIDs) || len(gotIDs) != 7 {
		t.Fatalf("ids %v vs %v", gotIDs, wantIDs)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("post-remove batch Gram differs by %g", d)
	}
}

// TestSnapshotRestoreRoundTrip: a restored engine must serve bit-identical
// state — Gram, ids, tombstones, similarity queries, seq — and accept
// further mutations that match the original engine's behaviour.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	xs := corpus(t, 16, 9)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range xs[:12] {
		e.Add(x)
	}
	if err := e.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(7); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	if err := r.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if r.Seq() != e.Seq() || r.Len() != e.Len() || r.NextID() != e.NextID() {
		t.Fatalf("restored seq/len/next = %d/%d/%d, want %d/%d/%d",
			r.Seq(), r.Len(), r.NextID(), e.Seq(), e.Len(), e.NextID())
	}
	ge, idsE := e.Gram()
	gr, idsR := r.Gram()
	if len(idsE) != len(idsR) {
		t.Fatalf("restored ids %v, want %v", idsR, idsE)
	}
	for i := range idsE {
		if idsE[i] != idsR[i] {
			t.Fatalf("restored ids %v, want %v", idsR, idsE)
		}
	}
	if d := ge.MaxAbsDiff(gr); d != 0 {
		t.Errorf("restored Gram differs by %g (must be bit-identical)", d)
	}

	// Both engines must evolve identically after the snapshot point.
	for _, x := range xs[12:] {
		if ide, idr := e.Add(x), r.Add(x); ide != idr {
			t.Fatalf("post-restore Add ids diverge: %d vs %d", ide, idr)
		}
	}
	ge, _ = e.Gram()
	gr, _ = r.Gram()
	if d := ge.MaxAbsDiff(gr); d != 0 {
		t.Errorf("post-restore Gram differs by %g", d)
	}
	ne, err := e.Similar(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := r.Similar(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ne {
		if ne[i] != nr[i] {
			t.Fatalf("restored Similar diverges at %d: %v vs %v", i, nr[i], ne[i])
		}
	}
}

// TestRestoreRejects covers the failure paths: non-empty engine, kernel
// mismatch, and corruption anywhere in the stream.
func TestRestoreRejects(t *testing.T) {
	xs := corpus(t, 6, 2)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range xs {
		e.Add(x)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	full := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	full.Add(xs[0])
	if err := full.Restore(bytes.NewReader(good)); err == nil {
		t.Error("Restore into non-empty engine did not fail")
	}

	other := New(Options{Kernel: &kernel.Spectrum{K: 3, Mode: kernel.Count, CutWeight: 2}})
	if err := other.Restore(bytes.NewReader(good)); err == nil {
		t.Error("Restore with mismatched kernel did not fail")
	}

	for pos := 0; pos < len(good); pos += 11 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x20
		fresh := New(Options{Kernel: &core.Kast{CutWeight: 2}})
		if err := fresh.Restore(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at byte %d not detected", pos)
		}
	}
	for cut := 0; cut < len(good); cut += 7 {
		fresh := New(Options{Kernel: &core.Kast{CutWeight: 2}})
		if err := fresh.Restore(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
}

// recordingLog captures Log calls for inspection and optionally fails.
type recordingLog struct {
	adds    []int
	batches []int
	removes []int
	fail    error
}

func (l *recordingLog) LogAdd(id int, x token.String) error {
	l.adds = append(l.adds, id)
	return l.fail
}

func (l *recordingLog) LogAddBatch(firstID int, xs []token.String) error {
	l.batches = append(l.batches, firstID, len(xs))
	return l.fail
}

func (l *recordingLog) LogRemove(id int) error {
	l.removes = append(l.removes, id)
	return l.fail
}

// TestLogHook: every accepted mutation reaches the log with the right ids;
// log failures are sticky in Err but do not block serving.
func TestLogHook(t *testing.T) {
	xs := corpus(t, 6, 3)
	log := &recordingLog{}
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}, Log: log})
	e.Add(xs[0])
	if _, err := e.AddBatch(xs[1:4]); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(99); err == nil {
		t.Fatal("Remove of unknown id did not fail")
	}
	if len(log.adds) != 1 || log.adds[0] != 0 {
		t.Errorf("logged adds %v", log.adds)
	}
	if len(log.batches) != 2 || log.batches[0] != 1 || log.batches[1] != 3 {
		t.Errorf("logged batches %v", log.batches)
	}
	if len(log.removes) != 1 || log.removes[0] != 2 {
		t.Errorf("logged removes %v (the failed Remove must not be logged)", log.removes)
	}
	if e.Seq() != 5 {
		t.Errorf("seq = %d, want 5", e.Seq())
	}
	if e.Err() != nil {
		t.Fatalf("unexpected engine error %v", e.Err())
	}

	log.fail = bytes.ErrTooLarge
	if id := e.Add(xs[4]); id != 4 {
		t.Fatalf("Add after log failure returned %d", id)
	}
	if e.Err() == nil {
		t.Fatal("log failure not surfaced via Err")
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d after degraded Add", e.Len())
	}
}
