// Package engine provides an incremental Gram-matrix engine: a stateful
// corpus of weighted strings whose kernel matrix is maintained under
// single-trace insertion and removal.
//
// The paper's batch workflow (kernel.Gram) recomputes all n(n+1)/2 kernel
// values whenever the dataset changes. In a streaming setting — traces
// arriving one at a time, as in cmd/iokserve — that is quadratic work per
// arrival. The engine instead caches each string's per-string
// representation once (the feature map for inner-product kernels, the
// interned/prefix-hashed view for the Kast kernel) and, on Add, computes
// only the new row/column against the existing corpus, fanned out over a
// bounded worker pool. Adding the (N+1)-th trace therefore costs N kernel
// evaluations instead of the (N+1)(N+2)/2 a batch recompute pays.
//
// Results are identical to a from-scratch kernel.Gram over the same
// strings: both paths evaluate the same kernel on the same cached
// representations, and every kernel in this project accumulates integer-
// valued products in float64, which is exact (and thus order-independent)
// far beyond the magnitudes real traces produce.
package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/token"
)

// Options configure an Engine.
type Options struct {
	// Kernel is the similarity function. nil means the paper's default,
	// &core.Kast{CutWeight: 2}.
	Kernel kernel.Kernel
	// Workers bounds the goroutines used for row computation and snapshot
	// recomputes; <= 0 means GOMAXPROCS. The same bound is shared with
	// kernel.ParallelFor, so one setting caps all kernel fan-out.
	Workers int
}

// Engine is an incremental Gram engine. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex
	k        kernel.Kernel
	kast     *core.Kast // non-nil iff k is a Kast kernel
	featured bool       // k exposes per-string feature maps
	interner *core.Interner
	workers  int

	entries []*entry       // index = id; nil after Remove
	g       *linalg.Matrix // raw kernel matrix over all ids, removed rows stale
	active  int
}

// entry caches one corpus string and its per-string representation.
type entry struct {
	x     token.String
	feats map[string]float64 // featured kernels
	prep  *core.Prepared     // Kast kernels
}

// Neighbor is one entry of a top-k similarity query.
type Neighbor struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

// New returns an empty engine.
func New(opt Options) *Engine {
	k := opt.Kernel
	if k == nil {
		k = &core.Kast{CutWeight: 2}
	}
	e := &Engine{
		k:       k,
		workers: opt.Workers,
		g:       linalg.NewMatrix(0, 0),
	}
	if kk, ok := k.(*core.Kast); ok {
		e.kast = kk
		e.interner = core.NewInterner()
	} else if _, ok := kernel.Features(k, nil); ok {
		e.featured = true
	}
	return e
}

// Kernel returns the engine's kernel.
func (e *Engine) Kernel() kernel.Kernel { return e.k }

// Len returns the number of live (non-removed) corpus entries.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.active
}

// Add inserts a weighted string into the corpus and returns its id. Ids are
// assigned sequentially and never reused. Only the new row/column of the
// Gram matrix is computed: one kernel evaluation against each live entry
// plus the self-similarity, tile-parallel over the worker pool.
func (e *Engine) Add(x token.String) int {
	ne := &entry{x: x}
	// Per-string representations are built outside the write lock where
	// possible; the interner is internally synchronised.
	if e.kast != nil {
		ne.prep = e.interner.Prepare(x)
		ne.x = ne.prep.String() // aliases the interner's defensive copy
	} else if e.featured {
		f, _ := kernel.Features(e.k, x)
		ne.feats = f
		ne.x = append(token.String(nil), x...)
	} else {
		ne.x = append(token.String(nil), x...)
	}

	// The O(N) row of kernel evaluations runs against a snapshot of the
	// entry slice taken under the read lock, so concurrent readers (and
	// other Adds in their compute phase) are not blocked by it. Entries
	// are append-only and never mutated in place (Remove swaps the slot
	// pointer under the write lock, which the snapshot copy is immune
	// to), so comparing against the snapshot is safe; a slot removed
	// mid-flight just yields a value no snapshot will ever read.
	e.mu.RLock()
	snap := append([]*entry(nil), e.entries...)
	e.mu.RUnlock()

	row := e.compareRow(ne, snap)
	self := e.compare(ne, ne)

	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.entries)
	rowcol := make([]float64, n+1)
	copy(rowcol, row)
	if len(snap) < n {
		// Entries added between snapshot and lock: compute the short tail
		// under the write lock.
		copy(rowcol[len(snap):n], e.compareRow(ne, e.entries[len(snap):n]))
	}
	rowcol[n] = self

	e.g.GrowSymmetric(rowcol)
	e.entries = append(e.entries, ne)
	e.active++
	return n
}

// compareRow evaluates the kernel of ne against each entry, fanned out over
// the worker pool. Nil (removed) slots yield 0; their values are never read.
func (e *Engine) compareRow(ne *entry, against []*entry) []float64 {
	row := make([]float64, len(against))
	kernel.ParallelFor(len(against), e.workers, func(i int) {
		if old := against[i]; old != nil {
			row[i] = e.compare(ne, old)
		}
	})
	return row
}

// compare evaluates the kernel on two cached entries.
func (e *Engine) compare(a, b *entry) float64 {
	switch {
	case e.kast != nil:
		return e.kast.ComparePrepared(a.prep, b.prep)
	case e.featured:
		return kernel.DotFeatures(a.feats, b.feats)
	default:
		return e.k.Compare(a.x, b.x)
	}
}

// Remove deletes the entry with the given id. Its row and column stay in
// the internal matrix (they are skipped by every snapshot and never
// recomputed), so removal is O(1).
//
// Tombstoned slots are not reclaimed: internal storage grows with the total
// number of ids ever assigned, not the live corpus size. That is the right
// trade for the intended workload (corpora that mostly grow, occasional
// deletions); a sliding-window deployment with unbounded churn should
// periodically rebuild via New + re-Add, which re-densifies ids.
func (e *Engine) Remove(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return fmt.Errorf("engine: no entry with id %d", id)
	}
	e.entries[id] = nil
	e.active--
	return nil
}

// ids returns the live ids in increasing order. Caller must hold e.mu.
func (e *Engine) idsLocked() []int {
	ids := make([]int, 0, e.active)
	for id, en := range e.entries {
		if en != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// Gram returns a snapshot of the raw kernel matrix over the live entries
// (row/column order = increasing id) together with the ids. The snapshot is
// a copy: later Add/Remove calls do not mutate it.
func (e *Engine) Gram() (*linalg.Matrix, []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := e.idsLocked()
	return e.g.SelectSymmetric(ids), ids
}

// Strings returns copies of the live corpus strings in id order, with their
// ids.
func (e *Engine) Strings() ([]token.String, []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := e.idsLocked()
	xs := make([]token.String, len(ids))
	for i, id := range ids {
		xs[i] = append(token.String(nil), e.entries[id].x...)
	}
	return xs, ids
}

// NormalizedGram returns the paper's post-processed similarity matrix over
// the live entries: Eq. 12 normalisation plus PSD repair for Kast kernels,
// cosine normalisation plus PSD repair otherwise — exactly the
// PaperSimilarity / CosineSimilarity batch pipelines, fed from the
// incrementally maintained raw matrix. clipped is the number of negative
// eigenvalues removed by the repair.
func (e *Engine) NormalizedGram() (m *linalg.Matrix, ids []int, clipped int, err error) {
	e.mu.RLock()
	ids = e.idsLocked()
	raw := e.g.SelectSymmetric(ids)
	var norm *linalg.Matrix
	if e.kast != nil {
		xs := make([]token.String, len(ids))
		for i, id := range ids {
			xs[i] = e.entries[id].x
		}
		norm, err = core.NormalizeGramPaper(raw, xs, e.kast.CutWeight)
	} else {
		norm = kernel.NormalizeCosine(raw)
	}
	e.mu.RUnlock()
	if err != nil {
		return nil, nil, 0, err
	}
	m, clipped, err = kernel.PSDRepair(norm)
	if err != nil {
		return nil, nil, 0, err
	}
	return m, ids, clipped, nil
}

// Similar returns the k live entries most similar to id, by cosine-
// normalised kernel value (so entries of very different magnitude rank
// comparably), in decreasing order. The query entry itself is excluded.
func (e *Engine) Similar(id, k int) ([]Neighbor, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return nil, fmt.Errorf("engine: no entry with id %d", id)
	}
	self := e.g.At(id, id)
	out := make([]Neighbor, 0, e.active-1)
	for j, en := range e.entries {
		if en == nil || j == id {
			continue
		}
		v := e.g.At(id, j)
		if d := self * e.g.At(j, j); d > 0 {
			v /= math.Sqrt(d)
		} else {
			v = 0
		}
		out = append(out, Neighbor{ID: j, Similarity: v})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Similarity > out[b].Similarity })
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// GramAt computes, from scratch but reusing every cached per-string view,
// the raw Kast Gram matrix over the live entries at a different cut weight.
// Prepared views are cut-weight independent, so no cache invalidation is
// needed; only the pair loop is paid. It returns an error for non-Kast
// engines, whose cached representations do depend on the kernel parameters.
func (e *Engine) GramAt(cutWeight int) (*linalg.Matrix, []int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.kast == nil {
		return nil, nil, fmt.Errorf("engine: GramAt requires a Kast kernel, have %s", e.k.Name())
	}
	k := &core.Kast{CutWeight: cutWeight, Viability: e.kast.Viability}
	ids := e.idsLocked()
	preps := make([]*core.Prepared, len(ids))
	for i, id := range ids {
		preps[i] = e.entries[id].prep
	}
	g := kernel.SymmetricGram(len(ids), e.workers, func(i, j int) float64 {
		return k.ComparePrepared(preps[i], preps[j])
	})
	return g, ids, nil
}
