package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/sketch"
	"iokast/internal/token"
)

// Options configure an Engine.
type Options struct {
	// Kernel is the similarity function. nil means the paper's default,
	// &core.Kast{CutWeight: 2}.
	Kernel kernel.Kernel
	// Workers bounds the goroutines used for row computation and snapshot
	// recomputes; <= 0 means GOMAXPROCS. The same bound is shared with
	// kernel.ParallelFor, so one setting caps all kernel fan-out.
	Workers int
	// Log, when non-nil, receives every accepted mutation (Add, AddBatch,
	// Remove) before it is applied, under the engine's write lock, so the
	// log order matches the id order. internal/store implements it as a
	// write-ahead log. See SetLog for attaching a log after recovery.
	Log Log
	// SketchDim is the width of the sketch vectors maintained alongside the
	// corpus for approximate similarity (SimilarApprox, SimilarTrace):
	// 0 means sketch.DefaultDim, negative disables sketching entirely.
	// Sketches are deterministic in (trace, SketchDim, SketchSeed), so two
	// engines with the same configuration and corpus hold bit-identical
	// indexes regardless of how the corpus was built or recovered.
	SketchDim int
	// SketchSeed keys the sketch hashes. Sketches (and snapshots carrying
	// them) are only compatible across engines with equal dim and seed.
	SketchSeed uint64
	// ANNBands, when > 0, switches the sketch index from a flat scan to
	// LSH-banded candidate generation (sketch.NewIndexANN): ANNBands band
	// signatures of ANNRows sign-random-projection bits each, derived from
	// SketchSeed. Search then scans only the entries sharing a band with
	// the query, falling back to the flat scan whenever exactness requires
	// it — full-rerank queries stay bit-identical to Similar. 0 (the zero
	// value) keeps the exact flat scan. Ignored when sketching is disabled.
	ANNBands int
	// ANNRows is the number of hyperplanes per band; 0 means
	// sketch.DefaultRows, values above sketch.MaxRows are clamped.
	ANNRows int
	// Metrics are the telemetry hooks; the zero value disables them.
	Metrics Metrics
}

// Log receives engine mutations for durability. Implementations must be
// safe for concurrent use; calls arrive serialised under the engine's write
// lock and must be fast (append + flush, not compaction). An error does not
// abort the in-memory mutation — the engine keeps serving and surfaces the
// failure through Err — so a log error means "persistence degraded", not
// "data rejected".
type Log interface {
	// LogAdd records the insertion of x as id.
	LogAdd(id int, x token.String) error
	// LogAddBatch records the insertion of xs as ids firstID..firstID+len-1.
	LogAddBatch(firstID int, xs []token.String) error
	// LogRemove records the tombstoning of id.
	LogRemove(id int) error
}

// Engine is an incremental Gram engine. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex
	k        kernel.Kernel
	kast     *core.Kast // non-nil iff k is a Kast kernel
	featured bool       // k exposes per-string feature maps
	interner *core.Interner
	workers  int

	entries []*entry       // index = id; nil after Remove
	g       *linalg.Matrix // raw kernel matrix over all ids, removed rows stale
	active  int
	seq     uint64 // accepted mutations (adds + removes), the WAL sequence
	log     Log    // mutation log, nil for a purely in-memory engine
	logErr  error  // sticky: first log failure, surfaced by Err

	sk  *sketch.Sketcher // nil when sketching is disabled
	ix  *sketch.Index    // sketch index over live ids; nil iff sk is nil
	met Metrics          // telemetry hooks; zero value = disabled
}

// entry caches one corpus string and its per-string representation.
type entry struct {
	x     token.String
	feats map[string]float64 // featured kernels
	prep  *core.Prepared     // Kast kernels
	vec   []float64          // sketch vector; shares storage with the index
}

// Neighbor is one entry of a top-k similarity query.
type Neighbor struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

// New returns an empty engine.
func New(opt Options) *Engine {
	k := opt.Kernel
	if k == nil {
		k = &core.Kast{CutWeight: 2}
	}
	e := &Engine{
		k:       k,
		workers: opt.Workers,
		g:       linalg.NewMatrix(0, 0),
		log:     opt.Log,
		met:     opt.Metrics,
	}
	if kk, ok := k.(*core.Kast); ok {
		e.kast = kk
		e.interner = core.NewInterner()
	} else if _, ok := kernel.Features(k, nil); ok {
		e.featured = true
	}
	if opt.SketchDim >= 0 {
		e.sk = sketch.New(sketch.Options{Dim: opt.SketchDim, Seed: opt.SketchSeed})
		e.ix = sketch.NewIndexANN(e.sk.Dim(), opt.ANNBands, opt.ANNRows, opt.SketchSeed)
		e.ix.SetMetrics(opt.Metrics.Index)
	}
	return e
}

// Kernel returns the engine's kernel.
func (e *Engine) Kernel() kernel.Kernel { return e.k }

// Len returns the number of live (non-removed) corpus entries.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.active
}

// Add inserts a weighted string into the corpus and returns its id. Ids are
// assigned sequentially and never reused. Only the new row/column of the
// Gram matrix is computed: one kernel evaluation against each live entry
// plus the self-similarity, tile-parallel over the worker pool.
func (e *Engine) Add(x token.String) int {
	// Per-string representations are built outside the write lock where
	// possible; the interner is internally synchronised.
	ne := e.newEntry(x)
	e.sketchEntry(ne)

	// The O(N) row of kernel evaluations runs against a snapshot of the
	// entry slice taken under the read lock, so concurrent readers (and
	// other Adds in their compute phase) are not blocked by it. Entries
	// are append-only and never mutated in place (Remove swaps the slot
	// pointer under the write lock, which the snapshot copy is immune
	// to), so comparing against the snapshot is safe; a slot removed
	// mid-flight just yields a value no snapshot will ever read.
	e.mu.RLock()
	snap := append([]*entry(nil), e.entries...)
	e.mu.RUnlock()

	row := e.compareRow(ne, snap)
	self := e.compare(ne, ne)
	e.met.KernelEvals.Add(1) // the self-similarity evaluation

	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.entries)
	rowcol := make([]float64, n+1)
	copy(rowcol, row)
	if len(snap) < n {
		// Entries added between snapshot and lock: compute the short tail
		// under the write lock.
		copy(rowcol[len(snap):n], e.compareRow(ne, e.entries[len(snap):n]))
	}
	rowcol[n] = self

	if e.log != nil {
		//iokvet:allow lockscope(WAL append under e.mu is the documented durability point: the entry must be logged before any reader can observe it in the gram)
		if err := e.log.LogAdd(n, ne.x); err != nil && e.logErr == nil {
			e.logErr = fmt.Errorf("engine: log add %d: %w", n, err)
		}
	}
	e.g.GrowSymmetric(rowcol)
	e.entries = append(e.entries, ne)
	e.indexEntry(n, ne)
	e.active++
	e.seq++
	e.met.Adds.Inc()
	return n
}

// AddBatch inserts m strings in one step and returns their ids, which are
// consecutive. It evaluates exactly the kernel values m sequential Adds
// would (the new-vs-existing rows plus the new-vs-new triangle) but fans
// all of them out in a single kernel.ParallelFor — one scheduling barrier
// instead of m, so small rows no longer starve the worker pool — and
// commits with a single linalg.GrowSymmetricBlock and a single log record
// instead of m row growths and m log appends. On a durable engine the log
// batching dominates: one fsync per batch rather than per trace.
//
// The returned error is a persistence error from the attached Log; the
// in-memory insertion has still happened (see Log).
func (e *Engine) AddBatch(xs []token.String) ([]int, error) {
	m := len(xs)
	if m == 0 {
		return nil, nil
	}
	nes := make([]*entry, m)
	kernel.ParallelFor(m, e.workers, func(i int) {
		nes[i] = e.newEntry(xs[i])
		e.sketchEntry(nes[i])
	})

	e.mu.RLock()
	snap := append([]*entry(nil), e.entries...)
	e.mu.RUnlock()

	// One flat index space covers both the rows against the existing
	// corpus and the lower triangle among the new entries, so
	// load-balancing works across the whole batch. Row t owns the n+t+1
	// evaluations starting at off[t]; a task decodes its (t, j) by binary
	// search over the offsets, which keeps the fan-out allocation at O(m)
	// instead of materialising every pair.
	n := len(snap)
	rows := make([][]float64, m)
	off := make([]int, m+1)
	for t := 0; t < m; t++ {
		rows[t] = make([]float64, n+t+1)
		off[t+1] = off[t] + n + t + 1
	}
	kernel.ParallelFor(off[m], e.workers, func(p int) {
		t := sort.SearchInts(off, p+1) - 1
		j := p - off[t]
		if j < n {
			if old := snap[j]; old != nil {
				rows[t][j] = e.compare(nes[t], old)
			}
			return
		}
		rows[t][j] = e.compare(nes[t], nes[j-n])
	})
	if e.met.KernelEvals != nil {
		// m rows against the live snapshot plus the new-vs-new triangle;
		// counted here in one add rather than atomically in the hot loop.
		var live int64
		for _, old := range snap {
			if old != nil {
				live++
			}
		}
		e.met.KernelEvals.Add(int64(m)*live + int64(m)*int64(m+1)/2)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if base := len(e.entries); base > n {
		// Entries added between snapshot and lock: widen every row and fill
		// the short tail under the write lock, as Add does.
		for t := range rows {
			widened := make([]float64, base+t+1)
			copy(widened, rows[t][:n])
			copy(widened[base:], rows[t][n:])
			copy(widened[n:base], e.compareRow(nes[t], e.entries[n:base]))
			rows[t] = widened
		}
	}
	first := len(e.entries)
	ids := make([]int, m)
	for t := range ids {
		ids[t] = first + t
	}
	var logErr error
	if e.log != nil {
		strs := make([]token.String, m)
		for t, ne := range nes {
			strs[t] = ne.x
		}
		//iokvet:allow lockscope(WAL batch append under e.mu is the documented durability point: ids are assigned and logged atomically with respect to readers)
		if logErr = e.log.LogAddBatch(first, strs); logErr != nil {
			logErr = fmt.Errorf("engine: log batch at %d: %w", first, logErr)
			if e.logErr == nil {
				e.logErr = logErr
			}
		}
	}
	e.g.GrowSymmetricBlock(rows)
	e.entries = append(e.entries, nes...)
	for t, ne := range nes {
		e.indexEntry(first+t, ne)
	}
	e.active += m
	e.seq += uint64(m)
	e.met.Adds.Add(int64(m))
	return ids, logErr
}

// newEntry builds the cached per-string representation for x. Safe for
// concurrent use.
func (e *Engine) newEntry(x token.String) *entry {
	ne := &entry{}
	switch {
	case e.kast != nil:
		ne.prep = e.interner.Prepare(x)
		ne.x = ne.prep.String() // aliases the interner's defensive copy
	case e.featured:
		f, _ := kernel.Features(e.k, x)
		ne.feats = f
		ne.x = append(token.String(nil), x...)
	default:
		ne.x = append(token.String(nil), x...)
	}
	return ne
}

// newQueryEntry builds the representation for a query-only string. Unlike
// newEntry it never grows the shared interner: unknown query literals get
// ephemeral scratch ids (core.Interner.PrepareEphemeral), so read-only
// query traffic — however diverse or adversarial — cannot permanently grow
// engine memory. Safe for concurrent use.
func (e *Engine) newQueryEntry(x token.String) *entry {
	if e.kast == nil {
		return e.newEntry(x)
	}
	ne := &entry{}
	ne.prep = e.interner.PrepareEphemeral(x)
	ne.x = ne.prep.String()
	return ne
}

// sketchEntry fills ne.vec with the entry's sketch. Featured kernels are
// sketched from their own feature maps, so the sketch cosine estimates the
// kernel's cosine directly; Kast (and any other) kernels are sketched from
// the string's windowed substring features, a proxy that tracks shared-
// substring similarity well enough for shortlist recall (the exact rerank
// restores exact results). Safe for concurrent use.
func (e *Engine) sketchEntry(ne *entry) {
	if e.sk == nil {
		return
	}
	if e.featured {
		ne.vec = e.sk.SketchFeatures(ne.feats)
		return
	}
	ne.vec = e.sk.Sketch(ne.x)
}

// indexEntry registers a committed entry's sketch under its id. Caller
// holds e.mu; the index shares the entry's vector storage.
func (e *Engine) indexEntry(id int, ne *entry) {
	if e.ix == nil {
		return
	}
	// Ids are assigned sequentially and never reused, so Add cannot fail.
	_ = e.ix.Add(id, ne.vec)
}

// compareRow evaluates the kernel of ne against each entry, fanned out over
// the worker pool. Nil (removed) slots yield 0; their values are never read.
func (e *Engine) compareRow(ne *entry, against []*entry) []float64 {
	if e.met.KernelEvals != nil {
		var n int64
		for _, old := range against {
			if old != nil {
				n++
			}
		}
		e.met.KernelEvals.Add(n)
	}
	row := make([]float64, len(against))
	kernel.ParallelFor(len(against), e.workers, func(i int) {
		if old := against[i]; old != nil {
			row[i] = e.compare(ne, old)
		}
	})
	return row
}

// compare evaluates the kernel on two cached entries.
func (e *Engine) compare(a, b *entry) float64 {
	switch {
	case e.kast != nil:
		return e.kast.ComparePrepared(a.prep, b.prep)
	case e.featured:
		return kernel.DotFeatures(a.feats, b.feats)
	default:
		return e.k.Compare(a.x, b.x)
	}
}

// Remove deletes the entry with the given id. Its row and column stay in
// the internal matrix (they are skipped by every snapshot and never
// recomputed), so removal is O(1).
//
// Tombstoned slots are not reclaimed: internal storage grows with the total
// number of ids ever assigned, not the live corpus size. That is the right
// trade for the intended workload (corpora that mostly grow, occasional
// deletions); a sliding-window deployment with unbounded churn should
// periodically rebuild via New + re-Add, which re-densifies ids.
func (e *Engine) Remove(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return fmt.Errorf("engine: no entry with id %d", id)
	}
	if e.log != nil {
		//iokvet:allow lockscope(WAL remove under e.mu is the documented durability point: the tombstone must be logged before readers can observe the slot as free)
		if err := e.log.LogRemove(id); err != nil && e.logErr == nil {
			e.logErr = fmt.Errorf("engine: log remove %d: %w", id, err)
		}
	}
	e.entries[id] = nil
	if e.ix != nil {
		e.ix.Remove(id)
	}
	e.active--
	e.seq++
	e.met.Removes.Inc()
	return nil
}

// SetLog attaches (or replaces, or with nil detaches) the mutation log.
// internal/store uses it to attach the write-ahead log only after recovery
// replay, so replayed mutations are not re-logged.
func (e *Engine) SetLog(l Log) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log = l
}

// Seq returns the number of mutations (adds and removes) the engine has
// accepted, including those replayed from a snapshot or log. It is the
// engine's position in the write-ahead log.
func (e *Engine) Seq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.seq
}

// NextID returns the id the next Add would assign.
func (e *Engine) NextID() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.entries)
}

// Err returns the first mutation-log failure, or nil. A non-nil value means
// the in-memory state has diverged from the durable log: the engine keeps
// serving, but a restart would lose the mutations logged after the failure.
// Callers that need fail-stop semantics should check Err after mutating.
func (e *Engine) Err() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.logErr
}

// ids returns the live ids in increasing order. Caller must hold e.mu.
func (e *Engine) idsLocked() []int {
	ids := make([]int, 0, e.active)
	for id, en := range e.entries {
		if en != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// Gram returns a snapshot of the raw kernel matrix over the live entries
// (row/column order = increasing id) together with the ids. The snapshot is
// a copy: later Add/Remove calls do not mutate it.
func (e *Engine) Gram() (*linalg.Matrix, []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := e.idsLocked()
	return e.g.SelectSymmetric(ids), ids
}

// Strings returns copies of the live corpus strings in id order, with their
// ids.
func (e *Engine) Strings() ([]token.String, []int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ids := e.idsLocked()
	xs := make([]token.String, len(ids))
	for i, id := range ids {
		xs[i] = append(token.String(nil), e.entries[id].x...)
	}
	return xs, ids
}

// StringAt returns a copy of the live corpus string with the given id. ok
// is false for ids that were never assigned or have been removed. It is the
// single-entry form of Strings, exported for supervisors (internal/shard)
// that resolve a query trace from its owner shard before fanning the query
// out.
func (e *Engine) StringAt(id int) (token.String, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return nil, false
	}
	return append(token.String(nil), e.entries[id].x...), true
}

// Has reports whether id names a live (non-removed) corpus entry. It is
// the allocation-free liveness check behind label validation; use StringAt
// when the string itself is needed.
func (e *Engine) Has(id int) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return id >= 0 && id < len(e.entries) && e.entries[id] != nil
}

// NormalizedGram returns the paper's post-processed similarity matrix over
// the live entries: Eq. 12 normalisation plus PSD repair for Kast kernels,
// cosine normalisation plus PSD repair otherwise — exactly the
// PaperSimilarity / CosineSimilarity batch pipelines, fed from the
// incrementally maintained raw matrix. clipped is the number of negative
// eigenvalues removed by the repair.
func (e *Engine) NormalizedGram() (m *linalg.Matrix, ids []int, clipped int, err error) {
	e.mu.RLock()
	ids = e.idsLocked()
	raw := e.g.SelectSymmetric(ids)
	var norm *linalg.Matrix
	if e.kast != nil {
		xs := make([]token.String, len(ids))
		for i, id := range ids {
			xs[i] = e.entries[id].x
		}
		norm, err = core.NormalizeGramPaper(raw, xs, e.kast.CutWeight)
	} else {
		norm = kernel.NormalizeCosine(raw)
	}
	e.mu.RUnlock()
	if err != nil {
		return nil, nil, 0, err
	}
	m, clipped, err = kernel.PSDRepair(norm)
	if err != nil {
		return nil, nil, 0, err
	}
	return m, ids, clipped, nil
}

// Similar returns the k live entries most similar to id, by cosine-
// normalised kernel value (so entries of very different magnitude rank
// comparably), in decreasing order. The query entry itself is excluded.
func (e *Engine) Similar(id, k int) ([]Neighbor, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return nil, fmt.Errorf("engine: no entry with id %d", id)
	}
	self := e.g.At(id, id)
	out := make([]Neighbor, 0, e.active-1)
	for j, en := range e.entries {
		if en == nil || j == id {
			continue
		}
		v := e.g.At(id, j)
		if d := self * e.g.At(j, j); d > 0 {
			v /= math.Sqrt(d)
		} else {
			v = 0
		}
		out = append(out, Neighbor{ID: j, Similarity: v})
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Similarity > out[b].Similarity })
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// DefaultRerankFloor is the minimum candidate over-fetch SimilarApprox and
// SimilarTrace use when the caller does not pick a rerank width.
const DefaultRerankFloor = 32

// DefaultRerank sizes the candidate shortlist for a top-k query when the
// caller passes rerank < 0: a 4x over-fetch with a floor, so small k still
// gives the exact rerank enough candidates to recover sketch-ranking
// mistakes. k < 0 (return everything) yields an effectively unbounded
// shortlist, i.e. the exact path. Exported so internal/shard can resolve
// the caller's rerank to the same width the single engine would before
// splitting it across shards.
func DefaultRerank(k int) int {
	if k < 0 {
		return int(^uint(0) >> 1) // all candidates: exact
	}
	if r := 4 * k; r > DefaultRerankFloor {
		return r
	}
	return DefaultRerankFloor
}

// SimilarApprox is Similar answered from the sketch index: the query id's
// sketch is scored against every live sketch (O(N * dim) multiply-adds
// instead of N kernel evaluations for query-by-trace workloads, and a
// shortlist instead of a full sort here), the top candidates are reranked
// with the exact cosine-normalised kernel values from the Gram matrix, and
// the best k are returned in Similar's order (decreasing similarity, ties
// by ascending id).
//
// rerank controls the shortlist: negative picks the default over-fetch
// (max(4k, DefaultRerankFloor)), 0 skips the exact rerank entirely and
// returns sketch cosines as the similarity scores, and rerank >= Len()-1
// makes the result identical to Similar(id, k). In between, the result is
// exact over the shortlist: it equals Similar whenever the shortlist
// contains the true top k.
func (e *Engine) SimilarApprox(id, k, rerank int) ([]Neighbor, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ix == nil {
		return nil, fmt.Errorf("engine: sketching disabled (Options.SketchDim < 0)")
	}
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return nil, fmt.Errorf("engine: no entry with id %d", id)
	}
	if rerank < 0 {
		rerank = DefaultRerank(k)
	}
	// SearchSelf reuses the stored vector — and, on a banded index, the
	// stored signature — so by-id queries never pay signature work.
	if rerank == 0 {
		return neighbors(e.ix.SearchSelf(id, k)), nil
	}
	fetch := rerank
	if k > fetch {
		fetch = k
	}
	cands := e.ix.SearchSelf(id, fetch)
	e.met.Reranked.Add(int64(len(cands)))
	self := e.g.At(id, id)
	out := make([]Neighbor, 0, len(cands))
	for _, c := range cands {
		v := e.g.At(id, c.ID)
		if d := self * e.g.At(c.ID, c.ID); d > 0 {
			v /= math.Sqrt(d)
		} else {
			v = 0
		}
		out = append(out, Neighbor{ID: c.ID, Similarity: v})
	}
	SortNeighbors(out)
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// TraceQuery is a query trace prepared once for one or more
// SimilarTracePrepared calls: the canonical string copy, the feature map
// (featured kernels), and the prepared sketch query (vector, band
// signature, quantized copy). All of these depend only on the string and
// the engine configuration — not on any corpus — so one TraceQuery can be
// shared across every engine built with the same kernel and sketch/ANN
// configuration. internal/shard prepares the query once and fans the same
// TraceQuery out to all shards, paying the sketch and signature cost once
// instead of once per shard.
type TraceQuery struct {
	x     token.String
	feats map[string]float64
	sq    *sketch.Query
	// self caches k(q, q), which depends only on the string and the
	// kernel: the fan-out would otherwise recompute it on every shard.
	self    float64
	hasSelf bool
}

// PrepareTraceQuery builds the corpus-independent representation of a
// query trace: a defensive copy of the string, its feature map for
// featured kernels, and — when sketching is enabled — the prepared sketch
// query. The Kast prepared view is deliberately not built here: it
// depends on each engine's interner, so SimilarTracePrepared builds it
// per call.
func (e *Engine) PrepareTraceQuery(x token.String) (*TraceQuery, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("engine: empty query string")
	}
	tq := &TraceQuery{x: append(token.String(nil), x...)}
	if e.featured {
		tq.feats, _ = kernel.Features(e.k, tq.x)
	}
	if e.sk != nil {
		var vec []float64
		if e.featured {
			vec = e.sk.SketchFeatures(tq.feats)
		} else {
			vec = e.sk.Sketch(tq.x)
		}
		tq.sq = e.ix.PrepareQuery(vec)
	}
	// Self-similarity is corpus-independent (for Kast the interned view
	// only renames literals, never changes the value), so pay for it once
	// here instead of once per fan-out shard.
	qe := &entry{x: tq.x, feats: tq.feats}
	if e.kast != nil {
		qe.prep = e.interner.PrepareEphemeral(tq.x)
		qe.x = qe.prep.String()
	}
	tq.self = e.compare(qe, qe)
	tq.hasSelf = true
	return tq, nil
}

// PrepareStoredQuery builds a TraceQuery from a live corpus entry,
// reusing everything the engine already holds for it: the stored string,
// its feature map, and its sketch vector with the stored band signature.
// This is PrepareTraceQuery minus all the compute — no sketch, no
// signature — which is what makes sharded by-id queries as cheap as the
// single engine's: the owner shard prepares here and the fan-out shards
// search with the stored byproducts. The result aliases engine storage
// and must be treated as read-only.
func (e *Engine) PrepareStoredQuery(id int) (*TraceQuery, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if id < 0 || id >= len(e.entries) || e.entries[id] == nil {
		return nil, fmt.Errorf("engine: no entry with id %d", id)
	}
	en := e.entries[id]
	tq := &TraceQuery{x: en.x, feats: en.feats, self: e.g.At(id, id), hasSelf: true}
	if e.sk != nil {
		tq.sq = e.ix.SelfQuery(id)
	}
	return tq, nil
}

// SimilarTrace answers "what is this trace similar to?" without ingesting
// it: the query string is prepared (and sketched) exactly like a corpus
// entry, but nothing is added to the corpus, logged, or assigned an id.
// Scores are the cosine-normalised kernel values k(q,j)/sqrt(k(q,q)k(j,j)),
// ordered like Similar.
//
// rerank works as in SimilarApprox: negative for the default over-fetch,
// 0 for sketch-only scores, >= Len() for the exact answer. When sketching
// is disabled the query always runs exact — one kernel evaluation per live
// entry — whatever rerank says.
func (e *Engine) SimilarTrace(x token.String, k, rerank int) ([]Neighbor, error) {
	tq, err := e.PrepareTraceQuery(x)
	if err != nil {
		return nil, err
	}
	return e.SimilarTracePrepared(tq, k, rerank)
}

// SimilarTracePrepared is SimilarTrace over an already-prepared query.
// tq must come from PrepareTraceQuery on this engine or on one with an
// identical kernel and sketch/ANN configuration (the sharded fan-out);
// a query prepared without ANN byproducts simply falls back to the flat
// sketch scan inside the index.
func (e *Engine) SimilarTracePrepared(tq *TraceQuery, k, rerank int) ([]Neighbor, error) {
	if len(tq.x) == 0 {
		return nil, fmt.Errorf("engine: empty query string")
	}
	// The per-engine representation is built outside any lock, like Add's
	// compute phase. For Kast engines the query is prepared against the
	// shared interner without growing it: unknown literals get ephemeral
	// scratch ids, so query traffic never costs table memory.
	qe := &entry{x: tq.x, feats: tq.feats}
	if e.kast != nil {
		qe.prep = e.interner.PrepareEphemeral(tq.x)
		qe.x = qe.prep.String()
	}
	sq := tq.sq
	if e.sk != nil && sq == nil {
		// Prepared by a sketchless engine; sketch here so the approximate
		// paths still work.
		if e.featured {
			sq = e.ix.PrepareQuery(e.sk.SketchFeatures(qe.feats))
		} else {
			sq = e.ix.PrepareQuery(e.sk.Sketch(qe.x))
		}
	}
	self := tq.self
	if !tq.hasSelf {
		self = e.compare(qe, qe)
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.kast != nil && e.interner.Stale(qe.prep) {
		// A concurrent Add interned one of the query's unknown literals
		// between preparation and the lock, so an entry committed before the
		// lock may carry the table id where the query holds a scratch id.
		// Re-prepare under the read lock: no further entry can commit while
		// it is held, so the refreshed view agrees with every candidate.
		// (Sketches and self-similarity depend only on the string, not on
		// the id assignment, so they stay valid.)
		qe.prep = e.interner.PrepareEphemeral(tq.x)
	}
	if rerank < 0 {
		rerank = DefaultRerank(k)
	}
	var cands []sketch.Candidate
	if e.ix == nil || rerank >= e.active {
		// Exact path: every live entry is a candidate.
		cands = make([]sketch.Candidate, 0, e.active)
		for id, en := range e.entries {
			if en != nil {
				cands = append(cands, sketch.Candidate{ID: id})
			}
		}
	} else {
		if rerank == 0 {
			return neighbors(e.ix.SearchQuery(sq, k, -1)), nil
		}
		fetch := rerank
		if k > fetch {
			fetch = k
		}
		cands = e.ix.SearchQuery(sq, fetch, -1)
		e.met.Reranked.Add(int64(len(cands)))
	}
	// The candidate kernel evaluations fan out over the worker pool, like
	// Add's row computation.
	against := make([]*entry, len(cands))
	for i, c := range cands {
		against[i] = e.entries[c.ID]
	}
	row := e.compareRow(qe, against)
	out := make([]Neighbor, 0, len(cands))
	for i, c := range cands {
		v := row[i]
		if d := self * e.g.At(c.ID, c.ID); d > 0 {
			v /= math.Sqrt(d)
		} else {
			v = 0
		}
		out = append(out, Neighbor{ID: c.ID, Similarity: v})
	}
	SortNeighbors(out)
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// neighbors converts sketch candidates (already sorted by the index) into
// Neighbor values carrying the sketch cosine as the similarity.
func neighbors(cands []sketch.Candidate) []Neighbor {
	out := make([]Neighbor, len(cands))
	for i, c := range cands {
		out[i] = Neighbor{ID: c.ID, Similarity: c.Score}
	}
	return out
}

// SortNeighbors orders by decreasing similarity with ties by ascending id
// — the order Similar produces (its stable sort over an id-ascending scan
// breaks ties the same way), so rerank results compare equal to Similar's.
// It is exported because the exact-merge guarantee of internal/shard
// depends on applying this exact ordering to merged per-shard results;
// there must be one definition of it.
func SortNeighbors(out []Neighbor) {
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].ID < out[b].ID
	})
}

// InternerSize returns the number of distinct literals in the shared Kast
// interner table (0 for non-Kast engines). The table grows only with
// ingested corpus strings, never with query traffic — the regression tests
// for the SimilarTrace memory fix assert exactly that.
func (e *Engine) InternerSize() int {
	if e.interner == nil {
		return 0
	}
	return e.interner.Size()
}

// SketchConfig reports whether sketching is enabled and, if so, the sketch
// width and seed the engine embeds with.
func (e *Engine) SketchConfig() (dim int, seed uint64, enabled bool) {
	if e.sk == nil {
		return 0, 0, false
	}
	return e.sk.Dim(), e.sk.Seed(), true
}

// ANNConfig reports whether the sketch index generates candidates from
// LSH bands and, if so, the band count and rows per band. enabled is
// false both when sketching is off and when the index is a flat scan.
func (e *Engine) ANNConfig() (bands, rows int, enabled bool) {
	if e.ix == nil {
		return 0, 0, false
	}
	return e.ix.ANNConfig()
}

// SketchVec returns a copy of the indexed sketch vector for id, or nil if
// the id is absent, tombstoned, or sketching is disabled. Tests use it to
// assert bit-identical indexes across incremental, batch, and recovered
// engines.
func (e *Engine) SketchVec(id int) []float64 {
	if e.ix == nil {
		return nil
	}
	v := e.ix.Vec(id)
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}

// GramAt computes, from scratch but reusing every cached per-string view,
// the raw Kast Gram matrix over the live entries at a different cut weight.
// Prepared views are cut-weight independent, so no cache invalidation is
// needed; only the pair loop is paid. It returns an error for non-Kast
// engines, whose cached representations do depend on the kernel parameters.
func (e *Engine) GramAt(cutWeight int) (*linalg.Matrix, []int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.kast == nil {
		return nil, nil, fmt.Errorf("engine: GramAt requires a Kast kernel, have %s", e.k.Name())
	}
	k := &core.Kast{CutWeight: cutWeight, Viability: e.kast.Viability}
	ids := e.idsLocked()
	preps := make([]*core.Prepared, len(ids))
	for i, id := range ids {
		preps[i] = e.entries[id].prep
	}
	g := kernel.SymmetricGram(len(ids), e.workers, func(i, j int) float64 {
		return k.ComparePrepared(preps[i], preps[j])
	})
	return g, ids, nil
}
