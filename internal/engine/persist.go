package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"iokast/internal/matrixio"
	"iokast/internal/token"
)

// Snapshot format: a self-describing, CRC-checked dump of the engine state
// that Restore rebuilds bit-identically. The Gram matrix is persisted as
// raw float64 bits (matrixio's binary symmetric triangle), not recomputed,
// so a restored engine serves exactly the matrix the snapshotted one did —
// including the stale rows of tombstoned ids, which replayed mutations may
// index past but never read.
//
// Layout:
//
//	magic    "IOKSNAP1" (8 bytes)
//	version  byte (= 3; version-1 snapshots end the CRC section after the
//	         entries, version-2 after the sketch config — both are still
//	         restored, with anything they lack recomputed)
//	kernel   uvarint length + kernel.Name() bytes (checked on restore)
//	seq      uint64 little-endian, mutations applied at capture
//	numIDs   uvarint, total ids ever assigned (matrix dimension)
//	active   uvarint, live (non-tombstoned) ids
//	entries  per id: flag byte 0 (tombstone) or 1 (live);
//	         if live: uvarint length + canonical token text (token.Parse)
//	sketch   flag byte 0 (disabled) or 1 (enabled); if enabled: uvarint
//	         dim + uint64 little-endian seed (version >= 2 only)
//	ann      flag byte 0 (flat index) or 1 (LSH-banded); if banded:
//	         uvarint bands + uvarint rows (version >= 3 only)
//	crc      uint32 little-endian, CRC-32C over everything above
//	vectors  matrixio.WriteVectors of the sketch index, one slot per id
//	         (own magic and CRC; only when the sketch flag is 1)
//	sigs     matrixio.WriteWordVectors of the ANN band signatures, one
//	         slot per id, width = bands (own magic and CRC; only when the
//	         ann flag is 1)
//	triangle matrixio.WriteSymmetricTriangle of the raw Gram matrix
//	         (own magic and CRC; must be last, the triangle reader may
//	         buffer to end-of-stream)
const snapshotMagic = "IOKSNAP1"

const (
	snapshotVersion   = 3
	snapshotVersionV2 = 2
	snapshotVersionV1 = 1
)

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Snapshot writes the engine state to w and returns the sequence number it
// captured (the value Seq() held for the duration of the dump — snapshots
// are consistent cuts, taken under the read lock). It blocks mutations on
// large corpora; callers that care should snapshot to an in-memory buffer
// or a fast local file.
func (e *Engine) Snapshot(w io.Writer) (uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := e.snapshotLocked(w); err != nil {
		return 0, err
	}
	return e.seq, nil
}

func (e *Engine) snapshotLocked(w io.Writer) error {

	crc := crc32.New(snapCRCTable)
	bw := bufio.NewWriter(w)
	cw := io.MultiWriter(bw, crc)

	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}

	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if _, err := cw.Write([]byte{snapshotVersion}); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	name := e.k.Name()
	if err := writeUvarint(uint64(len(name))); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if _, err := io.WriteString(cw, name); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	binary.LittleEndian.PutUint64(scratch[:8], e.seq)
	if _, err := cw.Write(scratch[:8]); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := writeUvarint(uint64(len(e.entries))); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := writeUvarint(uint64(e.active)); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	for id, en := range e.entries {
		if en == nil {
			if _, err := cw.Write([]byte{0}); err != nil {
				return fmt.Errorf("engine: snapshot: %w", err)
			}
			continue
		}
		if _, err := cw.Write([]byte{1}); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		text := en.x.Format()
		if err := writeUvarint(uint64(len(text))); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		if _, err := io.WriteString(cw, text); err != nil {
			return fmt.Errorf("engine: snapshot entry %d: %w", id, err)
		}
	}
	if e.sk == nil {
		if _, err := cw.Write([]byte{0}); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
	} else {
		if _, err := cw.Write([]byte{1}); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		if err := writeUvarint(uint64(e.sk.Dim())); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		binary.LittleEndian.PutUint64(scratch[:8], e.sk.Seed())
		if _, err := cw.Write(scratch[:8]); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
	}
	annBands, annRows, annEnabled := e.ANNConfig()
	if !annEnabled {
		if _, err := cw.Write([]byte{0}); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
	} else {
		if _, err := cw.Write([]byte{1}); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		if err := writeUvarint(uint64(annBands)); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
		if err := writeUvarint(uint64(annRows)); err != nil {
			return fmt.Errorf("engine: snapshot: %w", err)
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if e.sk != nil {
		// The index shares vector storage with the entries, so the slot
		// layout is exactly the entry slice: live ids present, tombstones
		// absent.
		vecs := make([][]float64, len(e.entries))
		for id, en := range e.entries {
			if en != nil {
				vecs[id] = en.vec
			}
		}
		if err := matrixio.WriteVectors(w, e.sk.Dim(), vecs); err != nil {
			return fmt.Errorf("engine: snapshot sketches: %w", err)
		}
		if annEnabled {
			// Band signatures are deterministic in (vector, config), so a
			// restore could recompute them; persisting them trades a few
			// bands*8 bytes per entry for skipping bands*rows*dim float
			// additions per entry on recovery.
			sigs := make([][]uint64, len(e.entries))
			for id, en := range e.entries {
				if en != nil {
					sigs[id] = e.ix.Sig(id)
				}
			}
			if err := matrixio.WriteWordVectors(w, annBands, sigs); err != nil {
				return fmt.Errorf("engine: snapshot signatures: %w", err)
			}
		}
	}
	if err := matrixio.WriteSymmetricTriangle(w, e.g); err != nil {
		return fmt.Errorf("engine: snapshot matrix: %w", err)
	}
	return nil
}

// crcByteReader feeds every consumed byte into a CRC, so the checksum
// covers exactly the payload regardless of read-ahead.
type crcByteReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.crc.Write([]byte{b})
	}
	return b, err
}

func (c *crcByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	return n, err
}

// maxSnapshotEntry bounds a single entry's canonical text so a corrupted
// length cannot force a huge allocation before the CRC check.
const maxSnapshotEntry = 64 << 20

// Restore loads a snapshot written by Snapshot into an empty engine
// configured with the same kernel. Per-string representations (feature
// maps, interned Kast views) are rebuilt from the canonical strings; the
// Gram matrix is restored from its persisted bits.
func (e *Engine) Restore(r io.Reader) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.entries) != 0 {
		return fmt.Errorf("engine: Restore into non-empty engine (%d ids)", len(e.entries))
	}

	br := bufio.NewReader(r)
	cr := &crcByteReader{r: br, crc: crc32.New(snapCRCTable)}

	head := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return fmt.Errorf("engine: restore header: %w", err)
	}
	if string(head[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("engine: bad snapshot magic %q", head[:len(snapshotMagic)])
	}
	version := head[len(snapshotMagic)]
	if version != snapshotVersion && version != snapshotVersionV2 && version != snapshotVersionV1 {
		return fmt.Errorf("engine: unsupported snapshot version %d", version)
	}
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil || nameLen > 1024 {
		return fmt.Errorf("engine: restore kernel name length: %v", err)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, nameBuf); err != nil {
		return fmt.Errorf("engine: restore kernel name: %w", err)
	}
	if got, want := string(nameBuf), e.k.Name(); got != want {
		return fmt.Errorf("engine: snapshot kernel %q does not match engine kernel %q", got, want)
	}
	var seqBuf [8]byte
	if _, err := io.ReadFull(cr, seqBuf[:]); err != nil {
		return fmt.Errorf("engine: restore seq: %w", err)
	}
	seq := binary.LittleEndian.Uint64(seqBuf[:])
	numIDs, err := binary.ReadUvarint(cr)
	if err != nil {
		return fmt.Errorf("engine: restore id count: %w", err)
	}
	active, err := binary.ReadUvarint(cr)
	if err != nil {
		return fmt.Errorf("engine: restore active count: %w", err)
	}
	// 1<<20 matches matrixio's triangle dimension limit, so a corrupted
	// count is rejected here before the entry slice is allocated.
	if active > numIDs || numIDs > 1<<20 {
		return fmt.Errorf("engine: implausible snapshot counts: %d active of %d ids", active, numIDs)
	}

	entries := make([]*entry, numIDs)
	gotActive := 0
	for id := range entries {
		flag, err := cr.ReadByte()
		if err != nil {
			return fmt.Errorf("engine: restore entry %d: %w", id, err)
		}
		switch flag {
		case 0:
			continue
		case 1:
		default:
			return fmt.Errorf("engine: restore entry %d: bad flag %d", id, flag)
		}
		textLen, err := binary.ReadUvarint(cr)
		if err != nil || textLen > maxSnapshotEntry {
			return fmt.Errorf("engine: restore entry %d length: %v", id, err)
		}
		text := make([]byte, textLen)
		if _, err := io.ReadFull(cr, text); err != nil {
			return fmt.Errorf("engine: restore entry %d: %w", id, err)
		}
		x, err := token.Parse(string(text))
		if err != nil {
			return fmt.Errorf("engine: restore entry %d: %w", id, err)
		}
		entries[id] = e.newEntry(x)
		gotActive++
	}
	if gotActive != int(active) {
		return fmt.Errorf("engine: snapshot claims %d live entries, found %d", active, gotActive)
	}
	var (
		snapSketch bool
		snapDim    uint64
		snapSeed   uint64
	)
	if version >= 2 {
		flag, err := cr.ReadByte()
		if err != nil {
			return fmt.Errorf("engine: restore sketch flag: %w", err)
		}
		switch flag {
		case 0:
		case 1:
			snapSketch = true
			if snapDim, err = binary.ReadUvarint(cr); err != nil || snapDim == 0 || snapDim > 1<<16 {
				return fmt.Errorf("engine: restore sketch dim: %v", err)
			}
			var seedBuf [8]byte
			if _, err := io.ReadFull(cr, seedBuf[:]); err != nil {
				return fmt.Errorf("engine: restore sketch seed: %w", err)
			}
			snapSeed = binary.LittleEndian.Uint64(seedBuf[:])
		default:
			return fmt.Errorf("engine: restore sketch flag: bad value %d", flag)
		}
	}
	var (
		snapANN   bool
		snapBands uint64
		snapRows  uint64
	)
	if version >= 3 {
		flag, err := cr.ReadByte()
		if err != nil {
			return fmt.Errorf("engine: restore ann flag: %w", err)
		}
		switch flag {
		case 0:
		case 1:
			snapANN = true
			if snapBands, err = binary.ReadUvarint(cr); err != nil || snapBands == 0 || snapBands > 1<<12 {
				return fmt.Errorf("engine: restore ann bands: %v", err)
			}
			if snapRows, err = binary.ReadUvarint(cr); err != nil || snapRows == 0 || snapRows > 64 {
				return fmt.Errorf("engine: restore ann rows: %v", err)
			}
		default:
			return fmt.Errorf("engine: restore ann flag: bad value %d", flag)
		}
	}
	sum := cr.crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return fmt.Errorf("engine: restore crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(crcBuf[:]); got != sum {
		return fmt.Errorf("engine: snapshot crc mismatch: stored %08x, computed %08x", got, sum)
	}

	var snapVecs [][]float64
	if snapSketch {
		// The block must be consumed to reach the triangle even when this
		// engine cannot use it (sketching disabled or reconfigured).
		vecDim, vecs, err := matrixio.ReadVectors(br, int(numIDs))
		if err != nil {
			return fmt.Errorf("engine: restore sketches: %w", err)
		}
		if uint64(vecDim) != snapDim || len(vecs) != int(numIDs) {
			return fmt.Errorf("engine: sketch block %dx%d does not match header %dx%d",
				len(vecs), vecDim, numIDs, snapDim)
		}
		snapVecs = vecs
	}
	var snapSigs [][]uint64
	if snapANN {
		// Like the vector block, the signature block must be consumed to
		// reach the triangle even when this engine cannot use it.
		sigWidth, sigs, err := matrixio.ReadWordVectors(br, int(numIDs))
		if err != nil {
			return fmt.Errorf("engine: restore signatures: %w", err)
		}
		if uint64(sigWidth) != snapBands || len(sigs) != int(numIDs) {
			return fmt.Errorf("engine: signature block %dx%d does not match header %dx%d",
				len(sigs), sigWidth, numIDs, snapBands)
		}
		snapSigs = sigs
	}

	// numIDs is trustworthy here — the entries section it was read with
	// just passed its CRC — so it bounds the triangle allocation exactly.
	g, err := matrixio.ReadSymmetricTriangleMax(br, int(numIDs))
	if err != nil {
		return fmt.Errorf("engine: restore matrix: %w", err)
	}
	if g.Rows != int(numIDs) {
		return fmt.Errorf("engine: snapshot matrix is %dx%d for %d ids", g.Rows, g.Cols, numIDs)
	}

	if e.sk != nil {
		// Persisted vectors are used only when they were produced by this
		// exact sketch configuration; otherwise (older snapshot, changed
		// --sketch-* flags) the index is recomputed from the canonical
		// strings, which yields the same bits the configured Sketcher
		// would have persisted — sketches are deterministic in (string,
		// dim, seed).
		usePersisted := snapSketch && snapDim == uint64(e.sk.Dim()) && snapSeed == e.sk.Seed()
		// Persisted band signatures are reused only when the vectors are
		// and the banding parameters match this engine's exactly; anything
		// else (older snapshot, changed --ann-* flags) falls back to
		// recomputing signatures from the restored vectors, which yields
		// the same bits — signatures are deterministic in (vector, config).
		bands, rows, annEnabled := e.ANNConfig()
		useSigs := usePersisted && annEnabled && snapANN &&
			snapBands == uint64(bands) && snapRows == uint64(rows)
		for id, en := range entries {
			if en == nil {
				continue
			}
			if usePersisted {
				if snapVecs[id] == nil {
					return fmt.Errorf("engine: snapshot has no sketch for live entry %d", id)
				}
				en.vec = snapVecs[id]
			} else {
				e.sketchEntry(en)
			}
			var sig []uint64
			if useSigs {
				sig = snapSigs[id]
			}
			_ = e.ix.AddSigned(id, en.vec, sig)
		}
	}

	e.entries = entries
	e.g = g
	e.active = gotActive
	e.seq = seq
	return nil
}
