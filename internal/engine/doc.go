// Package engine provides an incremental Gram-matrix engine: a stateful
// corpus of weighted strings whose kernel matrix is maintained under
// single-trace insertion, batch insertion, and removal.
//
// # Incremental maintenance
//
// The paper's batch workflow (kernel.Gram) recomputes all n(n+1)/2 kernel
// values whenever the dataset changes. In a streaming setting — traces
// arriving one at a time, as in cmd/iokserve — that is quadratic work per
// arrival. The engine instead caches each string's per-string
// representation once (the feature map for inner-product kernels, the
// interned/prefix-hashed view for the Kast kernel) and, on Add, computes
// only the new row/column against the existing corpus, fanned out over a
// bounded worker pool. Adding the (N+1)-th trace therefore costs N kernel
// evaluations instead of the (N+1)(N+2)/2 a batch recompute pays; AddBatch
// grows a whole block with one flat fan-out over the new pairs.
//
// Results are identical to a from-scratch kernel.Gram over the same
// strings: both paths evaluate the same kernel on the same cached
// representations, and every kernel in this project accumulates integer-
// valued products in float64, which is exact (and thus order-independent)
// far beyond the magnitudes real traces produce.
//
// # Query paths
//
// Similar answers by-id queries from the cached Gram row with zero kernel
// work. SimilarApprox and SimilarTrace run the approximate path: a
// shortlist from the internal sketch index (flat or LSH-banded, see
// Options.ANNBands and package sketch) followed by an exact kernel rerank
// of the top candidates. A rerank covering the corpus returns the exact
// answer bit for bit. Query-by-trace prepares the query against the
// corpus interner ephemerally — read-only traffic never grows engine
// memory — and PrepareTraceQuery/PrepareStoredQuery let callers (the
// sharded fan-out in particular) embed a query exactly once and share the
// prepared sketch, band signature, and self-similarity across engines.
//
// # Persistence
//
// Snapshot/Restore serialise the full engine state — including the raw
// Gram matrix as float64 bits and the sketch index's vectors and band
// signatures — so a restore is bit-identical, never a recompute, unless
// the sketch or ANN configuration changed (then the index is rebuilt
// deterministically from the canonical strings). Package store adds the
// write-ahead log and snapshot lifecycle around this.
//
// See docs/ARCHITECTURE.md for the data flow, locking model, and the
// snapshot wire format.
package engine
