package engine

import (
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// corpus builds nTraces converted weighted strings from the paper's
// synthetic generator, deterministically.
func corpus(t testing.TB, nTraces int, seed uint64) []token.String {
	t.Helper()
	ds, err := iogen.Build(iogen.PaperOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if nTraces > len(ds.Traces) {
		t.Fatalf("dataset has %d traces, want %d", len(ds.Traces), nTraces)
	}
	return core.ConvertAll(ds.Traces[:nTraces], core.Options{})
}

// TestEngineMatchesBatchGramKast is the tentpole equivalence proof for the
// Kast path: after N sequential Adds, the engine's snapshot must equal a
// from-scratch kernel.Gram over the same strings. Both paths sum integer-
// valued products in float64, which is exact, so equality is bitwise.
func TestEngineMatchesBatchGramKast(t *testing.T) {
	xs := corpus(t, 20, 7)
	for _, cut := range []int{0, 2, 4} {
		k := &core.Kast{CutWeight: cut}
		e := New(Options{Kernel: k})
		for i, x := range xs {
			if id := e.Add(x); id != i {
				t.Fatalf("Add #%d returned id %d", i, id)
			}
		}
		got, ids := e.Gram()
		want := kernel.Gram(k, xs)
		if len(ids) != len(xs) {
			t.Fatalf("cut=%d: got %d ids, want %d", cut, len(ids), len(xs))
		}
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("cut=%d: incremental Gram differs from batch by %g", cut, d)
		}
	}
}

// TestEngineMatchesBatchGramFeaturer checks the cached-feature-map path
// (baseline kernels) is bit-identical to kernel.Gram's featurer fast path.
func TestEngineMatchesBatchGramFeaturer(t *testing.T) {
	xs := corpus(t, 20, 11)
	kernels := []kernel.Kernel{
		&kernel.Spectrum{K: 3},
		&kernel.Blended{P: 4, CutWeight: 2},
	}
	for _, k := range kernels {
		e := New(Options{Kernel: k})
		for _, x := range xs {
			e.Add(x)
		}
		got, _ := e.Gram()
		want := kernel.Gram(k, xs)
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("%s: incremental Gram differs from batch by %g", k.Name(), d)
		}
	}
}

// TestEngineRemove checks that removal excises exactly the removed row and
// column: the snapshot over the survivors must equal a batch Gram over the
// surviving strings, and ids must stay stable.
func TestEngineRemove(t *testing.T) {
	xs := corpus(t, 12, 3)
	k := &core.Kast{CutWeight: 2}
	e := New(Options{Kernel: k})
	for _, x := range xs {
		e.Add(x)
	}
	if err := e.Remove(3); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(7); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(3); err == nil {
		t.Fatal("double Remove(3) succeeded")
	}
	if err := e.Remove(99); err == nil {
		t.Fatal("Remove(99) succeeded on 12-entry corpus")
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d after 12 adds and 2 removes", e.Len())
	}

	var kept []token.String
	var wantIDs []int
	for i, x := range xs {
		if i != 3 && i != 7 {
			kept = append(kept, x)
			wantIDs = append(wantIDs, i)
		}
	}
	got, ids := e.Gram()
	for i, id := range ids {
		if id != wantIDs[i] {
			t.Fatalf("ids = %v, want %v", ids, wantIDs)
		}
	}
	want := kernel.Gram(k, kept)
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Errorf("post-remove Gram differs from batch over survivors by %g", d)
	}

	// Ids are never reused: the next Add continues the sequence.
	if id := e.Add(xs[3]); id != len(xs) {
		t.Fatalf("Add after Remove returned id %d, want %d", id, len(xs))
	}
}

// TestEngineSimilarRanksIdenticalFirst: an exact duplicate of the query
// string must rank first with cosine similarity 1.
func TestEngineSimilarRanksIdenticalFirst(t *testing.T) {
	// Distinct synthetic strings (the iogen corpus contains exact
	// duplicates, which would tie with the planted one at similarity 1).
	mk := func(lits ...string) token.String {
		s := make(token.String, len(lits))
		for i, l := range lits {
			s[i] = token.Token{Literal: l, Weight: 3 + i}
		}
		return s
	}
	xs := []token.String{
		mk("a", "b", "c", "d"),
		mk("a", "b", "x", "y"),
		mk("p", "q", "r", "s"),
		mk("c", "d", "a", "b"),
	}
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range xs {
		e.Add(x)
	}
	dup := e.Add(xs[0]) // duplicate of id 0

	ns, err := e.Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 {
		t.Fatalf("got %d neighbours, want 3", len(ns))
	}
	if ns[0].ID != dup {
		t.Fatalf("top neighbour = %+v, want id %d", ns[0], dup)
	}
	if math.Abs(ns[0].Similarity-1) > 1e-12 {
		t.Fatalf("duplicate similarity = %g, want 1", ns[0].Similarity)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Similarity > ns[i-1].Similarity {
			t.Fatalf("neighbours not sorted: %+v", ns)
		}
	}

	if _, err := e.Similar(999, 3); err == nil {
		t.Fatal("Similar on unknown id succeeded")
	}
}

// TestEngineGramAtReusesPreparedViews: recomputing at another cut weight
// must match a batch Gram with that cut, without any re-preparation.
func TestEngineGramAt(t *testing.T) {
	xs := corpus(t, 15, 9)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range xs {
		e.Add(x)
	}
	for _, cut := range []int{1, 3, 6} {
		got, ids, err := e.GramAt(cut)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(xs) {
			t.Fatalf("GramAt(%d): %d ids", cut, len(ids))
		}
		want := kernel.Gram(&core.Kast{CutWeight: cut}, xs)
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Errorf("GramAt(%d) differs from batch by %g", cut, d)
		}
	}
	if _, _, err := New(Options{Kernel: &kernel.Spectrum{K: 2}}).GramAt(3); err == nil {
		t.Fatal("GramAt on a non-Kast engine succeeded")
	}
}

// TestEngineNonFeaturerKernel covers the generic fallback path (a kernel
// that is neither Kast nor a featurer).
func TestEngineNonFeaturerKernel(t *testing.T) {
	xs := corpus(t, 8, 13)
	k := kernel.Normalized{K: &core.Kast{CutWeight: 2}}
	e := New(Options{Kernel: k})
	for _, x := range xs {
		e.Add(x)
	}
	got, _ := e.Gram()
	want := kernel.Gram(k, xs)
	if d := got.MaxAbsDiff(want); d > 1e-15 {
		t.Errorf("generic path differs from batch by %g", d)
	}
}

// TestEngineEmpty exercises the zero-corpus edge cases.
func TestEngineEmpty(t *testing.T) {
	e := New(Options{})
	g, ids := e.Gram()
	if g.Rows != 0 || g.Cols != 0 || len(ids) != 0 {
		t.Fatalf("empty engine Gram = %dx%d, %d ids", g.Rows, g.Cols, len(ids))
	}
	if _, _, _, err := e.NormalizedGram(); err != nil {
		t.Fatalf("empty NormalizedGram: %v", err)
	}
	if e.Len() != 0 {
		t.Fatalf("empty Len = %d", e.Len())
	}
}

// TestEngineDefaultKernel: a nil kernel means the paper default.
func TestEngineDefaultKernel(t *testing.T) {
	e := New(Options{})
	if name := e.Kernel().Name(); name != (&core.Kast{CutWeight: 2}).Name() {
		t.Fatalf("default kernel = %s", name)
	}
}

// TestEngineAddDoesNotAliasCaller: mutating the caller's string after Add
// must not corrupt the corpus.
func TestEngineAddDoesNotAliasCaller(t *testing.T) {
	x := token.String{{Literal: "a", Weight: 5}, {Literal: "b", Weight: 5}}
	for _, k := range []kernel.Kernel{
		&core.Kast{CutWeight: 2},
		&kernel.Spectrum{K: 1},
		kernel.Normalized{K: &core.Kast{CutWeight: 2}},
	} {
		e := New(Options{Kernel: k})
		e.Add(x)
		x[0].Literal = "mutated"
		xs, _ := e.Strings()
		if xs[0][0].Literal != "a" {
			t.Fatalf("%s: corpus aliased caller slice: %v", k.Name(), xs[0])
		}
		x[0].Literal = "a"
	}
}

// randWeighted builds a random weighted string for benchmark filler.
func randWeighted(r *xrand.Rand, n int) token.String {
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{
			Literal: string(rune('a' + r.Intn(6))),
			Weight:  1 + r.Intn(9),
		}
	}
	return s
}

// TestGrowSymmetricMatchesRebuild pins the linalg append path the engine
// depends on against a naive rebuild.
func TestGrowSymmetricMatchesRebuild(t *testing.T) {
	r := xrand.New(42)
	m := linalg.NewMatrix(0, 0)
	var rows [][]float64
	for n := 0; n < 8; n++ {
		rowcol := make([]float64, n+1)
		for j := range rowcol {
			rowcol[j] = float64(r.Intn(100))
		}
		m.GrowSymmetric(rowcol)
		for i := range rows {
			rows[i] = append(rows[i], rowcol[i])
		}
		rows = append(rows, append([]float64(nil), rowcol...))
		want := linalg.FromRows(rows)
		if d := m.MaxAbsDiff(want); d != 0 {
			t.Fatalf("after %d grows: diff %g\n got:\n%v\nwant:\n%v", n+1, d, m, want)
		}
	}
	if !m.IsSymmetric(0) {
		t.Fatal("grown matrix not symmetric")
	}
}
