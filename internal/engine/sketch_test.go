package engine

import (
	"bytes"
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/token"
)

// sketchStatesEqual compares the full sketch index of two engines bit for
// bit: same id space, same tombstones, identical vector bits.
func sketchStatesEqual(t *testing.T, a, b *Engine) {
	t.Helper()
	if !a.ix.Equal(b.ix) {
		t.Fatal("sketch indexes differ")
	}
}

// TestSketchIncrementalVsBatchEquivalence is the index analogue of the
// Gram equivalence tests: one trace at a time, one batch, or mixed
// batches, with removals sprinkled in — the final sketch index must be
// bit-identical because sketches depend only on (string, dim, seed).
func TestSketchIncrementalVsBatchEquivalence(t *testing.T) {
	xs := corpus(t, 24, 5)
	for _, kern := range []kernel.Kernel{
		&core.Kast{CutWeight: 2},
		&kernel.Blended{P: 4, CutWeight: 2},
	} {
		opts := Options{Kernel: kern, SketchDim: 64, SketchSeed: 17}
		inc := New(opts)
		for _, x := range xs {
			inc.Add(x)
		}
		batch := New(opts)
		if _, err := batch.AddBatch(xs); err != nil {
			t.Fatal(err)
		}
		mixed := New(opts)
		if _, err := mixed.AddBatch(xs[:10]); err != nil {
			t.Fatal(err)
		}
		for _, x := range xs[10:15] {
			mixed.Add(x)
		}
		if _, err := mixed.AddBatch(xs[15:]); err != nil {
			t.Fatal(err)
		}
		for _, id := range []int{3, 11, 23} {
			for _, e := range []*Engine{inc, batch, mixed} {
				if err := e.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		sketchStatesEqual(t, inc, batch)
		sketchStatesEqual(t, inc, mixed)
		if inc.SketchVec(3) != nil {
			t.Fatal("tombstoned id still has a sketch")
		}
		if inc.SketchVec(4) == nil {
			t.Fatal("live id lost its sketch")
		}
	}
}

// TestSketchSnapshotRestoreBitIdentical asserts crash-recovery fidelity at
// the engine level: a snapshot carries the sketch index, and a restored
// engine holds exactly the same bits — without recomputing them.
func TestSketchSnapshotRestoreBitIdentical(t *testing.T) {
	xs := corpus(t, 16, 9)
	opts := Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 96, SketchSeed: 3}
	e := New(opts)
	if _, err := e.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := New(opts)
	if err := rec.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	sketchStatesEqual(t, e, rec)

	// The restored engine must answer approximate queries identically.
	for _, id := range []int{0, 5, 12} {
		want, err := e.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("id %d: %d vs %d neighbors", id, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("id %d neighbor %d: %+v vs %+v", id, i, want[i], got[i])
			}
		}
	}
}

// TestSketchRestoreReconfigured: restoring a snapshot under a different
// sketch configuration discards the persisted vectors and recomputes, so
// the restored engine matches a from-scratch engine with the new config.
func TestSketchRestoreReconfigured(t *testing.T) {
	xs := corpus(t, 12, 2)
	old := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 1})
	if _, err := old.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := old.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	newOpts := Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 32, SketchSeed: 8}
	rec := New(newOpts)
	if err := rec.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := New(newOpts)
	if _, err := fresh.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	sketchStatesEqual(t, rec, fresh)
}

// TestSketchDisabled: SketchDim < 0 turns the subsystem off; approximate
// queries fail cleanly, query-by-trace degrades to the exact scan, and
// snapshots round-trip without a sketch section.
func TestSketchDisabled(t *testing.T) {
	xs := corpus(t, 8, 4)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1})
	if _, err := e.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	if _, _, enabled := e.SketchConfig(); enabled {
		t.Fatal("sketching reported enabled")
	}
	if _, err := e.SimilarApprox(0, 3, -1); err == nil {
		t.Fatal("SimilarApprox succeeded with sketching disabled")
	}
	if e.SketchVec(0) != nil {
		t.Fatal("SketchVec returned a vector with sketching disabled")
	}
	ns, err := e.SimilarTrace(xs[0], 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 || ns[0].ID != 0 || math.Abs(ns[0].Similarity-1) > 1e-12 {
		t.Fatalf("exact fallback neighbors = %+v", ns)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1})
	if err := rec.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != e.Len() {
		t.Fatalf("restored %d entries, want %d", rec.Len(), e.Len())
	}
}

// TestSketchDisabledReadsSketchSnapshot: an engine without sketching must
// still restore a snapshot that carries sketches (the block is skipped).
func TestSketchDisabledReadsSketchSnapshot(t *testing.T) {
	xs := corpus(t, 8, 6)
	withSketch := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64})
	if _, err := withSketch.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := withSketch.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1})
	if err := rec.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	gWant, _ := withSketch.Gram()
	gGot, _ := rec.Gram()
	if d := gGot.MaxAbsDiff(gWant); d != 0 {
		t.Fatalf("restored Gram differs by %g", d)
	}
}

// TestSimilarTraceDoesNotIngest: a query-by-trace leaves the corpus, the
// sequence number, and the id space untouched.
func TestSimilarTraceDoesNotIngest(t *testing.T) {
	xs := corpus(t, 6, 8)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	if _, err := e.AddBatch(xs[:5]); err != nil {
		t.Fatal(err)
	}
	lenBefore, seqBefore, nextBefore := e.Len(), e.Seq(), e.NextID()
	if _, err := e.SimilarTrace(xs[5], 3, -1); err != nil {
		t.Fatal(err)
	}
	if e.Len() != lenBefore || e.Seq() != seqBefore || e.NextID() != nextBefore {
		t.Fatalf("query-by-trace mutated engine: len %d->%d seq %d->%d next %d->%d",
			lenBefore, e.Len(), seqBefore, e.Seq(), nextBefore, e.NextID())
	}
	if _, err := e.SimilarTrace(token.String{}, 3, -1); err == nil {
		t.Fatal("empty query accepted")
	}
}
