package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"iokast/internal/core"
	"iokast/internal/token"
)

func qws(pairs ...any) token.String {
	var s token.String
	for i := 0; i < len(pairs); i += 2 {
		s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
	}
	return s
}

// Regression for the SimilarTrace memory leak: query-only traffic with
// unknown literals must not grow the shared Kast interner. Before the fix
// every unknown query literal was interned forever, so a read-only endpoint
// leaked memory under diverse (or adversarial) query streams.
func TestSimilarTraceDoesNotGrowInterner(t *testing.T) {
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	e.Add(qws("root", 1, "write", 8, "write", 8))
	e.Add(qws("root", 1, "read", 4, "lseek", 1))

	base := e.InternerSize()
	if base == 0 {
		t.Fatal("corpus literals not interned")
	}
	for i := 0; i < 1000; i++ {
		q := qws(fmt.Sprintf("unique-%d", i), 3, "write", 8, fmt.Sprintf("alien-%d", i), 2)
		ns, err := e.SimilarTrace(q, 2, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != 2 {
			t.Fatalf("query %d: %d neighbors", i, len(ns))
		}
	}
	if got := e.InternerSize(); got != base {
		t.Fatalf("interner grew from %d to %d literals under query-only traffic", base, got)
	}

	// Ingesting still interns (the fix must not starve the write path).
	e.Add(qws("root", 1, "brand-new-op", 2))
	if got := e.InternerSize(); got <= base {
		t.Fatalf("Add no longer interns: %d <= %d", got, base)
	}
}

// The ephemeral query path must return the same bits as the pre-fix
// interning path: compare against a normalized brute-force reference.
func TestSimilarTraceEphemeralExactness(t *testing.T) {
	kern := &core.Kast{CutWeight: 2}
	e := New(Options{Kernel: kern, SketchDim: -1})
	corpus := []token.String{
		qws("root", 1, "open", 2, "write", 8, "close", 2),
		qws("root", 1, "read", 4, "lseek", 1, "read", 4),
		qws("root", 1, "write", 8, "write", 8, "fsync", 1),
	}
	for _, x := range corpus {
		e.Add(x)
	}
	queries := []token.String{
		qws("root", 1, "write", 8, "close", 2), // known literals
		qws("root", 1, "mmap", 6, "write", 8),  // mixed
		qws("zeta", 2, "eta", 3),               // fully unknown
	}
	for qi, q := range queries {
		got, err := e.SimilarTrace(q, -1, len(corpus))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(corpus) {
			t.Fatalf("query %d: %d neighbors", qi, len(got))
		}
		self := kern.Compare(q, q)
		for _, nb := range got {
			want := 0.0
			if d := self * kern.Compare(corpus[nb.ID], corpus[nb.ID]); d > 0 {
				want = kern.Compare(q, corpus[nb.ID]) / math.Sqrt(d)
			}
			if math.Float64bits(nb.Similarity) != math.Float64bits(want) {
				t.Errorf("query %d, corpus %d: got %v, want %v", qi, nb.ID, nb.Similarity, want)
			}
		}
	}
}

// Race: unknown-literal queries run concurrently with Adds that intern
// those very literals. Under -race this exercises the ephemeral overlay,
// the staleness re-preparation under the read lock, and the interner mutex;
// the assertions catch a query comparing scratch ids against table ids (the
// shared-literal similarity would come out wrong).
func TestSimilarTraceRaceWithAdds(t *testing.T) {
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	seedStr := qws("root", 1, "base", 5, "base", 5)
	e.Add(seedStr)

	const writers, queriesPerWriter = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerWriter; i++ {
				lit := fmt.Sprintf("hot-%d-%d", w, i)
				// The query uses the literal before/while/after a writer
				// interns it via Add.
				q := qws("root", 1, lit, 4, "base", 5)
				ns, err := e.SimilarTrace(q, -1, 1<<30)
				if err != nil {
					t.Error(err)
					return
				}
				// Every result must include the seed entry with a positive
				// similarity: "base base" is shared whatever happens to the
				// unknown literal.
				found := false
				for _, nb := range ns {
					if nb.ID == 0 {
						found = true
						if nb.Similarity <= 0 {
							t.Errorf("writer %d query %d: seed similarity %v", w, i, nb.Similarity)
						}
					}
				}
				if !found {
					t.Errorf("writer %d query %d: seed entry missing from %v", w, i, ns)
				}
				e.Add(qws("root", 1, lit, 4, "extra", 1))
			}
		}()
	}
	wg.Wait()
	if e.Len() != 1+writers*queriesPerWriter {
		t.Fatalf("corpus size %d", e.Len())
	}
}
