package engine

import (
	"sync"
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
)

// TestEngineConcurrentAddGram hammers one engine with concurrent writers
// (Add, Remove) and readers (Gram, NormalizedGram, Similar, Len, Strings).
// Run under -race this is the engine's thread-safety proof; without -race
// it still checks the final state is a consistent corpus whose snapshot
// matches a batch recompute.
func TestEngineConcurrentAddGram(t *testing.T) {
	xs := corpus(t, 24, 99)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 4})

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(xs); i += writers {
				e.Add(xs[i])
			}
		}()
	}
	// Readers run concurrently with the writers; every snapshot they see
	// must at least be well-formed (square, symmetric, diagonal >= 0).
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, ids := e.Gram()
				if g.Rows != len(ids) || g.Cols != len(ids) {
					t.Errorf("snapshot %dx%d with %d ids", g.Rows, g.Cols, len(ids))
					return
				}
				if !g.IsSymmetric(0) {
					t.Error("snapshot not symmetric")
					return
				}
				if len(ids) > 0 {
					// Entries are never removed in this test, so every
					// snapshot id stays queryable.
					if _, err := e.Similar(ids[len(ids)-1], 3); err != nil {
						t.Errorf("Similar(%d): %v", ids[len(ids)-1], err)
						return
					}
					if _, err := e.SimilarApprox(ids[len(ids)-1], 3, -1); err != nil {
						t.Errorf("SimilarApprox(%d): %v", ids[len(ids)-1], err)
						return
					}
				}
				if _, err := e.SimilarTrace(xs[0], 3, -1); err != nil {
					t.Errorf("SimilarTrace: %v", err)
					return
				}
				e.Strings()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if t.Failed() {
		return
	}

	// Concurrent Adds interleave arbitrarily, so compare against a batch
	// Gram over the corpus in the id order the engine settled on.
	final, ids := e.Gram()
	got, _ := e.Strings()
	if len(ids) != len(xs) {
		t.Fatalf("corpus has %d entries, want %d", len(ids), len(xs))
	}
	want := kernel.Gram(&core.Kast{CutWeight: 2}, got)
	if d := final.MaxAbsDiff(want); d != 0 {
		t.Errorf("post-race Gram differs from batch by %g", d)
	}
}

// TestEngineConcurrentRemove interleaves Remove with Add and readers.
func TestEngineConcurrentRemove(t *testing.T) {
	xs := corpus(t, 20, 123)
	e := New(Options{Kernel: &kernel.Spectrum{K: 2}})
	ids := make(chan int, len(xs))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			ids <- e.Add(x)
		}
		close(ids)
	}()
	go func() {
		defer wg.Done()
		n := 0
		for id := range ids {
			if n%3 == 0 {
				if err := e.Remove(id); err != nil {
					t.Errorf("Remove(%d): %v", id, err)
				}
			}
			n++
			e.Gram()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	wantLive := len(xs) - (len(xs)+2)/3
	if n := e.Len(); n != wantLive {
		t.Fatalf("live entries = %d, want %d", n, wantLive)
	}
	final, _ := e.Gram()
	got, _ := e.Strings()
	want := kernel.Gram(&kernel.Spectrum{K: 2}, got)
	if d := final.MaxAbsDiff(want); d != 0 {
		t.Errorf("post-race Gram differs from batch by %g", d)
	}
}

// TestEngineConcurrentAddBatch mixes AddBatch with single Adds and
// readers. The batch path snapshots the corpus, computes outside the
// lock, and reconciles a concurrently grown tail under the lock; the
// final state must still equal a batch Gram over the settled corpus.
func TestEngineConcurrentAddBatch(t *testing.T) {
	xs := corpus(t, 32, 55)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 4})

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for lo := 0; lo < 16; lo += 4 {
			if _, err := e.AddBatch(xs[lo : lo+4]); err != nil {
				t.Errorf("AddBatch: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, x := range xs[16:24] {
			e.Add(x)
		}
	}()
	go func() {
		defer wg.Done()
		for lo := 24; lo < 32; lo += 2 {
			if _, err := e.AddBatch(xs[lo : lo+2]); err != nil {
				t.Errorf("AddBatch: %v", err)
			}
		}
	}()
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g, ids := e.Gram()
			if g.Rows != len(ids) || !g.IsSymmetric(0) {
				t.Error("mid-race snapshot malformed")
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if t.Failed() {
		return
	}

	final, ids := e.Gram()
	got, _ := e.Strings()
	if len(ids) != len(xs) {
		t.Fatalf("corpus has %d entries, want %d", len(ids), len(xs))
	}
	want := kernel.Gram(&core.Kast{CutWeight: 2}, got)
	if d := final.MaxAbsDiff(want); d != 0 {
		t.Errorf("post-race Gram differs from batch by %g", d)
	}
}
