package engine

import (
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
)

// TestEngineGoldenNormalizedPipeline grows a corpus trace-by-trace and
// asserts the final normalized Gram matrix equals the paper-pipeline batch
// result (kernel.Gram + NormalizeGramPaper + PSDRepair) within 1e-12. This
// is the end-to-end contract of the engine: a service built on incremental
// updates produces the same similarity matrix the paper's batch workflow
// would.
func TestEngineGoldenNormalizedPipeline(t *testing.T) {
	xs := corpus(t, 25, 2017)
	const cut = 2
	e := New(Options{Kernel: &core.Kast{CutWeight: cut}})
	for _, x := range xs {
		e.Add(x)
	}

	got, ids, _, err := e.NormalizedGram()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(xs) {
		t.Fatalf("got %d ids, want %d", len(ids), len(xs))
	}

	raw := kernel.Gram(&core.Kast{CutWeight: cut}, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, cut)
	if err != nil {
		t.Fatal(err)
	}
	want, wantClipped, err := kernel.PSDRepair(norm)
	if err != nil {
		t.Fatal(err)
	}

	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("incremental normalized Gram differs from batch pipeline by %g (tol 1e-12)", d)
	}

	_, _, gotClipped, err := e.NormalizedGram()
	if err != nil {
		t.Fatal(err)
	}
	if gotClipped != wantClipped {
		t.Errorf("clipped eigenvalues: engine %d, batch %d", gotClipped, wantClipped)
	}
}

// TestEngineGoldenCosinePipeline is the same contract for a baseline
// (featurer) kernel against the CosineSimilarity batch pipeline.
func TestEngineGoldenCosinePipeline(t *testing.T) {
	xs := corpus(t, 25, 4242)
	k := &kernel.Blended{P: 3}
	e := New(Options{Kernel: k})
	for _, x := range xs {
		e.Add(x)
	}
	got, _, _, err := e.NormalizedGram()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := kernel.PSDRepair(kernel.NormalizeCosine(kernel.Gram(k, xs)))
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Errorf("incremental cosine pipeline differs from batch by %g (tol 1e-12)", d)
	}
}
