package engine

import (
	"fmt"
	"testing"

	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/sketch"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// benchCorpus builds n random weighted strings of the given token length.
func benchCorpus(n, strLen int) []token.String {
	r := xrand.New(777)
	xs := make([]token.String, n)
	for i := range xs {
		xs[i] = randWeighted(r, strLen)
	}
	return xs
}

// BenchmarkEngineAdd measures the cost of adding the (N+1)-th trace to an
// engine already holding N. The per-op time should grow linearly in N (one
// kernel evaluation per existing entry), demonstrating the O(N) incremental
// update; BenchmarkBatchGramRebuild below is the O(N^2) alternative a
// batch recompute pays for the same arrival.
func BenchmarkEngineAdd(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			xs := benchCorpus(n+1, 40)
			base := xs[:n]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
				for _, x := range base {
					e.Add(x)
				}
				b.StartTimer()
				e.Add(xs[n]) // the measured (N+1)-th arrival
			}
		})
	}
}

// BenchmarkBatchGramRebuild is the from-scratch alternative to
// BenchmarkEngineAdd: recompute kernel.Gram over all N+1 strings when the
// (N+1)-th arrives. Compare ns/op growth: quadratic here, linear above.
func BenchmarkBatchGramRebuild(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			xs := benchCorpus(n+1, 40)
			k := &core.Kast{CutWeight: 2}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.Gram(k, xs)
			}
		})
	}
}

// BenchmarkEngineAddBatch measures ingesting a batch of n traces into an
// empty engine in one AddBatch call. Contrast with
// BenchmarkEngineSequentialAdds: identical kernel work (the same
// n(n+1)/2 evaluations), but one representation fan-out, one flat
// ParallelFor over every pair, and one symmetric block growth instead of n
// row growths. On a durable engine (internal/store's benchmarks) the gap
// widens further: one WAL record and one fsync per batch instead of n.
func BenchmarkEngineAddBatch(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			xs := benchCorpus(n, 40)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
				if _, err := e.AddBatch(xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSequentialAdds is the one-at-a-time alternative to
// BenchmarkEngineAddBatch over the same traces.
func BenchmarkEngineSequentialAdds(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			xs := benchCorpus(n, 40)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
				for _, x := range xs {
					e.Add(x)
				}
			}
		})
	}
}

// BenchmarkEngineSimilar measures a top-k query against a warm corpus.
func BenchmarkEngineSimilar(b *testing.B) {
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	for _, x := range benchCorpus(128, 40) {
		e.Add(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Similar(i%128, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// similarBenchEngine builds a warm engine of n short traces plus one query
// string that is never ingested. Short strings keep the quadratic corpus
// build cheap; the query path under test scales the same way regardless.
func similarBenchEngine(b *testing.B, n int) (*Engine, token.String) {
	b.Helper()
	xs := benchCorpus(n+1, 24)
	e := New(Options{Kernel: &core.Kast{CutWeight: 2}})
	if _, err := e.AddBatch(xs[:n]); err != nil {
		b.Fatal(err)
	}
	return e, xs[n]
}

// BenchmarkSimilarExact measures exact query-by-trace: one Kast evaluation
// against every live corpus entry (SimilarTrace with the rerank covering
// the corpus). This is the O(N * kernel) baseline the sketch index exists
// to beat; compare BenchmarkSimilarSketch at the same N.
func BenchmarkSimilarExact(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			e, q := similarBenchEngine(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SimilarTrace(q, 10, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimilarSketch measures the approximate path over the same
// corpus and query: an O(N * dim) sketch-index scan plus an exact Kast
// rerank of the default shortlist — per-query kernel work is constant in
// N, so the gap over BenchmarkSimilarExact widens with the corpus.
func BenchmarkSimilarSketch(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			e, q := similarBenchEngine(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SimilarTrace(q, 10, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimilarANN measures the same query with LSH-banded candidate
// generation: the flat O(N * dim) scan is replaced by bucket probes plus
// an int8 scan of the colliding pool, so candidate generation becomes
// sublinear in N while the exact rerank stays identical to
// BenchmarkSimilarSketch's.
func BenchmarkSimilarANN(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("corpus=%d", n), func(b *testing.B) {
			xs := benchCorpus(n+1, 24)
			e := New(Options{Kernel: &core.Kast{CutWeight: 2}, ANNBands: sketch.DefaultBands})
			if _, err := e.AddBatch(xs[:n]); err != nil {
				b.Fatal(err)
			}
			q := xs[n]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.SimilarTrace(q, 10, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
