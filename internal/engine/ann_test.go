package engine

import (
	"bytes"
	"testing"

	"iokast/internal/core"
)

// TestANNSnapshotRestoreBitIdentical: a snapshot from an ANN-enabled
// engine carries the band signatures, and restoring under the same
// configuration reproduces the exact index state — vectors, signatures,
// buckets — so approximate queries answer identically without
// recomputing anything.
func TestANNSnapshotRestoreBitIdentical(t *testing.T) {
	xs := corpus(t, 16, 9)
	opts := Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 96, SketchSeed: 3, ANNBands: 8, ANNRows: 6}
	e := New(opts)
	if _, err := e.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove(7); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := New(opts)
	if err := rec.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	sketchStatesEqual(t, e, rec)
	if b, r, enabled := rec.ANNConfig(); !enabled || b != 8 || r != 6 {
		t.Fatalf("restored ANN config (%d, %d, %v)", b, r, enabled)
	}
	for _, id := range []int{0, 5, 12} {
		want, err := e.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.SimilarApprox(id, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("id %d: %d vs %d neighbors", id, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("id %d neighbor %d: %+v vs %+v", id, i, want[i], got[i])
			}
		}
	}
}

// TestANNRestoreReconfigured: a snapshot's signatures are only valid for
// the banding they were built under. Restoring with different bands/rows
// (or with ANN turned off) must discard them and rebuild from the
// persisted vectors, matching a from-scratch engine under the new config.
func TestANNRestoreReconfigured(t *testing.T) {
	xs := corpus(t, 12, 2)
	old := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 1, ANNBands: 8, ANNRows: 6})
	if _, err := old.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := old.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	for _, newOpts := range []Options{
		{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 1, ANNBands: 16, ANNRows: 8},
		{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 1, ANNBands: 8, ANNRows: 3},
		{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, SketchSeed: 1},
		{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 32, SketchSeed: 5, ANNBands: 8, ANNRows: 6},
	} {
		rec := New(newOpts)
		if err := rec.Restore(bytes.NewReader(snap.Bytes())); err != nil {
			t.Fatal(err)
		}
		fresh := New(newOpts)
		if _, err := fresh.AddBatch(xs); err != nil {
			t.Fatal(err)
		}
		sketchStatesEqual(t, rec, fresh)
	}
}

// TestANNRestoreIntoFlatAndDisabled: snapshots written with ANN enabled
// restore cleanly into engines that never look at the signature block —
// flat-index engines consume and discard it, sketch-disabled engines skip
// the whole sketch section — with the Gram state intact.
func TestANNRestoreIntoFlatAndDisabled(t *testing.T) {
	xs := corpus(t, 10, 6)
	withANN := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64, ANNBands: 16})
	if _, err := withANN.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := withANN.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	flat := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64})
	if err := flat.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	disabled := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: -1})
	if err := disabled.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	gWant, _ := withANN.Gram()
	for _, rec := range []*Engine{flat, disabled} {
		gGot, _ := rec.Gram()
		if d := gGot.MaxAbsDiff(gWant); d != 0 {
			t.Fatalf("restored Gram differs by %g", d)
		}
	}
	// The flat restore kept the persisted vectors (same sketch config) and
	// must answer approximate queries like a flat engine built fresh.
	freshFlat := New(Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: 64})
	if _, err := freshFlat.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	sketchStatesEqual(t, flat, freshFlat)
}
