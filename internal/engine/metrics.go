package engine

import (
	"iokast/internal/obs"
	"iokast/internal/sketch"
)

// Metrics are the engine's telemetry hooks. The zero value disables
// them: obs instruments are nil-safe, so an unconfigured engine pays a
// nil check per aggregate point and nothing per kernel evaluation.
type Metrics struct {
	// Adds counts accepted corpus insertions (Add and AddBatch entries).
	Adds *obs.Counter
	// Removes counts accepted tombstones.
	Removes *obs.Counter
	// KernelEvals counts kernel evaluations — the currency every mutation
	// and rerank spends. Incremented at aggregate points (per row or
	// batch), never inside the parallel hot loop.
	KernelEvals *obs.Counter
	// Reranked counts shortlist candidates reranked after an approximate
	// search; Reranked over the sketch index's Searches is the mean
	// shortlist the exact kernel actually pays for.
	Reranked *obs.Counter
	// Index instruments the sketch index's candidate generation.
	Index sketch.IndexMetrics
}

// NewMetrics registers the engine and sketch families on reg. labels
// (e.g. the shard number) distinguish engines in one process; series
// are get-or-create, so engines sharing labels share counters.
func NewMetrics(reg *obs.Registry, labels obs.Labels) Metrics {
	return Metrics{
		Adds:        reg.Counter("iok_engine_adds_total", "Corpus insertions accepted.", labels),
		Removes:     reg.Counter("iok_engine_removes_total", "Corpus removals accepted.", labels),
		KernelEvals: reg.Counter("iok_engine_kernel_evals_total", "Kernel evaluations performed.", labels),
		Reranked:    reg.Counter("iok_engine_reranked_total", "Shortlist candidates exactly reranked.", labels),
		Index:       sketch.NewIndexMetrics(reg, labels),
	}
}
