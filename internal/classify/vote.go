package classify

import "sort"

// Vote is the aggregated ballot of one label across the scored neighbours
// of a classification query.
type Vote struct {
	Label string `json:"label"`
	// Weight is the sum of the normalised similarities of the neighbours
	// carrying the label — the quantity the winner is chosen by.
	Weight float64 `json:"weight"`
	// Count is how many neighbours carried the label.
	Count int `json:"count"`
}

// aggregate turns scored, labelled neighbours into per-label votes weighted
// by normalised similarity and picks the winner. labels[i] and sims[i]
// describe one neighbour; entries with an empty label (unlabelled corpus
// ids) are ignored. Negative similarities (possible for featured kernels
// only in pathological cases; all kernels here are non-negative) clamp to
// zero so a bad neighbour can never subtract from a label.
//
// Determinism contract: votes accumulate in the neighbour order given, so
// callers that present bit-identical neighbour lists (the sharded-vs-single
// equivalence guarantee) get bit-identical vote weights. The returned votes
// are ordered by weight desc, count desc, label asc; the winner is votes[0].
// confidence is the winner's share of the total vote weight (0 when nothing
// voted).
func aggregate(labels []string, sims []float64) (votes []Vote, winner string, confidence float64) {
	idx := make(map[string]int)
	for i, l := range labels {
		if l == "" {
			continue
		}
		s := sims[i]
		if s < 0 {
			s = 0
		}
		j, ok := idx[l]
		if !ok {
			j = len(votes)
			idx[l] = j
			votes = append(votes, Vote{Label: l})
		}
		votes[j].Weight += s
		votes[j].Count++
	}
	sort.SliceStable(votes, func(a, b int) bool {
		if votes[a].Weight != votes[b].Weight {
			return votes[a].Weight > votes[b].Weight
		}
		if votes[a].Count != votes[b].Count {
			return votes[a].Count > votes[b].Count
		}
		return votes[a].Label < votes[b].Label
	})
	if len(votes) == 0 {
		return nil, "", 0
	}
	total := 0.0
	for _, v := range votes {
		total += v.Weight
	}
	winner = votes[0].Label
	if total > 0 {
		confidence = votes[0].Weight / total
	}
	return votes, winner, confidence
}
