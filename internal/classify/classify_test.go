package classify

import (
	"testing"

	"iokast/internal/core"
	"iokast/internal/iogen"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

func ws(pairs ...any) token.String {
	var s token.String
	for i := 0; i < len(pairs); i += 2 {
		s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
	}
	return s
}

func TestNewValidation(t *testing.T) {
	k := &core.Kast{CutWeight: 2}
	if _, err := New(k, nil, nil, 1); err == nil {
		t.Fatal("empty reference set accepted")
	}
	if _, err := New(k, []token.String{ws("a", 2)}, []string{"x", "y"}, 1); err == nil {
		t.Fatal("label mismatch accepted")
	}
	c, err := New(k, []token.String{ws("a", 2)}, []string{"x"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.k != 1 {
		t.Fatalf("k not clamped: %d", c.k)
	}
}

func TestClassifySimple(t *testing.T) {
	k := &core.Kast{CutWeight: 2}
	refs := []token.String{
		ws("w", 10, "w2", 5),
		ws("w", 12, "w2", 4),
		ws("s", 9, "r", 9),
		ws("s", 11, "r", 7),
	}
	labels := []string{"writer", "writer", "seeker", "seeker"}
	c, err := New(k, refs, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, matches, err := c.Classify(ws("w", 11, "w2", 6))
	if err != nil {
		t.Fatal(err)
	}
	if got != "writer" {
		t.Fatalf("classified as %q", got)
	}
	if len(matches) != 4 || matches[0].Label != "writer" {
		t.Fatalf("matches %v", matches)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Similarity > matches[i-1].Similarity {
			t.Fatal("matches not sorted")
		}
	}
	got, _, err = c.Classify(ws("s", 10, "r", 8))
	if err != nil || got != "seeker" {
		t.Fatalf("second query: %q, %v", got, err)
	}
}

func TestClassifyZeroSelfSim(t *testing.T) {
	k := &core.Kast{CutWeight: 100}
	c, err := New(k, []token.String{ws("a", 200)}, []string{"x"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Classify(ws("a", 1)); err == nil {
		t.Fatal("zero self-similarity input accepted")
	}
}

func TestKMajorityVoting(t *testing.T) {
	k := &core.Kast{CutWeight: 2}
	// Two "b" references nearly identical to the query, one "a" exactly
	// identical: with k=3 the majority label wins over the single best.
	refs := []token.String{
		ws("q", 10),
		ws("q", 9, "z", 2),
		ws("q", 8, "z", 3),
	}
	labels := []string{"a", "b", "b"}
	c, err := New(k, refs, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Classify(ws("q", 10))
	if err != nil {
		t.Fatal(err)
	}
	if got != "b" {
		t.Fatalf("majority vote gave %q", got)
	}
}

// End to end: train on a subset of the paper dataset, classify the rest.
func TestDatasetClassification(t *testing.T) {
	ds, err := iogen.Build(iogen.Options{
		Seed: 5,
		Bases: map[iogen.Category]int{
			iogen.CatFlash: 2, iogen.CatRandomPOSIX: 2, iogen.CatNormal: 2, iogen.CatRandomAccess: 2,
		},
		CopiesPerBase:    2,
		MutationsPerCopy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := core.ConvertAll(ds.Traces, core.Options{})
	var refs, queries []token.String
	var refLabels, queryLabels []string
	r := xrand.New(3)
	for i := range xs {
		if r.Bool(0.5) || len(refs) == 0 {
			refs = append(refs, xs[i])
			refLabels = append(refLabels, ds.Labels[i])
		} else {
			queries = append(queries, xs[i])
			queryLabels = append(queryLabels, ds.Labels[i])
		}
	}
	c, err := New(&core.Kast{CutWeight: 2}, refs, refLabels, 1)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, q := range queries {
		got, _, err := c.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		// C and D are interchangeable by design (the paper's clusters
		// merge them), so either counts as correct for the other.
		want := queryLabels[i]
		if got == want || (got == "C" && want == "D") || (got == "D" && want == "C") {
			correct++
		}
	}
	acc := float64(correct) / float64(len(queries))
	if acc < 0.9 {
		t.Fatalf("dataset classification accuracy %.2f (%d/%d)", acc, correct, len(queries))
	}
}

func TestLeaveOneOutAccuracy(t *testing.T) {
	k := &core.Kast{CutWeight: 2}
	refs := []token.String{
		ws("w", 10, "w2", 5), ws("w", 12, "w2", 4),
		ws("s", 9, "r", 9), ws("s", 11, "r", 7),
	}
	labels := []string{"w", "w", "s", "s"}
	c, err := New(k, refs, labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("LOO accuracy %v", acc)
	}
	// Too few references.
	c1, _ := New(k, refs[:1], labels[:1], 1)
	if _, err := c1.Accuracy(); err == nil {
		t.Fatal("singleton accuracy accepted")
	}
}
