package classify

import (
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// labelledCorpus builds a labelled corpus from the paper's synthetic
// generator (reader/writer/mixed-style families A..D) and a held-out query
// set with ground-truth labels, deterministically.
func labelledCorpus(t testing.TB, seed uint64) (refs []token.String, refLabels []string, queries []token.String, queryLabels []string) {
	t.Helper()
	ds, err := iogen.Build(iogen.Options{
		Seed: seed,
		Bases: map[iogen.Category]int{
			iogen.CatFlash: 3, iogen.CatRandomPOSIX: 3, iogen.CatNormal: 3, iogen.CatRandomAccess: 3,
		},
		CopiesPerBase:    2,
		MutationsPerCopy: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := core.ConvertAll(ds.Traces, core.Options{})
	r := xrand.New(seed + 99)
	for i := range xs {
		if r.Bool(0.6) || len(refs) == 0 {
			refs = append(refs, xs[i])
			refLabels = append(refLabels, ds.Labels[i])
		} else {
			queries = append(queries, xs[i])
			queryLabels = append(queryLabels, ds.Labels[i])
		}
	}
	return refs, refLabels, queries, queryLabels
}

// labelsMatch treats C and D as interchangeable, as the dataset tests do
// (the paper's clusters merge them).
func labelsMatch(got, want string) bool {
	return got == want || (got == "C" && want == "D") || (got == "D" && want == "C")
}

// Quality harness: online classification over a live engine must reach the
// pinned accuracy floor on labelled synthetic corpora, for the paper's
// kernel at two cut weights and one featured baseline.
func TestOnlineClassificationQuality(t *testing.T) {
	kernels := []struct {
		name string
		make func() kernel.Kernel
	}{
		{"kast-cut2", func() kernel.Kernel { return &core.Kast{CutWeight: 2} }},
		{"kast-cut4", func() kernel.Kernel { return &core.Kast{CutWeight: 4} }},
		{"blended", func() kernel.Kernel { return &kernel.Blended{P: 5} }},
	}
	refs, refLabels, queries, queryLabels := labelledCorpus(t, 7)
	for _, kc := range kernels {
		t.Run(kc.name, func(t *testing.T) {
			eng := engine.New(engine.Options{Kernel: kc.make()})
			if _, err := eng.AddBatch(refs); err != nil {
				t.Fatal(err)
			}
			reg := NewRegistry()
			for i, l := range refLabels {
				if err := reg.SetLabel(i, l); err != nil {
					t.Fatal(err)
				}
			}
			o := NewOnline(eng, reg)
			correct := 0
			for i, q := range queries {
				res, err := o.Classify(q, 3, len(refs))
				if err != nil {
					t.Fatal(err)
				}
				if res.Label == "" {
					t.Fatalf("query %d: no label (votes %v)", i, res.Votes)
				}
				if res.Confidence <= 0 || res.Confidence > 1 {
					t.Fatalf("query %d: confidence %v out of range", i, res.Confidence)
				}
				if labelsMatch(res.Label, queryLabels[i]) {
					correct++
				}
			}
			acc := float64(correct) / float64(len(queries))
			if acc < 0.9 {
				t.Fatalf("accuracy %.2f (%d/%d) below the 0.9 floor", acc, correct, len(queries))
			}
		})
	}
}

// Structural contract of Classify: k=0 gives an empty-but-well-formed
// result, unlabelled neighbours appear but do not vote, and votes order
// deterministically.
func TestOnlineClassifyStructure(t *testing.T) {
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	a := token.String{{Literal: "root", Weight: 1}, {Literal: "w", Weight: 8}, {Literal: "w", Weight: 8}}
	b := token.String{{Literal: "root", Weight: 1}, {Literal: "w", Weight: 7}, {Literal: "w", Weight: 9}}
	c := token.String{{Literal: "root", Weight: 1}, {Literal: "r", Weight: 4}, {Literal: "s", Weight: 2}}
	eng.Add(a)
	eng.Add(b)
	eng.Add(c)
	reg := NewRegistry()
	if err := reg.SetLabels(map[int]string{0: "writer", 2: "seeker"}); err != nil {
		t.Fatal(err) // id 1 stays unlabelled
	}
	o := NewOnline(eng, reg)

	// k = 0: empty but valid.
	res, err := o.Classify(a, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "" || res.Confidence != 0 {
		t.Fatalf("k=0 classified: %+v", res)
	}
	if res.Votes == nil || res.Neighbors == nil {
		t.Fatal("k=0 result holds nil slices (JSON would be null)")
	}
	if len(res.Votes) != 0 || len(res.Neighbors) != 0 {
		t.Fatalf("k=0 result not empty: %+v", res)
	}

	// Full query: the unlabelled neighbour is listed but does not vote.
	res, err = o.Classify(a, -1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "writer" {
		t.Fatalf("label %q", res.Label)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("neighbors %v", res.Neighbors)
	}
	voted := 0
	for _, v := range res.Votes {
		voted += v.Count
	}
	if voted != 2 {
		t.Fatalf("%d ballots cast, want 2 (unlabelled neighbour must not vote)", voted)
	}
	for _, nb := range res.Neighbors {
		if nb.ID == 1 && nb.Label != "" {
			t.Fatalf("unlabelled neighbour carries label %q", nb.Label)
		}
	}
	total := 0.0
	for _, v := range res.Votes {
		total += v.Weight
	}
	if want := res.Votes[0].Weight / total; res.Confidence != want {
		t.Fatalf("confidence %v, want %v", res.Confidence, want)
	}

	// Nothing labelled at all: valid empty classification, not an error.
	empty := NewOnline(eng, NewRegistry())
	res, err = empty.Classify(a, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "" || len(res.Votes) != 0 || len(res.Neighbors) != 2 {
		t.Fatalf("unlabelled-corpus result: %+v", res)
	}
}

// The batch Classifier and the Online classifier are one implementation:
// same winner on every query when fed the same references and k.
func TestBatchMatchesOnline(t *testing.T) {
	refs, refLabels, queries, _ := labelledCorpus(t, 13)
	batch, err := New(&core.Kast{CutWeight: 2}, refs, refLabels, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	if _, err := eng.AddBatch(refs); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	for i, l := range refLabels {
		if err := reg.SetLabel(i, l); err != nil {
			t.Fatal(err)
		}
	}
	online := NewOnline(eng, reg)
	for i, q := range queries {
		wantLabel, _, err := batch.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := online.Classify(q, 3, len(refs))
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != wantLabel {
			t.Fatalf("query %d: batch %q, online %q (votes %v)", i, wantLabel, res.Label, res.Votes)
		}
	}
}
