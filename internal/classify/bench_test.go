package classify

import (
	"fmt"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

// benchStrings mirrors internal/shard's benchmark corpus: n small synthetic
// weighted strings, deterministic, cheap enough that an N=1024 corpus
// isolates the query path rather than the per-pair kernel cost.
func benchStrings(n int) []token.String {
	vocab := []string{"read[4096]", "read[512]", "write[4096]", "write[64]", "lseek[0]", "open[0]", "close[0]", "fsync[0]"}
	r := xrand.New(0xcafe)
	xs := make([]token.String, n)
	for i := range xs {
		m := r.IntRange(6, 14)
		s := token.String{{Literal: token.LitRoot, Weight: 1}}
		for j := 0; j < m; j++ {
			s = append(s, token.Token{Literal: vocab[r.Intn(len(vocab))], Weight: r.IntRange(1, 4)})
		}
		xs[i] = s
	}
	return xs
}

// BenchmarkClassify measures one online classification (top-10 vote)
// against an N=1024 labelled corpus, on the sketch-shortlist path the
// server uses by default. The query cost is the corpus's SimilarTrace plus
// an O(k) label lookup and vote — classification rides the similarity
// machinery, it does not add another scan.
func BenchmarkClassify(b *testing.B) {
	const n = 1024
	xs := benchStrings(n)
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}})
	if _, err := eng.AddBatch(xs); err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	assign := make(map[int]string, n)
	for i := 0; i < n; i++ {
		assign[i] = fmt.Sprintf("family-%d", i%4)
	}
	if err := reg.SetLabels(assign); err != nil {
		b.Fatal(err)
	}
	o := NewOnline(eng, reg)
	queries := benchStrings(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := o.Classify(queries[i%len(queries)], 10, -1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Label == "" {
			b.Fatal("no label")
		}
	}
}
