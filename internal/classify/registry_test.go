package classify

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryInMemory(t *testing.T) {
	r := NewRegistry()
	if err := r.SetLabels(map[int]string{0: "reader", 1: "writer", 2: "reader"}); err != nil {
		t.Fatal(err)
	}
	if l, ok := r.LabelOf(0); !ok || l != "reader" {
		t.Fatalf("LabelOf(0) = %q, %v", l, ok)
	}
	if _, ok := r.LabelOf(9); ok {
		t.Fatal("unlabelled id reported labelled")
	}
	if got := r.Counts(); !reflect.DeepEqual(got, map[string]int{"reader": 2, "writer": 1}) {
		t.Fatalf("Counts = %v", got)
	}
	if err := r.SetLabel(1, ""); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d after removal", r.Len())
	}
	// Relabelling replaces, not duplicates.
	if err := r.SetLabel(0, "mixed"); err != nil {
		t.Fatal(err)
	}
	if got := r.Counts(); !reflect.DeepEqual(got, map[string]int{"reader": 1, "mixed": 1}) {
		t.Fatalf("Counts after relabel = %v", got)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry()
	bad := []map[int]string{
		{-1: "x"},                       // negative id
		{0: string(make([]byte, 300))},  // too long
		{0: "a\nb"},                     // control char
		{0: string([]byte{0xff, 0xfe})}, // invalid UTF-8
	}
	for i, assign := range bad {
		if err := r.SetLabels(assign); err == nil {
			t.Errorf("bad assignment %d accepted", i)
		}
	}
	if r.Len() != 0 {
		t.Fatal("failed assignment mutated the table")
	}
}

// Durable crash recovery: mutations are committed atomically per call, so a
// kill-without-close loses nothing — the reopened registry is identical.
func TestRegistryCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), DefaultLabelsFile)
	r, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "reader", 3: "writer", 17: "mixed", 4: "reader"}
	if err := r.SetLabels(want); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLabel(3, ""); err != nil { // removal is durable too
		t.Fatal(err)
	}
	delete(want, 3)
	// Kill: no close, no flush call — just reopen the path.
	r2, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Assignments(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

// A missing file is a fresh registry; a corrupted one is refused loudly.
func TestRegistryOpenEdgeCases(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(filepath.Join(dir, "absent"))
	if err != nil || r.Len() != 0 {
		t.Fatalf("open of absent file: %v, len %d", err, r.Len())
	}

	path := filepath.Join(dir, "labels")
	r, err = OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetLabel(5, "reader"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the CRC must catch it.
	data[len(labelsMagic)+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(path); err == nil {
		t.Fatal("corrupted labels file accepted")
	}
	// Truncation is refused too.
	if err := os.WriteFile(path, data[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(path); err == nil {
		t.Fatal("truncated labels file accepted")
	}
}

// A crafted count field with a valid CRC must be refused by the payload-
// size bound before it can size a huge allocation.
func TestDecodeLabelsCountBound(t *testing.T) {
	img := encodeLabels(nil)
	// Rewrite the count varint (1 byte for count 0) to a huge value and
	// re-frame with a fresh CRC.
	head := img[:len(labelsMagic)+1]
	var cnt [10]byte
	n := 0
	for v := uint64(1 << 23); ; n++ {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			cnt[n] = b | 0x80
			continue
		}
		cnt[n] = b
		n++
		break
	}
	payload := append(append([]byte(nil), head...), cnt[:n]...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, labelsCRCTable))
	forged := append(payload, crc[:]...)
	if _, err := decodeLabels(forged); err == nil {
		t.Fatal("oversized count accepted")
	} else if !strings.Contains(err.Error(), "payload bytes") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

// The codec round-trips canonically: encode(decode(encode(x))) == encode(x).
func TestLabelsCodecRoundTrip(t *testing.T) {
	tables := []map[int]string{
		{},
		{0: "a"},
		{7: "reader", 2: "writer", 1024: "mixed-é"},
	}
	for i, want := range tables {
		img := encodeLabels(want)
		got, err := decodeLabels(img)
		if err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("table %d: round-trip %v, want %v", i, got, want)
		}
		if again := encodeLabels(got); !reflect.DeepEqual(again, img) {
			t.Fatalf("table %d: encoding not canonical", i)
		}
	}
}
