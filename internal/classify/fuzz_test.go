package classify

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzLabelRecordParsing hardens the labels-file decoder: arbitrary bytes
// must never panic or over-allocate, and everything the decoder accepts
// must round-trip canonically through the encoder. The labels file is the
// one classification artifact read back at boot, so a corrupted or
// adversarial file must fail cleanly, not take the server down.
func FuzzLabelRecordParsing(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeLabels(nil))
	f.Add(encodeLabels(map[int]string{0: "reader"}))
	f.Add(encodeLabels(map[int]string{3: "writer", 9: "mixed", 1 << 20: "x"}))
	long := encodeLabels(map[int]string{1: string(bytes.Repeat([]byte("a"), MaxLabelLen))})
	f.Add(long)
	// Torn/corrupt variants of a valid image.
	img := encodeLabels(map[int]string{1: "a", 2: "bb"})
	f.Add(img[:len(img)-1])
	flipped := append([]byte(nil), img...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		labels, err := decodeLabels(data)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted: the table must survive a canonical round-trip.
		img := encodeLabels(labels)
		again, err := decodeLabels(img)
		if err != nil {
			t.Fatalf("re-encode of accepted table rejected: %v", err)
		}
		if !reflect.DeepEqual(labels, again) {
			t.Fatalf("round-trip changed the table: %v vs %v", labels, again)
		}
		for id, l := range labels {
			if id < 0 {
				t.Fatalf("decoder accepted negative id %d", id)
			}
			if err := ValidLabel(l); err != nil {
				t.Fatalf("decoder accepted invalid label %q: %v", l, err)
			}
		}
	})
}
