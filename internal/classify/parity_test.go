package classify

import (
	"fmt"
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/kernel"
	"iokast/internal/shard"
)

// The acceptance guarantee of online classification: a sharded corpus
// classifies bit-identically to a single engine over the same corpus —
// same winning label, same confidence bits, same vote weights, same
// neighbour lists — at every shard count, because (with an exact rerank)
// the per-shard SimilarTrace results merge bit-identically (the PR 4
// equivalence guarantee) and votes accumulate in that shared neighbour
// order. Harness style follows internal/shard/equiv_test.go.
func TestClassificationShardedParity(t *testing.T) {
	kernels := []struct {
		name string
		make func() kernel.Kernel
	}{
		{"kast-cut2", func() kernel.Kernel { return &core.Kast{CutWeight: 2} }},
		{"kast-cut4", func() kernel.Kernel { return &core.Kast{CutWeight: 4} }},
		{"blended", func() kernel.Kernel { return &kernel.Blended{P: 5} }},
	}
	refs, refLabels, queries, _ := labelledCorpus(t, 21)
	reg := NewRegistry()
	for i, l := range refLabels {
		if err := reg.SetLabel(i, l); err != nil {
			t.Fatal(err)
		}
	}
	for _, kc := range kernels {
		eng := engine.New(engine.Options{Kernel: kc.make()})
		if _, err := eng.AddBatch(refs); err != nil {
			t.Fatal(err)
		}
		single := NewOnline(eng, reg)
		want := make([]*Result, len(queries))
		for i, q := range queries {
			res, err := single.Classify(q, 5, len(refs))
			if err != nil {
				t.Fatal(err)
			}
			want[i] = res
		}
		for _, shards := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", kc.name, shards), func(t *testing.T) {
				sh, err := shard.New(shard.Options{
					Shards: shards,
					Seed:   0xc0ffee,
					Engine: engine.Options{Kernel: kc.make()},
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sh.AddBatch(refs); err != nil {
					t.Fatal(err)
				}
				o := NewOnline(sh, reg)
				for i, q := range queries {
					got, err := o.Classify(q, 5, len(refs))
					if err != nil {
						t.Fatal(err)
					}
					assertResultsEqual(t, fmt.Sprintf("query %d", i), want[i], got)
				}
			})
		}
	}
}

func assertResultsEqual(t *testing.T, ctx string, want, got *Result) {
	t.Helper()
	if got.Label != want.Label {
		t.Fatalf("%s: label %q, want %q", ctx, got.Label, want.Label)
	}
	if math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) {
		t.Fatalf("%s: confidence %x, want %x", ctx, math.Float64bits(got.Confidence), math.Float64bits(want.Confidence))
	}
	if len(got.Votes) != len(want.Votes) {
		t.Fatalf("%s: %d votes, want %d\n got: %v\nwant: %v", ctx, len(got.Votes), len(want.Votes), got.Votes, want.Votes)
	}
	for i := range want.Votes {
		if got.Votes[i].Label != want.Votes[i].Label ||
			got.Votes[i].Count != want.Votes[i].Count ||
			math.Float64bits(got.Votes[i].Weight) != math.Float64bits(want.Votes[i].Weight) {
			t.Fatalf("%s: vote %d: got %+v, want %+v", ctx, i, got.Votes[i], want.Votes[i])
		}
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: %d neighbors, want %d", ctx, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i].ID != want.Neighbors[i].ID ||
			got.Neighbors[i].Label != want.Neighbors[i].Label ||
			math.Float64bits(got.Neighbors[i].Similarity) != math.Float64bits(want.Neighbors[i].Similarity) {
			t.Fatalf("%s: neighbor %d: got %+v, want %+v", ctx, i, got.Neighbors[i], want.Neighbors[i])
		}
	}
}

// Parity holds across a durable kill-and-recover cycle too: labels come
// back from the atomically committed labels file, the corpus from the
// per-shard WALs, and classification answers stay bit-identical.
func TestClassificationParityAfterRecovery(t *testing.T) {
	refs, refLabels, queries, _ := labelledCorpus(t, 33)
	dir := t.TempDir()

	reg, err := OpenRegistry(dir + "/LABELS")
	if err != nil {
		t.Fatal(err)
	}
	opt := shard.Options{Shards: 4, Seed: 9, Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}}}
	sh, err := shard.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.AddBatch(refs); err != nil {
		t.Fatal(err)
	}
	for i, l := range refLabels {
		if err := reg.SetLabel(i, l); err != nil {
			t.Fatal(err)
		}
	}
	o := NewOnline(sh, reg)
	want := make([]*Result, len(queries))
	for i, q := range queries {
		if want[i], err = o.Classify(q, 5, len(refs)); err != nil {
			t.Fatal(err)
		}
	}

	// Kill: no Close on either the corpus or the registry.
	reg2, err := OpenRegistry(dir + "/LABELS")
	if err != nil {
		t.Fatal(err)
	}
	sh2, err := shard.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	o2 := NewOnline(sh2, reg2)
	for i, q := range queries {
		got, err := o2.Classify(q, 5, len(refs))
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, fmt.Sprintf("recovered query %d", i), want[i], got)
	}
}
