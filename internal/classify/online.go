package classify

import (
	"fmt"

	"iokast/internal/engine"
	"iokast/internal/token"
)

// Corpus is the similarity surface the online classifier needs: query-by-
// trace against a live corpus. Both the single engine.Engine and the
// multi-shard shard.Sharded satisfy it, which is what makes classification
// serve identically (bit for bit, with an exact rerank) at any shard count.
type Corpus interface {
	SimilarTrace(x token.String, k, rerank int) ([]engine.Neighbor, error)
}

// Neighbor is one scored corpus entry of a classification query, its label
// attached when the registry has one.
type Neighbor struct {
	ID         int     `json:"id"`
	Label      string  `json:"label,omitempty"`
	Similarity float64 `json:"similarity"`
}

// Result is one classification: the winning label, its confidence (share of
// the total vote weight), the full per-label ballot, and the scored
// neighbours the vote was taken over. Label is "" when no labelled
// neighbour was found (empty corpus, k=0, or nothing labelled yet);
// Votes and Neighbors are never nil, so the JSON form is always
// well-formed ([] rather than null).
type Result struct {
	Label      string     `json:"label"`
	Confidence float64    `json:"confidence"`
	Votes      []Vote     `json:"votes"`
	Neighbors  []Neighbor `json:"neighbors"`
}

// Online classifies traces against a live corpus by k-NN vote over the
// corpus's similarity machinery: the query runs SimilarTrace (sketch
// shortlist plus exact rerank where enabled, fanned out across shards in
// parallel for a sharded corpus), neighbours are labelled through the
// registry, and per-label votes weighted by normalised similarity pick the
// winner. It holds no state beyond the two references; all methods are safe
// for concurrent use whenever the corpus and registry are.
type Online struct {
	c   Corpus
	reg *Registry
}

// NewOnline wires a classifier over a corpus and a label registry.
func NewOnline(c Corpus, reg *Registry) *Online {
	return &Online{c: c, reg: reg}
}

// Registry returns the classifier's label registry.
func (o *Online) Registry() *Registry { return o.reg }

// Classify labels x by similarity-weighted vote over its k most similar
// corpus entries. k and rerank follow the engine's SimilarTrace convention:
// k < 0 means every live entry, rerank < 0 picks the default over-fetch,
// rerank 0 votes on raw sketch scores, rerank >= the corpus size is exact.
// Unlabelled neighbours appear in the result but do not vote. k = 0 is
// valid and returns an empty (but well-formed) result.
func (o *Online) Classify(x token.String, k, rerank int) (*Result, error) {
	ns, err := o.c.SimilarTrace(x, k, rerank)
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	res := &Result{Votes: []Vote{}, Neighbors: make([]Neighbor, len(ns))}
	labels := make([]string, len(ns))
	sims := make([]float64, len(ns))
	for i, nb := range ns {
		label, _ := o.reg.LabelOf(nb.ID)
		res.Neighbors[i] = Neighbor{ID: nb.ID, Label: label, Similarity: nb.Similarity}
		labels[i] = label
		sims[i] = nb.Similarity
	}
	votes, winner, confidence := aggregate(labels, sims)
	if votes != nil {
		res.Votes = votes
	}
	res.Label = winner
	res.Confidence = confidence
	return res, nil
}
