package classify

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"unicode/utf8"

	"iokast/internal/store"
)

// The labels file pins the id -> label assignments of a corpus. It sits
// beside the corpus data (next to the WAL of a single engine, next to the
// MANIFEST of a sharded directory) and is committed with the same
// discipline as the shard MANIFEST: CRC-framed, written whole via an atomic
// temp+rename (store.AtomicWriteFile), so a crash at any point leaves
// either the previous complete table or the new one — never a torn file.
// Label mutations are rare next to queries, so rewriting the whole table
// per mutation batch costs little and keeps recovery trivial: read one
// file, verify one checksum.
//
// Layout (integers little-endian, lengths uvarint):
//
//	magic    "IOKLBLS1" (8 bytes)
//	version  byte (= 1)
//	count    uvarint
//	entries  count times: uvarint id, uvarint len, label bytes
//	         (ascending id, so encoding is canonical)
//	crc      uint32 CRC-32C over everything above
const (
	labelsMagic   = "IOKLBLS1"
	labelsVersion = 1
)

// DefaultLabelsFile is the file name a durable registry conventionally uses
// inside a corpus data directory.
const DefaultLabelsFile = "LABELS"

// MaxLabelLen bounds one label; longer strings are configuration mistakes,
// not workload names.
const MaxLabelLen = 256

// maxLabelEntries bounds how many entries a labels file may carry, so a
// corrupted count cannot drive a huge allocation before the CRC check.
const maxLabelEntries = 1 << 24

var labelsCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Registry assigns labels to corpus ids. It is the mutable, durable half of
// the online classifier: ids are tagged via SetLabels, queries read labels
// through LabelOf, and GET /labels-style listings come from Counts. All
// methods are safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	path   string // "" = in-memory only
	labels map[int]string
}

// NewRegistry returns an empty in-memory registry (no persistence).
func NewRegistry() *Registry {
	return &Registry{labels: make(map[int]string)}
}

// OpenRegistry loads the labels file at path, or initialises an empty
// registry bound to it if the file does not exist yet (it is created on the
// first mutation). Every later mutation rewrites the file atomically, so a
// kill at any point preserves the last committed table.
func OpenRegistry(path string) (*Registry, error) {
	r := &Registry{path: path, labels: make(map[int]string)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	labels, err := decodeLabels(data)
	if err != nil {
		return nil, err
	}
	r.labels = labels
	return r, nil
}

// ValidLabel reports whether s is acceptable as a label: non-empty, at most
// MaxLabelLen bytes, valid UTF-8, no control characters.
func ValidLabel(s string) error {
	if s == "" {
		return fmt.Errorf("classify: empty label")
	}
	if len(s) > MaxLabelLen {
		return fmt.Errorf("classify: label of %d bytes exceeds limit %d", len(s), MaxLabelLen)
	}
	if !utf8.ValidString(s) {
		return fmt.Errorf("classify: label is not valid UTF-8")
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("classify: label contains control character %q", r)
		}
	}
	return nil
}

// SetLabels assigns labels to ids, all-or-nothing: every entry is validated
// first, then the table is updated and committed in one atomic file write.
// An empty label removes the id's assignment. Durability follows the
// MANIFEST discipline — on error the in-memory table is left unchanged.
func (r *Registry) SetLabels(assign map[int]string) error {
	for id, label := range assign {
		if id < 0 {
			return fmt.Errorf("classify: negative id %d", id)
		}
		if label == "" {
			continue // removal
		}
		if err := ValidLabel(label); err != nil {
			return fmt.Errorf("classify: id %d: %w", id, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[int]string, len(r.labels)+len(assign))
	for id, l := range r.labels {
		next[id] = l
	}
	for id, l := range assign {
		if l == "" {
			delete(next, id)
		} else {
			next[id] = l
		}
	}
	if r.path != "" {
		//iokvet:allow lockscope(label commits are rare and must serialize with readers: a reader observing new labels before the file is durable would break the crash-recovery contract)
		if err := store.AtomicWriteFile(r.path, encodeLabels(next)); err != nil {
			return err
		}
	}
	r.labels = next
	return nil
}

// SetLabel assigns one label ("" removes).
func (r *Registry) SetLabel(id int, label string) error {
	return r.SetLabels(map[int]string{id: label})
}

// LabelOf returns the label of id ("" and false when unlabelled).
func (r *Registry) LabelOf(id int) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	l, ok := r.labels[id]
	return l, ok
}

// Len returns how many ids carry a label.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.labels)
}

// Counts returns label -> member count, freshly allocated.
func (r *Registry) Counts() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.labels))
	for _, l := range r.labels {
		out[l]++
	}
	return out
}

// Assignments returns a copy of the full id -> label table.
func (r *Registry) Assignments() map[int]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[int]string, len(r.labels))
	for id, l := range r.labels {
		out[id] = l
	}
	return out
}

// Path returns the backing file ("" for an in-memory registry).
func (r *Registry) Path() string { return r.path }

// encodeLabels produces the canonical (ascending-id) file image.
func encodeLabels(labels map[int]string) []byte {
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	buf.WriteString(labelsMagic)
	buf.WriteByte(labelsVersion)
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(ids)))])
	for _, id := range ids {
		buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(id))])
		label := labels[id]
		buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(label)))])
		buf.WriteString(label)
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc32.Checksum(buf.Bytes(), labelsCRCTable))
	buf.Write(scratch[:4])
	return buf.Bytes()
}

// decodeLabels parses and verifies a labels file image.
func decodeLabels(data []byte) (map[int]string, error) {
	if len(data) < len(labelsMagic)+1+4 {
		return nil, fmt.Errorf("classify: labels file truncated (%d bytes)", len(data))
	}
	payload, stored := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(payload, labelsCRCTable); got != stored {
		return nil, fmt.Errorf("classify: labels file crc mismatch: stored %08x, computed %08x", stored, got)
	}
	if string(payload[:len(labelsMagic)]) != labelsMagic {
		return nil, fmt.Errorf("classify: bad labels magic %q", payload[:len(labelsMagic)])
	}
	if v := payload[len(labelsMagic)]; v != labelsVersion {
		return nil, fmt.Errorf("classify: unsupported labels version %d", v)
	}
	br := bytes.NewReader(payload[len(labelsMagic)+1:])
	count, err := binary.ReadUvarint(br)
	if err != nil || count > maxLabelEntries {
		return nil, fmt.Errorf("classify: labels count invalid")
	}
	// Each entry occupies at least 3 bytes (id, length, one label byte), so
	// a count larger than the remaining payload can never be satisfied —
	// refuse it before it sizes the map, keeping the allocation bounded by
	// the actual file size rather than a crafted count field.
	if count > uint64(br.Len())/3 {
		return nil, fmt.Errorf("classify: labels count %d exceeds what %d payload bytes can hold", count, br.Len())
	}
	labels := make(map[int]string, count)
	prev := -1
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil || id > uint64(maxInt) {
			return nil, fmt.Errorf("classify: labels entry %d: bad id", i)
		}
		if int(id) <= prev {
			return nil, fmt.Errorf("classify: labels entry %d: id %d out of order", i, id)
		}
		prev = int(id)
		n, err := binary.ReadUvarint(br)
		if err != nil || n == 0 || n > MaxLabelLen {
			return nil, fmt.Errorf("classify: labels entry %d: bad length", i)
		}
		label := make([]byte, n)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, fmt.Errorf("classify: labels entry %d: short label", i)
		}
		if err := ValidLabel(string(label)); err != nil {
			return nil, fmt.Errorf("classify: labels entry %d: %w", i, err)
		}
		labels[int(id)] = string(label)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("classify: labels file has %d trailing bytes", br.Len())
	}
	return labels, nil
}

const maxInt = int(^uint(0) >> 1)
