// Package classify assigns labels to new access patterns by kernel
// similarity against a labelled reference set. This is the downstream use
// the paper motivates (and its related work pursues with neural networks
// and HMMs — Madhyastha & Reed; pattern databases — Behzad et al.): once a
// collection of known patterns exists, an incoming trace can be matched to
// its family without retraining anything, because kernel methods only need
// pairwise similarities.
package classify

import (
	"fmt"
	"math"
	"sort"

	"iokast/internal/kernel"
	"iokast/internal/token"
)

// Classifier labels weighted strings by kernel similarity to labelled
// references.
type Classifier struct {
	kern    kernel.Kernel
	refs    []token.String
	labels  []string
	k       int
	selfSim []float64
}

// New builds a k-nearest-neighbour classifier over the reference set. The
// kernel is wrapped with cosine normalisation internally (similarities
// must be comparable across differently sized references). k defaults to
// 1; it is clamped to the reference count.
func New(kern kernel.Kernel, refs []token.String, labels []string, k int) (*Classifier, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("classify: empty reference set")
	}
	if len(refs) != len(labels) {
		return nil, fmt.Errorf("classify: %d references but %d labels", len(refs), len(labels))
	}
	if k < 1 {
		k = 1
	}
	if k > len(refs) {
		k = len(refs)
	}
	c := &Classifier{kern: kern, refs: refs, labels: labels, k: k}
	c.selfSim = make([]float64, len(refs))
	for i, r := range refs {
		c.selfSim[i] = kern.Compare(r, r)
	}
	return c, nil
}

// Match is one scored reference.
type Match struct {
	Index      int
	Label      string
	Similarity float64 // cosine-normalised kernel value
}

// Classify returns the majority label among the k most similar references
// (ties broken toward the more similar neighbour) and the scored
// neighbour list, most similar first.
func (c *Classifier) Classify(x token.String) (string, []Match, error) {
	selfX := c.kern.Compare(x, x)
	if selfX <= 0 {
		return "", nil, fmt.Errorf("classify: input has zero self-similarity under %s", c.kern.Name())
	}
	matches := make([]Match, 0, len(c.refs))
	for i, r := range c.refs {
		sim := 0.0
		if c.selfSim[i] > 0 {
			sim = c.kern.Compare(x, r) / math.Sqrt(selfX*c.selfSim[i])
		}
		matches = append(matches, Match{Index: i, Label: c.labels[i], Similarity: sim})
	}
	sort.SliceStable(matches, func(i, j int) bool {
		return matches[i].Similarity > matches[j].Similarity
	})
	votes := map[string]float64{}
	counts := map[string]int{}
	for _, m := range matches[:c.k] {
		votes[m.Label] += m.Similarity
		counts[m.Label]++
	}
	best, bestCount, bestVote := "", -1, -1.0
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels) // deterministic tie-break
	for _, l := range labels {
		if counts[l] > bestCount || (counts[l] == bestCount && votes[l] > bestVote) {
			best, bestCount, bestVote = l, counts[l], votes[l]
		}
	}
	return best, matches, nil
}

// Accuracy runs leave-one-out cross-validation over the reference set: how
// often a reference is classified correctly by the other references.
func (c *Classifier) Accuracy() (float64, error) {
	if len(c.refs) < 2 {
		return 0, fmt.Errorf("classify: need at least 2 references for cross-validation")
	}
	correct := 0
	for i := range c.refs {
		sub := &Classifier{
			kern:    c.kern,
			refs:    without(c.refs, i),
			labels:  withoutStr(c.labels, i),
			k:       min(c.k, len(c.refs)-1),
			selfSim: withoutF(c.selfSim, i),
		}
		got, _, err := sub.Classify(c.refs[i])
		if err != nil {
			continue // degenerate reference; counts as incorrect
		}
		if got == c.labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(c.refs)), nil
}

func without(xs []token.String, i int) []token.String {
	out := make([]token.String, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func withoutStr(xs []string, i int) []string {
	out := make([]string, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func withoutF(xs []float64, i int) []float64 {
	out := make([]float64, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}
