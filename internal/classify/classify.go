// Package classify assigns labels to access patterns by kernel similarity
// against a labelled corpus. This is the downstream use the paper motivates
// (and its related work pursues with neural networks and HMMs — Madhyastha
// & Reed; pattern databases — Behzad et al.): once a collection of known
// patterns exists, an incoming trace can be matched to its family without
// retraining anything, because kernel methods only need pairwise
// similarities.
//
// Two surfaces share one implementation:
//
//   - Online classifies against a live corpus (engine.Engine or
//     shard.Sharded) with labels held in a durable Registry — the serving
//     path behind iokserve's POST /classify.
//   - Classifier is the batch form: a fixed reference set loaded up front
//     (cmd/iokclassify), implemented as a thin shell over an in-memory
//     engine and the same similarity-weighted vote.
package classify

import (
	"fmt"

	"iokast/internal/engine"
	"iokast/internal/kernel"
	"iokast/internal/token"
)

// Classifier labels weighted strings by kernel similarity to a fixed
// labelled reference set. It is a batch shell over the same machinery the
// online path serves: references live in an in-memory incremental engine
// (cached per-string representations, no sketching — every query runs
// exact), queries run engine.SimilarTrace, and the winner is picked by the
// shared similarity-weighted vote.
type Classifier struct {
	kern   kernel.Kernel
	eng    *engine.Engine
	refs   []token.String
	labels []string
	k      int
}

// New builds a k-nearest-neighbour classifier over the reference set. The
// kernel is wrapped with cosine normalisation internally (similarities
// must be comparable across differently sized references). k defaults to
// 1; it is clamped to the reference count.
func New(kern kernel.Kernel, refs []token.String, labels []string, k int) (*Classifier, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("classify: empty reference set")
	}
	if len(refs) != len(labels) {
		return nil, fmt.Errorf("classify: %d references but %d labels", len(refs), len(labels))
	}
	if k < 1 {
		k = 1
	}
	if k > len(refs) {
		k = len(refs)
	}
	eng := engine.New(engine.Options{Kernel: kern, SketchDim: -1})
	if _, err := eng.AddBatch(refs); err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	return &Classifier{
		kern:   kern,
		eng:    eng,
		refs:   append([]token.String(nil), refs...),
		labels: append([]string(nil), labels...),
		k:      k,
	}, nil
}

// Match is one scored reference.
type Match struct {
	Index      int
	Label      string
	Similarity float64 // cosine-normalised kernel value
}

// matches scores x against every reference, most similar first (ties by
// ascending reference index — engine.SortNeighbors order).
func (c *Classifier) matches(x token.String) ([]Match, error) {
	if self := c.kern.Compare(x, x); self <= 0 {
		return nil, fmt.Errorf("classify: input has zero self-similarity under %s", c.kern.Name())
	}
	// Sketching is disabled on the reference engine, so this is always the
	// exact path: one kernel evaluation per reference.
	ns, err := c.eng.SimilarTrace(x, -1, len(c.refs))
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	out := make([]Match, len(ns))
	for i, nb := range ns {
		out[i] = Match{Index: nb.ID, Label: c.labels[nb.ID], Similarity: nb.Similarity}
	}
	return out, nil
}

// vote picks the winning label among the k best of matches by the shared
// similarity-weighted ballot.
func vote(matches []Match, k int) string {
	if k > len(matches) {
		k = len(matches)
	}
	labels := make([]string, k)
	sims := make([]float64, k)
	for i, m := range matches[:k] {
		labels[i] = m.Label
		sims[i] = m.Similarity
	}
	_, winner, _ := aggregate(labels, sims)
	return winner
}

// Classify returns the winning label among the k most similar references
// (votes weighted by normalised similarity, ties broken toward the more
// voted and then lexicographically smaller label) and the full scored
// reference list, most similar first.
func (c *Classifier) Classify(x token.String) (string, []Match, error) {
	matches, err := c.matches(x)
	if err != nil {
		return "", nil, err
	}
	return vote(matches, c.k), matches, nil
}

// Accuracy runs leave-one-out cross-validation over the reference set: how
// often a reference is classified correctly by the other references. The
// held-out reference is excluded by dropping its own id from the scored
// list, which is equivalent to rebuilding the classifier without it
// (similarities are pairwise).
func (c *Classifier) Accuracy() (float64, error) {
	if len(c.refs) < 2 {
		return 0, fmt.Errorf("classify: need at least 2 references for cross-validation")
	}
	k := c.k
	if k > len(c.refs)-1 {
		k = len(c.refs) - 1
	}
	correct := 0
	for i := range c.refs {
		matches, err := c.matches(c.refs[i])
		if err != nil {
			continue // degenerate reference; counts as incorrect
		}
		held := matches[:0:0]
		for _, m := range matches {
			if m.Index != i {
				held = append(held, m)
			}
		}
		if vote(held, k) == c.labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(c.refs)), nil
}
