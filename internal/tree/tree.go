// Package tree implements the pattern-tree intermediate representation from
// §3.1 of Torres et al. (PaCT 2017).
//
// A pattern tree has four levels:
//
//	ROOT                   groups all operations of one trace
//	└── HANDLE             one per file handle
//	    └── BLOCK          one per open..close span on that handle
//	        └── operation  leaf nodes; open/close themselves are elided
//	                       because the BLOCK already delimits them
//
// Consecutive operation leaves are compacted by the four merge rules in
// compress.go before the tree is flattened into a weighted string.
package tree

import (
	"fmt"
	"strings"
)

// Kind identifies the level of a node.
type Kind int

const (
	// Root is the imaginary node grouping a whole access pattern.
	Root Kind = iota
	// Handle groups all operations of one file handle.
	Handle
	// Block groups the operations between an open and its close.
	Block
	// OpNode is a leaf operation (possibly a compacted run).
	OpNode
)

// String returns the level name.
func (k Kind) String() string {
	switch k {
	case Root:
		return "ROOT"
	case Handle:
		return "HANDLE"
	case Block:
		return "BLOCK"
	case OpNode:
		return "OP"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is a pattern-tree node. Interior nodes (Root/Handle/Block) carry only
// children; leaves carry the operation name, byte count, and a repetition
// count maintained by the compression step.
type Node struct {
	Kind Kind
	// Name is the operation name for OpNode leaves. Compression rules 3 and
	// 4 produce combined names such as "lseek+write".
	Name string
	// Bytes is the byte count for OpNode leaves. Compression rule 2 sums the
	// byte counts of the merged operations.
	Bytes int64
	// Repeat is the repetition count (>= 1) for OpNode leaves; interior
	// nodes always have Repeat 1.
	Repeat int
	// Children are the ordered children of interior nodes.
	Children []*Node
}

// NewOp returns a leaf node with repetition count 1.
func NewOp(name string, bytes int64) *Node {
	return &Node{Kind: OpNode, Name: name, Bytes: bytes, Repeat: 1}
}

// NewInterior returns an interior node of the given kind.
func NewInterior(k Kind, children ...*Node) *Node {
	return &Node{Kind: k, Repeat: 1, Children: children}
}

// Clone returns a deep copy of the subtree.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Bytes: n.Bytes, Repeat: n.Repeat}
	if n.Children != nil {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// IsLeaf reports whether the node is an operation leaf.
func (n *Node) IsLeaf() bool { return n.Kind == OpNode }

// CountLeaves returns the number of operation leaves in the subtree.
func (n *Node) CountLeaves() int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.CountLeaves()
	}
	return total
}

// CountNodes returns the number of nodes in the subtree (including n).
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Depth returns the height of the subtree (a lone node has depth 1).
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// TotalOps returns the repetition-weighted number of primitive operations
// represented by the subtree's leaves. Merge rule 1 preserves this exactly;
// rules 2-4 fold k consecutive operations into one, so the value may shrink
// across a full compression pass.
func (n *Node) TotalOps() int {
	if n.IsLeaf() {
		return n.Repeat
	}
	total := 0
	for _, c := range n.Children {
		total += c.TotalOps()
	}
	return total
}

// TotalBytes returns the repetition-weighted byte volume of the subtree.
// Merge rules 1 and 2 preserve this quantity exactly; rules 3 and 4 fold two
// operations with byte counts b and b (rule 3) or b and 0 (rule 4) into one
// compound operation carrying a single count b, so the total can shrink —
// see the rule documentation in compress.go.
func (n *Node) TotalBytes() int64 {
	if n.IsLeaf() {
		return n.Bytes * int64(n.Repeat)
	}
	var total int64
	for _, c := range n.Children {
		total += c.TotalBytes()
	}
	return total
}

// Walk calls fn for every node in pre-order with its depth (root depth 0).
// Returning false from fn prunes the node's subtree.
func (n *Node) Walk(fn func(node *Node, depth int) bool) {
	n.walk(0, fn)
}

func (n *Node) walk(depth int, fn func(*Node, int) bool) {
	if !fn(n, depth) {
		return
	}
	for _, c := range n.Children {
		c.walk(depth+1, fn)
	}
}

// Equal reports structural equality of two subtrees.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Name != m.Name || n.Bytes != m.Bytes || n.Repeat != m.Repeat {
		return false
	}
	if len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Render returns a human-readable ASCII rendering of the tree, one node per
// line, indented two spaces per level. Used by cmd/iok2str -tree and in
// golden tests.
func (n *Node) Render() string {
	var b strings.Builder
	n.Walk(func(node *Node, depth int) bool {
		b.WriteString(strings.Repeat("  ", depth))
		switch node.Kind {
		case OpNode:
			fmt.Fprintf(&b, "%s[%d]", node.Name, node.Bytes)
			if node.Repeat != 1 {
				fmt.Fprintf(&b, " x%d", node.Repeat)
			}
		default:
			b.WriteString(node.Kind.String())
		}
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// Validate checks the four-level structural invariants: Root contains only
// Handles, Handles only Blocks, Blocks only OpNodes, leaves have Repeat >= 1
// and no children, and interior nodes have Repeat == 1.
func (n *Node) Validate() error {
	if n.Kind != Root {
		return fmt.Errorf("tree: top node is %v, want ROOT", n.Kind)
	}
	var check func(node *Node) error
	check = func(node *Node) error {
		if node.IsLeaf() {
			if len(node.Children) != 0 {
				return fmt.Errorf("tree: leaf %q has children", node.Name)
			}
			if node.Repeat < 1 {
				return fmt.Errorf("tree: leaf %q has repeat %d", node.Name, node.Repeat)
			}
			if node.Name == "" {
				return fmt.Errorf("tree: leaf with empty name")
			}
			if node.Bytes < 0 {
				return fmt.Errorf("tree: leaf %q has negative bytes %d", node.Name, node.Bytes)
			}
			return nil
		}
		if node.Repeat != 1 {
			return fmt.Errorf("tree: interior %v has repeat %d", node.Kind, node.Repeat)
		}
		var wantChild Kind
		switch node.Kind {
		case Root:
			wantChild = Handle
		case Handle:
			wantChild = Block
		case Block:
			wantChild = OpNode
		default:
			return fmt.Errorf("tree: unexpected interior kind %v", node.Kind)
		}
		for _, c := range node.Children {
			if c.Kind != wantChild {
				return fmt.Errorf("tree: %v has child %v, want %v", node.Kind, c.Kind, wantChild)
			}
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(n)
}
