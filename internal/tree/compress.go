package tree

// Compression implements the space-saving step of §3.1: "a set of
// consecutive operation nodes on the same block can be expressed as a single
// node when they present some simple patterns", following Kluge's redundancy
// elimination. Four transformations run in the given order, and the whole
// sequence is repeated to capture higher-level patterns (the paper repeats
// it "once again", i.e. two passes).
//
// The rules, for two consecutive leaves u, v inside one BLOCK:
//
//  1. Same name, same byte count  -> one node, Repeat = u.Repeat + v.Repeat.
//     ("a read operation inside a loop reading a file n bytes per
//     iteration")
//  2. Same name, different byte counts -> one node with the same name whose
//     byte value combines both ("initializing ... a 2-bytes integer and a
//     4-bytes integer"); we combine by summation, which preserves
//     bytes-per-compound-iteration.
//  3. Different names, same byte count -> one node with the combined name
//     ("interlaced read and write ... might indicate a tacit copy"); names
//     combine as "read+write".
//  4. Different names, different byte counts, one of them zero -> one node
//     with the combined name and the non-zero count ("an lseek operation
//     moves the pointer ... and a write operation records the information").
//
// Where the paper is silent we pin these semantics (documented in
// DESIGN.md):
//
//   - Rule 1 collapses whole runs in a single scan (the merged node keeps
//     absorbing following equal nodes), since a run of identical operations
//     is one loop regardless of length.
//   - Rules 2-4 merge non-overlapping adjacent pairs per scan — the merged
//     node is not immediately re-merged with its successor. Otherwise a
//     sequence read[2] read[4] read[2] read[4] would collapse into a single
//     read[12] and the loop structure (read[6] x2) would be lost. The
//     repetition emerges on the next pass via rule 1.
//   - Rules 2-4 require equal repetition counts on the two nodes and keep
//     that count: merging read[2]x3 with read[4]x3 yields read[6]x3 (three
//     compound iterations). Unequal counts do not merge.

// CompressOptions configure the compression step.
type CompressOptions struct {
	// Passes is the number of full rule-sequence passes. 0 disables
	// compression; negative runs to a fixpoint (capped). The paper's
	// behaviour is 2 (DefaultPasses).
	Passes int
}

// DefaultPasses is the paper's pass count: the rule sequence is applied and
// then "repeated once again".
const DefaultPasses = 2

// fixpointCap bounds fixpoint iteration for Passes < 0.
const fixpointCap = 32

// DefaultCompress returns the paper's compression configuration.
func DefaultCompress() CompressOptions { return CompressOptions{Passes: DefaultPasses} }

// Compress applies the merge rules to every BLOCK of the tree in place.
func Compress(root *Node, opt CompressOptions) {
	passes := opt.Passes
	fixpoint := false
	if passes < 0 {
		passes = fixpointCap
		fixpoint = true
	}
	root.Walk(func(n *Node, _ int) bool {
		if n.Kind != Block {
			return true
		}
		for p := 0; p < passes; p++ {
			changed := false
			n.Children, changed = compressPass(n.Children)
			if fixpoint && !changed {
				break
			}
		}
		return false // no OpNode children to descend into
	})
}

// compressPass runs rules 1-4 once, in order, over the leaf list. It
// reports whether any rule merged anything.
func compressPass(ops []*Node) ([]*Node, bool) {
	changed := false
	var c bool
	ops, c = mergeRuns(ops)
	changed = changed || c
	ops, c = mergePairs(ops, rule2)
	changed = changed || c
	ops, c = mergePairs(ops, rule3)
	changed = changed || c
	ops, c = mergePairs(ops, rule4)
	changed = changed || c
	return ops, changed
}

// mergeRuns implements rule 1: collapse runs of leaves with equal name and
// byte count, summing repetition counts.
func mergeRuns(ops []*Node) ([]*Node, bool) {
	if len(ops) < 2 {
		return ops, false
	}
	out := ops[:0:0] // fresh backing array; ops may alias caller state
	changed := false
	for _, op := range ops {
		if n := len(out); n > 0 {
			last := out[n-1]
			if last.Name == op.Name && last.Bytes == op.Bytes {
				last.Repeat += op.Repeat
				changed = true
				continue
			}
		}
		out = append(out, op)
	}
	return out, changed
}

// pairRule inspects two consecutive leaves and returns the merged node, or
// nil when the rule does not apply.
type pairRule func(u, v *Node) *Node

// rule2: same name, different bytes, equal repeats -> summed byte counts.
func rule2(u, v *Node) *Node {
	if u.Name != v.Name || u.Bytes == v.Bytes || u.Repeat != v.Repeat {
		return nil
	}
	return &Node{Kind: OpNode, Name: u.Name, Bytes: u.Bytes + v.Bytes, Repeat: u.Repeat}
}

// rule3: different names, same bytes, equal repeats -> combined name.
func rule3(u, v *Node) *Node {
	if u.Name == v.Name || u.Bytes != v.Bytes || u.Repeat != v.Repeat {
		return nil
	}
	return &Node{Kind: OpNode, Name: u.Name + "+" + v.Name, Bytes: u.Bytes, Repeat: u.Repeat}
}

// rule4: different names, different bytes, one count zero, equal repeats ->
// combined name, non-zero count.
func rule4(u, v *Node) *Node {
	if u.Name == v.Name || u.Bytes == v.Bytes || u.Repeat != v.Repeat {
		return nil
	}
	if u.Bytes != 0 && v.Bytes != 0 {
		return nil
	}
	bytes := u.Bytes
	if bytes == 0 {
		bytes = v.Bytes
	}
	return &Node{Kind: OpNode, Name: u.Name + "+" + v.Name, Bytes: bytes, Repeat: u.Repeat}
}

// mergePairs scans left to right merging non-overlapping adjacent pairs with
// the rule. The merged node is appended and the scan continues after the
// pair, so a merged node is never re-merged within the same scan.
func mergePairs(ops []*Node, rule pairRule) ([]*Node, bool) {
	if len(ops) < 2 {
		return ops, false
	}
	out := ops[:0:0]
	changed := false
	for i := 0; i < len(ops); {
		if i+1 < len(ops) {
			if m := rule(ops[i], ops[i+1]); m != nil {
				out = append(out, m)
				i += 2
				changed = true
				continue
			}
		}
		out = append(out, ops[i])
		i++
	}
	return out, changed
}
