package tree

import (
	"iokast/internal/trace"
)

// BuildOptions configure trace-to-tree conversion.
type BuildOptions struct {
	// Negligible is the set of operation names dropped before building.
	// nil means trace.DefaultNegligible; an empty (non-nil) map keeps
	// everything.
	Negligible map[string]bool
}

// Build converts a trace into an uncompressed pattern tree.
//
// Grouping follows §3.1 of the paper: all operations of one handle gather
// under a single HANDLE node (in order of the handle's first appearance);
// within a handle, a BLOCK node spans each open..close pair. The open and
// close operations themselves are elided — "the BLOCK node already plays the
// role of a delimiter". Operations appearing on a handle outside any
// open..close span (tolerated even though Validate on the trace rejects
// them) are placed in an implicit block so no information is lost.
func Build(t *trace.Trace, opt BuildOptions) *Node {
	filtered := t.Filter(opt.Negligible)

	root := NewInterior(Root)
	handleNode := map[int]*Node{}   // handle -> HANDLE node
	currentBlock := map[int]*Node{} // handle -> open BLOCK node, if any

	handleOf := func(h int) *Node {
		if n, ok := handleNode[h]; ok {
			return n
		}
		n := NewInterior(Handle)
		handleNode[h] = n
		root.Children = append(root.Children, n)
		return n
	}

	for _, op := range filtered.Ops {
		switch {
		case op.IsOpen():
			h := handleOf(op.Handle)
			blk := NewInterior(Block)
			h.Children = append(h.Children, blk)
			currentBlock[op.Handle] = blk
		case op.IsClose():
			delete(currentBlock, op.Handle)
		default:
			blk, ok := currentBlock[op.Handle]
			if !ok {
				// Implicit block for ops outside open..close.
				h := handleOf(op.Handle)
				blk = NewInterior(Block)
				h.Children = append(h.Children, blk)
				currentBlock[op.Handle] = blk
			}
			blk.Children = append(blk.Children, NewOp(op.Name, op.Bytes))
		}
	}
	return root
}

// BuildCompressed builds the tree and applies the compression step with the
// given options. This is the conversion used by the end-to-end pipeline.
func BuildCompressed(t *trace.Trace, bopt BuildOptions, copt CompressOptions) *Node {
	n := Build(t, bopt)
	Compress(n, copt)
	return n
}
