package tree

import (
	"strings"
	"testing"

	"iokast/internal/trace"
)

func mustParse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return tr
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Root: "ROOT", Handle: "HANDLE", Block: "BLOCK", OpNode: "OP"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind rendered %q", got)
	}
}

func TestBuildBasicShape(t *testing.T) {
	tr := mustParse(t, `
open fh=1
write fh=1 bytes=8
write fh=1 bytes=8
close fh=1
`)
	n := Build(tr, BuildOptions{})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(n.Children) != 1 {
		t.Fatalf("handles = %d, want 1", len(n.Children))
	}
	h := n.Children[0]
	if len(h.Children) != 1 {
		t.Fatalf("blocks = %d, want 1", len(h.Children))
	}
	blk := h.Children[0]
	if len(blk.Children) != 2 {
		t.Fatalf("ops = %d, want 2 (open/close elided)", len(blk.Children))
	}
	for _, c := range blk.Children {
		if c.Name != "write" || c.Bytes != 8 || c.Repeat != 1 {
			t.Fatalf("unexpected leaf %+v", c)
		}
	}
}

func TestBuildGroupsByHandleNotChronology(t *testing.T) {
	// Interleaved handles: ops of the same handle must gather under one
	// HANDLE node even though they are not contiguous in the trace.
	tr := mustParse(t, `
open fh=1
open fh=2
write fh=1 bytes=4
read fh=2 bytes=4
write fh=1 bytes=4
close fh=1
close fh=2
`)
	n := Build(tr, BuildOptions{})
	if len(n.Children) != 2 {
		t.Fatalf("handles = %d, want 2", len(n.Children))
	}
	h1 := n.Children[0].Children[0] // first handle's block
	if got := h1.CountLeaves(); got != 2 {
		t.Fatalf("handle 1 leaves = %d, want 2", got)
	}
	h2 := n.Children[1].Children[0]
	if got := h2.CountLeaves(); got != 1 {
		t.Fatalf("handle 2 leaves = %d, want 1", got)
	}
}

func TestBuildMultipleBlocksPerHandle(t *testing.T) {
	tr := mustParse(t, `
open fh=1
write fh=1 bytes=4
close fh=1
open fh=1
read fh=1 bytes=4
close fh=1
`)
	n := Build(tr, BuildOptions{})
	h := n.Children[0]
	if len(h.Children) != 2 {
		t.Fatalf("blocks = %d, want 2", len(h.Children))
	}
	if h.Children[0].Children[0].Name != "write" || h.Children[1].Children[0].Name != "read" {
		t.Fatal("block contents misplaced")
	}
}

func TestBuildImplicitBlock(t *testing.T) {
	tr := &trace.Trace{Ops: []trace.Op{
		{Name: "read", Handle: 7, Bytes: 16}, // no open
	}}
	n := Build(tr, BuildOptions{})
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n.CountLeaves() != 1 {
		t.Fatal("op outside open..close was lost")
	}
}

func TestBuildFiltersNegligible(t *testing.T) {
	tr := mustParse(t, `
open fh=1
fileno fh=1
mmap fh=1
write fh=1 bytes=4
close fh=1
`)
	n := Build(tr, BuildOptions{})
	if n.CountLeaves() != 1 {
		t.Fatalf("leaves = %d, want 1", n.CountLeaves())
	}
	// Empty non-nil map keeps everything.
	n2 := Build(tr, BuildOptions{Negligible: map[string]bool{}})
	if n2.CountLeaves() != 3 {
		t.Fatalf("unfiltered leaves = %d, want 3", n2.CountLeaves())
	}
}

func TestCloneAndEqual(t *testing.T) {
	tr := mustParse(t, `
open fh=1
write fh=1 bytes=8
read fh=1 bytes=4
close fh=1
`)
	n := Build(tr, BuildOptions{})
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Children[0].Children[0].Children[0].Bytes = 99
	if n.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	if !n.Equal(n) {
		t.Fatal("self equality")
	}
	if n.Equal(nil) {
		t.Fatal("Equal(nil) must be false for non-nil receiver value")
	}
}

func TestCountsAndDepth(t *testing.T) {
	tr := mustParse(t, `
open fh=1
write fh=1 bytes=8
read fh=1 bytes=4
close fh=1
`)
	n := Build(tr, BuildOptions{})
	if n.CountNodes() != 5 { // root + handle + block + 2 leaves
		t.Fatalf("CountNodes = %d, want 5", n.CountNodes())
	}
	if n.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", n.Depth())
	}
	if n.TotalOps() != 2 {
		t.Fatalf("TotalOps = %d, want 2", n.TotalOps())
	}
	if n.TotalBytes() != 12 {
		t.Fatalf("TotalBytes = %d, want 12", n.TotalBytes())
	}
}

func buildBlock(ops ...*Node) *Node {
	blk := NewInterior(Block, ops...)
	h := NewInterior(Handle, blk)
	return NewInterior(Root, h)
}

func blockOps(root *Node) []*Node {
	return root.Children[0].Children[0].Children
}

func TestRule1CollapsesWholeRun(t *testing.T) {
	root := buildBlock(
		NewOp("read", 8), NewOp("read", 8), NewOp("read", 8), NewOp("read", 8), NewOp("read", 8),
	)
	Compress(root, CompressOptions{Passes: 1})
	ops := blockOps(root)
	if len(ops) != 1 || ops[0].Repeat != 5 || ops[0].Bytes != 8 {
		t.Fatalf("rule 1 produced %s", root.Render())
	}
}

func TestRule2CombinesBytesPairwise(t *testing.T) {
	// read[2] read[4] read[2] read[4] -> pass1: read[6] read[6]
	// -> pass2 rule1: read[6] x2. This is the paper's struct-array example.
	root := buildBlock(
		NewOp("read", 2), NewOp("read", 4), NewOp("read", 2), NewOp("read", 4),
	)
	Compress(root, DefaultCompress())
	ops := blockOps(root)
	if len(ops) != 1 || ops[0].Name != "read" || ops[0].Bytes != 6 || ops[0].Repeat != 2 {
		t.Fatalf("rule 2+1 produced %s", root.Render())
	}
}

func TestRule3TacitCopy(t *testing.T) {
	// Interlaced read/write with the same byte count -> read+write nodes.
	root := buildBlock(
		NewOp("read", 64), NewOp("write", 64), NewOp("read", 64), NewOp("write", 64),
	)
	Compress(root, DefaultCompress())
	ops := blockOps(root)
	if len(ops) != 1 || ops[0].Name != "read+write" || ops[0].Bytes != 64 || ops[0].Repeat != 2 {
		t.Fatalf("rule 3+1 produced %s", root.Render())
	}
}

func TestRule4SeekThenWrite(t *testing.T) {
	root := buildBlock(
		NewOp("lseek", 0), NewOp("write", 512), NewOp("lseek", 0), NewOp("write", 512),
	)
	Compress(root, DefaultCompress())
	ops := blockOps(root)
	if len(ops) != 1 || ops[0].Name != "lseek+write" || ops[0].Bytes != 512 || ops[0].Repeat != 2 {
		t.Fatalf("rule 4+1 produced %s", root.Render())
	}
}

func TestRule4RequiresOneZero(t *testing.T) {
	root := buildBlock(NewOp("read", 8), NewOp("write", 16))
	Compress(root, DefaultCompress())
	if len(blockOps(root)) != 2 {
		t.Fatalf("rule 4 merged non-zero pair: %s", root.Render())
	}
}

func TestRulesRequireEqualRepeats(t *testing.T) {
	a := NewOp("read", 2)
	a.Repeat = 3
	b := NewOp("read", 4) // repeat 1
	root := buildBlock(a, b)
	Compress(root, CompressOptions{Passes: 1})
	if len(blockOps(root)) != 2 {
		t.Fatalf("rule 2 merged unequal repeats: %s", root.Render())
	}
}

func TestZeroPassesIsNoop(t *testing.T) {
	root := buildBlock(NewOp("read", 8), NewOp("read", 8))
	Compress(root, CompressOptions{Passes: 0})
	if len(blockOps(root)) != 2 {
		t.Fatal("Passes=0 compressed anyway")
	}
}

func TestFixpointConverges(t *testing.T) {
	// A long alternation needs several passes to fold completely:
	// (lseek write)^8 -> pass1: (lseek+write)^8 ... rule1 same pass? rule4
	// runs after rule1, so the run collapse happens on pass 2.
	var ops []*Node
	for i := 0; i < 8; i++ {
		ops = append(ops, NewOp("lseek", 0), NewOp("write", 256))
	}
	root := buildBlock(ops...)
	Compress(root, CompressOptions{Passes: -1})
	got := blockOps(root)
	if len(got) != 1 || got[0].Repeat != 8 || got[0].Name != "lseek+write" {
		t.Fatalf("fixpoint produced %s", root.Render())
	}
}

func TestCompressionPreservesTotalOpsUnderRule1(t *testing.T) {
	// A pure run compresses by rule 1 only, so TotalOps is invariant.
	root := buildBlock(NewOp("w", 4), NewOp("w", 4), NewOp("w", 4))
	before := root.TotalOps()
	Compress(root, DefaultCompress())
	if root.TotalOps() != before {
		t.Fatalf("TotalOps changed %d -> %d", before, root.TotalOps())
	}
}

func TestCompressionPreservesTotalBytesRules12(t *testing.T) {
	// Rules 1 and 2 preserve repetition-weighted byte volume.
	root := buildBlock(
		NewOp("read", 2), NewOp("read", 4),
		NewOp("read", 2), NewOp("read", 4),
	)
	before := root.TotalBytes()
	Compress(root, DefaultCompress())
	if root.TotalBytes() != before {
		t.Fatalf("TotalBytes changed %d -> %d", before, root.TotalBytes())
	}
}

func TestCompressLeavesOtherBlocksIndependent(t *testing.T) {
	blk1 := NewInterior(Block, NewOp("read", 8), NewOp("read", 8))
	blk2 := NewInterior(Block, NewOp("write", 8), NewOp("write", 8))
	root := NewInterior(Root, NewInterior(Handle, blk1, blk2))
	Compress(root, DefaultCompress())
	if len(blk1.Children) != 1 || len(blk2.Children) != 1 {
		t.Fatalf("cross-block state leaked: %s", root.Render())
	}
	if blk1.Children[0].Name != "read" || blk2.Children[0].Name != "write" {
		t.Fatal("blocks mixed up")
	}
}

func TestRenderGolden(t *testing.T) {
	tr := mustParse(t, `
open fh=1
write fh=1 bytes=8
write fh=1 bytes=8
close fh=1
`)
	n := Build(tr, BuildOptions{})
	Compress(n, DefaultCompress())
	want := "ROOT\n  HANDLE\n    BLOCK\n      write[8] x2\n"
	if got := n.Render(); got != want {
		t.Fatalf("Render:\n%q\nwant:\n%q", got, want)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	cases := []struct {
		name string
		n    *Node
	}{
		{"non-root top", NewInterior(Handle)},
		{"handle under block", NewInterior(Root, NewInterior(Block))},
		{"op under root", NewInterior(Root, NewOp("x", 0))},
		{"leaf with children", NewInterior(Root, NewInterior(Handle, NewInterior(Block, &Node{Kind: OpNode, Name: "x", Repeat: 1, Children: []*Node{NewOp("y", 0)}})))},
		{"zero repeat leaf", NewInterior(Root, NewInterior(Handle, NewInterior(Block, &Node{Kind: OpNode, Name: "x", Repeat: 0})))},
		{"empty name leaf", NewInterior(Root, NewInterior(Handle, NewInterior(Block, &Node{Kind: OpNode, Repeat: 1})))},
		{"negative bytes", NewInterior(Root, NewInterior(Handle, NewInterior(Block, &Node{Kind: OpNode, Name: "x", Repeat: 1, Bytes: -1})))},
	}
	for _, c := range cases {
		if err := c.n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid tree", c.name)
		}
	}
}

func TestBuildCompressedMatchesManual(t *testing.T) {
	tr := mustParse(t, `
open fh=1
read fh=1 bytes=8
read fh=1 bytes=8
close fh=1
`)
	a := BuildCompressed(tr, BuildOptions{}, DefaultCompress())
	b := Build(tr, BuildOptions{})
	Compress(b, DefaultCompress())
	if !a.Equal(b) {
		t.Fatal("BuildCompressed differs from Build+Compress")
	}
}

func TestWalkPruning(t *testing.T) {
	tr := mustParse(t, `
open fh=1
read fh=1 bytes=8
close fh=1
`)
	n := Build(tr, BuildOptions{})
	var kinds []Kind
	n.Walk(func(node *Node, depth int) bool {
		kinds = append(kinds, node.Kind)
		return node.Kind != Handle // prune below HANDLE
	})
	if len(kinds) != 2 || kinds[0] != Root || kinds[1] != Handle {
		t.Fatalf("walk visited %v", kinds)
	}
}
