package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"iokast/internal/stream"
)

// maxIngestLine bounds one NDJSON event line on POST /ingest.
const maxIngestLine = 1 << 20

// ingestIdleTimeout is the per-event read deadline on an /ingest body: the
// connection stays open as long as events keep arriving, and a client that
// goes silent this long is disconnected. This is what lets the server run
// without a global ReadTimeout (which would cap every stream's total
// lifetime) while still shedding stalled connections.
const ingestIdleTimeout = 60 * time.Second

// connSeq names anonymous per-connection sessions.
var connSeq atomic.Uint64

// ConfigureStream replaces the streaming-ingest session registry with one
// built from cfg; the classifier and trace conversion are always the
// server's own (so streamed and batch classifications are comparable) and
// need not be set. Call before the server starts accepting requests.
func (s *Server) ConfigureStream(cfg stream.Config) {
	cfg.Classifier = s.cls
	cfg.Convert = s.copt
	// The default registry built in finish owns a background sweeper; stop
	// it before letting the replacement take over.
	s.streams.Close()
	s.streams = stream.NewRegistry(cfg)
}

// ingestWriter is the NDJSON response side of /ingest. The status code is
// committed lazily: an error before the first result is a proper HTTP
// error; after results have streamed, errors become a terminal
// {"error": ...} line on the same stream.
type ingestWriter struct {
	w       http.ResponseWriter
	r       *http.Request
	rc      *http.ResponseController
	started bool
}

func (o *ingestWriter) start() {
	if o.started {
		return
	}
	o.started = true
	o.w.Header().Set("Content-Type", "application/x-ndjson")
	o.w.WriteHeader(http.StatusOK)
}

func (o *ingestWriter) result(res *stream.Result) {
	o.start()
	b, _ := json.Marshal(res)
	_, _ = o.w.Write(append(b, '\n'))
	_ = o.rc.Flush()
}

func (o *ingestWriter) fail(status int, format string, args ...any) {
	if !o.started {
		httpError(o.w, o.r, status, format, args...)
		return
	}
	b, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	_, _ = o.w.Write(append(b, '\n'))
	_ = o.rc.Flush()
}

// handleIngest is live trace ingestion: the request body is a stream of
// NDJSON events (structured ops, raw strace lines, end markers) assembled
// server-side into per-session traces, and the response streams back one
// NDJSON classification per completed window plus a final whole-trace
// verdict per ended session. Events with a "session" name feed durable
// named sessions that may span connections; events without one feed an
// anonymous session finalised when the request body ends. k and rerank
// follow the /classify conventions, so a session's final result is
// bit-identical to POSTing its assembled trace to /classify.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, "POST /ingest?k=&rerank= with NDJSON events")
		return
	}
	k, rerank, err := similarParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	reg := s.streams
	rc := http.NewResponseController(w)
	out := &ingestWriter{w: w, r: r, rc: rc}

	var anon *stream.Session
	anonName := fmt.Sprintf("conn-%d", connSeq.Add(1))
	// An aborted connection must not leak its anonymous session.
	defer func() {
		if anon != nil {
			reg.Remove(anon.Name())
		}
	}()

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxIngestLine)
	lineNo := 0
	for {
		// Heartbeat the read deadline per event instead of a whole-request
		// ReadTimeout: streams may live arbitrarily long, silence may not.
		_ = rc.SetReadDeadline(time.Now().Add(ingestIdleTimeout))
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				out.fail(http.StatusBadRequest, "read events: %v", err)
				return
			}
			break
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lineNo++
		ev, err := stream.ParseEvent(line)
		if err != nil {
			out.fail(http.StatusBadRequest, "event %d: %v", lineNo, err)
			return
		}

		var sess *stream.Session
		if ev.Session == "" {
			if anon == nil {
				if ev.End {
					continue // ending a session that never started: no-op
				}
				if anon, err = reg.Get(anonName); err != nil {
					out.fail(http.StatusServiceUnavailable, "%v", err)
					return
				}
			}
			sess = anon
		} else if sess, err = reg.Get(ev.Session); err != nil {
			out.fail(http.StatusServiceUnavailable, "%v", err)
			return
		}

		if ev.End {
			res, err := sess.Finish(k, rerank)
			reg.Remove(sess.Name())
			if sess == anon {
				anon = nil
			}
			if err != nil {
				out.fail(http.StatusBadRequest, "event %d: %v", lineNo, err)
				return
			}
			out.result(res)
			continue
		}
		res, err := sess.Feed(ev, k, rerank)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, stream.ErrSessionFull) {
				status = http.StatusRequestEntityTooLarge
				reg.Remove(sess.Name())
				if sess == anon {
					anon = nil
				}
			}
			out.fail(status, "event %d: %v", lineNo, err)
			return
		}
		if res != nil {
			out.result(res)
		}
	}

	// Body ended cleanly: finalise the connection's anonymous session. An
	// empty one (connected, sent nothing classifiable) just goes away.
	if anon != nil && anon.Ops() > 0 {
		res, err := anon.Finish(k, rerank)
		reg.Remove(anon.Name())
		anon = nil
		if err != nil {
			out.fail(http.StatusBadRequest, "finish: %v", err)
			return
		}
		out.result(res)
	}
	out.start() // an event-free request is still a valid, empty 200 stream
}
