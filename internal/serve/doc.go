// Package serve implements the iokserve HTTP surface as an importable
// handler. cmd/iokserve wires flags, durability, and signal handling
// around it; tests and the load harness (cmd/iokload) mount the same
// handler on in-process listeners, so load tests exercise exactly the
// code the binary ships.
//
// The handler is stateless: every endpoint is a thin translation layer
// over a corpus (engine.Engine via New, or shard.Sharded via NewSharded),
// an optional store for durability statistics, and an optional
// classify.Registry for labels and classification. Ingest endpoints (POST /traces, POST /traces/batch,
// DELETE /traces/{id}) return only after the mutation is durable when a
// data directory is configured. Query endpoints (GET/POST /similar,
// POST /classify) expose the exact and approximate similarity paths,
// including the rerank dial that trades kernel evaluations for recall —
// rerank >= corpus size is bit-identical to the exact answer at any
// shard count.
//
// See docs/ARCHITECTURE.md for the endpoint-to-package data flow and the
// README for the HTTP API reference.
package serve
