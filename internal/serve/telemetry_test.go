package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iokast/internal/obs"
	"iokast/internal/stream"
)

// TestHealthzMethodCheckedAndReadOnly pins the /healthz contract: GET and
// HEAD only, and probing never mutates state — an expired streaming
// session survives any number of probes when the background sweeper is
// off, where the old behaviour would have evicted it on the first one.
func TestHealthzMethodCheckedAndReadOnly(t *testing.T) {
	s := testServer()
	defer s.Close()
	seedLabeled(t, s)
	s.ConfigureStream(stream.Config{Window: 4, Stride: 2, IdleTTL: time.Nanosecond, SweepEvery: -1})

	if code, _ := doIngest(t, s, "/ingest", eventsFor(t, traceA, "probe-bait", false)); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	time.Sleep(time.Millisecond) // the session is now long past its TTL
	for i := 0; i < 3; i++ {
		resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
		if resp["stream_sessions"].(float64) != 1 {
			t.Fatalf("probe %d evicted the session: %v", i, resp["stream_sessions"])
		}
	}

	doJSON(t, s, http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed)
	doJSON(t, s, http.MethodDelete, "/healthz", "", http.StatusMethodNotAllowed)
	req := httptest.NewRequest(http.MethodHead, "/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("HEAD /healthz: %d", w.Code)
	}
}

// TestTelemetryMiddleware covers the instrumented handler chain: request
// ids (generated and echoed), per-endpoint counters and latency series,
// the gauges, and the /metrics route itself.
func TestTelemetryMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	s := testServer()
	defer s.Close()
	s.ConfigureTelemetry(Telemetry{Registry: reg})

	r := httptest.NewRequest(http.MethodPost, "/traces", strings.NewReader(traceA))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusCreated {
		t.Fatalf("POST /traces: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id on the response")
	}

	// A client-supplied id is kept, so ids correlate across proxies.
	r = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	r.Header.Set("X-Request-Id", "upstream-42")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if got := w.Header().Get("X-Request-Id"); got != "upstream-42" {
		t.Fatalf("request id not echoed: %q", got)
	}

	// Unroutable paths collapse into the bounded "other" label.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/nope/123", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("GET /nope/123: %d", w.Code)
	}

	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q", ct)
	}
	body := w.Body.String()
	for _, line := range []string{
		`iok_http_requests_total{endpoint="/traces",method="POST",status="201"} 1`,
		`iok_http_requests_total{endpoint="/healthz",method="GET",status="200"} 1`,
		`iok_http_requests_total{endpoint="other",method="GET",status="404"} 1`,
		`iok_http_request_seconds_count{endpoint="/traces"} 1`,
		`iok_http_inflight_requests 1`, // this very scrape is in flight
		`iok_corpus_traces 1`,
		`iok_stream_live_sessions 0`,
	} {
		if !strings.Contains(body, line) {
			t.Errorf("exposition missing %q:\n%s", line, body)
		}
	}
}

// TestTelemetryPanicAccounting pins the middleware's defer path: a
// handler panic (recovered per-connection by net/http) must still
// decrement the in-flight gauge, count the request as a 500, and
// propagate the panic unswallowed.
func TestTelemetryPanicAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := testServer()
	defer s.Close()
	s.ConfigureTelemetry(Telemetry{Registry: reg})

	h := s.instrument(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("middleware swallowed the handler panic")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/classify", nil))
	}()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"iok_http_inflight_requests 0",
		`iok_http_requests_total{endpoint="/classify",method="POST",status="500"} 1`,
		`iok_http_request_seconds_count{endpoint="/classify"} 1`,
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("exposition missing %q after a handler panic:\n%s", line, sb.String())
		}
	}
}

// TestEndpointLabel pins the normalisation table: client-chosen ids never
// mint new label values.
func TestEndpointLabel(t *testing.T) {
	for path, want := range map[string]string{
		"/traces":         "/traces",
		"/traces/batch":   "/traces/batch",
		"/traces/123":     "/traces/{id}",
		"/labels":         "/labels",
		"/labels/9":       "/labels/{id}",
		"/similar":        "/similar",
		"/classify":       "/classify",
		"/ingest":         "/ingest",
		"/gram":           "/gram",
		"/healthz":        "/healthz",
		"/metrics":        "/metrics",
		"/debug/store":    "/debug/store",
		"/debug/pprof/":   "other",
		"/":               "other",
		"/traces2/deep/x": "other",
	} {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// BenchmarkMetricsOverhead measures the telemetry middleware's cost on
// the /classify hot path: bare mux vs the fully instrumented chain. The
// CI bench gate holds the instrumented variant within a few percent of
// the bare one (acceptance: < 5% overhead).
func BenchmarkMetricsOverhead(b *testing.B) {
	for _, mode := range []string{"bare", "instrumented"} {
		b.Run(mode, func(b *testing.B) {
			s := testServer()
			defer s.Close()
			seedLabeled(b, s)
			if mode == "instrumented" {
				s.ConfigureTelemetry(Telemetry{Registry: obs.NewRegistry()})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := httptest.NewRequest(http.MethodPost, "/classify?k=2", strings.NewReader(traceB))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					b.Fatalf("classify status %d: %s", w.Code, w.Body)
				}
			}
		})
	}
}
