package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
)

const traceA = `% name=writerA label=A
open fh=1
write fh=1 bytes=1024
write fh=1 bytes=1024
write fh=1 bytes=1024
close fh=1
`

const traceB = `% name=seekerB label=D
open fh=1
lseek fh=1
read fh=1 bytes=512
lseek fh=1
read fh=1 bytes=512
close fh=1
`

func testServer() *Server {
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2})
	return New(eng, nil, nil, core.Options{})
}

func doJSON(t testing.TB, h http.Handler, method, target, body string, wantStatus int) map[string]any {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != wantStatus {
		t.Fatalf("%s %s: status %d (want %d), body %s", method, target, w.Code, wantStatus, w.Body)
	}
	out := map[string]any{}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, target, w.Body, err)
	}
	return out
}

func TestServeTraceLifecycle(t *testing.T) {
	s := testServer()

	// Ingest: same trace twice plus a different one.
	for i, body := range []string{traceA, traceA, traceB} {
		resp := doJSON(t, s, http.MethodPost, "/traces", body, http.StatusCreated)
		if int(resp["id"].(float64)) != i {
			t.Fatalf("POST #%d: id = %v", i, resp["id"])
		}
		if resp["tokens"].(float64) <= 0 {
			t.Fatalf("POST #%d: tokens = %v", i, resp["tokens"])
		}
	}

	// The duplicate of trace 0 must be its perfect neighbour.
	resp := doJSON(t, s, http.MethodGet, "/similar?id=0&k=1", "", http.StatusOK)
	ns := resp["neighbors"].([]any)
	if len(ns) != 1 {
		t.Fatalf("neighbors = %v", ns)
	}
	top := ns[0].(map[string]any)
	if int(top["id"].(float64)) != 1 || top["similarity"].(float64) < 0.999999 {
		t.Fatalf("top neighbour = %v, want id 1 at similarity 1", top)
	}

	// Gram: 3x3, symmetric, and the normalized variant reports PSD info.
	resp = doJSON(t, s, http.MethodGet, "/gram", "", http.StatusOK)
	if ids := resp["ids"].([]any); len(ids) != 3 {
		t.Fatalf("gram ids = %v", ids)
	}
	m := resp["matrix"].([]any)
	if len(m) != 3 || len(m[0].([]any)) != 3 {
		t.Fatalf("gram matrix shape wrong: %v", m)
	}
	resp = doJSON(t, s, http.MethodGet, "/gram?normalized=1", "", http.StatusOK)
	if _, ok := resp["clipped_eigenvalues"]; !ok {
		t.Fatalf("normalized gram missing clipped_eigenvalues: %v", resp)
	}
	diag := resp["matrix"].([]any)[0].([]any)[0].(float64)
	if diag <= 0 {
		t.Fatalf("normalized self-similarity = %v", diag)
	}

	// Remove one and confirm the corpus shrinks.
	doJSON(t, s, http.MethodDelete, "/traces/1", "", http.StatusOK)
	resp = doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != 2 {
		t.Fatalf("healthz traces = %v after delete", n)
	}
	doJSON(t, s, http.MethodDelete, "/traces/1", "", http.StatusNotFound)
}

func TestServeErrors(t *testing.T) {
	s := testServer()
	doJSON(t, s, http.MethodGet, "/traces", "", http.StatusMethodNotAllowed)
	doJSON(t, s, http.MethodPost, "/traces", "not a trace line", http.StatusBadRequest)
	doJSON(t, s, http.MethodPut, "/similar?id=0", "", http.StatusMethodNotAllowed)
	doJSON(t, s, http.MethodGet, "/similar", "", http.StatusBadRequest)
	doJSON(t, s, http.MethodGet, "/similar?id=7", "", http.StatusNotFound)
	doJSON(t, s, http.MethodGet, "/similar?id=0&k=-1", "", http.StatusBadRequest)
	doJSON(t, s, http.MethodGet, "/similar?id=7&approx=1", "", http.StatusNotFound)
	doJSON(t, s, http.MethodGet, "/similar?id=0&approx=1&rerank=zap", "", http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/similar", "not a trace line", http.StatusBadRequest)
	doJSON(t, s, http.MethodDelete, "/traces/zap", "", http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/gram", "", http.StatusMethodNotAllowed)
}

func TestServeSimilarApprox(t *testing.T) {
	s := testServer()
	for _, body := range []string{traceA, traceA, traceB} {
		doJSON(t, s, http.MethodPost, "/traces", body, http.StatusCreated)
	}

	// Approximate with full rerank must agree with the exact endpoint.
	exact := doJSON(t, s, http.MethodGet, "/similar?id=0&k=2", "", http.StatusOK)
	approx := doJSON(t, s, http.MethodGet, "/similar?id=0&k=2&approx=1&rerank=3", "", http.StatusOK)
	if approx["approx"] != true {
		t.Fatalf("approx response not flagged: %v", approx)
	}
	en, an := exact["neighbors"].([]any), approx["neighbors"].([]any)
	if len(en) != len(an) {
		t.Fatalf("exact %v vs approx %v", en, an)
	}
	for i := range en {
		e, a := en[i].(map[string]any), an[i].(map[string]any)
		if e["id"] != a["id"] || e["similarity"] != a["similarity"] {
			t.Fatalf("neighbor %d: exact %v vs approx %v", i, e, a)
		}
	}

	// Sketch-only ranking (rerank=0) still puts the duplicate first.
	resp := doJSON(t, s, http.MethodGet, "/similar?id=0&k=1&approx=1&rerank=0", "", http.StatusOK)
	top := resp["neighbors"].([]any)[0].(map[string]any)
	if int(top["id"].(float64)) != 1 {
		t.Fatalf("sketch-only top neighbour = %v, want id 1", top)
	}
}

func TestServeSimilarByTrace(t *testing.T) {
	s := testServer()
	for _, body := range []string{traceA, traceA, traceB} {
		doJSON(t, s, http.MethodPost, "/traces", body, http.StatusCreated)
	}

	// Query by trace: traceA's duplicate entries are the top matches at
	// similarity 1, and nothing is ingested.
	resp := doJSON(t, s, http.MethodPost, "/similar?k=2&rerank=3", traceA, http.StatusOK)
	ns := resp["neighbors"].([]any)
	if len(ns) != 2 {
		t.Fatalf("neighbors = %v", ns)
	}
	for i, want := range []int{0, 1} {
		n := ns[i].(map[string]any)
		if int(n["id"].(float64)) != want || n["similarity"].(float64) < 0.999999 {
			t.Fatalf("neighbor %d = %v, want id %d at similarity 1", i, n, want)
		}
	}
	health := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := health["traces"].(float64); n != 3 {
		t.Fatalf("query-by-trace ingested something: %v traces", n)
	}
}

func TestServeApproxDisabled(t *testing.T) {
	eng := engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2, SketchDim: -1})
	s := New(eng, nil, nil, core.Options{})
	doJSON(t, s, http.MethodPost, "/traces", traceA, http.StatusCreated)
	// A request that can never succeed against this configuration is the
	// client's mistake, not a server fault: 400, with a message that names
	// the fix instead of leaking an internal error.
	resp := doJSON(t, s, http.MethodGet, "/similar?id=0&approx=1", "", http.StatusBadRequest)
	if msg := resp["error"].(string); !strings.Contains(msg, "sketching is disabled") {
		t.Fatalf("unhelpful sketch-disabled error: %q", msg)
	}
	// Even for an id that does not exist the config error wins: the request
	// is malformed for this server regardless of corpus state.
	doJSON(t, s, http.MethodGet, "/similar?id=99&approx=1", "", http.StatusBadRequest)
	// Query-by-trace degrades to the exact scan instead of failing.
	resp = doJSON(t, s, http.MethodPost, "/similar?k=1", traceA, http.StatusOK)
	top := resp["neighbors"].([]any)[0].(map[string]any)
	if int(top["id"].(float64)) != 0 || top["similarity"].(float64) < 0.999999 {
		t.Fatalf("exact fallback top neighbour = %v", top)
	}
}

func TestServeConcurrentClients(t *testing.T) {
	s := testServer()
	const clients = 8
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			body := traceA
			if c%2 == 1 {
				body = traceB
			}
			for i := 0; i < 5; i++ {
				r := httptest.NewRequest(http.MethodPost, "/traces", strings.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, r)
				if w.Code != http.StatusCreated {
					errc <- fmt.Errorf("client %d: status %d: %s", c, w.Code, w.Body)
					return
				}
				r = httptest.NewRequest(http.MethodGet, "/gram", nil)
				w = httptest.NewRecorder()
				s.ServeHTTP(w, r)
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("client %d: gram status %d", c, w.Code)
					return
				}
			}
			errc <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != clients*5 {
		t.Fatalf("traces = %v, want %d", n, clients*5)
	}
}
