package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/shard"
	"iokast/internal/stream"
	"iokast/internal/trace"
)

// eventsFor converts canonical trace text into the NDJSON op-event body
// /ingest accepts, optionally tagged with a session name and end marker.
func eventsFor(t *testing.T, text, session string, end bool) string {
	t.Helper()
	tr, err := trace.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, op := range tr.Ops {
		ev := stream.Event{Session: session, Op: op.Name, Handle: op.Handle, Bytes: op.Bytes, Addr: op.Addr, Path: op.Path}
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if end {
		fmt.Fprintf(&b, `{"session":%q,"end":true}`+"\n", session)
	}
	return b.String()
}

// doIngest posts an NDJSON body to /ingest and decodes the NDJSON
// response lines.
func doIngest(t *testing.T, h http.Handler, target, body string) (int, []map[string]any) {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	// One decoder handles both shapes: compact NDJSON result lines and the
	// indented JSON object of an HTTP error.
	dec := json.NewDecoder(w.Body)
	var lines []map[string]any
	for dec.More() {
		m := map[string]any{}
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("POST %s: bad response JSON: %v", target, err)
		}
		lines = append(lines, m)
	}
	return w.Code, lines
}

// TestServeIngestStreamsWindows drives a named session through /ingest:
// window classifications stream back as the events arrive, and the end
// marker yields the final whole-trace verdict.
func TestServeIngestStreamsWindows(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)
	s.ConfigureStream(stream.Config{Window: 4, Stride: 2})

	body := eventsFor(t, traceA, "job-42", false) +
		eventsFor(t, traceA, "job-42", true)
	code, lines := doIngest(t, s, "/ingest?k=3&rerank=3", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, lines)
	}
	if len(lines) < 3 {
		t.Fatalf("expected interim windows plus a final result, got %v", lines)
	}
	final := lines[len(lines)-1]
	if final["final"] != true || final["session"] != "job-42" {
		t.Fatalf("last line is not the final verdict: %v", final)
	}
	if final["label"] != "writer" {
		t.Fatalf("final label = %v", final["label"])
	}
	if int(final["ops"].(float64)) != 10 {
		t.Fatalf("final ops = %v", final["ops"])
	}
	for _, ln := range lines[:len(lines)-1] {
		if ln["final"] == true {
			t.Fatalf("interim line marked final: %v", ln)
		}
		if ln["label"] != "writer" {
			t.Fatalf("interim window label = %v", ln["label"])
		}
	}
	// The ended session released its registry slot.
	if resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK); resp["stream_sessions"].(float64) != 0 {
		t.Fatalf("healthz sessions = %v", resp["stream_sessions"])
	}
}

// TestServeIngestMatchesBatchClassify is the acceptance gate: streaming a
// trace event-by-event and letting EOF finalise the anonymous session
// yields the same label — and at full rerank bit-identical confidence —
// as POSTing the assembled trace to /classify, at shard counts 1 and 4.
func TestServeIngestMatchesBatchClassify(t *testing.T) {
	servers := map[string]*Server{"shards-1": testServer()}
	sh, err := shard.New(shard.Options{Shards: 4, Seed: 7, Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	servers["shards-4"] = NewSharded(sh, nil, core.Options{})

	for name, s := range servers {
		t.Run(name, func(t *testing.T) {
			seedLabeled(t, s)
			s.ConfigureStream(stream.Config{Window: 4, Stride: 2})
			for _, q := range []string{traceA, traceC} {
				code, lines := doIngest(t, s, "/ingest?k=3&rerank=64", eventsFor(t, q, "", false))
				if code != http.StatusOK || len(lines) == 0 {
					t.Fatalf("ingest status %d, lines %v", code, lines)
				}
				final := lines[len(lines)-1]
				if final["final"] != true {
					t.Fatalf("no final verdict: %v", lines)
				}
				batch := doJSON(t, s, http.MethodPost, "/classify?k=3&rerank=64", q, http.StatusOK)
				if final["label"] != batch["label"] {
					t.Fatalf("streamed label %v, batch label %v", final["label"], batch["label"])
				}
				sc, bc := final["confidence"].(float64), batch["confidence"].(float64)
				if math.Float64bits(sc) != math.Float64bits(bc) {
					t.Fatalf("confidence not bit-identical: streamed %v, batch %v", sc, bc)
				}
			}
		})
	}
}

// TestServeIngestRawLines streams strace capture lines — decorations,
// durations, and a split unfinished/resumed pair — through /ingest.
func TestServeIngestRawLines(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)
	s.ConfigureStream(stream.Config{Window: 4, Stride: 2})
	lines := []string{
		`{"line":"open(\"a.dat\", O_WRONLY) = 3"}`,
		`{"line":"12:34:56.789012 write(3, \"x\", 1024) = 1024"}`,
		`{"line":"write(3, \"x\", 1024) = 1024 <0.000042>"}`,
		`{"line":"write(3,  <unfinished ...>"}`,
		`{"line":"<... write resumed> \"x\", 1024) = 1024"}`,
		`{"line":"close(3) = 0"}`,
	}
	code, out := doIngest(t, s, "/ingest?k=3", strings.Join(lines, "\n")+"\n")
	if code != http.StatusOK || len(out) == 0 {
		t.Fatalf("status %d, lines %v", code, out)
	}
	final := out[len(out)-1]
	if final["final"] != true || final["label"] != "writer" {
		t.Fatalf("final = %v", final)
	}
	if int(final["ops"].(float64)) != 5 {
		t.Fatalf("assembled ops = %v (unfinished/resumed not paired?)", final["ops"])
	}
}

func TestServeIngestErrors(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)

	// Wrong method and bad params are plain HTTP errors.
	doJSON(t, s, http.MethodGet, "/ingest", "", http.StatusMethodNotAllowed)
	code, lines := doIngest(t, s, "/ingest?k=zap", `{"op":"read","handle":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad k: status %d %v", code, lines)
	}

	// A malformed event before any output is a clean 400 with a JSON error.
	for _, bad := range []string{
		`not json`,
		`{}`,
		`{"op":"read","handle":1,"line":"x"}`,
		`{"op":"read","handle":-1}`,
	} {
		code, lines := doIngest(t, s, "/ingest", bad)
		if code != http.StatusBadRequest || len(lines) != 1 || lines[0]["error"] == nil {
			t.Fatalf("event %q: status %d, lines %v", bad, code, lines)
		}
	}

	// Session limit: one slot, two named sessions in one request -> 503.
	s.ConfigureStream(stream.Config{MaxSessions: 1})
	code, lines = doIngest(t, s, "/ingest",
		`{"session":"a","op":"read","handle":1}`+"\n"+`{"session":"b","op":"read","handle":1}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("session limit: status %d %v", code, lines)
	}

	// Per-session op cap: exceeding MaxOps is 413 and drops the session.
	s.ConfigureStream(stream.Config{Window: 4, Stride: 1 << 30, MaxOps: 2})
	var b strings.Builder
	for i := 0; i < 3; i++ {
		b.WriteString(`{"session":"big","op":"read","handle":1}` + "\n")
	}
	code, lines = doIngest(t, s, "/ingest", b.String())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("op cap: status %d %v", code, lines)
	}
	if resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK); resp["stream_sessions"].(float64) != 0 {
		t.Fatalf("overfull session not dropped: %v", resp["stream_sessions"])
	}
}

// TestServeIngestSessionLifecycle covers named sessions spanning requests,
// the healthz session gauge, and idle eviction through the stream
// registry's background sweeper (healthz itself is read-only).
func TestServeIngestSessionLifecycle(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)
	s.ConfigureStream(stream.Config{Window: 4, Stride: 2})

	// A named session left open stays registered after the request ends...
	code, _ := doIngest(t, s, "/ingest", eventsFor(t, traceA, "span", false))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK); resp["stream_sessions"].(float64) != 1 {
		t.Fatalf("open session not visible in healthz: %v", resp["stream_sessions"])
	}
	// ...accumulates across a second connection, and ends on demand.
	code, lines := doIngest(t, s, "/ingest", eventsFor(t, traceA, "span", true))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	final := lines[len(lines)-1]
	if final["final"] != true || int(final["ops"].(float64)) != 10 {
		t.Fatalf("cross-request session final = %v", final)
	}

	// Idle eviction: with a tiny TTL the registry's background sweeper
	// collects an abandoned session on its own — no probe traffic involved.
	s.ConfigureStream(stream.Config{Window: 4, Stride: 2, IdleTTL: time.Nanosecond, SweepEvery: time.Millisecond})
	if code, _ := doIngest(t, s, "/ingest", eventsFor(t, traceA, "ghost", false)); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
		if resp["stream_sessions"].(float64) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session survived the sweep: %v", resp["stream_sessions"])
		}
		time.Sleep(time.Millisecond)
	}
}
