package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/store"
)

// durableServer opens a server over dir with automatic snapshots disabled,
// so tests control exactly what is in the WAL vs the snapshot.
func durableServer(t *testing.T, dir string) (*Server, *store.Store) {
	t.Helper()
	eopt := engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2}
	eng, st, err := store.Open(dir, func() *engine.Engine { return engine.New(eopt) },
		store.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, st, nil, core.Options{}), st
}

func batchBody(traces ...string) string {
	b, _ := json.Marshal(map[string]any{"traces": traces})
	return string(b)
}

// TestServeBatchEndpoint exercises POST /traces/batch: ids are assigned in
// order, the response carries per-trace metadata, and a bad trace rejects
// the whole batch without ingesting anything.
func TestServeBatchEndpoint(t *testing.T) {
	s := testServer()
	resp := doJSON(t, s, http.MethodPost, "/traces/batch", batchBody(traceA, traceB, traceA), http.StatusCreated)
	if resp["count"].(float64) != 3 {
		t.Fatalf("count = %v", resp["count"])
	}
	metas := resp["traces"].([]any)
	for i, m := range metas {
		meta := m.(map[string]any)
		if int(meta["id"].(float64)) != i {
			t.Fatalf("batch meta %d: id %v", i, meta["id"])
		}
		if meta["tokens"].(float64) <= 0 {
			t.Fatalf("batch meta %d: tokens %v", i, meta["tokens"])
		}
	}
	if name := metas[1].(map[string]any)["name"]; name != "seekerB" {
		t.Fatalf("batch meta name = %v", name)
	}

	// All-or-nothing: one bad trace fails the batch, corpus unchanged.
	doJSON(t, s, http.MethodPost, "/traces/batch", batchBody(traceA, "not a trace"), http.StatusBadRequest)
	resp = doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != 3 {
		t.Fatalf("traces = %v after rejected batch, want 3", n)
	}

	doJSON(t, s, http.MethodPost, "/traces/batch", `{"traces": []}`, http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/traces/batch", `{`, http.StatusBadRequest)
	doJSON(t, s, http.MethodGet, "/traces/batch", "", http.StatusMethodNotAllowed)
}

// TestServeCrashRecovery is the end-to-end durability test: ingest over
// HTTP (singles, a batch, a delete), kill the server without any snapshot
// of the ingested data (WAL only), restart over the same directory, and
// require the exact same /gram and /similar responses.
func TestServeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, _ := durableServer(t, dir)

	doJSON(t, s1, http.MethodPost, "/traces", traceA, http.StatusCreated)
	doJSON(t, s1, http.MethodPost, "/traces/batch", batchBody(traceB, traceA, traceB), http.StatusCreated)
	doJSON(t, s1, http.MethodPost, "/traces", traceB, http.StatusCreated)
	doJSON(t, s1, http.MethodDelete, "/traces/2", "", http.StatusOK)

	gramBefore := doJSON(t, s1, http.MethodGet, "/gram", "", http.StatusOK)
	normBefore := doJSON(t, s1, http.MethodGet, "/gram?normalized=1", "", http.StatusOK)
	simBefore := doJSON(t, s1, http.MethodGet, "/similar?id=0&k=3", "", http.StatusOK)
	// Kill: the store is abandoned without Close — no snapshot holds the
	// ingested traces, recovery is WAL replay alone.

	s2, st2 := durableServer(t, dir)
	defer st2.Close()
	gramAfter := doJSON(t, s2, http.MethodGet, "/gram", "", http.StatusOK)
	normAfter := doJSON(t, s2, http.MethodGet, "/gram?normalized=1", "", http.StatusOK)
	simAfter := doJSON(t, s2, http.MethodGet, "/similar?id=0&k=3", "", http.StatusOK)

	if !reflect.DeepEqual(gramBefore, gramAfter) {
		t.Fatalf("raw gram changed across restart:\nbefore %v\nafter  %v", gramBefore, gramAfter)
	}
	if !reflect.DeepEqual(normBefore, normAfter) {
		t.Fatalf("normalized gram changed across restart:\nbefore %v\nafter  %v", normBefore, normAfter)
	}
	if !reflect.DeepEqual(simBefore, simAfter) {
		t.Fatalf("similar changed across restart:\nbefore %v\nafter  %v", simBefore, simAfter)
	}
	// The delete must have survived too.
	doJSON(t, s2, http.MethodDelete, "/traces/2", "", http.StatusNotFound)
	resp := doJSON(t, s2, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != 4 {
		t.Fatalf("recovered traces = %v, want 4", n)
	}
}

// TestServeDebugStore covers GET /debug/store with and without a store.
func TestServeDebugStore(t *testing.T) {
	noStore := testServer()
	doJSON(t, noStore, http.MethodGet, "/debug/store", "", http.StatusNotFound)

	dir := t.TempDir()
	s, st := durableServer(t, dir)
	defer st.Close()
	doJSON(t, s, http.MethodPost, "/traces", traceA, http.StatusCreated)
	resp := doJSON(t, s, http.MethodGet, "/debug/store", "", http.StatusOK)
	if resp["dir"] != dir {
		t.Fatalf("stats dir = %v", resp["dir"])
	}
	if resp["seq"].(float64) != 1 || resp["appended_records"].(float64) != 1 {
		t.Fatalf("stats = %v", resp)
	}
	doJSON(t, s, http.MethodPost, "/debug/store", "", http.StatusMethodNotAllowed)
}

// TestServeBatchTooLarge: an oversized trace count is rejected up front.
func TestServeBatchTooLarge(t *testing.T) {
	s := testServer()
	traces := make([]string, maxBatchTraces+1)
	for i := range traces {
		traces[i] = "open fh=1\nclose fh=1"
	}
	body, _ := json.Marshal(map[string]any{"traces": traces})
	r := httptest.NewRequest(http.MethodPost, "/traces/batch", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
}
