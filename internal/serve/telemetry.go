package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iokast/internal/obs"
)

// Telemetry configures the server's observability surface: a metrics
// registry exposed at GET /metrics, a structured request logger, and the
// latency threshold above which a request is logged as slow. The zero
// value of each field picks a quiet default (fresh registry, discard
// logger, no slow-request log).
type Telemetry struct {
	// Registry receives the HTTP request metrics and the server-level
	// gauges (corpus size, interner size, live stream sessions), and is
	// what GET /metrics renders. Pass the same registry the engine, store,
	// shard, and stream layers were built with so one scrape covers the
	// whole stack.
	Registry *obs.Registry
	// Logger is the structured request logger; every line carries the
	// request id. nil discards logs.
	Logger *slog.Logger
	// SlowRequest logs any request slower than this at Warn level;
	// 0 disables slow-request logging.
	SlowRequest time.Duration
}

// Metric families owned by the HTTP layer.
const (
	httpRequestsName = "iok_http_requests_total"
	httpRequestsHelp = "HTTP requests served, by endpoint, method, and status."
	httpLatencyName  = "iok_http_request_seconds"
	httpLatencyHelp  = "HTTP request latency, by endpoint."
	httpInflightName = "iok_http_inflight_requests"
	httpInflightHelp = "HTTP requests currently being served."
)

// telemetry is the wired form of Telemetry inside the server. The
// instrument caches keep the per-request cost to two sync.Map hits on the
// steady state instead of a registry lookup (label map allocation, label
// rendering, registry lock) per request; both key spaces are bounded by
// the endpoint-label table times the handful of methods and statuses the
// handlers emit.
type telemetry struct {
	cfg      Telemetry
	inflight *obs.Gauge
	counters sync.Map // "endpoint\x00method\x00status" -> *obs.Counter
	hists    sync.Map // endpoint -> *obs.Histogram
}

func (t *telemetry) requestCounter(ep, method string, status int) *obs.Counter {
	key := ep + "\x00" + method + "\x00" + strconv.Itoa(status)
	if c, ok := t.counters.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := t.cfg.Registry.Counter(httpRequestsName, httpRequestsHelp, obs.Labels{
		"endpoint": ep, "method": method, "status": strconv.Itoa(status),
	})
	t.counters.Store(key, c)
	return c
}

func (t *telemetry) latencyHist(ep string) *obs.Histogram {
	if h, ok := t.hists.Load(ep); ok {
		return h.(*obs.Histogram)
	}
	h := t.cfg.Registry.Histogram(httpLatencyName, httpLatencyHelp, obs.Labels{"endpoint": ep})
	t.hists.Store(ep, h)
	return h
}

// ctxKey keys the per-request logger in the request context.
type ctxKey int

const loggerKey ctxKey = iota

// Request ids are process-unique: a short random prefix (so ids from a
// restarted server don't collide in aggregated logs) plus a counter.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [4]byte
		_, _ = rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
)

// ConfigureTelemetry wires metrics exposition, request logging, and the
// instrumentation middleware onto the server. Call before the server
// starts accepting requests (it re-routes the handler chain). The
// /metrics endpoint serves t.Registry in the Prometheus text format.
func (s *Server) ConfigureTelemetry(t Telemetry) {
	if t.Registry == nil {
		t.Registry = obs.NewRegistry()
	}
	s.tel = &telemetry{cfg: t}
	reg := t.Registry
	s.tel.inflight = reg.Gauge(httpInflightName, httpInflightHelp, nil)

	// Server-level state sampled at scrape time. The closures read through
	// s so ConfigureStream may still swap the session registry afterwards.
	reg.GaugeFunc("iok_corpus_traces", "Live traces in the corpus.", nil,
		func() float64 { return float64(s.c.Len()) })
	reg.GaugeFunc("iok_interner_size", "Distinct literals interned across the corpus.", nil,
		func() float64 {
			if s.sh != nil {
				return float64(s.sh.InternerSize())
			}
			return float64(s.eng.InternerSize())
		})
	reg.GaugeFunc("iok_stream_live_sessions", "Streaming-ingest sessions currently assembling.", nil,
		func() float64 { return float64(s.streams.Len()) })

	s.mux.Handle("/metrics", reg.Handler())
	s.handler = s.instrument(s.mux)
}

// endpointLabel normalises a request path to a bounded label set so the
// per-endpoint series cardinality cannot grow with client-chosen ids.
func endpointLabel(path string) string {
	switch path {
	case "/traces", "/traces/batch", "/similar", "/labels", "/classify",
		"/ingest", "/gram", "/healthz", "/metrics", "/debug/store":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/traces/"):
		return "/traces/{id}"
	case strings.HasPrefix(path, "/labels/"):
		return "/labels/{id}"
	}
	return "other"
}

// statusRecorder captures the response status and size for metrics and
// logging. Unwrap exposes the underlying writer so http.ResponseController
// (used by the /ingest flusher and read-deadline heartbeat) still reaches
// the real connection through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument wraps the router with the request-metrics and logging
// middleware: request-id injection, per-endpoint counters and latency
// histograms, an in-flight gauge, and per-request / slow-request logs.
func (s *Server) instrument(next http.Handler) http.Handler {
	t := s.tel
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointLabel(r.URL.Path)
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = reqPrefix + "-" + strconv.FormatUint(reqSeq.Add(1), 10)
		}
		w.Header().Set("X-Request-Id", rid)
		var lg *slog.Logger
		if t.cfg.Logger != nil {
			lg = t.cfg.Logger.With("request_id", rid)
			r = r.WithContext(context.WithValue(r.Context(), loggerKey, lg))
		}

		sr := &statusRecorder{ResponseWriter: w}
		t.inflight.Inc()
		start := time.Now()
		// Deferred so a panicking handler (recovered per-connection by
		// net/http) still decrements the in-flight gauge and gets counted
		// and logged instead of vanishing from the telemetry.
		panicked := true
		defer func() {
			elapsed := time.Since(start)
			t.inflight.Dec()

			if sr.status == 0 {
				if panicked {
					sr.status = http.StatusInternalServerError
				} else {
					sr.status = http.StatusOK
				}
			}
			t.requestCounter(ep, r.Method, sr.status).Inc()
			t.latencyHist(ep).Observe(elapsed)

			if lg != nil {
				if panicked {
					lg.Error("request panicked",
						"method", r.Method, "endpoint", ep, "path", r.URL.Path,
						"bytes", sr.bytes, "duration", elapsed)
				} else {
					lg.Debug("request",
						"method", r.Method, "endpoint", ep, "path", r.URL.Path,
						"status", sr.status, "bytes", sr.bytes, "duration", elapsed)
				}
				if t.cfg.SlowRequest > 0 && elapsed >= t.cfg.SlowRequest {
					lg.Warn("slow request",
						"method", r.Method, "endpoint", ep, "path", r.URL.Path,
						"status", sr.status, "duration", elapsed, "threshold", t.cfg.SlowRequest)
				}
			}
		}()
		next.ServeHTTP(sr, r)
		panicked = false
	})
}

// requestLogger returns the request's structured logger (carrying its
// request id), or nil when telemetry is not configured.
func requestLogger(r *http.Request) *slog.Logger {
	if r == nil {
		return nil
	}
	lg, _ := r.Context().Value(loggerKey).(*slog.Logger)
	return lg
}
