package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/shard"
	"iokast/internal/store"
)

func kastEngineOptions() engine.Options {
	return engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2}
}

func shardedOptions(shards int) shard.Options {
	return shard.Options{
		Shards: shards,
		Seed:   7,
		Engine: kastEngineOptions(),
		Store:  store.Options{SnapshotEvery: -1},
	}
}

func testShardedServer(t *testing.T, shards int) *Server {
	t.Helper()
	sh, err := shard.New(shardedOptions(shards))
	if err != nil {
		t.Fatal(err)
	}
	return NewSharded(sh, nil, core.Options{})
}

// TestShardedServeLifecycle drives the full HTTP surface against a
// 3-shard corpus: ingest (single and batch), exact and approximate
// similarity, query-by-trace, delete, health — everything except /gram,
// which has no cross-shard matrix to serve and must say so.
func TestShardedServeLifecycle(t *testing.T) {
	s := testShardedServer(t, 3)

	for i, body := range []string{traceA, traceA, traceB} {
		resp := doJSON(t, s, http.MethodPost, "/traces", body, http.StatusCreated)
		if int(resp["id"].(float64)) != i {
			t.Fatalf("POST #%d: id = %v", i, resp["id"])
		}
	}
	resp := doJSON(t, s, http.MethodPost, "/traces/batch",
		fmt.Sprintf(`{"traces": [%q, %q]}`, traceB, traceA), http.StatusCreated)
	if n := resp["count"].(float64); n != 2 {
		t.Fatalf("batch count = %v", n)
	}

	// The duplicate of trace 0 must be its perfect neighbour, across shards.
	resp = doJSON(t, s, http.MethodGet, "/similar?id=0&k=1", "", http.StatusOK)
	ns := resp["neighbors"].([]any)
	if len(ns) != 1 {
		t.Fatalf("neighbors = %v", ns)
	}
	top := ns[0].(map[string]any)
	if int(top["id"].(float64)) != 1 || top["similarity"].(float64) < 0.999999 {
		t.Fatalf("top neighbour = %v, want id 1 at similarity 1", top)
	}
	// Approximate path and query-by-trace work shard-fanned too.
	doJSON(t, s, http.MethodGet, "/similar?id=0&k=2&approx=1", "", http.StatusOK)
	resp = doJSON(t, s, http.MethodPost, "/similar?k=3", traceA, http.StatusOK)
	if got := resp["neighbors"].([]any); len(got) != 3 {
		t.Fatalf("query-by-trace neighbors = %v", got)
	}

	// /gram is explicit about why it cannot answer.
	resp = doJSON(t, s, http.MethodGet, "/gram", "", http.StatusNotImplemented)
	if !strings.Contains(resp["error"].(string), "sharded") {
		t.Fatalf("gram error = %v", resp["error"])
	}

	doJSON(t, s, http.MethodDelete, "/traces/1", "", http.StatusOK)
	doJSON(t, s, http.MethodDelete, "/traces/1", "", http.StatusNotFound)
	resp = doJSON(t, s, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != 4 {
		t.Fatalf("healthz traces = %v after delete", n)
	}
	if n := resp["shards"].(float64); n != 3 {
		t.Fatalf("healthz shards = %v", n)
	}
	// In-memory sharded corpus has no stores to report.
	doJSON(t, s, http.MethodGet, "/debug/store", "", http.StatusNotFound)
}

// TestShardedServeConcurrent hammers the sharded HTTP surface from many
// goroutines (batch ingest, deletes, exact and query-by-trace reads) under
// the race detector.
func TestShardedServeConcurrent(t *testing.T) {
	s := testShardedServer(t, 4)
	// Seed entries so reads always have targets.
	doJSON(t, s, http.MethodPost, "/traces/batch",
		fmt.Sprintf(`{"traces": [%q, %q, %q]}`, traceA, traceB, traceA), http.StatusCreated)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				// Batch-ingest two, delete one of them.
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/traces/batch",
					strings.NewReader(fmt.Sprintf(`{"traces": [%q, %q]}`, traceA, traceB))))
				if rec.Code != http.StatusCreated {
					t.Errorf("batch: %d %s", rec.Code, rec.Body)
					return
				}
				var resp struct {
					Traces []struct{ ID int } `json:"traces"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					t.Error(err)
					return
				}
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete,
					fmt.Sprintf("/traces/%d", resp.Traces[0].ID), nil))
				if rec.Code != http.StatusOK {
					t.Errorf("delete: %d %s", rec.Code, rec.Body)
					return
				}
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/similar?id=0&k=3", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("similar: %d %s", rec.Code, rec.Body)
					return
				}
				rec = httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/similar?k=2", strings.NewReader(traceB)))
				if rec.Code != http.StatusOK {
					t.Errorf("query-by-trace: %d %s", rec.Code, rec.Body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedServeRecovery is the HTTP-level crash test: ingest through a
// durable sharded server, kill it (no Close), then bring up a new server
// over the same directory and check the corpus, the per-shard stats, and
// the similarity answers survived.
func TestShardedServeRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := shardedOptions(3)
	sh, err := shard.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(sh, nil, core.Options{})
	doJSON(t, s, http.MethodPost, "/traces/batch",
		fmt.Sprintf(`{"traces": [%q, %q, %q, %q]}`, traceA, traceA, traceB, traceB), http.StatusCreated)
	doJSON(t, s, http.MethodDelete, "/traces/3", "", http.StatusOK)
	want := doJSON(t, s, http.MethodGet, "/similar?id=0&k=2", "", http.StatusOK)
	// Kill: the server and its stores are simply abandoned.

	sh2, err := shard.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	s2 := NewSharded(sh2, nil, core.Options{})
	resp := doJSON(t, s2, http.MethodGet, "/healthz", "", http.StatusOK)
	if n := resp["traces"].(float64); n != 3 {
		t.Fatalf("recovered traces = %v, want 3", n)
	}
	got := doJSON(t, s2, http.MethodGet, "/similar?id=0&k=2", "", http.StatusOK)
	if fmt.Sprint(want["neighbors"]) != fmt.Sprint(got["neighbors"]) {
		t.Fatalf("similar diverged across recovery:\n want %v\n got %v", want["neighbors"], got["neighbors"])
	}
	resp = doJSON(t, s2, http.MethodGet, "/debug/store", "", http.StatusOK)
	stats := resp["shards"].([]any)
	if len(stats) != 3 {
		t.Fatalf("debug/store shards = %v", stats)
	}
	for i, st := range stats {
		if dir := st.(map[string]any)["dir"].(string); !strings.Contains(dir, shard.ShardDir(i)) {
			t.Fatalf("shard %d stats dir = %q", i, dir)
		}
	}
}
