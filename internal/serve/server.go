package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/shard"
	"iokast/internal/store"
	"iokast/internal/stream"
	"iokast/internal/token"
	"iokast/internal/trace"
)

// maxTraceBody bounds how much of a POST /traces body is read; a trace of
// this size is far beyond anything the pipeline is tuned for.
const maxTraceBody = 16 << 20

// maxBatchBody bounds a POST /traces/batch request.
const maxBatchBody = 64 << 20

// maxBatchTraces bounds how many traces one batch may carry; bigger
// ingests should be split, which also bounds single-record WAL frames.
const maxBatchTraces = 4096

// corpus is the query/mutation surface the handlers need; both the single
// engine.Engine and the multi-shard shard.Sharded satisfy it, so every
// endpoint except /gram works identically in either mode.
type corpus interface {
	Add(x token.String) int
	AddBatch(xs []token.String) ([]int, error)
	Remove(id int) error
	Similar(id, k int) ([]engine.Neighbor, error)
	SimilarApprox(id, k, rerank int) ([]engine.Neighbor, error)
	SimilarTrace(x token.String, k, rerank int) ([]engine.Neighbor, error)
	Has(id int) bool
	Len() int
	Err() error
	Kernel() kernel.Kernel
	SketchConfig() (dim int, seed uint64, enabled bool)
	ANNConfig() (bands, rows int, enabled bool)
}

// Server routes HTTP requests onto one shared corpus. Concurrency control
// lives entirely in the corpus and the label registry; handlers hold no
// state of their own.
type Server struct {
	c    corpus
	eng  *engine.Engine // single-engine mode only: serves /gram
	st   *store.Store   // single-engine mode: nil without --data-dir
	sh   *shard.Sharded // sharded mode only
	cls  *classify.Online
	copt core.Options
	mux  *http.ServeMux

	// handler is what ServeHTTP runs: the bare mux, or the mux wrapped in
	// the telemetry middleware once ConfigureTelemetry has been called.
	handler http.Handler
	tel     *telemetry

	// streams holds the in-flight streaming-ingest sessions (POST /ingest).
	// Built with defaults in finish; ConfigureStream swaps in tuned bounds
	// before the server starts accepting requests.
	streams *stream.Registry
}

// New serves a single-engine corpus; st may be nil for an in-memory
// server (no /debug/store).
func New(eng *engine.Engine, st *store.Store, reg *classify.Registry, copt core.Options) *Server {
	s := &Server{c: eng, eng: eng, st: st, copt: copt}
	s.finish(reg)
	return s
}

// NewSharded serves a multi-shard corpus. /gram is unavailable in
// this mode: the corpus maintains no cross-shard Gram entries, which is
// exactly what lets ingest scale with the shard count.
func NewSharded(sh *shard.Sharded, reg *classify.Registry, copt core.Options) *Server {
	s := &Server{c: sh, sh: sh, copt: copt}
	s.finish(reg)
	return s
}

func (s *Server) finish(reg *classify.Registry) {
	if reg == nil {
		reg = classify.NewRegistry()
	}
	s.cls = classify.NewOnline(s.c, reg)
	s.streams = stream.NewRegistry(stream.Config{Classifier: s.cls, Convert: s.copt})
	s.routes()
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/traces/batch", s.handleTracesBatch)
	s.mux.HandleFunc("/traces/", s.handleTraceByID)
	s.mux.HandleFunc("/similar", s.handleSimilar)
	s.mux.HandleFunc("/labels", s.handleLabels)
	s.mux.HandleFunc("/labels/", s.handleLabelByID)
	s.mux.HandleFunc("/classify", s.handleClassify)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/gram", s.handleGram)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/debug/store", s.handleStoreStats)
	s.handler = s.mux
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close releases the server's background resources (the stream registry's
// idle sweeper). The server keeps serving if asked, but idle streaming
// sessions are then only swept on demand.
func (s *Server) Close() { s.streams.Close() }

// readTraceBody reads, parses, and converts one trace from the request
// body, writing the HTTP error itself when it returns ok = false.
func (s *Server) readTraceBody(w http.ResponseWriter, r *http.Request) (*trace.Trace, token.String, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTraceBody+1))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "read body: %v", err)
		return nil, nil, false
	}
	if len(body) > maxTraceBody {
		httpError(w, r, http.StatusRequestEntityTooLarge, "trace exceeds %d bytes", maxTraceBody)
		return nil, nil, false
	}
	tr, err := trace.ParseString(string(body))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "parse trace: %v", err)
		return nil, nil, false
	}
	return tr, core.Convert(tr, s.copt), true
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, "POST a trace in the canonical text format")
		return
	}
	tr, x, ok := s.readTraceBody(w, r)
	if !ok {
		return
	}
	id := s.c.Add(x)
	if err := s.c.Err(); err != nil {
		// Ingested in memory but not persisted: tell the client instead of
		// silently serving state a restart would lose.
		httpError(w, r, http.StatusInternalServerError, "trace %d accepted but persistence failed: %v", id, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, map[string]any{
		"id":     id,
		"name":   tr.Name,
		"tokens": len(x),
		"weight": x.Weight(),
	})
}

// batchRequest is the POST /traces/batch body: each element is one trace
// in the canonical text format, exactly as POST /traces accepts.
type batchRequest struct {
	Traces []string `json:"traces"`
}

func (s *Server) handleTracesBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, `POST {"traces": ["<trace text>", ...]}`)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBody+1))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxBatchBody {
		httpError(w, r, http.StatusRequestEntityTooLarge, "batch exceeds %d bytes", maxBatchBody)
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, r, http.StatusBadRequest, "parse batch JSON: %v", err)
		return
	}
	if len(req.Traces) == 0 {
		httpError(w, r, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Traces) > maxBatchTraces {
		httpError(w, r, http.StatusRequestEntityTooLarge, "batch of %d traces exceeds limit %d", len(req.Traces), maxBatchTraces)
		return
	}
	// Parse everything before ingesting anything: a batch is all-or-nothing
	// at the validation stage, so one bad trace cannot half-apply it.
	xs := make([]token.String, len(req.Traces))
	type meta struct {
		ID     int    `json:"id"`
		Name   string `json:"name,omitempty"`
		Tokens int    `json:"tokens"`
		Weight int    `json:"weight"`
	}
	metas := make([]meta, len(req.Traces))
	for i, text := range req.Traces {
		tr, err := trace.ParseString(text)
		if err != nil {
			httpError(w, r, http.StatusBadRequest, "trace %d: %v", i, err)
			return
		}
		xs[i] = core.Convert(tr, s.copt)
		metas[i] = meta{Name: tr.Name, Tokens: len(xs[i]), Weight: xs[i].Weight()}
	}
	ids, err := s.c.AddBatch(xs)
	if err == nil {
		// Also honour the sticky error: after any earlier WAL failure the
		// log has a gap, so even a batch whose own append succeeded is not
		// recoverable and must not be acknowledged as durable.
		err = s.c.Err()
	}
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, "batch accepted but persistence failed: %v", err)
		return
	}
	for i, id := range ids {
		metas[i].ID = id
	}
	writeJSON(w, r, http.StatusCreated, map[string]any{
		"count":  len(ids),
		"traces": metas,
	})
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "bad trace id %q", idStr)
		return
	}
	if r.Method != http.MethodDelete {
		httpError(w, r, http.StatusMethodNotAllowed, "only DELETE is supported on /traces/{id}")
		return
	}
	if err := s.c.Remove(id); err != nil {
		httpError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	// A removed trace can never be a neighbour again, so its label goes with
	// it — otherwise GET /labels would count members no query can reach. The
	// trace removal itself is already durable; a failed label cleanup is
	// reported like every other persistence failure rather than swallowed.
	if _, ok := s.cls.Registry().LabelOf(id); ok {
		if err := s.cls.Registry().SetLabel(id, ""); err != nil {
			httpError(w, r, http.StatusInternalServerError,
				"trace %d removed but its label could not be dropped: %v", id, err)
			return
		}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"removed": id})
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleSimilarByID(w, r)
	case http.MethodPost:
		s.handleSimilarByTrace(w, r)
	default:
		httpError(w, r, http.StatusMethodNotAllowed,
			"GET /similar?id=&k=[&approx=1&rerank=] or POST /similar with a trace body")
	}
}

// similarParams parses the k and rerank query parameters shared by the
// /similar forms and /classify. rerank defaults to -1 (the engine's
// over-fetch default); 0 means sketch-only scores, >= corpus size means
// exact. k = 0 is valid and yields an empty neighbour list. Values of
// rerank below -1 have no defined meaning anywhere in the stack and are
// rejected here rather than silently passed through (the engine would
// treat them like -1, which is a trap for clients that meant something
// else).
func similarParams(r *http.Request) (k, rerank int, err error) {
	k, rerank = 10, -1
	if ks := r.URL.Query().Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k < 0 {
			return 0, 0, fmt.Errorf("bad k %q", ks)
		}
	}
	if rs := r.URL.Query().Get("rerank"); rs != "" {
		if rerank, err = strconv.Atoi(rs); err != nil || rerank < -1 {
			return 0, 0, fmt.Errorf("bad rerank %q (want -1 for the default over-fetch, 0 for sketch scores, or a positive shortlist size)", rs)
		}
	}
	return k, rerank, nil
}

func (s *Server) handleSimilarByID(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "bad or missing id")
		return
	}
	k, rerank, err := similarParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	approx := r.URL.Query().Get("approx")
	var ns []engine.Neighbor
	if approx == "1" || approx == "true" {
		// Asking for the sketch path on a sketch-disabled corpus is a
		// client error (the request can never succeed against this
		// configuration), not a server fault: 400 with a hint, checked
		// before touching the corpus so the message is always the clear
		// one rather than whatever error bubbles up.
		if _, _, enabled := s.c.SketchConfig(); !enabled {
			httpError(w, r, http.StatusBadRequest,
				"approximate similarity unavailable: sketching is disabled on this server (restart with -sketch-dim > 0, or drop approx=1)")
			return
		}
		ns, err = s.c.SimilarApprox(id, k, rerank)
		if err != nil {
			httpError(w, r, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, r, http.StatusOK, map[string]any{
			"id": id, "neighbors": nonNil(ns), "approx": true, "rerank": rerank,
		})
		return
	}
	ns, err = s.c.Similar(id, k)
	if err != nil {
		httpError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"id": id, "neighbors": nonNil(ns)})
}

// nonNil pins the JSON form of an empty neighbour list to [] rather than
// null, whatever path produced it — k=0 responses must still be valid,
// iterable JSON.
func nonNil(ns []engine.Neighbor) []engine.Neighbor {
	if ns == nil {
		return []engine.Neighbor{}
	}
	return ns
}

// handleSimilarByTrace is query-by-trace: the body is one trace in the
// canonical text format, converted and compared like an ingested trace but
// never added to the corpus, the WAL, or the id space.
func (s *Server) handleSimilarByTrace(w http.ResponseWriter, r *http.Request) {
	tr, x, ok := s.readTraceBody(w, r)
	if !ok {
		return
	}
	k, rerank, err := similarParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	ns, err := s.c.SimilarTrace(x, k, rerank)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{
		"name":      tr.Name,
		"tokens":    len(x),
		"weight":    x.Weight(),
		"neighbors": nonNil(ns),
		"rerank":    rerank,
	})
}

// labelsRequest is the POST /labels body: explicit id -> label assignments.
// An empty label removes the id's assignment.
type labelsRequest struct {
	Labels []struct {
		ID    int    `json:"id"`
		Label string `json:"label"`
	} `json:"labels"`
}

// maxLabelsBody bounds a POST /labels request.
const maxLabelsBody = 4 << 20

// handleLabels serves the label registry: POST tags corpus ids with labels
// (validated against the live corpus, persisted atomically when the
// registry is durable), GET lists label -> member count.
func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		reg := s.cls.Registry()
		writeJSON(w, r, http.StatusOK, map[string]any{
			"labels":  reg.Counts(),
			"labeled": reg.Len(),
		})
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxLabelsBody+1))
		if err != nil {
			httpError(w, r, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if len(body) > maxLabelsBody {
			httpError(w, r, http.StatusRequestEntityTooLarge, "labels body exceeds %d bytes", maxLabelsBody)
			return
		}
		var req labelsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, r, http.StatusBadRequest, "parse labels JSON: %v", err)
			return
		}
		if len(req.Labels) == 0 {
			httpError(w, r, http.StatusBadRequest, `empty assignment (want {"labels": [{"id": 0, "label": "reader"}, ...]})`)
			return
		}
		// Validate everything before assigning anything: labels are
		// all-or-nothing like batch ingest, so one bad entry cannot
		// half-apply the request. Removal entries (empty label) skip the
		// liveness check — unlabelling a stale id must always be possible.
		assign := make(map[int]string, len(req.Labels))
		for i, e := range req.Labels {
			if e.Label != "" {
				if err := classify.ValidLabel(e.Label); err != nil {
					httpError(w, r, http.StatusBadRequest, "labels[%d]: %v", i, err)
					return
				}
				if !s.c.Has(e.ID) {
					httpError(w, r, http.StatusNotFound, "labels[%d]: no live trace with id %d", i, e.ID)
					return
				}
			}
			assign[e.ID] = e.Label
		}
		if err := s.cls.Registry().SetLabels(assign); err != nil {
			// SetLabels is all-or-nothing: on error neither memory nor disk
			// changed, so say so plainly.
			httpError(w, r, http.StatusInternalServerError, "labels not applied: %v", err)
			return
		}
		// Close the validate-then-commit race with DELETE /traces/{id}: a
		// trace removed between the liveness check and the commit would keep
		// its fresh label forever (the delete's own cleanup ran before the
		// label existed). Scrubbing after the commit converges in every
		// interleaving — whichever of the two writers runs last sees the
		// other's effect.
		for id, label := range assign {
			if label != "" && !s.c.Has(id) {
				_ = s.cls.Registry().SetLabel(id, "")
			}
		}
		writeJSON(w, r, http.StatusOK, map[string]any{
			"assigned": len(assign),
			"labeled":  s.cls.Registry().Len(),
		})
	default:
		httpError(w, r, http.StatusMethodNotAllowed,
			`GET /labels or POST {"labels": [{"id": 0, "label": "reader"}, ...]}`)
	}
}

// handleLabelByID serves DELETE /labels/{id}: remove one id's label.
func (s *Server) handleLabelByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/labels/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "bad label id %q", idStr)
		return
	}
	if r.Method != http.MethodDelete {
		httpError(w, r, http.StatusMethodNotAllowed, "only DELETE is supported on /labels/{id}")
		return
	}
	reg := s.cls.Registry()
	if _, ok := reg.LabelOf(id); !ok {
		httpError(w, r, http.StatusNotFound, "no label on id %d", id)
		return
	}
	if err := reg.SetLabel(id, ""); err != nil {
		httpError(w, r, http.StatusInternalServerError, "unlabel not applied: %v", err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"removed": id})
}

// handleClassify is the paper's application served online: the body is one
// trace in the canonical text format, classified by similarity-weighted
// k-NN vote against the labelled corpus — sketch shortlist plus exact
// rerank where enabled, fanned out across shards in parallel in sharded
// mode. The trace is never ingested.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, r, http.StatusMethodNotAllowed, "POST /classify?k=&rerank= with a trace body")
		return
	}
	tr, x, ok := s.readTraceBody(w, r)
	if !ok {
		return
	}
	k, rerank, err := similarParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.cls.Classify(x, k, rerank)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{
		"name":       tr.Name,
		"tokens":     len(x),
		"weight":     x.Weight(),
		"label":      res.Label,
		"confidence": res.Confidence,
		"votes":      res.Votes,
		"neighbors":  res.Neighbors,
		"rerank":     rerank,
	})
}

func (s *Server) handleGram(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, r, http.StatusMethodNotAllowed, "GET /gram")
		return
	}
	if s.eng == nil {
		httpError(w, r, http.StatusNotImplemented,
			"no global Gram matrix in sharded mode (%d shards hold no cross-shard entries); use /similar", s.sh.Shards())
		return
	}
	var (
		m   *linalg.Matrix
		ids []int
	)
	resp := map[string]any{"kernel": s.eng.Kernel().Name()}
	if norm := r.URL.Query().Get("normalized"); norm == "1" || norm == "true" {
		var clipped int
		var err error
		m, ids, clipped, err = s.eng.NormalizedGram()
		if err != nil {
			httpError(w, r, http.StatusInternalServerError, "normalize: %v", err)
			return
		}
		resp["clipped_eigenvalues"] = clipped
	} else {
		m, ids = s.eng.Gram()
	}
	rows := make([][]float64, m.Rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	resp["ids"] = ids
	resp["matrix"] = rows
	writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Strictly read-only: idle streaming sessions are swept by the stream
	// registry's own background ticker, never by probe traffic, so scrape
	// frequency cannot change session-TTL semantics.
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		httpError(w, r, http.StatusMethodNotAllowed, "GET /healthz")
		return
	}
	resp := map[string]any{"status": "ok", "traces": s.c.Len(), "stream_sessions": s.streams.Len()}
	if bands, rows, enabled := s.c.ANNConfig(); enabled {
		resp["ann_bands"] = bands
		resp["ann_rows"] = rows
	}
	status := http.StatusOK
	if s.sh != nil {
		// Per-shard health: one degraded shard degrades the whole instance
		// (a fraction of the id space is no longer durable), and the probe
		// names the shards so operators can see which WALs are failing.
		resp["shards"] = s.sh.Shards()
		var down []int
		for i, err := range s.sh.Errs() {
			if err != nil {
				down = append(down, i)
			}
		}
		if len(down) > 0 {
			resp["degraded_shards"] = down
		}
	}
	if err := s.c.Err(); err != nil {
		// Still serving, but mutations are no longer reaching the WAL:
		// degraded, so orchestrators can rotate the instance out.
		resp["status"] = "degraded"
		resp["persistence_error"] = err.Error()
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, r, status, resp)
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, r, http.StatusMethodNotAllowed, "GET /debug/store")
		return
	}
	if s.sh != nil && s.sh.Durable() {
		// One stats object per shard: each has its own WAL, snapshot chain,
		// and replay backlog.
		writeJSON(w, r, http.StatusOK, map[string]any{"shards": s.sh.Stats()})
		return
	}
	if s.st == nil {
		httpError(w, r, http.StatusNotFound, "no store attached (run with --data-dir)")
		return
	}
	writeJSON(w, r, http.StatusOK, s.st.Stats())
}

// writeJSON writes v as an indented JSON response. Encoding failures
// cannot be reported to the client (the status line is already out), so
// they go to the request's structured logger — usually a client that hung
// up mid-response, but also the only trace of a genuinely unencodable
// value.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		if lg := requestLogger(r); lg != nil {
			lg.Warn("response encode failed", "status", status, "err", err)
		}
	}
}

func httpError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, r, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
