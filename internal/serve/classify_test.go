package serve

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"iokast/internal/classify"
	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/shard"
	"iokast/internal/store"
)

const traceC = `% name=readerC label=C
open fh=1
read fh=1 bytes=4096
read fh=1 bytes=4096
read fh=1 bytes=4096
close fh=1
`

// seedLabeled ingests three traces and labels two of them.
func seedLabeled(t testing.TB, s *Server) {
	t.Helper()
	for _, body := range []string{traceA, traceA, traceC} {
		doJSON(t, s, http.MethodPost, "/traces", body, http.StatusCreated)
	}
	doJSON(t, s, http.MethodPost, "/labels",
		`{"labels": [{"id": 0, "label": "writer"}, {"id": 2, "label": "reader"}]}`,
		http.StatusOK)
}

func TestServeLabelsLifecycle(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)

	resp := doJSON(t, s, http.MethodGet, "/labels", "", http.StatusOK)
	if n := resp["labeled"].(float64); n != 2 {
		t.Fatalf("labeled = %v", n)
	}
	counts := resp["labels"].(map[string]any)
	if counts["writer"].(float64) != 1 || counts["reader"].(float64) != 1 {
		t.Fatalf("counts = %v", counts)
	}

	// Relabel and unlabel.
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": [{"id": 1, "label": "writer"}]}`, http.StatusOK)
	doJSON(t, s, http.MethodDelete, "/labels/2", "", http.StatusOK)
	resp = doJSON(t, s, http.MethodGet, "/labels", "", http.StatusOK)
	if n := resp["labeled"].(float64); n != 2 {
		t.Fatalf("labeled after churn = %v", n)
	}

	// Errors: unknown id (404), dead id after delete, invalid label, bad
	// JSON, empty set, wrong method, unlabelled delete.
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": [{"id": 99, "label": "x"}]}`, http.StatusNotFound)
	doJSON(t, s, http.MethodDelete, "/traces/1", "", http.StatusOK)
	// Removing the trace drops its label with it.
	resp = doJSON(t, s, http.MethodGet, "/labels", "", http.StatusOK)
	if n := resp["labeled"].(float64); n != 1 {
		t.Fatalf("labeled after trace delete = %v", n)
	}
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": [{"id": 1, "label": "x"}]}`, http.StatusNotFound)
	// Removal entries skip the liveness check: unlabelling a stale or dead
	// id must always be possible, batch or not.
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": [{"id": 1, "label": ""}, {"id": 42, "label": ""}]}`, http.StatusOK)
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": [{"id": 0, "label": "bad\nlabel"}]}`, http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/labels", `not json`, http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/labels", `{"labels": []}`, http.StatusBadRequest)
	doJSON(t, s, http.MethodPut, "/labels", "", http.StatusMethodNotAllowed)
	doJSON(t, s, http.MethodDelete, "/labels/zap", "", http.StatusBadRequest)
	doJSON(t, s, http.MethodDelete, "/labels/7", "", http.StatusNotFound)
	doJSON(t, s, http.MethodGet, "/labels/0", "", http.StatusMethodNotAllowed)
}

func TestServeClassify(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)

	// A near-duplicate of the writer trace classifies as writer, with the
	// duplicate pair as top neighbours.
	resp := doJSON(t, s, http.MethodPost, "/classify?k=3&rerank=3", traceA, http.StatusOK)
	if resp["label"].(string) != "writer" {
		t.Fatalf("label = %v (votes %v)", resp["label"], resp["votes"])
	}
	conf := resp["confidence"].(float64)
	if conf <= 0 || conf > 1 {
		t.Fatalf("confidence = %v", conf)
	}
	votes := resp["votes"].([]any)
	if len(votes) == 0 {
		t.Fatalf("no votes: %v", resp)
	}
	top := votes[0].(map[string]any)
	if top["label"].(string) != "writer" || top["weight"].(float64) <= 0 || top["count"].(float64) < 1 {
		t.Fatalf("top vote = %v", top)
	}
	ns := resp["neighbors"].([]any)
	if len(ns) != 3 {
		t.Fatalf("neighbors = %v", ns)
	}
	// The unlabelled neighbour (id 1) is present without a label field value.
	for _, n := range ns {
		nb := n.(map[string]any)
		if int(nb["id"].(float64)) == 1 {
			if _, ok := nb["label"]; ok {
				t.Fatalf("unlabelled neighbour carries a label: %v", nb)
			}
		}
	}
	// The reader trace classifies as reader.
	resp = doJSON(t, s, http.MethodPost, "/classify", traceC, http.StatusOK)
	if resp["label"].(string) != "reader" {
		t.Fatalf("reader query labelled %v", resp["label"])
	}

	// Errors: wrong method, bad body, bad params.
	doJSON(t, s, http.MethodGet, "/classify", "", http.StatusMethodNotAllowed)
	doJSON(t, s, http.MethodPost, "/classify", "not a trace", http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/classify?k=zap", traceA, http.StatusBadRequest)
	doJSON(t, s, http.MethodPost, "/classify?k=-1", traceA, http.StatusBadRequest)
}

// k=0 must yield empty-but-valid JSON bodies — [] and not null, 200 and
// not an error — on every query endpoint, table-driven.
func TestServeKZeroEndpoints(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)
	cases := []struct {
		name, method, target, body string
	}{
		{"similar-by-id", http.MethodGet, "/similar?id=0&k=0", ""},
		{"similar-by-id-approx", http.MethodGet, "/similar?id=0&k=0&approx=1", ""},
		{"similar-by-id-approx-sketchonly", http.MethodGet, "/similar?id=0&k=0&approx=1&rerank=0", ""},
		{"similar-by-trace", http.MethodPost, "/similar?k=0", traceA},
		{"similar-by-trace-exact", http.MethodPost, "/similar?k=0&rerank=3", traceA},
		{"classify", http.MethodPost, "/classify?k=0", traceA},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := doJSON(t, s, c.method, c.target, c.body, http.StatusOK)
			ns, ok := resp["neighbors"].([]any)
			if !ok {
				t.Fatalf("neighbors is %T (null?), want []: %v", resp["neighbors"], resp)
			}
			if len(ns) != 0 {
				t.Fatalf("k=0 returned neighbors: %v", ns)
			}
			if c.name == "classify" {
				if v, ok := resp["votes"].([]any); !ok || len(v) != 0 {
					t.Fatalf("k=0 classify votes = %v (%T)", resp["votes"], resp["votes"])
				}
				if resp["label"].(string) != "" {
					t.Fatalf("k=0 classify labelled: %v", resp["label"])
				}
			}
		})
	}
}

// rerank < -1 is rejected as a client error on every endpoint that takes it.
func TestServeRerankValidation(t *testing.T) {
	s := testServer()
	seedLabeled(t, s)
	for _, c := range []struct{ method, target, body string }{
		{http.MethodGet, "/similar?id=0&approx=1&rerank=-2", ""},
		{http.MethodGet, "/similar?id=0&rerank=-5", ""},
		{http.MethodPost, "/similar?rerank=-2", traceA},
		{http.MethodPost, "/classify?rerank=-17", traceA},
	} {
		resp := doJSON(t, s, c.method, c.target, c.body, http.StatusBadRequest)
		if msg := resp["error"].(string); !strings.Contains(msg, "bad rerank") {
			t.Fatalf("%s %s: error %q", c.method, c.target, msg)
		}
	}
	// rerank = -1 (the documented default) stays valid.
	doJSON(t, s, http.MethodGet, "/similar?id=0&approx=1&rerank=-1", "", http.StatusOK)
}

// Classification over a sharded server answers identically to the single
// engine — the HTTP-level face of the parity suite in internal/classify.
func TestServeClassifyShardedParity(t *testing.T) {
	single := testServer()
	sh, err := shard.New(shard.Options{Shards: 4, Seed: 7, Engine: engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	sharded := NewSharded(sh, nil, core.Options{})
	for _, s := range []*Server{single, sharded} {
		seedLabeled(t, s)
	}
	for _, q := range []string{traceA, traceC} {
		want := doJSON(t, single, http.MethodPost, "/classify?k=3&rerank=3", q, http.StatusOK)
		got := doJSON(t, sharded, http.MethodPost, "/classify?k=3&rerank=3", q, http.StatusOK)
		for _, key := range []string{"label", "confidence"} {
			if want[key] != got[key] {
				t.Fatalf("%s diverges: single %v, sharded %v", key, want[key], got[key])
			}
		}
		wn, gn := want["neighbors"].([]any), got["neighbors"].([]any)
		if len(wn) != len(gn) {
			t.Fatalf("neighbor counts diverge: %v vs %v", wn, gn)
		}
		for i := range wn {
			w, g := wn[i].(map[string]any), gn[i].(map[string]any)
			if w["id"] != g["id"] || w["similarity"] != g["similarity"] {
				t.Fatalf("neighbor %d diverges: %v vs %v", i, w, g)
			}
		}
	}
}

// Labels persist beside the data dir and come back after a kill: the HTTP
// face of the registry's crash-recovery contract.
func TestServeLabelsDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, classify.DefaultLabelsFile)
	open := func() (*Server, *store.Store) {
		reg, err := classify.OpenRegistry(path)
		if err != nil {
			t.Fatal(err)
		}
		eng, st, err := store.Open(dir, func() *engine.Engine {
			return engine.New(engine.Options{Kernel: &core.Kast{CutWeight: 2}, Workers: 2})
		}, store.Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return New(eng, st, reg, core.Options{}), st
	}
	s, _ := open()
	seedLabeled(t, s)
	// Kill: neither the store nor the registry is closed.
	s2, st2 := open()
	defer st2.Close()
	resp := doJSON(t, s2, http.MethodGet, "/labels", "", http.StatusOK)
	if n := resp["labeled"].(float64); n != 2 {
		t.Fatalf("recovered labeled = %v", n)
	}
	got := doJSON(t, s2, http.MethodPost, "/classify?k=3&rerank=3", traceA, http.StatusOK)
	if got["label"].(string) != "writer" {
		t.Fatalf("recovered classification = %v", got["label"])
	}
}
