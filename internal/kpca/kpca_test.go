package kpca

import (
	"math"
	"testing"
	"testing/quick"

	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/xrand"
)

func TestAnalyzeRejectsBadInput(t *testing.T) {
	if _, err := Analyze(linalg.NewMatrix(2, 3), Options{Components: 1}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Analyze(linalg.NewMatrix(2, 2), Options{Components: 0}); err == nil {
		t.Fatal("zero components accepted")
	}
}

func TestComponentsClampedToN(t *testing.T) {
	g := linalg.Identity(3)
	res, err := Analyze(g, Options{Components: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coords.Cols != 3 {
		t.Fatalf("cols = %d, want 3", res.Coords.Cols)
	}
}

// Two well-separated blobs on a line must separate on the first component.
func TestTwoClustersSeparate(t *testing.T) {
	xs := [][]float64{
		{0.0}, {0.1}, {-0.1},
		{10.0}, {10.1}, {9.9},
	}
	res, err := AnalyzeVectors(kernel.Linear{}, xs, Options{Components: 1})
	if err != nil {
		t.Fatal(err)
	}
	sign := func(v float64) bool { return v > 0 }
	a := sign(res.Coords.At(0, 0))
	for i := 1; i < 3; i++ {
		if sign(res.Coords.At(i, 0)) != a {
			t.Fatalf("first blob split: %v", res.Coords)
		}
	}
	for i := 3; i < 6; i++ {
		if sign(res.Coords.At(i, 0)) == a {
			t.Fatalf("blobs not separated: %v", res.Coords)
		}
	}
}

// Linear-kernel KPCA must reproduce the pairwise distances of centred PCA:
// the embedding is Euclidean-isometric to the centred data when all
// components are kept.
func TestLinearKPCAIsometry(t *testing.T) {
	r := xrand.New(21)
	n, dim := 7, 3
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = r.Float64()*4 - 2
		}
	}
	res, err := AnalyzeVectors(kernel.Linear{}, xs, Options{Components: n})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for d := 0; d < dim; d++ {
				diff := xs[i][d] - xs[j][d]
				want += diff * diff
			}
			var got float64
			for c := 0; c < res.Coords.Cols; c++ {
				diff := res.Coords.At(i, c) - res.Coords.At(j, c)
				got += diff * diff
			}
			if math.Abs(math.Sqrt(got)-math.Sqrt(want)) > 1e-6 {
				t.Fatalf("distance (%d,%d): got %v, want %v", i, j, math.Sqrt(got), math.Sqrt(want))
			}
		}
	}
}

func TestExplainedVarianceSumsToOneish(t *testing.T) {
	r := xrand.New(5)
	xs := make([][]float64, 6)
	for i := range xs {
		xs[i] = []float64{r.Float64(), r.Float64()}
	}
	res, err := AnalyzeVectors(kernel.Linear{}, xs, Options{Components: 6})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.ExplainedVariance {
		if v < 0 || v > 1+1e-12 {
			t.Fatalf("explained variance out of range: %v", v)
		}
		sum += v
	}
	// 2D data: all variance lives in the first two components.
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("explained variance sums to %v", sum)
	}
	if res.ExplainedVariance[0] < res.ExplainedVariance[1] {
		t.Fatal("components not ordered by variance")
	}
}

func TestDegenerateIdenticalPoints(t *testing.T) {
	xs := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := AnalyzeVectors(kernel.Linear{}, xs, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	// After centring everything is zero: no NaNs, all coordinates 0.
	for _, v := range res.Coords.Data {
		if math.IsNaN(v) || math.Abs(v) > 1e-9 {
			t.Fatalf("degenerate projection produced %v", res.Coords)
		}
	}
}

func TestSkipCentering(t *testing.T) {
	g := linalg.FromRows([][]float64{{2, 0}, {0, 1}})
	res, err := Analyze(g, Options{Components: 1, SkipCentering: true})
	if err != nil {
		t.Fatal(err)
	}
	// Uncentred: top eigenvalue is 2.
	if math.Abs(res.Eigenvalues[0]-2) > 1e-9 {
		t.Fatalf("eigenvalue = %v, want 2", res.Eigenvalues[0])
	}
}

// Property: projections' inner products reproduce the centred kernel when
// the matrix is PSD and all components are kept.
func TestQuickProjectionReproducesCentredKernel(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5
		a := linalg.NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()*2 - 1
		}
		g := a.Transpose().Mul(a) // PSD
		res, err := Analyze(g, Options{Components: n})
		if err != nil {
			return false
		}
		c := kernel.Center(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(linalg.Dot(res.Coords.Row(i), res.Coords.Row(j))-c.At(i, j)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianKernelKPCARuns(t *testing.T) {
	xs := [][]float64{{0}, {0.1}, {5}, {5.1}}
	res, err := AnalyzeVectors(kernel.Gaussian{Sigma: 1}, xs, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coords.Rows != 4 || res.Coords.Cols != 2 {
		t.Fatalf("shape %dx%d", res.Coords.Rows, res.Coords.Cols)
	}
}
