// Package kpca implements Kernel Principal Component Analysis (Schölkopf,
// Smola, Müller 1997), the first of the two learning algorithms the paper
// applies to Kast similarity matrices (§2.2, Figs. 6 and 8).
//
// Given a Gram matrix K over n examples, the algorithm double-centres K in
// feature space, eigendecomposes it, and projects every example onto the
// leading eigenvectors scaled by 1/sqrt(lambda), yielding coordinates whose
// pairwise inner products approximate the centred kernel.
package kpca

import (
	"fmt"
	"math"

	"iokast/internal/kernel"
	"iokast/internal/linalg"
)

// Result holds the projection of every example onto the leading principal
// components.
type Result struct {
	// Coords is n x d: row i is example i's coordinates.
	Coords *linalg.Matrix
	// Eigenvalues are the leading eigenvalues of the centred Gram matrix,
	// descending (one per extracted component).
	Eigenvalues []float64
	// ExplainedVariance[c] is Eigenvalues[c] divided by the total of all
	// positive eigenvalues.
	ExplainedVariance []float64
}

// Options configure the analysis.
type Options struct {
	// Components is the number of principal components to extract (d).
	Components int
	// Center disables feature-space centring when false is wanted; the
	// zero value (false) means "do centre", matching standard KPCA. Set
	// SkipCentering to analyse the raw matrix.
	SkipCentering bool
}

// minPositiveEigen is the threshold below which an eigenvalue is treated as
// zero (its component carries no variance and cannot be normalised).
const minPositiveEigen = 1e-10

// Analyze runs Kernel PCA on a symmetric Gram matrix.
func Analyze(gram *linalg.Matrix, opt Options) (*Result, error) {
	if gram.Rows != gram.Cols {
		return nil, fmt.Errorf("kpca: gram matrix is %dx%d, want square", gram.Rows, gram.Cols)
	}
	n := gram.Rows
	d := opt.Components
	if d <= 0 {
		return nil, fmt.Errorf("kpca: components = %d, want >= 1", d)
	}
	if d > n {
		d = n
	}

	k := gram
	if !opt.SkipCentering {
		k = kernel.Center(gram)
	}
	values, vectors, err := linalg.EigenSym(k)
	if err != nil {
		return nil, fmt.Errorf("kpca: %w", err)
	}

	var totalPositive float64
	for _, v := range values {
		if v > minPositiveEigen {
			totalPositive += v
		}
	}

	res := &Result{
		Coords:            linalg.NewMatrix(n, d),
		Eigenvalues:       make([]float64, d),
		ExplainedVariance: make([]float64, d),
	}
	for c := 0; c < d; c++ {
		lam := values[c]
		res.Eigenvalues[c] = lam
		if lam <= minPositiveEigen {
			// Component carries no signal; leave coordinates at 0.
			continue
		}
		if totalPositive > 0 {
			res.ExplainedVariance[c] = lam / totalPositive
		}
		// Projection of example i onto component c: sqrt(lam) * v_i where
		// v is the unit eigenvector — equivalently K_centered alpha with
		// alpha = v / sqrt(lam).
		scale := math.Sqrt(lam)
		for i := 0; i < n; i++ {
			res.Coords.Set(i, c, scale*vectors.At(i, c))
		}
	}
	return res, nil
}

// AnalyzeVectors is a convenience wrapper: it computes the Gram matrix of a
// vector kernel and runs KPCA on it. With kernel.Linear this reproduces
// ordinary PCA up to sign, which the tests exploit as a cross-check.
func AnalyzeVectors(k kernel.VectorKernel, xs [][]float64, opt Options) (*Result, error) {
	return Analyze(kernel.VectorGram(k, xs), opt)
}
