package kpca

import (
	"math"
	"testing"

	"iokast/internal/kernel"
	"iokast/internal/token"
	"iokast/internal/xrand"
)

func TestProjectTrainingPointReproducesCoords(t *testing.T) {
	r := xrand.New(31)
	n, dim := 8, 3
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
		for j := range xs[i] {
			xs[i][j] = r.Float64()*4 - 2
		}
	}
	gram := kernel.VectorGram(kernel.Linear{}, xs)
	m, err := Fit(gram, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := m.ProjectRow(gram.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		for c := range got {
			if math.Abs(got[c]-m.Result.Coords.At(i, c)) > 1e-8 {
				t.Fatalf("example %d component %d: projected %v, trained %v",
					i, c, got[c], m.Result.Coords.At(i, c))
			}
		}
	}
}

func TestProjectRowValidatesLength(t *testing.T) {
	gram := kernel.VectorGram(kernel.Linear{}, [][]float64{{1}, {2}})
	m, err := Fit(gram, Options{Components: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ProjectRow([]float64{1}); err == nil {
		t.Fatal("wrong-length row accepted")
	}
}

func TestProjectInterpolatesBetweenClusters(t *testing.T) {
	// Two 1-D blobs; a midpoint must project between them on PC1.
	xs := [][]float64{{0}, {0.2}, {10}, {10.2}}
	gram := kernel.VectorGram(kernel.Linear{}, xs)
	m, err := Fit(gram, Options{Components: 1})
	if err != nil {
		t.Fatal(err)
	}
	kx := func(v float64) []float64 {
		row := make([]float64, len(xs))
		for i := range xs {
			row[i] = v * xs[i][0]
		}
		return row
	}
	left, err := m.ProjectRow(kx(0.1))
	if err != nil {
		t.Fatal(err)
	}
	mid, _ := m.ProjectRow(kx(5))
	right, _ := m.ProjectRow(kx(10.1))
	if !(left[0] < mid[0] && mid[0] < right[0]) && !(left[0] > mid[0] && mid[0] > right[0]) {
		t.Fatalf("midpoint did not interpolate: %v %v %v", left[0], mid[0], right[0])
	}
}

func tokenString(lits string) token.String {
	s := make(token.String, 0, len(lits))
	for _, c := range lits {
		s = append(s, token.Token{Literal: string(c), Weight: 2})
	}
	return s
}

func TestFitStringsAndProject(t *testing.T) {
	train := []token.String{
		tokenString("aaab"),
		tokenString("aaba"),
		tokenString("zzzy"),
		tokenString("zzyz"),
	}
	sm, err := FitStrings(&kernel.Blended{P: 2, Mode: kernel.WeightSum}, train, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := sm.Project(tokenString("aabb"))
	if err != nil {
		t.Fatal(err)
	}
	pz, err := sm.Project(tokenString("zzyy"))
	if err != nil {
		t.Fatal(err)
	}
	// The a-like query must land nearer the a-training pair than the
	// z-like query does.
	distTo := func(p []float64, idx int) float64 {
		var d float64
		for c := range p {
			diff := p[c] - sm.Model.Result.Coords.At(idx, c)
			d += diff * diff
		}
		return math.Sqrt(d)
	}
	if distTo(pa, 0) >= distTo(pz, 0) {
		t.Fatalf("a-query (%v) not closer to a-cluster than z-query (%v)", distTo(pa, 0), distTo(pz, 0))
	}
}

func TestFitStringsEmpty(t *testing.T) {
	if _, err := FitStrings(&kernel.Blended{P: 2}, nil, Options{Components: 1}); err == nil {
		t.Fatal("empty training set accepted")
	}
}
