package kpca

import (
	"fmt"

	"iokast/internal/kernel"
	"iokast/internal/linalg"
	"iokast/internal/token"
)

// Model is a fitted Kernel PCA that can project new, unseen examples —
// the standard out-of-sample extension: a new point x is mapped through
// its kernel evaluations against the training set,
//
//	y_c(x) = sum_i alpha_{ic} * ktilde(x, x_i),
//
// where alpha are the eigenvector coefficients scaled by 1/sqrt(lambda)
// and ktilde applies the training centring to the new kernel row.
type Model struct {
	Result *Result
	// alphas is n x d: column c holds v_c / sqrt(lambda_c).
	alphas *linalg.Matrix
	// rowMeans[i] is the mean of the uncentred training Gram's row i;
	// grandMean is the overall mean. Both are needed to centre new rows.
	rowMeans  []float64
	grandMean float64
}

// Fit runs KPCA on a training Gram matrix and retains everything needed to
// project new examples.
func Fit(gram *linalg.Matrix, opt Options) (*Model, error) {
	res, err := Analyze(gram, opt)
	if err != nil {
		return nil, err
	}
	n := gram.Rows
	m := &Model{Result: res, rowMeans: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += gram.At(i, j)
		}
		m.rowMeans[i] = s / float64(n)
		total += s
	}
	if n > 0 {
		m.grandMean = total / float64(n*n)
	}
	// alphas: coords = sqrt(lam) * v  =>  alpha = v / sqrt(lam) =
	// coords / lam.
	d := res.Coords.Cols
	m.alphas = linalg.NewMatrix(n, d)
	for c := 0; c < d; c++ {
		lam := res.Eigenvalues[c]
		if lam <= minPositiveEigen {
			continue
		}
		for i := 0; i < n; i++ {
			m.alphas.Set(i, c, res.Coords.At(i, c)/lam)
		}
	}
	return m, nil
}

// ProjectRow maps a new example onto the fitted components given its
// kernel evaluations against the n training examples (uncentred).
func (m *Model) ProjectRow(kx []float64) ([]float64, error) {
	n := len(m.rowMeans)
	if len(kx) != n {
		return nil, fmt.Errorf("kpca: kernel row has %d entries for %d training examples", len(kx), n)
	}
	var rowMean float64
	for _, v := range kx {
		rowMean += v
	}
	rowMean /= float64(n)
	d := m.alphas.Cols
	out := make([]float64, d)
	for i := 0; i < n; i++ {
		centred := kx[i] - rowMean - m.rowMeans[i] + m.grandMean
		for c := 0; c < d; c++ {
			out[c] += m.alphas.At(i, c) * centred
		}
	}
	return out, nil
}

// StringModel bundles a fitted KPCA with the kernel and training strings,
// so weighted strings can be projected directly.
type StringModel struct {
	Model *Model
	Kern  kernel.Kernel
	Train []token.String
}

// FitStrings computes the Gram matrix of the kernel over the training
// strings and fits a projection model on it.
func FitStrings(k kernel.Kernel, train []token.String, opt Options) (*StringModel, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("kpca: empty training set")
	}
	m, err := Fit(kernel.Gram(k, train), opt)
	if err != nil {
		return nil, err
	}
	return &StringModel{Model: m, Kern: k, Train: train}, nil
}

// Project maps a new weighted string into the fitted component space.
func (sm *StringModel) Project(x token.String) ([]float64, error) {
	kx := make([]float64, len(sm.Train))
	for i, t := range sm.Train {
		kx[i] = sm.Kern.Compare(x, t)
	}
	return sm.Model.ProjectRow(kx)
}
