package hdr

import (
	"math"
	"sort"
	"testing"
	"time"

	"iokast/internal/xrand"
)

// exactQuantile is the sorted-slice oracle the histogram is checked
// against: the ceil(q*n)-th order statistic, matching the histogram's
// rank convention.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// maxQuantileError is the histogram's worst-case half-width at v: the
// oracle value and the reported midpoint may sit one bucket apart, so
// the tolerance is one full bucket width at that magnitude ("±1
// bucket").
func maxQuantileError(v time.Duration) time.Duration {
	u := int64(v) / histUnit
	idx := bucketOf(u)
	exp := uint(idx >> histSubBits)
	return time.Duration((int64(1) << exp) * histUnit)
}

func checkQuantiles(t *testing.T, name string, values []time.Duration) {
	t.Helper()
	var h Histogram
	for _, v := range values {
		h.Record(v)
	}
	sorted := append([]time.Duration(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	if h.Count() != int64(len(values)) {
		t.Fatalf("%s: count %d, want %d", name, h.Count(), len(values))
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Fatalf("%s: min/max %v/%v, want exact %v/%v", name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		tol := maxQuantileError(want)
		if diff := got - want; diff > tol || diff < -tol {
			t.Errorf("%s q=%v: histogram %v vs oracle %v (|diff| %v > bucket width %v)",
				name, q, got, want, diff, tol)
		}
	}
}

// TestHistogramVsOracle checks quantiles against the exact sorted-slice
// oracle (within one bucket) across distributions spanning the whole
// latency range.
func TestHistogramVsOracle(t *testing.T) {
	r := xrand.New(12345)
	uniform := make([]time.Duration, 10000)
	for i := range uniform {
		uniform[i] = time.Duration(r.IntRange(50, 200_000)) * time.Microsecond
	}
	heavy := make([]time.Duration, 10000)
	for i := range heavy {
		// Log-uniform from 1µs to ~16s: exercises many octaves.
		heavy[i] = time.Duration(math.Exp(r.Float64()*16.6)) * time.Microsecond
	}
	spike := make([]time.Duration, 5000)
	for i := range spike {
		spike[i] = 750 * time.Microsecond // single-bucket degenerate case
	}
	checkQuantiles(t, "uniform", uniform)
	checkQuantiles(t, "log-uniform", heavy)
	checkQuantiles(t, "constant", spike)
}

// TestHistogramExactStats: count, min, max, and mean are exact (they
// bypass the buckets entirely).
func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	vals := []time.Duration{3 * time.Millisecond, 5 * time.Microsecond, 2 * time.Second, 42 * time.Millisecond}
	var sum time.Duration
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 5*time.Microsecond || h.Max() != 2*time.Second {
		t.Fatalf("min %v max %v", h.Min(), h.Max())
	}
	wantMean := time.Duration(int64(sum) / 4 / histUnit * histUnit) // µs-truncated
	if got := h.Mean(); got != wantMean {
		t.Fatalf("mean %v, want %v", got, wantMean)
	}
}

// TestHistogramMerge: merging shards must agree with recording the
// union directly, bucket by bucket.
func TestHistogramMerge(t *testing.T) {
	r := xrand.New(777)
	var a, b, whole Histogram
	for i := 0; i < 5000; i++ {
		v := time.Duration(r.IntRange(1, 10_000_000)) * time.Microsecond
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		whole.Record(v)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged stats diverge: count %d/%d min %v/%v max %v/%v",
			a.Count(), whole.Count(), a.Min(), whole.Min(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v vs direct %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHistogramEdges: zero/negative clamp, out-of-range clamp, empty
// histogram.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	h.Record(-5 * time.Second) // clamps to 0
	h.Record(0)
	h.Record(time.Hour) // beyond the top octave: clamps, max stays exact
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 {
		t.Fatalf("min %v", h.Min())
	}
	if h.Max() != time.Hour {
		t.Fatalf("max %v", h.Max())
	}
	if q := h.Quantile(1); q != time.Hour {
		t.Fatalf("q=1 gave %v, want the exact max", q)
	}
}

// TestHistogramRecordDoesNotAllocate pins the no-allocation hot-path
// property the Runner's measurement honesty depends on.
func TestHistogramRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per call", allocs)
	}
}
