// Package hdr is the log-linear (HDR-style) latency histogram shared by
// the load harness's client-side recording (internal/load) and the
// server-side /metrics exposition (internal/obs). It lives in its own
// leaf package so both can use the identical bucket geometry — the two
// views of a latency distribution are quantized the same way and can be
// compared bucket for bucket — without import cycles (load reaches the
// serving stack through internal/stream; obs is imported by the serving
// stack).
package hdr

import (
	"math/bits"
	"time"
)

// Histogram bucket geometry: values are measured in microseconds and
// placed in log-linear buckets — within each power-of-two octave the
// range is split into 2^histSubBits linear sub-buckets, so the relative
// quantization error is bounded by 1/2^(histSubBits-1) (~6%, halved
// again by reporting bucket midpoints) at every magnitude, the HDR
// histogram scheme. The whole structure is a fixed array: recording a
// latency is two or three integer ops and never allocates, which is what
// keeps the measurement path out of the measurement.
const (
	histUnit    = int64(time.Microsecond)
	histSubBits = 5  // 32 linear sub-buckets per octave
	histOctaves = 27 // covers [1µs, ~2147s); beyond clamps to the top
	histBuckets = histOctaves << histSubBits
)

// Histogram is a bounded log-linear latency histogram. The zero value is
// ready to use. It is not safe for concurrent use: the Runner gives each
// worker its own set and merges them afterwards, so the hot path needs
// no locks either.
type Histogram struct {
	counts   [histBuckets]int64
	n        int64
	sum      int64 // microseconds, for the mean
	min, max int64 // microseconds, exact
}

// bucketOf maps a microsecond value to its bucket index.
func bucketOf(u int64) int {
	if u < 0 {
		u = 0
	}
	exp := bits.Len64(uint64(u)) - histSubBits
	if exp < 0 {
		exp = 0
	}
	idx := exp<<histSubBits | int(u>>uint(exp))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketMid returns the midpoint (in microseconds) of bucket idx, the
// value Quantile reports for it.
func bucketMid(idx int) int64 {
	exp := uint(idx >> histSubBits)
	sub := int64(idx & (1<<histSubBits - 1))
	lo := sub << exp
	hi := (sub + 1) << exp
	return (lo + hi) / 2
}

// Record adds one latency observation. Negative durations (a request
// completed before its scheduled arrival cannot happen; clock skew can
// produce them in principle) clamp to zero rather than corrupting the
// geometry.
func (h *Histogram) Record(d time.Duration) {
	u := int64(d) / histUnit
	if u < 0 {
		u = 0
	}
	h.counts[bucketOf(u)]++
	h.sum += u
	if h.n == 0 || u < h.min {
		h.min = u
	}
	if u > h.max {
		h.max = u
	}
	h.n++
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the exact sum of the recorded values (kept outside the
// buckets, so it carries no quantization error).
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum * histUnit) }

// Bucket is one non-empty histogram bucket for exposition: Count
// observations fell in [previous bound, UpperMicros). Bounds come from
// the log-linear geometry, so consumers (the /metrics exposition in
// internal/obs) inherit the exact quantization the load harness records
// with — the two views of a latency distribution can never disagree.
type Bucket struct {
	// UpperMicros is the bucket's exclusive upper bound in microseconds;
	// every value it counts is <= UpperMicros-1, so treating it as an
	// inclusive "le" bound (Prometheus-style) is always correct.
	UpperMicros int64
	// Count is the number of observations in this bucket alone (not
	// cumulative).
	Count int64
}

// Buckets returns the non-empty buckets in ascending bound order. The
// per-bucket counts sum to exactly Count() and the bounds are strictly
// monotone (both test-pinned), which is what a cumulative exposition
// format needs to stay self-consistent.
func (h *Histogram) Buckets() []Bucket {
	if h.n == 0 {
		return nil
	}
	out := make([]Bucket, 0, 32)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		exp := uint(i >> histSubBits)
		sub := int64(i & (1<<histSubBits - 1))
		out = append(out, Bucket{UpperMicros: (sub + 1) << exp, Count: c})
	}
	return out
}

// Mean returns the exact mean of the recorded values (the sum is kept
// outside the buckets, so the mean carries no quantization error).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n * histUnit)
}

// Max returns the exact maximum recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max * histUnit) }

// Min returns the exact minimum recorded value.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min * histUnit) }

// Quantile returns the latency at quantile q in [0, 1]: the midpoint of
// the bucket holding the ceil(q*n)-th observation, clamped to the exact
// observed [min, max] so the tails never report values outside what
// actually happened.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		// The top of the distribution is tracked exactly; the last
		// bucket's midpoint would understate it.
		return h.Max()
	}
	rank := int64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMid(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v * histUnit)
		}
	}
	return h.Max()
}
