package matrixio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary vector-block format. The engine's snapshots persist the sketch
// index — one fixed-width float64 vector per id slot, with tombstoned
// slots absent — as raw little-endian bits guarded by a CRC, mirroring the
// symmetric-triangle format used for the Gram matrix: restoring must be
// bit-identical, and corruption must be detected, never silently loaded.
//
// Layout:
//
//	magic   "IOKVEC1\n" (8 bytes)
//	count   uint32 little-endian, number of id slots
//	dim     uint32 little-endian, vector width
//	slots   per slot: flag byte 0 (absent) or 1 (present);
//	        if present, dim float64 little-endian
//	crc     uint32 little-endian, CRC-32 (Castagnoli) over magic|count|dim|slots
//
// Reading consumes exactly the bytes of the block (no read-ahead), so a
// vector block can be embedded mid-stream — the engine snapshot places it
// between the entry section and the trailing Gram triangle.
const vectorMagic = "IOKVEC1\n"

// maxVectorDim bounds the persisted vector width; sketches are a few
// hundred buckets wide, so 1<<16 leaves generous headroom while keeping a
// corrupted header from forcing huge allocations.
const maxVectorDim = 1 << 16

// WriteVectors writes a vector block. Every non-nil vecs[i] must have
// length dim; nil entries are written as absent slots.
func WriteVectors(w io.Writer, dim int, vecs [][]float64) error {
	if dim <= 0 || dim > maxVectorDim {
		return fmt.Errorf("matrixio: vector width %d outside (0, %d]", dim, maxVectorDim)
	}
	if len(vecs) > maxTriangleDim {
		return fmt.Errorf("matrixio: %d vector slots exceed limit %d", len(vecs), maxTriangleDim)
	}
	crc := crc32.New(crcTable)
	cw := io.MultiWriter(w, crc)
	if _, err := io.WriteString(cw, vectorMagic); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(vecs)))
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(dim))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	// One reusable row buffer keeps the write at one syscall-sized chunk
	// per vector without a bufio layer (whose flush the caller would own).
	row := make([]byte, 1+8*dim)
	for i, vec := range vecs {
		if vec == nil {
			row[0] = 0
			if _, err := cw.Write(row[:1]); err != nil {
				return fmt.Errorf("matrixio: vector %d: %w", i, err)
			}
			continue
		}
		if len(vec) != dim {
			return fmt.Errorf("matrixio: vector %d has width %d, want %d", i, len(vec), dim)
		}
		row[0] = 1
		for j, v := range vec {
			binary.LittleEndian.PutUint64(row[1+8*j:], math.Float64bits(v))
		}
		if _, err := cw.Write(row); err != nil {
			return fmt.Errorf("matrixio: vector %d: %w", i, err)
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := w.Write(scratch[:4]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	return nil
}

// ReadVectors reads a block written by WriteVectors. maxCount bounds the
// slot count the untrusted header may claim (callers that know the true
// count from a validated outer structure pass it; <= 0 falls back to the
// triangle default); the width is bounded by maxVectorDim. The returned
// slice has one entry per slot, nil for absent slots, and every float64
// carries exactly the written bits.
func ReadVectors(r io.Reader, maxCount int) (dim int, vecs [][]float64, err error) {
	if maxCount <= 0 {
		maxCount = defaultReadDim
	}
	crc := crc32.New(crcTable)
	var head [16]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, fmt.Errorf("matrixio: vector header: %w", err)
	}
	crc.Write(head[:])
	if string(head[:8]) != vectorMagic {
		return 0, nil, fmt.Errorf("matrixio: bad vector magic %q", head[:8])
	}
	count := int(binary.LittleEndian.Uint32(head[8:12]))
	dim = int(binary.LittleEndian.Uint32(head[12:16]))
	if count > maxCount {
		return 0, nil, fmt.Errorf("matrixio: %d vector slots exceed limit %d", count, maxCount)
	}
	if dim <= 0 || dim > maxVectorDim {
		return 0, nil, fmt.Errorf("matrixio: vector width %d outside (0, %d]", dim, maxVectorDim)
	}
	vecs = make([][]float64, count)
	row := make([]byte, 8*dim)
	for i := range vecs {
		if _, err := io.ReadFull(r, row[:1]); err != nil {
			return 0, nil, fmt.Errorf("matrixio: vector %d flag: %w", i, err)
		}
		crc.Write(row[:1])
		switch row[0] {
		case 0:
			continue
		case 1:
		default:
			return 0, nil, fmt.Errorf("matrixio: vector %d: bad flag %d", i, row[0])
		}
		if _, err := io.ReadFull(r, row); err != nil {
			return 0, nil, fmt.Errorf("matrixio: vector %d: %w", i, err)
		}
		crc.Write(row)
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = math.Float64frombits(binary.LittleEndian.Uint64(row[8*j:]))
		}
		vecs[i] = vec
	}
	sum := crc.Sum32()
	if _, err := io.ReadFull(r, head[:4]); err != nil {
		return 0, nil, fmt.Errorf("matrixio: vector crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(head[:4]); got != sum {
		return 0, nil, fmt.Errorf("matrixio: vector crc mismatch: stored %08x, computed %08x", got, sum)
	}
	return dim, vecs, nil
}
