package matrixio

import (
	"bytes"
	"strings"
	"testing"

	"iokast/internal/linalg"
	"iokast/internal/xrand"
)

func randomSymmetric(n int, seed uint64) *linalg.Matrix {
	r := xrand.New(seed)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.Float64()*2000 - 1000
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestTriangleRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64} {
		m := randomSymmetric(n, uint64(n)+1)
		var buf bytes.Buffer
		if err := WriteSymmetricTriangle(&buf, m); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, err := ReadSymmetricTriangle(&buf)
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if got.Rows != n || got.Cols != n {
			t.Fatalf("n=%d: got %dx%d", n, got.Rows, got.Cols)
		}
		if n > 0 && got.MaxAbsDiff(m) != 0 {
			t.Fatalf("n=%d: round trip not bit-identical, diff %g", n, got.MaxAbsDiff(m))
		}
	}
}

func TestTriangleRejectsNonSquare(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSymmetricTriangle(&buf, linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestTriangleDetectsCorruption(t *testing.T) {
	m := randomSymmetric(9, 3)
	var buf bytes.Buffer
	if err := WriteSymmetricTriangle(&buf, m); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Every truncation must fail: either a short read or a CRC mismatch.
	for cut := 0; cut < len(good); cut++ {
		if _, err := ReadSymmetricTriangle(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(good))
		}
	}

	// A single flipped bit anywhere must fail. (A flip in the dimension
	// field may be caught as a short read or the size limit instead of the
	// CRC; any error is acceptable.)
	for pos := 0; pos < len(good); pos += 37 {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x40
		if _, err := ReadSymmetricTriangle(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d not detected", pos)
		}
	}
}

func TestTriangleRejectsHugeDimension(t *testing.T) {
	// Header claiming 2^30 rows must be rejected before allocating.
	head := []byte(triangleMagic)
	head = append(head, 0, 0, 0, 0x40) // little-endian 1<<30
	if _, err := ReadSymmetricTriangle(bytes.NewReader(head)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want dimension limit error", err)
	}
}
