package matrixio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"iokast/internal/linalg"
)

// Binary symmetric-triangle format. Gram matrices are symmetric, so the
// engine's snapshots persist only the lower triangle (diagonal included):
// n(n+1)/2 float64s instead of n^2, written little-endian and guarded by a
// CRC so a torn or bit-rotted snapshot is detected instead of silently
// restoring a wrong matrix.
//
// Layout:
//
//	magic   "IOKTRI1\n" (8 bytes)
//	n       uint32 little-endian
//	data    n(n+1)/2 float64 little-endian, rows of the lower triangle
//	        in order: (0,0), (1,0), (1,1), (2,0), ...
//	crc     uint32 little-endian, CRC-32 (Castagnoli) over magic|n|data
const triangleMagic = "IOKTRI1\n"

// maxTriangleDim is the absolute dimension ceiling for the format (writer
// and reader); defaultReadDim is the reader's default trust bound for the
// untrusted header — the n*n allocation happens before the trailing CRC
// can vouch for n, and 1<<14 caps it at 2 GiB. Callers that know the true
// dimension from an already-validated outer header (the engine snapshot
// does) pass it to ReadSymmetricTriangleMax to read bigger matrices.
const (
	maxTriangleDim = 1 << 20
	defaultReadDim = 1 << 14
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteSymmetricTriangle writes the lower triangle of a square matrix in the
// binary format above. The matrix is not checked for symmetry; the upper
// triangle is simply never written, and ReadSymmetricTriangle mirrors the
// lower one.
func WriteSymmetricTriangle(w io.Writer, m *linalg.Matrix) error {
	if m == nil {
		return fmt.Errorf("matrixio: nil matrix")
	}
	if m.Rows != m.Cols {
		return fmt.Errorf("matrixio: triangle of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	if m.Rows > maxTriangleDim {
		return fmt.Errorf("matrixio: dimension %d exceeds limit %d", m.Rows, maxTriangleDim)
	}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(triangleMagic); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(m.Rows))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := 0; j <= i; j++ {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(row[j]))
			if _, err := bw.Write(scratch[:]); err != nil {
				return fmt.Errorf("matrixio: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := w.Write(scratch[:4]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	return nil
}

// ReadSymmetricTriangle reads a matrix written by WriteSymmetricTriangle,
// mirroring the stored lower triangle into a full symmetric matrix. It
// fails on a wrong magic, an implausible dimension, a short read, or a CRC
// mismatch. Reading is buffered and may consume bytes past the trailer, so
// the triangle must be the final section of the stream it is read from.
func ReadSymmetricTriangle(r io.Reader) (*linalg.Matrix, error) {
	return ReadSymmetricTriangleMax(r, defaultReadDim)
}

// ReadSymmetricTriangleMax is ReadSymmetricTriangle with an explicit upper
// bound on the dimension. The header is untrusted until the CRC at the end
// checks out, but the n*n allocation must happen first — so when the true
// dimension is known from a validated outer structure, passing it here
// keeps a corrupted header from forcing an allocation bigger than the data
// it claims to describe.
func ReadSymmetricTriangleMax(r io.Reader, maxDim int) (*linalg.Matrix, error) {
	if maxDim <= 0 {
		maxDim = defaultReadDim
	}
	if maxDim > maxTriangleDim {
		maxDim = maxTriangleDim
	}
	// The CRC is fed only the bytes actually consumed as payload; reading
	// through a TeeReader would also checksum whatever the buffered reader
	// reads ahead, including the stored CRC itself.
	crc := crc32.New(crcTable)
	buf := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(buf, head[:]); err != nil {
		return nil, fmt.Errorf("matrixio: triangle header: %w", err)
	}
	crc.Write(head[:])
	if string(head[:8]) != triangleMagic {
		return nil, fmt.Errorf("matrixio: bad triangle magic %q", head[:8])
	}
	n := int(binary.LittleEndian.Uint32(head[8:12]))
	if n > maxDim {
		return nil, fmt.Errorf("matrixio: dimension %d exceeds limit %d", n, maxDim)
	}
	m := linalg.NewMatrix(n, n)
	var scratch [8]byte
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if _, err := io.ReadFull(buf, scratch[:]); err != nil {
				return nil, fmt.Errorf("matrixio: triangle data at (%d,%d): %w", i, j, err)
			}
			crc.Write(scratch[:])
			v := math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	sum := crc.Sum32()
	if _, err := io.ReadFull(buf, scratch[:4]); err != nil {
		return nil, fmt.Errorf("matrixio: triangle crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(scratch[:4]); got != sum {
		return nil, fmt.Errorf("matrixio: triangle crc mismatch: stored %08x, computed %08x", got, sum)
	}
	return m, nil
}
