package matrixio

import (
	"strings"
	"testing"

	"iokast/internal/linalg"
)

func sample() Named {
	return Named{
		Names:  []string{"a", "b"},
		Matrix: linalg.FromRows([][]float64{{1, 0.25}, {0.25, 1}}),
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix.MaxAbsDiff(sample().Matrix) != 0 {
		t.Fatal("matrix changed in JSON round trip")
	}
	if len(got.Names) != 2 || got.Names[1] != "b" {
		t.Fatalf("names %v", got.Names)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sample()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,a,b\n") {
		t.Fatalf("csv header: %q", out)
	}
	got, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix.MaxAbsDiff(sample().Matrix) > 1e-12 {
		t.Fatal("matrix changed in CSV round trip")
	}
	if got.Names[0] != "a" {
		t.Fatalf("names %v", got.Names)
	}
}

func TestRectangularWithColumns(t *testing.T) {
	n := Named{
		Names:   []string{"t1", "t2", "t3"},
		Columns: []string{"PC1", "PC2"},
		Matrix:  linalg.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}}),
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, n); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "name,PC1,PC2\n") {
		t.Fatalf("header: %q", sb.String())
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Matrix.Rows != 3 || got.Matrix.Cols != 2 || got.Columns[1] != "PC2" {
		t.Fatalf("shape/names wrong: %+v", got)
	}
}

func TestUnnamedFallback(t *testing.T) {
	n := Named{Matrix: linalg.FromRows([][]float64{{7}})}
	var sb strings.Builder
	if err := WriteCSV(&sb, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x0") {
		t.Fatalf("fallback names missing: %q", sb.String())
	}
}

func TestErrors(t *testing.T) {
	if err := WriteJSON(&strings.Builder{}, Named{}); err == nil {
		t.Fatal("nil matrix accepted (json)")
	}
	if err := WriteCSV(&strings.Builder{}, Named{}); err == nil {
		t.Fatal("nil matrix accepted (csv)")
	}
	if _, err := ReadJSON(strings.NewReader("{bogus")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"rows":2,"cols":1,"data":[[1]]}`)); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"rows":1,"cols":2,"data":[[1]]}`)); err == nil {
		t.Fatal("col-count mismatch accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"rows":1,"cols":1,"data":[[1]],"names":["a","b"]}`)); err == nil {
		t.Fatal("name-count mismatch accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("wrong,a\nx,1\n")); err == nil {
		t.Fatal("missing name header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("name,a\nx,notanumber\n")); err == nil {
		t.Fatal("bad float accepted")
	}
}
