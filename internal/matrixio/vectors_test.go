package matrixio

import (
	"bytes"
	"math"
	"testing"
)

func testVecs() (int, [][]float64) {
	return 4, [][]float64{
		{1, 0.5, -0.25, 1e-300},
		nil, // tombstone
		{math.Inf(1), math.NaN(), -0, 42},
		nil,
		{0, 0, 0, 0},
	}
}

func TestVectorsRoundTrip(t *testing.T) {
	dim, vecs := testVecs()
	var buf bytes.Buffer
	if err := WriteVectors(&buf, dim, vecs); err != nil {
		t.Fatal(err)
	}
	// Trailing bytes after the block must be left unread (the engine
	// snapshot places the Gram triangle there).
	buf.WriteString("TRAILER")
	gotDim, got, err := ReadVectors(&buf, len(vecs))
	if err != nil {
		t.Fatal(err)
	}
	if gotDim != dim || len(got) != len(vecs) {
		t.Fatalf("read %d slots of width %d, want %d of %d", len(got), gotDim, len(vecs), dim)
	}
	for i, vec := range vecs {
		if (vec == nil) != (got[i] == nil) {
			t.Fatalf("slot %d presence mismatch", i)
		}
		for j, v := range vec {
			if math.Float64bits(v) != math.Float64bits(got[i][j]) {
				t.Fatalf("slot %d[%d]: %x != %x", i, j, math.Float64bits(v), math.Float64bits(got[i][j]))
			}
		}
	}
	if buf.String() != "TRAILER" {
		t.Fatalf("block read consumed trailing bytes; %q left", buf.String())
	}
}

func TestVectorsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVectors(&buf, 8, nil); err != nil {
		t.Fatal(err)
	}
	dim, vecs, err := ReadVectors(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 8 || len(vecs) != 0 {
		t.Fatalf("got %d slots of width %d", len(vecs), dim)
	}
}

func TestVectorsWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVectors(&buf, 0, nil); err == nil {
		t.Fatal("width 0 accepted")
	}
	if err := WriteVectors(&buf, 4, [][]float64{{1, 2}}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestVectorsCorruptionDetected(t *testing.T) {
	dim, vecs := testVecs()
	var buf bytes.Buffer
	if err := WriteVectors(&buf, dim, vecs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, flip := range []int{0, 9, 20, len(raw) - 2} {
		dam := append([]byte(nil), raw...)
		dam[flip] ^= 0x40
		if _, _, err := ReadVectors(bytes.NewReader(dam), len(vecs)); err == nil {
			t.Fatalf("flipping byte %d went undetected", flip)
		}
	}
	for cut := 1; cut < len(raw); cut += 7 {
		if _, _, err := ReadVectors(bytes.NewReader(raw[:cut]), len(vecs)); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
	// Slot-count limit: a reader told to expect fewer slots must refuse.
	if _, _, err := ReadVectors(bytes.NewReader(raw), len(vecs)-1); err == nil {
		t.Fatal("slot count above the caller's bound accepted")
	}
}
