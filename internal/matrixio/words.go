package matrixio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary word-vector-block format: the uint64 sibling of the float64
// vector block. The engine's snapshots persist the ANN band signatures —
// one fixed-width []uint64 per id slot, tombstoned slots absent — so a
// restore can rebuild the LSH buckets without recomputing every
// signature. Same framing discipline as the vector block: little-endian
// bits guarded by a CRC-32 (Castagnoli), exact byte consumption so the
// block can sit mid-stream.
//
// Layout:
//
//	magic   "IOKSIG1\n" (8 bytes)
//	count   uint32 little-endian, number of id slots
//	width   uint32 little-endian, words per signature
//	slots   per slot: flag byte 0 (absent) or 1 (present);
//	        if present, width uint64 little-endian
//	crc     uint32 little-endian, CRC-32 (Castagnoli) over magic|count|width|slots
const wordMagic = "IOKSIG1\n"

// maxWordWidth bounds the persisted signature width; the ANN index caps
// bands at a few hundred, so 1<<12 leaves headroom while keeping a
// corrupted header from forcing huge allocations.
const maxWordWidth = 1 << 12

// WriteWordVectors writes a word-vector block. Every non-nil rows[i] must
// have length width; nil entries are written as absent slots.
func WriteWordVectors(w io.Writer, width int, rows [][]uint64) error {
	if width <= 0 || width > maxWordWidth {
		return fmt.Errorf("matrixio: word-vector width %d outside (0, %d]", width, maxWordWidth)
	}
	if len(rows) > maxTriangleDim {
		return fmt.Errorf("matrixio: %d word-vector slots exceed limit %d", len(rows), maxTriangleDim)
	}
	crc := crc32.New(crcTable)
	cw := io.MultiWriter(w, crc)
	if _, err := io.WriteString(cw, wordMagic); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(rows)))
	binary.LittleEndian.PutUint32(scratch[4:8], uint32(width))
	if _, err := cw.Write(scratch[:8]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	buf := make([]byte, 1+8*width)
	for i, row := range rows {
		if row == nil {
			buf[0] = 0
			if _, err := cw.Write(buf[:1]); err != nil {
				return fmt.Errorf("matrixio: word vector %d: %w", i, err)
			}
			continue
		}
		if len(row) != width {
			return fmt.Errorf("matrixio: word vector %d has width %d, want %d", i, len(row), width)
		}
		buf[0] = 1
		for j, v := range row {
			binary.LittleEndian.PutUint64(buf[1+8*j:], v)
		}
		if _, err := cw.Write(buf); err != nil {
			return fmt.Errorf("matrixio: word vector %d: %w", i, err)
		}
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc.Sum32())
	if _, err := w.Write(scratch[:4]); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	return nil
}

// ReadWordVectors reads a block written by WriteWordVectors. maxCount
// bounds the slot count the untrusted header may claim (<= 0 falls back
// to the triangle default). The returned slice has one entry per slot,
// nil for absent slots.
func ReadWordVectors(r io.Reader, maxCount int) (width int, rows [][]uint64, err error) {
	if maxCount <= 0 {
		maxCount = defaultReadDim
	}
	crc := crc32.New(crcTable)
	var head [16]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, fmt.Errorf("matrixio: word-vector header: %w", err)
	}
	crc.Write(head[:])
	if string(head[:8]) != wordMagic {
		return 0, nil, fmt.Errorf("matrixio: bad word-vector magic %q", head[:8])
	}
	count := int(binary.LittleEndian.Uint32(head[8:12]))
	width = int(binary.LittleEndian.Uint32(head[12:16]))
	if count > maxCount {
		return 0, nil, fmt.Errorf("matrixio: %d word-vector slots exceed limit %d", count, maxCount)
	}
	if width <= 0 || width > maxWordWidth {
		return 0, nil, fmt.Errorf("matrixio: word-vector width %d outside (0, %d]", width, maxWordWidth)
	}
	rows = make([][]uint64, count)
	buf := make([]byte, 8*width)
	for i := range rows {
		if _, err := io.ReadFull(r, buf[:1]); err != nil {
			return 0, nil, fmt.Errorf("matrixio: word vector %d flag: %w", i, err)
		}
		crc.Write(buf[:1])
		switch buf[0] {
		case 0:
			continue
		case 1:
		default:
			return 0, nil, fmt.Errorf("matrixio: word vector %d: bad flag %d", i, buf[0])
		}
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, fmt.Errorf("matrixio: word vector %d: %w", i, err)
		}
		crc.Write(buf)
		row := make([]uint64, width)
		for j := range row {
			row[j] = binary.LittleEndian.Uint64(buf[8*j:])
		}
		rows[i] = row
	}
	sum := crc.Sum32()
	if _, err := io.ReadFull(r, head[:4]); err != nil {
		return 0, nil, fmt.Errorf("matrixio: word-vector crc: %w", err)
	}
	if got := binary.LittleEndian.Uint32(head[:4]); got != sum {
		return 0, nil, fmt.Errorf("matrixio: word-vector crc mismatch: stored %08x, computed %08x", got, sum)
	}
	return width, rows, nil
}
