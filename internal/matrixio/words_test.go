package matrixio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestWordVectorsRoundTrip(t *testing.T) {
	rows := [][]uint64{
		{0xdeadbeef, 0, 1<<64 - 1},
		nil, // tombstoned slot
		{1, 2, 3},
		nil,
	}
	var buf bytes.Buffer
	if err := WriteWordVectors(&buf, 3, rows); err != nil {
		t.Fatal(err)
	}
	trailer := []byte("after-block")
	buf.Write(trailer)

	width, got, err := ReadWordVectors(&buf, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if width != 3 {
		t.Fatalf("width = %d, want 3", width)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d slots, want %d", len(got), len(rows))
	}
	for i, row := range rows {
		if (row == nil) != (got[i] == nil) {
			t.Fatalf("slot %d presence mismatch", i)
		}
		for j := range row {
			if got[i][j] != row[j] {
				t.Fatalf("slot %d word %d = %#x, want %#x", i, j, got[i][j], row[j])
			}
		}
	}
	// The reader must consume exactly its block and leave the trailer.
	rest, err := io.ReadAll(&buf)
	if err != nil || !bytes.Equal(rest, trailer) {
		t.Fatalf("trailing bytes = %q, %v; want %q", rest, err, trailer)
	}
}

func TestWordVectorsEmptyAndZeroSlots(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWordVectors(&buf, 5, nil); err != nil {
		t.Fatal(err)
	}
	width, rows, err := ReadWordVectors(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if width != 5 || len(rows) != 0 {
		t.Fatalf("got width %d, %d rows; want 5, 0", width, len(rows))
	}
}

func TestWordVectorsWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWordVectors(&buf, 0, nil); err == nil {
		t.Error("width 0 accepted")
	}
	if err := WriteWordVectors(&buf, maxWordWidth+1, nil); err == nil {
		t.Error("oversized width accepted")
	}
	if err := WriteWordVectors(&buf, 2, [][]uint64{{1, 2, 3}}); err == nil {
		t.Error("row wider than declared width accepted")
	}
}

func TestWordVectorsDetectsCorruption(t *testing.T) {
	encode := func() []byte {
		var buf bytes.Buffer
		if err := WriteWordVectors(&buf, 2, [][]uint64{{7, 8}, nil, {9, 10}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	img := encode()

	// Flip one payload byte: the CRC must catch it.
	corrupt := append([]byte(nil), img...)
	corrupt[len(wordMagic)+8+3] ^= 0xff
	if _, _, err := ReadWordVectors(bytes.NewReader(corrupt), 10); err == nil ||
		!strings.Contains(err.Error(), "crc") {
		t.Errorf("flipped payload byte: err = %v, want crc mismatch", err)
	}

	// Bad magic.
	corrupt = append([]byte(nil), img...)
	corrupt[0] ^= 0xff
	if _, _, err := ReadWordVectors(bytes.NewReader(corrupt), 10); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v, want magic error", err)
	}

	// Bad slot flag (2): refused before the CRC.
	corrupt = append([]byte(nil), img...)
	corrupt[len(wordMagic)+8] = 2
	if _, _, err := ReadWordVectors(bytes.NewReader(corrupt), 10); err == nil ||
		!strings.Contains(err.Error(), "flag") {
		t.Errorf("bad flag: err = %v, want flag error", err)
	}

	// Truncations at every prefix must error, never panic or succeed.
	for cut := 0; cut < len(img); cut++ {
		if _, _, err := ReadWordVectors(bytes.NewReader(img[:cut]), 10); err == nil {
			t.Fatalf("truncation at %d bytes read successfully", cut)
		}
	}
}

func TestWordVectorsRejectsHugeHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWordVectors(&buf, 1, [][]uint64{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	// A reader with a tighter bound than the stored count must refuse it
	// before allocating.
	if _, _, err := ReadWordVectors(bytes.NewReader(buf.Bytes()), 2); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Errorf("count above maxCount: err = %v, want limit error", err)
	}

	// Width outside the hard bound is refused even with a generous count.
	img := buf.Bytes()
	corrupt := append([]byte(nil), img...)
	corrupt[12] = 0xff
	corrupt[13] = 0xff
	if _, _, err := ReadWordVectors(bytes.NewReader(corrupt), 10); err == nil ||
		!strings.Contains(err.Error(), "width") {
		t.Errorf("huge width: err = %v, want width error", err)
	}
}
