// Package matrixio serialises matrices (similarity, distance, KPCA
// coordinates) with row/column names as CSV and JSON, so the cmd/ tools
// can hand results to each other and to external plotting without
// recomputing kernels.
package matrixio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"iokast/internal/linalg"
)

// Named is a matrix with optional row names (column names are the row
// names for the square matrices this project produces; rectangular
// matrices such as KPCA coordinates use component labels).
type Named struct {
	Names   []string       `json:"names,omitempty"`
	Columns []string       `json:"columns,omitempty"`
	Matrix  *linalg.Matrix `json:"-"`
}

// jsonNamed is the wire form; the matrix payload is row-major.
type jsonNamed struct {
	Names   []string    `json:"names,omitempty"`
	Columns []string    `json:"columns,omitempty"`
	Rows    int         `json:"rows"`
	Cols    int         `json:"cols"`
	Data    [][]float64 `json:"data"`
}

// WriteJSON encodes the named matrix as JSON.
func WriteJSON(w io.Writer, n Named) error {
	if n.Matrix == nil {
		return fmt.Errorf("matrixio: nil matrix")
	}
	wire := jsonNamed{
		Names:   n.Names,
		Columns: n.Columns,
		Rows:    n.Matrix.Rows,
		Cols:    n.Matrix.Cols,
		Data:    make([][]float64, n.Matrix.Rows),
	}
	for i := 0; i < n.Matrix.Rows; i++ {
		wire.Data[i] = append([]float64(nil), n.Matrix.Row(i)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(wire)
}

// ReadJSON decodes a named matrix from JSON.
func ReadJSON(r io.Reader) (Named, error) {
	var wire jsonNamed
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return Named{}, fmt.Errorf("matrixio: %w", err)
	}
	if wire.Rows < 0 || wire.Cols < 0 || len(wire.Data) != wire.Rows {
		return Named{}, fmt.Errorf("matrixio: inconsistent shape %dx%d with %d rows", wire.Rows, wire.Cols, len(wire.Data))
	}
	m := linalg.NewMatrix(wire.Rows, wire.Cols)
	for i, row := range wire.Data {
		if len(row) != wire.Cols {
			return Named{}, fmt.Errorf("matrixio: row %d has %d values, want %d", i, len(row), wire.Cols)
		}
		copy(m.Row(i), row)
	}
	if wire.Names != nil && len(wire.Names) != wire.Rows {
		return Named{}, fmt.Errorf("matrixio: %d names for %d rows", len(wire.Names), wire.Rows)
	}
	return Named{Names: wire.Names, Columns: wire.Columns, Matrix: m}, nil
}

// WriteCSV encodes the named matrix as CSV with a header row. The first
// column holds row names (or x<i> when unnamed).
func WriteCSV(w io.Writer, n Named) error {
	if n.Matrix == nil {
		return fmt.Errorf("matrixio: nil matrix")
	}
	cw := csv.NewWriter(w)
	header := make([]string, n.Matrix.Cols+1)
	header[0] = "name"
	for j := 0; j < n.Matrix.Cols; j++ {
		header[j+1] = columnName(n, j)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("matrixio: %w", err)
	}
	record := make([]string, n.Matrix.Cols+1)
	for i := 0; i < n.Matrix.Rows; i++ {
		record[0] = rowName(n, i)
		for j, v := range n.Matrix.Row(i) {
			record[j+1] = strconv.FormatFloat(v, 'g', 12, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("matrixio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a matrix written by WriteCSV.
func ReadCSV(r io.Reader) (Named, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return Named{}, fmt.Errorf("matrixio: %w", err)
	}
	if len(records) < 1 {
		return Named{}, fmt.Errorf("matrixio: empty csv")
	}
	header := records[0]
	if len(header) < 1 || header[0] != "name" {
		return Named{}, fmt.Errorf("matrixio: missing name header")
	}
	cols := len(header) - 1
	rows := len(records) - 1
	m := linalg.NewMatrix(rows, cols)
	names := make([]string, rows)
	for i, rec := range records[1:] {
		if len(rec) != cols+1 {
			return Named{}, fmt.Errorf("matrixio: row %d has %d fields, want %d", i+1, len(rec), cols+1)
		}
		names[i] = rec[0]
		for j, s := range rec[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return Named{}, fmt.Errorf("matrixio: row %d col %d: %w", i+1, j+1, err)
			}
			m.Set(i, j, v)
		}
	}
	return Named{Names: names, Columns: header[1:], Matrix: m}, nil
}

func rowName(n Named, i int) string {
	if i < len(n.Names) && n.Names[i] != "" {
		return n.Names[i]
	}
	return fmt.Sprintf("x%d", i)
}

func columnName(n Named, j int) string {
	if j < len(n.Columns) && n.Columns[j] != "" {
		return n.Columns[j]
	}
	// Square named matrices label columns like rows.
	if n.Matrix.Rows == n.Matrix.Cols && j < len(n.Names) && n.Names[j] != "" {
		return n.Names[j]
	}
	return fmt.Sprintf("x%d", j)
}
