package experiments

import (
	"fmt"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/plot"
)

// ExtendedGroups is the expected clustering of the 6-category dataset:
// the paper's three groups plus one per extension category.
var ExtendedGroups = [][]string{{"A"}, {"B"}, {"C", "D"}, {"E"}, {"F"}}

// RunX1 is the generalisation experiment beyond the paper: adding two new
// pattern families (E: two-phase collective I/O, F: log appending) must
// not disturb the original structure — the byte-aware Kast kernel at cut
// weight 2 should identify five groups: {A},{B},{C∪D},{E},{F}.
func RunX1(seed uint64) (*Report, error) {
	ds, err := iogen.BuildExtended(iogen.ExtendedOptions(seed))
	if err != nil {
		return nil, err
	}
	xs := core.ConvertAll(ds.Traces, core.Options{})
	raw := kernel.Gram(&core.Kast{CutWeight: 2}, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, 2)
	if err != nil {
		return nil, err
	}
	rep, clipped, err := kernel.PSDRepair(norm)
	if err != nil {
		return nil, err
	}
	dg, err := cluster.Cluster(kernel.KernelDistance(rep), cluster.Single)
	if err != nil {
		return nil, err
	}
	assign := dg.Cut(5)
	exact := cluster.GroupsExactlyMatch(assign, ds.Labels, ExtendedGroups)
	mis := cluster.Misplaced(assign, ds.Labels, ExtendedGroups)
	naturalK := dg.NaturalK(8)

	detail := plot.RenderClusterSummary(assign, ds.Labels) +
		fmt.Sprintf("clipped=%d naturalK=%d misplaced=%d\n", clipped, naturalK, mis)
	return &Report{
		ID:    "X1",
		Title: "Extension: 6-category generalisation (beyond the paper)",
		Pass:  exact && mis == 0,
		Summary: fmt.Sprintf("expected {A},{B},{C+D},{E},{F} | measured: exact=%v misplaced=%d naturalK=%d",
			exact, mis, naturalK),
		Detail: detail,
	}, nil
}
