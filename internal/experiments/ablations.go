package experiments

import (
	"fmt"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/plot"
	"iokast/internal/tree"
)

// Ablations beyond the paper: they quantify the design decisions DESIGN.md
// pins down where the paper is informal.

// RunA1 ablates the compression pass count (§3.1 "repeated once again"):
// it reports the mean string length and whether the headline clustering
// (E3) survives with 0, 1, 2, and fixpoint passes. The finding: the
// paper's second pass is load-bearing — one pass leaves the alternating
// patterns unfolded and the grouping degrades — so the Pass criterion is
// that the paper configuration (2 passes) and the fixpoint agree and
// reproduce the grouping, while a single pass does not.
func RunA1(seed uint64) (*Report, error) {
	ds, err := iogen.Build(iogen.PaperOptions(seed))
	if err != nil {
		return nil, err
	}
	tbl := &plot.Table{Header: []string{"passes", "mean tokens", "exact {A},{B},{C+D}"}}
	matchByPasses := map[int]bool{}
	baselineLen := 0.0
	for _, passes := range []int{0, 1, 2, -1} {
		opt := core.Options{Compress: tree.CompressOptions{Passes: passes}}
		if passes == 0 {
			opt.Compress.Passes = core.NoCompression
		}
		xs := core.ConvertAll(ds.Traces, opt)
		mean := 0.0
		for _, x := range xs {
			mean += float64(len(x))
		}
		mean /= float64(len(xs))
		if passes == 0 {
			baselineLen = mean
		}

		exact := false
		// The uncompressed strings are two orders of magnitude longer;
		// running the kernel there is the point of the measurement, but
		// only the compressed variants are required to match the paper.
		if passes != 0 {
			g := kernel.Gram(&core.Kast{CutWeight: 2}, xs)
			norm, err := core.NormalizeGramPaper(g, xs, 2)
			if err != nil {
				return nil, err
			}
			rep, _, err := kernel.PSDRepair(norm)
			if err != nil {
				return nil, err
			}
			sim := &SimilarityResult{Repaired: rep}
			assign, _, err := sim.ClusterCut(3)
			if err != nil {
				return nil, err
			}
			exact = cluster.GroupsExactlyMatch(assign, ds.Labels, PaperGroups)
			matchByPasses[passes] = exact
		}
		name := fmt.Sprint(passes)
		if passes == -1 {
			name = "fixpoint"
		}
		if passes == 0 {
			name = "none"
			tbl.Add(name, mean, "(kernel not run)")
			continue
		}
		tbl.Add(name, mean, exact)
	}
	pass := matchByPasses[2] && matchByPasses[-1]
	return &Report{
		ID:    "A1",
		Title: "Ablation: compression passes",
		Pass:  pass,
		Summary: fmt.Sprintf("uncompressed traces average %.0f tokens; paper's 2-pass config reproduces grouping=%v, fixpoint=%v, single pass=%v (the second pass is load-bearing)",
			baselineLen, matchByPasses[2], matchByPasses[-1], matchByPasses[1]),
		Detail: tbl.Render(),
	}, nil
}

// RunA2 ablates the normalisation: the paper's Eq. 12 weight-product form
// versus true cosine normalisation. Both should identify the same three
// groups on the byte-aware strings.
func RunA2(p *Pipeline) (*Report, error) {
	xs := p.Strings(true)
	labels := p.Labels()
	tbl := &plot.Table{Header: []string{"normalisation", "exact {A},{B},{C+D}", "naturalK"}}
	pass := true

	raw := kernel.Gram(&core.Kast{CutWeight: 2}, xs)
	for _, form := range []string{"eq12", "cosine"} {
		var norm = raw
		var err error
		if form == "eq12" {
			norm, err = core.NormalizeGramPaper(raw, xs, 2)
			if err != nil {
				return nil, err
			}
		} else {
			norm = kernel.NormalizeCosine(raw)
		}
		rep, _, err := kernel.PSDRepair(norm)
		if err != nil {
			return nil, err
		}
		sim := &SimilarityResult{Repaired: rep}
		assign, dg, err := sim.ClusterCut(3)
		if err != nil {
			return nil, err
		}
		exact := cluster.GroupsExactlyMatch(assign, labels, PaperGroups)
		tbl.Add(form, exact, dg.NaturalK(6))
		if !exact {
			pass = false
		}
	}
	return &Report{
		ID:      "A2",
		Title:   "Ablation: Eq. 12 vs cosine normalisation",
		Pass:    pass,
		Summary: fmt.Sprintf("both normalisations reproduce the paper grouping=%v", pass),
		Detail:  tbl.Render(),
	}, nil
}

// RunA3 ablates the viability rule (DESIGN.md: per-occurrence max vs total
// weight) on the byte-aware strings.
func RunA3(p *Pipeline) (*Report, error) {
	xs := p.Strings(true)
	labels := p.Labels()
	tbl := &plot.Table{Header: []string{"viability", "exact {A},{B},{C+D}", "naturalK"}}
	pass := true
	for _, via := range []core.Viability{core.ViaMaxOccurrence, core.ViaTotalWeight} {
		raw := kernel.Gram(&core.Kast{CutWeight: 2, Viability: via}, xs)
		norm, err := core.NormalizeGramPaper(raw, xs, 2)
		if err != nil {
			return nil, err
		}
		rep, _, err := kernel.PSDRepair(norm)
		if err != nil {
			return nil, err
		}
		sim := &SimilarityResult{Repaired: rep}
		assign, dg, err := sim.ClusterCut(3)
		if err != nil {
			return nil, err
		}
		exact := cluster.GroupsExactlyMatch(assign, labels, PaperGroups)
		tbl.Add(via.String(), exact, dg.NaturalK(6))
		if !exact {
			pass = false
		}
	}
	return &Report{
		ID:      "A3",
		Title:   "Ablation: viability rule",
		Pass:    pass,
		Summary: fmt.Sprintf("both viability readings reproduce the paper grouping=%v", pass),
		Detail:  tbl.Render(),
	}, nil
}

// RunAblations executes A1-A3.
func RunAblations(seed uint64) ([]*Report, error) {
	p, err := NewPipeline(seed)
	if err != nil {
		return nil, err
	}
	a1, err := RunA1(seed)
	if err != nil {
		return nil, err
	}
	a2, err := RunA2(p)
	if err != nil {
		return nil, err
	}
	a3, err := RunA3(p)
	if err != nil {
		return nil, err
	}
	return []*Report{a1, a2, a3}, nil
}
