package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedPipeline builds the default pipeline once for all tests.
var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

func testPipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = NewPipeline(DefaultSeed)
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestPipelineShape(t *testing.T) {
	p := testPipeline(t)
	if p.Dataset.Len() != 110 {
		t.Fatalf("dataset size %d", p.Dataset.Len())
	}
	if len(p.StringsBytes) != 110 || len(p.StringsNoBytes) != 110 {
		t.Fatal("string variants missing")
	}
	for i, s := range p.StringsBytes {
		if err := s.Validate(); err != nil {
			t.Fatalf("string %d: %v", i, err)
		}
	}
	if len(p.Strings(true)) != 110 || len(p.Strings(false)) != 110 {
		t.Fatal("Strings accessor wrong")
	}
}

func TestE1WorkedExample(t *testing.T) {
	r := RunE1()
	if !r.Pass {
		t.Fatalf("E1 failed:\n%s", r.Render())
	}
}

func TestE2KPCASeparatesPaperGroups(t *testing.T) {
	r, err := RunE2(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E2 failed:\n%s", r.Render())
	}
	if !strings.Contains(r.Detail, "PC1") {
		t.Fatal("E2 detail lacks the scatter plot")
	}
}

func TestE3ClusteringMatchesFig7(t *testing.T) {
	r, err := RunE3(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E3 failed:\n%s", r.Render())
	}
}

func TestE4BlendedKPCA(t *testing.T) {
	r, err := RunE4(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E4 failed:\n%s", r.Render())
	}
}

func TestE5BlendedClustering(t *testing.T) {
	r, err := RunE5(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E5 failed:\n%s", r.Render())
	}
}

func TestE6NoByteSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := RunE6(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E6 failed:\n%s", r.Render())
	}
}

func TestE7CostClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r, err := RunE7(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E7 failed:\n%s", r.Render())
	}
}

func TestE8KSpectrumFails(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := RunE8(testPipeline(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("E8 failed:\n%s", r.Render())
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	reports, err := RunAblations(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s failed:\n%s", r.ID, r.Render())
		}
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{ID: "X", Title: "t", Pass: true, Summary: "s", Detail: "d"}
	out := r.Render()
	for _, want := range []string{"X", "MATCH", "s", "d"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render %q lacks %q", out, want)
		}
	}
	r.Pass = false
	if !strings.Contains(r.Render(), "DIFFER") {
		t.Fatal("fail status missing")
	}
}

func TestStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The headline result must not depend on the lucky seed: E3 has to
	// reproduce on other seeds too.
	for _, seed := range []uint64{1, 7} {
		p, err := NewPipeline(seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunE3(p)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass {
			t.Errorf("seed %d: E3 failed:\n%s", seed, r.Render())
		}
	}
}

func TestX1ExtendedCategories(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := RunX1(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("X1 failed:\n%s", r.Render())
	}
}
