// Package experiments reproduces every figure and evaluation claim of the
// paper (the experiment index E1-E8 in DESIGN.md). Each runner produces a
// deterministic textual Report; cmd/iokexp prints them and EXPERIMENTS.md
// records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"strings"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/kpca"
	"iokast/internal/linalg"
	"iokast/internal/token"
)

// DefaultSeed is the dataset seed used by all recorded experiments.
const DefaultSeed = 20170904 // PaCT 2017 conference start date

// PaperGroups is the clustering the paper reports for the byte-aware Kast
// kernel: A alone, B alone, C and D merged.
var PaperGroups = [][]string{{"A"}, {"B"}, {"C", "D"}}

// NoByteSmallCutGroups is the clustering the paper reports for byte-free
// strings at small cut weights: B alone, A+C+D merged.
var NoByteSmallCutGroups = [][]string{{"B"}, {"A", "C", "D"}}

// BlendedGroups is the clustering the paper reports for the Blended
// Spectrum baseline: A alone, B+C+D merged.
var BlendedGroups = [][]string{{"A"}, {"B", "C", "D"}}

// Pipeline holds the shared dataset and its two string representations.
type Pipeline struct {
	Dataset        *iogen.Dataset
	StringsBytes   []token.String // byte-aware representation
	StringsNoBytes []token.String // byte-free representation
}

// NewPipeline builds the paper dataset for a seed and converts every trace
// to both string variants.
func NewPipeline(seed uint64) (*Pipeline, error) {
	ds, err := iogen.Build(iogen.PaperOptions(seed))
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Dataset:        ds,
		StringsBytes:   core.ConvertAll(ds.Traces, core.Options{}),
		StringsNoBytes: core.ConvertAll(ds.Traces, core.Options{IgnoreBytes: true}),
	}, nil
}

// Strings returns the representation for the requested variant.
func (p *Pipeline) Strings(withBytes bool) []token.String {
	if withBytes {
		return p.StringsBytes
	}
	return p.StringsNoBytes
}

// Labels returns the ground-truth labels.
func (p *Pipeline) Labels() []string { return p.Dataset.Labels }

// SimilarityResult is a fully post-processed similarity matrix.
type SimilarityResult struct {
	Raw        *linalg.Matrix // kernel values before normalisation
	Normalized *linalg.Matrix // after the kernel's normalisation scheme
	Repaired   *linalg.Matrix // after clipping negative eigenvalues
	Clipped    int            // number of clipped eigenvalues
}

// KastSimilarity computes the paper's similarity matrix: raw Kast Gram,
// Eq. 12 normalisation, then PSD repair ("If the matrices presented
// negative eigenvalues, they were replaced by zero and the matrices
// rebuilt").
func (p *Pipeline) KastSimilarity(cutWeight int, withBytes bool) (*SimilarityResult, error) {
	xs := p.Strings(withBytes)
	k := &core.Kast{CutWeight: cutWeight}
	raw := kernel.Gram(k, xs)
	norm, err := core.NormalizeGramPaper(raw, xs, cutWeight)
	if err != nil {
		return nil, err
	}
	repaired, clipped, err := kernel.PSDRepair(norm)
	if err != nil {
		return nil, err
	}
	return &SimilarityResult{Raw: raw, Normalized: norm, Repaired: repaired, Clipped: clipped}, nil
}

// BaselineSimilarity computes the same post-processed matrix for any
// feature-map baseline kernel, using cosine normalisation.
func (p *Pipeline) BaselineSimilarity(k kernel.Kernel, withBytes bool) (*SimilarityResult, error) {
	xs := p.Strings(withBytes)
	raw := kernel.Gram(k, xs)
	norm := kernel.NormalizeCosine(raw)
	repaired, clipped, err := kernel.PSDRepair(norm)
	if err != nil {
		return nil, err
	}
	return &SimilarityResult{Raw: raw, Normalized: norm, Repaired: repaired, Clipped: clipped}, nil
}

// ClusterCut runs single-linkage clustering on the repaired similarity and
// cuts at k clusters.
func (s *SimilarityResult) ClusterCut(k int) ([]int, *cluster.Dendrogram, error) {
	d := kernel.KernelDistance(s.Repaired)
	dg, err := cluster.Cluster(d, cluster.Single)
	if err != nil {
		return nil, nil, err
	}
	return dg.Cut(k), dg, nil
}

// KPCA projects the repaired similarity onto the top components.
func (s *SimilarityResult) KPCA(components int) (*kpca.Result, error) {
	return kpca.Analyze(s.Repaired, kpca.Options{Components: components})
}

// Report is the outcome of one experiment.
type Report struct {
	ID      string
	Title   string
	Pass    bool   // measured result matches the paper's claim
	Summary string // one-line paper-vs-measured comparison
	Detail  string // rendered figures/tables
}

// Render formats the report for terminal output.
func (r *Report) Render() string {
	status := "MATCH"
	if !r.Pass {
		status = "DIFFER"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "%s\n", r.Summary)
	if r.Detail != "" {
		b.WriteString(r.Detail)
		if !strings.HasSuffix(r.Detail, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}
