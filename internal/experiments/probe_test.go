package experiments

import (
	"testing"

	"iokast/internal/kernel"
	"iokast/internal/plot"
)

// TestProbeShapes is a development probe: it prints the cluster structure
// for the main configurations so the generator tuning can be inspected with
// `go test -run Probe -v`.
func TestProbeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("probe only")
	}
	p, err := NewPipeline(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	labels := p.Labels()

	kast, err := p.KastSimilarity(2, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kast bytes cw=2: clipped=%d", kast.Clipped)
	for _, k := range []int{2, 3, 4} {
		assign, dg, err := kast.ClusterCut(k)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("kast bytes cw=2 cut=%d naturalK=%d:\n%s", k, dg.NaturalK(6), plot.RenderClusterSummary(assign, labels))
	}

	for _, cw := range []int{2, 8, 32, 64, 128, 256, 512, 1024} {
		nb, err := p.KastSimilarity(cw, false)
		if err != nil {
			t.Fatal(err)
		}
		a2, dg, _ := nb.ClusterCut(2)
		a3, _, _ := nb.ClusterCut(3)
		t.Logf("kast NO bytes cw=%d clipped=%d naturalK=%d cut2:\n%scut3:\n%s", cw, nb.Clipped, dg.NaturalK(6),
			plot.RenderClusterSummary(a2, labels), plot.RenderClusterSummary(a3, labels))
	}

	for _, pp := range []int{2, 3, 5} {
		for _, cw := range []int{0, 2} {
			bl, err := p.BaselineSimilarity(&kernel.Blended{P: pp, Mode: kernel.Count, CutWeight: cw}, true)
			if err != nil {
				t.Fatal(err)
			}
			a2, dg, _ := bl.ClusterCut(2)
			a3, _, _ := bl.ClusterCut(3)
			t.Logf("blended count P=%d cut=%d clipped=%d naturalK=%d cut2:\n%scut3:\n%s", pp, cw, bl.Clipped, dg.NaturalK(6),
				plot.RenderClusterSummary(a2, labels), plot.RenderClusterSummary(a3, labels))
		}
	}
}
