package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"iokast/internal/cluster"
	"iokast/internal/core"
	"iokast/internal/kernel"
	"iokast/internal/plot"
	"iokast/internal/token"
)

// BlendedBaseline is the Blended Spectrum configuration used for E4/E5:
// substrings up to 5 tokens, classical occurrence counting, and the cut
// weight 2 occurrence filter from the paper's figure captions.
func BlendedBaseline() *kernel.Blended {
	return &kernel.Blended{P: 5, Mode: kernel.Count, CutWeight: 2}
}

// groupIndex maps each example to its expected group under a grouping such
// as PaperGroups.
func groupIndex(labels []string, groups [][]string) []int {
	of := map[string]int{}
	for gi, g := range groups {
		for _, l := range g {
			of[l] = gi
		}
	}
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = of[l]
	}
	return out
}

// nnAccuracy is leave-one-out 1-nearest-neighbour accuracy of the expected
// grouping in the projected space — the quantitative reading of "the
// scatter plot shows separated groups with no misplaced examples".
func nnAccuracy(coords [][]float64, expected []int) float64 {
	n := len(coords)
	if n < 2 {
		return 1
	}
	correct := 0
	for i := 0; i < n; i++ {
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			var d float64
			for c := range coords[i] {
				diff := coords[i][c] - coords[j][c]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, j
			}
		}
		if expected[best] == expected[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func coordRows(m interface {
	Row(int) []float64
}, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.Row(i)[:d]
	}
	return out
}

// RunE1 reproduces the paper's fully worked kernel example (§3.2, Figs.
// 3-5): weight_{>=4}(A)=64, weight_{>=4}(B)=52, k=1018, normalised 0.3059.
func RunE1() *Report {
	a, b := WorkedExampleStrings()
	k := &core.Kast{CutWeight: 4}
	raw := k.Compare(a, b)
	norm := core.PaperNormalized{K: k}.Compare(a, b)
	wa, wb := a.WeightAtLeast(4), b.WeightAtLeast(4)
	pass := raw == 1018 && wa == 64 && wb == 52 && math.Abs(norm-1018.0/3328.0) < 1e-12

	tbl := &plot.Table{Header: []string{"quantity", "paper", "measured"}}
	tbl.Add("weight_{>=4}(A)", 64, wa)
	tbl.Add("weight_{>=4}(B)", 52, wb)
	tbl.Add("k_{w>=4}(A,B)", 1018, raw)
	tbl.Add("normalised", 0.3059, norm)
	return &Report{
		ID:      "E1",
		Title:   "Worked kernel example (Figs. 3-5)",
		Pass:    pass,
		Summary: fmt.Sprintf("paper: k=1018, 0.3059 | measured: k=%.0f, %.4f", raw, norm),
		Detail:  tbl.Render(),
	}
}

// WorkedExampleStrings rebuilds weighted strings realising every quantity
// of the paper's §3.2 example (also used by the E1 test and bench).
func WorkedExampleStrings() (a, b token.String) {
	mk := func(pairs ...any) token.String {
		var s token.String
		for i := 0; i < len(pairs); i += 2 {
			s = append(s, token.Token{Literal: pairs[i].(string), Weight: pairs[i+1].(int)})
		}
		return s
	}
	a = mk("a", 5, "b", 7, "c", 7, "u", 22, "d", 3, "e", 4, "x1", 1,
		"d", 2, "e", 4, "x2", 1, "f", 6, "x3", 2, "f", 9)
	b = mk("a", 2, "b", 7, "c", 8, "y1", 1, "a", 3, "b", 7, "c", 8, "y2", 1,
		"d", 2, "e", 4, "y3", 1, "d", 1, "e", 4, "y4", 1, "f", 8, "y5", 1, "f", 6)
	return a, b
}

// RunE2 reproduces Fig. 6: Kernel PCA of the Kast kernel with byte info at
// cut weight 2. The paper's figure shows three groups — A, B, C+D — with no
// misplaced examples; we check that reading with leave-one-out 1-NN in the
// top-2 KPCA space.
func RunE2(p *Pipeline) (*Report, error) {
	sim, err := p.KastSimilarity(2, true)
	if err != nil {
		return nil, err
	}
	res, err := sim.KPCA(2)
	if err != nil {
		return nil, err
	}
	expected := groupIndex(p.Labels(), PaperGroups)
	acc := nnAccuracy(coordRows(res.Coords, len(p.Labels()), 2), expected)

	xs := make([]float64, res.Coords.Rows)
	ys := make([]float64, res.Coords.Rows)
	for i := range xs {
		xs[i] = res.Coords.At(i, 0)
		ys[i] = res.Coords.At(i, 1)
	}
	sc := plot.DefaultScatter("Kernel PCA, Kast kernel, byte info, cut weight 2 (Fig. 6)")
	sc.XLabel, sc.YLabel = "PC1", "PC2"
	detail := sc.Render(xs, ys, p.Labels()) +
		fmt.Sprintf("negative eigenvalues clipped: %d; explained variance: PC1=%.2f PC2=%.2f\n",
			sim.Clipped, res.ExplainedVariance[0], res.ExplainedVariance[1])
	return &Report{
		ID:    "E2",
		Title: "Kernel PCA, Kast + bytes, cut 2 (Fig. 6)",
		Pass:  acc == 1,
		Summary: fmt.Sprintf("paper: 3 groups {A},{B},{C+D}, no misplacements | measured: 1-NN group accuracy %.3f in top-2 KPCA space",
			acc),
		Detail: detail,
	}, nil
}

// RunE3 reproduces Fig. 7: single-linkage hierarchical clustering of the
// same similarity matrix. The paper finds exactly the clusters {A}, {B},
// {C+D} with no misplaced examples.
func RunE3(p *Pipeline) (*Report, error) {
	sim, err := p.KastSimilarity(2, true)
	if err != nil {
		return nil, err
	}
	assign, dg, err := sim.ClusterCut(3)
	if err != nil {
		return nil, err
	}
	labels := p.Labels()
	exact := cluster.GroupsExactlyMatch(assign, labels, PaperGroups)
	mis := cluster.Misplaced(assign, labels, PaperGroups)
	naturalK := dg.NaturalK(6)
	ari, err := cluster.AdjustedRandIndex(assign, groupLabels(labels, PaperGroups))
	if err != nil {
		return nil, err
	}
	detail := plot.RenderClusterSummary(assign, labels) +
		fmt.Sprintf("natural cluster count (largest height gap, k<=6): %d\nARI vs paper grouping: %.4f\n", naturalK, ari) +
		plot.RenderDendrogram(dg, labels, 3, 8)
	return &Report{
		ID:    "E3",
		Title: "Hierarchical clustering, Kast + bytes, cut 2 (Fig. 7)",
		Pass:  exact && mis == 0 && naturalK == 3,
		Summary: fmt.Sprintf("paper: exactly {A},{B},{C+D}, 0 misplaced | measured: exact=%v misplaced=%d naturalK=%d",
			exact, mis, naturalK),
		Detail: detail,
	}, nil
}

// groupLabels renames each example's label to its group name so ARI/NMI
// compare against the merged grouping (C and D count as one class).
func groupLabels(labels []string, groups [][]string) []string {
	of := map[string]string{}
	for _, g := range groups {
		name := strings.Join(g, "+")
		for _, l := range g {
			of[l] = name
		}
	}
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = of[l]
	}
	return out
}

// RunE4 reproduces Fig. 8: Kernel PCA for the Blended Spectrum Kernel. The
// paper finds only A independently separated, with B, C, D in one group.
func RunE4(p *Pipeline) (*Report, error) {
	sim, err := p.BaselineSimilarity(BlendedBaseline(), true)
	if err != nil {
		return nil, err
	}
	res, err := sim.KPCA(2)
	if err != nil {
		return nil, err
	}
	labels := p.Labels()
	// A must separate from the rest...
	accA := nnAccuracy(coordRows(res.Coords, len(labels), 2), groupIndex(labels, BlendedGroups))
	// ...while B does NOT separate from C+D the way the Kast kernel
	// achieves: 1-NN accuracy for the full paper grouping stays imperfect.
	accFull := nnAccuracy(coordRows(res.Coords, len(labels), 2), groupIndex(labels, PaperGroups))

	xs := make([]float64, res.Coords.Rows)
	ys := make([]float64, res.Coords.Rows)
	for i := range xs {
		xs[i] = res.Coords.At(i, 0)
		ys[i] = res.Coords.At(i, 1)
	}
	sc := plot.DefaultScatter("Kernel PCA, Blended Spectrum Kernel, byte info (Fig. 8)")
	sc.XLabel, sc.YLabel = "PC1", "PC2"
	return &Report{
		ID:    "E4",
		Title: "Kernel PCA, Blended Spectrum + bytes (Fig. 8)",
		Pass:  accA == 1,
		Summary: fmt.Sprintf("paper: only {A} separated, {B+C+D} one group | measured: A-vs-rest 1-NN %.3f, full grouping 1-NN %.3f",
			accA, accFull),
		Detail: sc.Render(xs, ys, labels),
	}, nil
}

// RunE5 reproduces Fig. 9: hierarchical clustering for the Blended Spectrum
// Kernel — only A forms its own identified cluster.
func RunE5(p *Pipeline) (*Report, error) {
	sim, err := p.BaselineSimilarity(BlendedBaseline(), true)
	if err != nil {
		return nil, err
	}
	assign2, dg, err := sim.ClusterCut(2)
	if err != nil {
		return nil, err
	}
	labels := p.Labels()
	naturalK := dg.NaturalK(6)
	exact2 := cluster.GroupsExactlyMatch(assign2, labels, BlendedGroups)
	detail := "identified structure (cut at 2):\n" + plot.RenderClusterSummary(assign2, labels) +
		fmt.Sprintf("natural cluster count: %d\n", naturalK)
	return &Report{
		ID:    "E5",
		Title: "Hierarchical clustering, Blended Spectrum + bytes (Fig. 9)",
		Pass:  exact2 && naturalK == 2,
		Summary: fmt.Sprintf("paper: {A} vs {B+C+D} | measured: exact=%v naturalK=%d",
			exact2, naturalK),
		Detail: detail,
	}, nil
}

// E6CutWeights is the paper's sweep {2^1 .. 2^10}.
var E6CutWeights = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// RunE6 reproduces the §4.2 byte-free findings: at small cut weights only
// two clusters are identified — {B} vs {A+C+D} — and increasing the cut
// weight changes which groups resolve (in our synthetic dataset, A
// separates from the rest for cw >= 256).
func RunE6(p *Pipeline) (*Report, error) {
	labels := p.Labels()
	tbl := &plot.Table{Header: []string{"cut", "clipped", "naturalK", "2-cluster composition", "3-cluster composition"}}
	var smallCutMatch, highCutASeparates bool
	for _, cw := range E6CutWeights {
		sim, err := p.KastSimilarity(cw, false)
		if err != nil {
			return nil, err
		}
		a2, dg, err := sim.ClusterCut(2)
		if err != nil {
			return nil, err
		}
		a3, _, err := sim.ClusterCut(3)
		if err != nil {
			return nil, err
		}
		naturalK := dg.NaturalK(6)
		comp2 := strings.ReplaceAll(strings.TrimSpace(plot.RenderClusterSummary(a2, labels)), "\n", " | ")
		comp3 := strings.ReplaceAll(strings.TrimSpace(plot.RenderClusterSummary(a3, labels)), "\n", " | ")
		tbl.Add(cw, sim.Clipped, naturalK, comp2, comp3)
		if cw == 2 && naturalK == 2 && cluster.GroupsExactlyMatch(a2, labels, NoByteSmallCutGroups) {
			smallCutMatch = true
		}
		if cw >= 256 && cluster.GroupsExactlyMatch(a2, labels, [][]string{{"A"}, {"B", "C", "D"}}) {
			highCutASeparates = true
		}
	}
	return &Report{
		ID:    "E6",
		Title: "Byte-free strings: cut-weight sweep (§4.2 text)",
		Pass:  smallCutMatch && highCutASeparates,
		Summary: fmt.Sprintf("paper: small cut -> {B} vs {A+C+D}; higher cut needed for more structure | measured: small-cut match=%v, A separates at cw>=256=%v",
			smallCutMatch, highCutASeparates),
		Detail: tbl.Render(),
	}, nil
}

// RunE7 verifies the §4.2 cost claim: "the smaller the cut weight the most
// expensive the computation became". It times the full Gram computation at
// the extremes of the sweep.
func RunE7(p *Pipeline) (*Report, error) {
	xs := p.Strings(true)
	timeGram := func(cw int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			kernel.Gram(&core.Kast{CutWeight: cw}, xs)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm up once to stabilise allocator state, then take best-of-3 per
	// configuration to suppress scheduler noise.
	timeGram(1024)
	tLow := timeGram(2)
	tHigh := timeGram(1024)
	ratio := float64(tLow) / float64(tHigh)
	tbl := &plot.Table{Header: []string{"cut weight", "gram time"}}
	tbl.Add(2, tLow.String())
	tbl.Add(1024, tHigh.String())
	return &Report{
		ID:    "E7",
		Title: "Cost vs cut weight (§4.2 text)",
		Pass:  ratio > 1.0,
		Summary: fmt.Sprintf("paper: smaller cut weight costs more | measured: cw=2 takes %.2fx the time of cw=1024",
			ratio),
		Detail: tbl.Render(),
	}, nil
}

// RunE8 reproduces the §4.3 finding that the k-Spectrum kernel "was not
// successful at finding an acceptable clustering": for every k tried, its
// 3-cluster ARI against the paper grouping stays below the Kast kernel's.
func RunE8(p *Pipeline) (*Report, error) {
	labels := p.Labels()
	truth := groupLabels(labels, PaperGroups)

	kastSim, err := p.KastSimilarity(2, true)
	if err != nil {
		return nil, err
	}
	kastAssign, _, err := kastSim.ClusterCut(3)
	if err != nil {
		return nil, err
	}
	kastARI, err := cluster.AdjustedRandIndex(kastAssign, truth)
	if err != nil {
		return nil, err
	}

	kastIdentifies := kastARI == 1

	// "Acceptable clustering" is judged the way the paper reads its
	// figures: the kernel must IDENTIFY the structure — cutting at the
	// natural cluster count (largest dendrogram height gap) must yield
	// exactly the paper grouping.
	identifies := func(sim *SimilarityResult) (bool, int, float64, error) {
		_, dg, err := sim.ClusterCut(2)
		if err != nil {
			return false, 0, 0, err
		}
		k := dg.NaturalK(6)
		assign := dg.Cut(k)
		ari, err := cluster.AdjustedRandIndex(assign, truth)
		if err != nil {
			return false, 0, 0, err
		}
		return k == 3 && cluster.GroupsExactlyMatch(assign, labels, PaperGroups), k, ari, nil
	}

	tbl := &plot.Table{Header: []string{"kernel", "naturalK", "ARI at naturalK", "identifies {A},{B},{C+D}"}}
	tbl.Add("kast(cut=2)", 3, kastARI, kastIdentifies)
	failing := 0
	total := 0
	for _, k := range []int{2, 3, 5} {
		sim, err := p.BaselineSimilarity(&kernel.Spectrum{K: k, Mode: kernel.Count, CutWeight: 2}, true)
		if err != nil {
			return nil, err
		}
		ok, nk, ari, err := identifies(sim)
		if err != nil {
			return nil, err
		}
		tbl.Add(fmt.Sprintf("spectrum(k=%d)", k), nk, ari, ok)
		total++
		if !ok {
			failing++
		}
	}
	// The paper reports the k-spectrum unsuccessful without naming k; on
	// the synthetic dataset most parameterisations fail to identify the
	// structure Kast identifies (k=3 happens to succeed — recorded as a
	// deviation in EXPERIMENTS.md).
	return &Report{
		ID:    "E8",
		Title: "k-Spectrum baseline fails (§4.3 text)",
		Pass:  kastIdentifies && failing >= 2,
		Summary: fmt.Sprintf("paper: k-spectrum not acceptable, Kast best | measured: kast identifies=%v, %d/%d k-spectrum configs fail to identify",
			kastIdentifies, failing, total),
		Detail: tbl.Render(),
	}, nil
}

// RunAll executes every experiment in order.
func RunAll(seed uint64) ([]*Report, error) {
	p, err := NewPipeline(seed)
	if err != nil {
		return nil, err
	}
	reports := []*Report{RunE1()}
	for _, fn := range []func(*Pipeline) (*Report, error){RunE2, RunE3, RunE4, RunE5, RunE6, RunE7, RunE8} {
		r, err := fn(p)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}
