package iogen

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iokast/internal/trace"
)

// TestClientSeedStreams: every client (and the reserved negative
// streams) gets a distinct seed, deterministically.
func TestClientSeedStreams(t *testing.T) {
	seen := map[uint64]int{}
	for c := -2; c < 64; c++ {
		s := ClientSeed(42, c)
		if s != ClientSeed(42, c) {
			t.Fatalf("ClientSeed(42, %d) not deterministic", c)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("clients %d and %d share seed %#x", prev, c, s)
		}
		seen[s] = c
	}
	if ClientSeed(1, 0) == ClientSeed(2, 0) {
		t.Fatal("run seeds 1 and 2 give client 0 the same stream")
	}
}

// TestBodyGenDeterministicAndParseable: the body stream is a pure
// function of its seed, every body is a canonical trace that parses
// back, and the category labels come from the configured set.
func TestBodyGenDeterministicAndParseable(t *testing.T) {
	g1, g2 := NewBodyGen(7, nil), NewBodyGen(7, nil)
	allowed := map[Category]bool{}
	for _, c := range LoadCategories {
		allowed[c] = true
	}
	for i := 0; i < 20; i++ {
		b1, c1 := g1.Next()
		b2, c2 := g2.Next()
		if b1 != b2 || c1 != c2 {
			t.Fatalf("body stream diverged at %d", i)
		}
		if !allowed[c1] {
			t.Fatalf("body %d drawn from %q, not in LoadCategories", i, c1)
		}
		tr, err := trace.Parse(strings.NewReader(b1))
		if err != nil {
			t.Fatalf("body %d does not parse: %v", i, err)
		}
		if len(tr.Ops) == 0 {
			t.Fatalf("body %d parsed to an empty trace", i)
		}
	}
	g3 := NewBodyGen(8, nil)
	b1, _ := NewBodyGen(7, nil).Next()
	b3, _ := g3.Next()
	if b1 == b3 {
		t.Fatal("seeds 7 and 8 synthesized identical first bodies")
	}
}

// TestBodyGenCategoryRestriction: an explicit category list is honoured,
// including the heavy category A that LoadCategories excludes.
func TestBodyGenCategoryRestriction(t *testing.T) {
	g := NewBodyGen(3, []Category{CatFlash})
	for i := 0; i < 3; i++ {
		if _, cat := g.Next(); cat != CatFlash {
			t.Fatalf("draw %d category %q, want %q", i, cat, CatFlash)
		}
	}
}

// TestWriteCorpusDir: the on-disk corpus is byte-identical across runs
// with the same seed, file names carry the generation order and
// category, and the contents are the BodyGen stream.
func TestWriteCorpusDir(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	n1, err := WriteCorpusDir(d1, 8, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := WriteCorpusDir(d2, 8, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n1, n2) {
		t.Fatalf("file names diverged: %v vs %v", n1, n2)
	}
	if len(n1) != 8 {
		t.Fatalf("%d files, want 8", len(n1))
	}
	g := NewBodyGen(11, nil)
	for i, name := range n1 {
		wantBody, cat := g.Next()
		if !strings.HasPrefix(name, "0000") || !strings.HasSuffix(name, string(cat)+".trace") {
			t.Errorf("file %d named %q, want %05d_%s.trace shape", i, name, i, cat)
		}
		b1, err := os.ReadFile(filepath.Join(d1, name))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != wantBody || string(b2) != wantBody {
			t.Errorf("file %q diverges from the seeded body stream", name)
		}
	}
}
