package iogen

import (
	"strings"
	"testing"
	"testing/quick"

	"iokast/internal/core"
	"iokast/internal/trace"
	"iokast/internal/xrand"
)

func TestGenerateUnknownCategory(t *testing.T) {
	if _, err := Generate(Category("Z"), xrand.New(1)); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, cat := range Categories {
		a, err := Generate(cat, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(cat, xrand.New(42))
		if trace.FormatString(a) != trace.FormatString(b) {
			t.Fatalf("%s: same seed produced different traces", cat)
		}
		c, _ := Generate(cat, xrand.New(43))
		if trace.FormatString(a) == trace.FormatString(c) {
			t.Fatalf("%s: different seeds produced identical traces", cat)
		}
	}
}

func TestGeneratedTracesAreValid(t *testing.T) {
	r := xrand.New(7)
	for _, cat := range Categories {
		for i := 0; i < 5; i++ {
			tr, err := Generate(cat, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s: %v", cat, err)
			}
			if tr.Label != string(cat) {
				t.Fatalf("%s: label %q", cat, tr.Label)
			}
			if tr.Len() < 10 {
				t.Fatalf("%s: suspiciously short trace (%d ops)", cat, tr.Len())
			}
		}
	}
}

// Category A must contain contiguous writes with several distinct byte
// values not present in other categories (§4.2).
func TestFlashStructuralProperties(t *testing.T) {
	tr, err := Generate(CatFlash, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.CountByName("read") != 0 || tr.CountByName("lseek") != 0 {
		t.Fatal("Flash trace must be write-only")
	}
	bytes := map[int64]bool{}
	for _, op := range tr.Ops {
		if op.Name == "write" {
			bytes[op.Bytes] = true
		}
	}
	if len(bytes) < 3 {
		t.Fatalf("Flash writes use only %d distinct byte values", len(bytes))
	}
	for b := range bytes {
		switch b {
		case seqHeaderBytes, seqDataBytes:
			t.Fatalf("Flash byte value %d collides with another category", b)
		}
	}
}

// Category B must be the only one containing lseek (§4.2).
func TestOnlyRandomPOSIXHasLseek(t *testing.T) {
	r := xrand.New(2)
	for _, cat := range Categories {
		tr, _ := Generate(cat, r)
		has := tr.CountByName("lseek") > 0
		if cat == CatRandomPOSIX && !has {
			t.Fatal("B lacks lseek")
		}
		if cat != CatRandomPOSIX && has {
			t.Fatalf("%s contains lseek", cat)
		}
	}
}

// C and D must share operation names and byte values (the reason they
// cluster together), while A's byte set is disjoint from both.
func TestCAndDShareVocabulary(t *testing.T) {
	r := xrand.New(3)
	c, _ := Generate(CatNormal, r)
	d, _ := Generate(CatRandomAccess, r)
	vocab := func(tr *trace.Trace) map[string]bool {
		v := map[string]bool{}
		for _, op := range tr.Ops {
			if !op.IsOpen() && !op.IsClose() {
				v[op.Name+string(rune(op.Bytes))] = true
			}
		}
		return v
	}
	vc, vd := vocab(c), vocab(d)
	for k := range vc {
		if !vd[k] {
			t.Fatalf("C token %q missing from D", k)
		}
	}
	for k := range vd {
		if !vc[k] {
			t.Fatalf("D token %q missing from C", k)
		}
	}
}

// A's repetition counts must dwarf C/D's — the burstiness that separates A
// at high cut weights in the no-byte experiment (E6).
func TestFlashBurstiness(t *testing.T) {
	r := xrand.New(4)
	a, _ := Generate(CatFlash, r)
	c, _ := Generate(CatNormal, r)
	if a.Len() < 3*c.Len() {
		t.Fatalf("A has %d ops, C has %d; A must be much burstier", a.Len(), c.Len())
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := xrand.New(seed)
		cat := Categories[int(nRaw)%len(Categories)]
		tr, err := Generate(cat, r)
		if err != nil {
			return false
		}
		m := Mutate(tr, r, 1+int(nRaw%5))
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateDoesNotTouchOriginal(t *testing.T) {
	r := xrand.New(5)
	tr, _ := Generate(CatNormal, r)
	before := trace.FormatString(tr)
	Mutate(tr, r, 5)
	if trace.FormatString(tr) != before {
		t.Fatal("Mutate modified its input")
	}
}

func TestMutateChangesTrace(t *testing.T) {
	r := xrand.New(6)
	tr, _ := Generate(CatNormal, r)
	m := Mutate(tr, r, 3)
	if trace.FormatString(m) == trace.FormatString(tr) {
		t.Fatal("3 mutations left the trace identical")
	}
}

// opHistogramDistance is the L1 distance between per-(name,bytes) operation
// counts of two traces.
func opHistogramDistance(a, b *trace.Trace) int {
	count := func(t *trace.Trace) map[string]int {
		m := map[string]int{}
		for _, op := range t.Ops {
			m[op.Name+"/"+string(rune(op.Bytes))]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	keys := map[string]bool{}
	for k := range ca {
		keys[k] = true
	}
	for k := range cb {
		keys[k] = true
	}
	d := 0
	for k := range keys {
		diff := ca[k] - cb[k]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}

// A mutated copy must stay closer to its base than a fresh example of the
// same category — the paper's stated goal for the synthetic copies.
// (Closeness is measured on the traces themselves: the Kast kernel
// multiplies feature weights rather than comparing them, so kernel
// similarity saturates within a structurally uniform category.)
func TestMutantCloserThanSibling(t *testing.T) {
	r := xrand.New(8)
	for trial := 0; trial < 10; trial++ {
		base, _ := Generate(CatNormal, r)
		mutant := Mutate(base, r, 3)
		other, _ := Generate(CatNormal, r)
		dm := opHistogramDistance(base, mutant)
		do := opHistogramDistance(base, other)
		if dm >= do {
			t.Fatalf("trial %d: mutant distance %d not below sibling distance %d", trial, dm, do)
		}
	}
}

func TestBuildPaperDataset(t *testing.T) {
	ds, err := Build(PaperOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 110 {
		t.Fatalf("dataset size %d, want 110", ds.Len())
	}
	want := map[string]int{"A": 50, "B": 20, "C": 20, "D": 20}
	for label, count := range want {
		if got := ds.CountLabel(label); got != count {
			t.Fatalf("label %s: %d examples, want %d", label, got, count)
		}
	}
	// Names unique.
	names := map[string]bool{}
	for _, tr := range ds.Traces {
		if names[tr.Name] {
			t.Fatalf("duplicate trace name %q", tr.Name)
		}
		names[tr.Name] = true
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(PaperOptions(99))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Build(PaperOptions(99))
	for i := range a.Traces {
		if trace.FormatString(a.Traces[i]) != trace.FormatString(b.Traces[i]) {
			t.Fatalf("trace %d differs between identical builds", i)
		}
	}
}

func TestBuildCustomShape(t *testing.T) {
	ds, err := Build(Options{
		Seed:             3,
		Bases:            map[Category]int{CatNormal: 2},
		CopiesPerBase:    1,
		MutationsPerCopy: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 || ds.CountLabel("C") != 4 {
		t.Fatalf("custom dataset wrong: %d examples", ds.Len())
	}
}

func TestGenerateExtendedCategories(t *testing.T) {
	for _, cat := range []Category{CatCollective, CatLogAppend} {
		tr, err := GenerateExtended(cat, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", cat, err)
		}
		if tr.Label != string(cat) {
			t.Fatalf("%s: label %q", cat, tr.Label)
		}
	}
	// Paper categories still reachable through the extended constructor.
	tr, err := GenerateExtended(CatFlash, xrand.New(3))
	if err != nil || tr.Label != "A" {
		t.Fatalf("paper category via extended: %v %v", tr, err)
	}
	if _, err := GenerateExtended(Category("?"), xrand.New(1)); err == nil {
		t.Fatal("unknown category accepted")
	}
}

func TestCollectiveCompressesToTacitCopy(t *testing.T) {
	tr, _ := GenerateExtended(CatCollective, xrand.New(5))
	s := core.Convert(tr, core.Options{})
	if !strings.Contains(s.Format(), "read+write[1048576]") {
		t.Fatalf("collective pattern missing tacit-copy token: %q", s.Format())
	}
}

func TestLogAppendCompressesToWriteFsync(t *testing.T) {
	tr, _ := GenerateExtended(CatLogAppend, xrand.New(5))
	s := core.Convert(tr, core.Options{})
	if !strings.Contains(s.Format(), "write+fsync[256]") {
		t.Fatalf("log pattern missing write+fsync token: %q", s.Format())
	}
}

func TestBuildExtendedShape(t *testing.T) {
	ds, err := BuildExtended(ExtendedOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 150 {
		t.Fatalf("extended dataset size %d, want 150", ds.Len())
	}
	for _, want := range []struct {
		label string
		count int
	}{{"A", 50}, {"B", 20}, {"C", 20}, {"D", 20}, {"E", 20}, {"F", 20}} {
		if got := ds.CountLabel(want.label); got != want.count {
			t.Fatalf("label %s: %d, want %d", want.label, got, want.count)
		}
	}
}
