package iogen

import (
	"fmt"

	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// Extension categories beyond the paper's four. They exercise compression
// rules the paper dataset touches only lightly (rule 3's tacit-copy merge,
// rule 4 with fsync) and power the generalisation experiment X1: the
// pipeline should keep separating categories as new pattern families
// appear, without retuning.
const (
	// CatCollective simulates two-phase collective I/O: aggregator
	// processes alternate stripe-sized reads and writes while shuffling
	// data, which compresses into read+write "tacit copy" tokens at a
	// stripe size no other category uses.
	CatCollective Category = "E"
	// CatLogAppend simulates a log appender: long runs of small writes,
	// each batch sealed with an fsync, compressing into write+fsync
	// tokens.
	CatLogAppend Category = "F"
)

// ExtendedCategories lists the paper's categories plus the extensions.
var ExtendedCategories = append(append([]Category{}, Categories...), CatCollective, CatLogAppend)

// Extension byte sizes (disjoint from every paper category).
const (
	collectiveStripeBytes = 1048576
	logRecordBytes        = 256
)

// genCollective builds a category E trace.
func genCollective(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatCollective)}
	const files = 2 // shared input and output files
	for fh := 1; fh <= files; fh++ {
		t.Append(trace.Op{Name: "open", Handle: fh, Path: fmt.Sprintf("collective_%d.dat", fh)})
		pairs := r.IntRange(60, 140)
		for i := 0; i < pairs; i++ {
			t.Append(trace.Op{Name: "read", Handle: fh, Bytes: collectiveStripeBytes})
			t.Append(trace.Op{Name: "write", Handle: fh, Bytes: collectiveStripeBytes})
		}
		t.Append(trace.Op{Name: "close", Handle: fh})
	}
	return t
}

// genLogAppend builds a category F trace.
func genLogAppend(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatLogAppend)}
	t.Append(trace.Op{Name: "open", Handle: 1, Path: "app.log"})
	batches := r.IntRange(40, 90)
	for b := 0; b < batches; b++ {
		t.Append(trace.Op{Name: "write", Handle: 1, Bytes: logRecordBytes})
		t.Append(trace.Op{Name: "fsync", Handle: 1})
	}
	t.Append(trace.Op{Name: "close", Handle: 1})
	return t
}

// GenerateExtended builds one synthetic trace of any category, including
// the extensions.
func GenerateExtended(cat Category, r *xrand.Rand) (*trace.Trace, error) {
	switch cat {
	case CatCollective:
		return genCollective(r), nil
	case CatLogAppend:
		return genLogAppend(r), nil
	}
	return Generate(cat, r)
}

// ExtendedOptions is the 6-category dataset: the paper's 110 examples plus
// 20 of each extension category (4 bases x 5), 150 in total.
func ExtendedOptions(seed uint64) Options {
	opt := PaperOptions(seed)
	opt.Bases[CatCollective] = 4
	opt.Bases[CatLogAppend] = 4
	return opt
}

// BuildExtended generates a dataset that may include extension categories.
func BuildExtended(opt Options) (*Dataset, error) {
	root := xrand.New(opt.Seed)
	ds := &Dataset{}
	for _, cat := range ExtendedCategories {
		bases := opt.Bases[cat]
		catRand := root.Split()
		for b := 0; b < bases; b++ {
			baseRand := catRand.Split()
			base, err := GenerateExtended(cat, baseRand)
			if err != nil {
				return nil, err
			}
			base.Name = fmt.Sprintf("%s%02d", cat, b)
			ds.add(base)
			for c := 1; c <= opt.CopiesPerBase; c++ {
				m := Mutate(base, baseRand, opt.MutationsPerCopy)
				m.Name = fmt.Sprintf("%s%02d.m%d", cat, b, c)
				ds.add(m)
			}
		}
	}
	return ds, nil
}
