package iogen

import (
	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// Mutate returns a synthetic copy of the trace with n small random
// mutations, reproducing the paper's dataset construction: "Such copies
// introduced small mutations on the pattern; the idea behind these
// mutations was the need to create access patterns that were, in theory,
// closer to a determined example than the rest of the category members."
//
// A mutation is one of:
//   - run jitter: lengthen or shorten a run of identical operations by a
//     few percent (the dominant, always-safe mutation);
//   - drop: remove one non-open/close operation;
//   - duplicate: repeat one non-open/close operation in place.
//
// open/close pairs are never touched, so mutated traces stay well-formed.
func Mutate(t *trace.Trace, r *xrand.Rand, n int) *trace.Trace {
	c := t.Clone()
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0, 1: // run jitter is twice as likely as the point mutations
			jitterRun(c, r)
		case 2:
			dropOp(c, r)
		case 3:
			duplicateOp(c, r)
		}
	}
	return c
}

// dataIndices returns the indices of mutable (non-open/close) operations.
func dataIndices(t *trace.Trace) []int {
	var idx []int
	for i, op := range t.Ops {
		if !op.IsOpen() && !op.IsClose() {
			idx = append(idx, i)
		}
	}
	return idx
}

func jitterRun(t *trace.Trace, r *xrand.Rand) {
	idx := dataIndices(t)
	if len(idx) == 0 {
		return
	}
	i := idx[r.Intn(len(idx))]
	op := t.Ops[i]
	// Measure the run around i.
	lo := i
	for lo > 0 && t.Ops[lo-1] == op {
		lo--
	}
	hi := i
	for hi+1 < len(t.Ops) && t.Ops[hi+1] == op {
		hi++
	}
	runLen := hi - lo + 1
	// Shrink or grow by up to ~8% of the run (at least one op).
	delta := r.IntRange(1, max(1, runLen/12))
	if r.Bool(0.5) && runLen > delta {
		t.Ops = append(t.Ops[:lo], t.Ops[lo+delta:]...)
		return
	}
	ins := make([]trace.Op, delta)
	for j := range ins {
		ins[j] = op
	}
	tail := append(ins, t.Ops[hi+1:]...)
	t.Ops = append(t.Ops[:hi+1], tail...)
}

func dropOp(t *trace.Trace, r *xrand.Rand) {
	idx := dataIndices(t)
	if len(idx) == 0 {
		return
	}
	i := idx[r.Intn(len(idx))]
	t.Ops = append(t.Ops[:i], t.Ops[i+1:]...)
}

func duplicateOp(t *trace.Trace, r *xrand.Rand) {
	idx := dataIndices(t)
	if len(idx) == 0 {
		return
	}
	i := idx[r.Intn(len(idx))]
	op := t.Ops[i]
	t.Ops = append(t.Ops[:i+1], append([]trace.Op{op}, t.Ops[i+1:]...)...)
}
