package iogen

import (
	"fmt"

	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// Dataset is a labelled collection of traces.
type Dataset struct {
	Traces []*trace.Trace
	Labels []string // ground-truth category per trace ("A".."D")
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Traces) }

// CountLabel returns how many examples carry the label.
func (d *Dataset) CountLabel(label string) int {
	n := 0
	for _, l := range d.Labels {
		if l == label {
			n++
		}
	}
	return n
}

// Options configure dataset generation. The zero value is not useful; use
// PaperOptions for the paper's configuration.
type Options struct {
	Seed uint64
	// Bases is the number of base examples per category.
	Bases map[Category]int
	// CopiesPerBase is the number of mutated copies added per base (each
	// base example also appears unmutated).
	CopiesPerBase int
	// MutationsPerCopy is how many mutations each copy receives.
	MutationsPerCopy int
}

// PaperOptions reproduces §4.1: 22 base examples — A x10, B x4, C x4, D x4
// — each with 4 mutated copies, giving 110 examples distributed A:50, B:20,
// C:20, D:20.
func PaperOptions(seed uint64) Options {
	return Options{
		Seed: seed,
		Bases: map[Category]int{
			CatFlash:        10,
			CatRandomPOSIX:  4,
			CatNormal:       4,
			CatRandomAccess: 4,
		},
		CopiesPerBase:    4,
		MutationsPerCopy: 3,
	}
}

// Build generates the dataset deterministically from opt.Seed.
func Build(opt Options) (*Dataset, error) {
	root := xrand.New(opt.Seed)
	ds := &Dataset{}
	for _, cat := range Categories {
		bases := opt.Bases[cat]
		catRand := root.Split()
		for b := 0; b < bases; b++ {
			baseRand := catRand.Split()
			base, err := Generate(cat, baseRand)
			if err != nil {
				return nil, err
			}
			base.Name = fmt.Sprintf("%s%02d", cat, b)
			ds.add(base)
			for c := 1; c <= opt.CopiesPerBase; c++ {
				m := Mutate(base, baseRand, opt.MutationsPerCopy)
				m.Name = fmt.Sprintf("%s%02d.m%d", cat, b, c)
				ds.add(m)
			}
		}
	}
	return ds, nil
}

func (d *Dataset) add(t *trace.Trace) {
	d.Traces = append(d.Traces, t)
	d.Labels = append(d.Labels, t.Label)
}
