package iogen

import (
	"fmt"
	"os"
	"path/filepath"

	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// This file exports the seeded corpus helpers the load harness
// (internal/load, cmd/iokload) builds on: per-client seed derivation, a
// deterministic stream of canonical trace bodies, and on-disk corpus
// directories for replay mode. Everything is a pure function of its
// seed, so two harness runs with the same --seed synthesize
// byte-identical request bodies.

// LoadCategories are the default categories for per-request load bodies:
// the paper's B, C, and D patterns, whose traces render to a few hundred
// lines of text each. Category A (FLASH checkpoint bursts) is excluded
// by default because a single A trace renders to ~250 KB — realistic for
// ingest soak tests (opt in by passing an explicit category list), far
// too heavy as the body of every generated request.
var LoadCategories = []Category{CatRandomPOSIX, CatNormal, CatRandomAccess}

// ClientSeed derives the seed for one load client from the run seed.
// Each client gets an independent SplitMix64 stream (one generator step
// over a client-salted state), so adding a client never perturbs the
// schedules of the others — the property the harness's determinism
// contract ("same --seed, same schedule") rests on.
func ClientSeed(seed uint64, client int) uint64 {
	// The salt constant is the SplitMix64 golden-ratio increment; any
	// odd constant would do, this one keeps the mixing story uniform.
	return xrand.New(seed ^ (0x9e3779b97f4a7c15 * uint64(client+1))).Uint64()
}

// BodyGen is a deterministic stream of canonical-format trace bodies
// drawn from a fixed category set. It is not safe for concurrent use;
// give each client its own (see ClientSeed).
type BodyGen struct {
	r    *xrand.Rand
	cats []Category
}

// NewBodyGen builds a body stream. An empty or nil cats defaults to
// LoadCategories.
func NewBodyGen(seed uint64, cats []Category) *BodyGen {
	if len(cats) == 0 {
		cats = LoadCategories
	}
	return &BodyGen{r: xrand.New(seed), cats: cats}
}

// Next synthesizes the next trace and returns its canonical text plus
// the category it was drawn from (the ground-truth label for /classify
// traffic and prefill labelling).
func (g *BodyGen) Next() (body string, cat Category) {
	cat = g.cats[g.r.Intn(len(g.cats))]
	t, err := GenerateExtended(cat, g.r)
	if err != nil {
		// The category came from our own fixed list; reaching here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("iogen: BodyGen category %q: %v", cat, err))
	}
	return trace.FormatString(t), cat
}

// WriteCorpusDir writes n deterministic traces into dir (created if
// needed) as zero-padded .trace files in generation order and returns
// the file names. The result is a replayable corpus: iokload --replay
// consumes exactly this layout, and the same (seed, n, cats) always
// produces byte-identical files.
func WriteCorpusDir(dir string, n int, seed uint64, cats []Category) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	g := NewBodyGen(seed, cats)
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		body, cat := g.Next()
		name := fmt.Sprintf("%05d_%s.trace", i, cat)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}
