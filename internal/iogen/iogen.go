// Package iogen generates synthetic I/O access-pattern traces standing in
// for the IOR and FLASH-IO benchmark captures the paper evaluates on
// (§4.1). The real traces are not redistributable; these generators
// reproduce the structural properties the paper reports as the factors
// driving its clustering results:
//
//	A (Flash I/O):       contiguous write operations with several distinct
//	                     byte values "not present in the other categories",
//	                     bursty (very high repetition counts), several
//	                     files (checkpoint plus plot files).
//	B (Random POSIX I/O):lseek operations "not seen elsewhere", interleaved
//	                     with 4 KiB reads/writes.
//	C (Normal I/O):      sequential reads then writes of large blocks plus
//	                     a small header read.
//	D (Random Access I/O): "roughly the same pattern" as C — the same
//	                     operation names and byte values, arranged over
//	                     several open..close spans per file.
//
// Every generator is deterministic in its xrand seed, so the evaluation
// dataset is exactly reproducible.
package iogen

import (
	"fmt"

	"iokast/internal/trace"
	"iokast/internal/xrand"
)

// Category identifies one of the paper's four access-pattern groups.
type Category string

// The four categories of §4.1.
const (
	CatFlash        Category = "A"
	CatRandomPOSIX  Category = "B"
	CatNormal       Category = "C"
	CatRandomAccess Category = "D"
)

// Categories lists all categories in paper order.
var Categories = []Category{CatFlash, CatRandomPOSIX, CatNormal, CatRandomAccess}

// Byte sizes per category. A's set is disjoint from every other category's
// (the paper's stated reason A separates); C and D share theirs entirely
// (the reason C and D merge); B's 4 KiB appears nowhere else.
const (
	flashHeaderBytes = 96
	flashAttrBytes   = 8
	flashDataBytes   = 32768
	flashData2Bytes  = 16384

	posixIOBytes = 4096

	seqHeaderBytes  = 512
	seqTrailerBytes = 512
	seqDataBytes    = 65536
)

// Generate builds one synthetic trace of the given category, drawing its
// shape parameters from r.
func Generate(cat Category, r *xrand.Rand) (*trace.Trace, error) {
	switch cat {
	case CatFlash:
		return genFlash(r), nil
	case CatRandomPOSIX:
		return genRandomPOSIX(r), nil
	case CatNormal:
		return genNormal(r), nil
	case CatRandomAccess:
		return genRandomAccess(r), nil
	}
	return nil, fmt.Errorf("iogen: unknown category %q", cat)
}

// run appends op repeated n times on handle fh.
func run(t *trace.Trace, name string, fh int, bytes int64, n int) {
	for i := 0; i < n; i++ {
		t.Append(trace.Op{Name: name, Handle: fh, Bytes: bytes})
	}
}

// genFlash simulates a FLASH-IO style checkpoint dump: per file, a burst of
// header records, a run of tiny attribute writes, and two long runs of
// large data-block writes. Only writes; byte values unique to category A.
func genFlash(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatFlash)}
	const files = 3 // checkpoint + two plot files, as a FLASH run writes
	for fh := 1; fh <= files; fh++ {
		t.Append(trace.Op{Name: "open", Handle: fh, Path: fmt.Sprintf("flash_hdf5_chk_%04d", fh)})
		run(t, "write", fh, flashHeaderBytes, r.IntRange(6, 14))
		run(t, "write", fh, flashAttrBytes, r.IntRange(20, 44))
		run(t, "write", fh, flashDataBytes, r.IntRange(900, 2200))
		run(t, "write", fh, flashData2Bytes, r.IntRange(450, 1100))
		t.Append(trace.Op{Name: "close", Handle: fh})
	}
	return t
}

// genRandomPOSIX simulates IOR's random POSIX mode: every 4 KiB transfer is
// preceded by an lseek to a random offset, so the lseek..read and
// lseek..write alternations compress into the lseek+read / lseek+write
// compound tokens that only category B exhibits (§4.2: "examples contained
// lseek operations not seen elsewhere"). Like C and D, every file carries
// the light header-read / trailer-write metadata traffic all benchmark runs
// on the same file system share; those low-weight shared tokens are what
// let the count-based Blended Spectrum baseline blur B into C and D (§4.3)
// while the weight-aware Kast kernel keeps them apart.
func genRandomPOSIX(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatRandomPOSIX)}
	const files = 1 // IOR writes one shared file per run
	for fh := 1; fh <= files; fh++ {
		t.Append(trace.Op{Name: "open", Handle: fh, Path: fmt.Sprintf("ior_rand_%d.dat", fh)})
		run(t, "read", fh, seqHeaderBytes, r.IntRange(2, 5))
		reads := r.IntRange(70, 150)
		for i := 0; i < reads; i++ {
			t.Append(trace.Op{Name: "lseek", Handle: fh})
			t.Append(trace.Op{Name: "read", Handle: fh, Bytes: posixIOBytes})
		}
		writes := r.IntRange(50, 110)
		for i := 0; i < writes; i++ {
			t.Append(trace.Op{Name: "lseek", Handle: fh})
			t.Append(trace.Op{Name: "write", Handle: fh, Bytes: posixIOBytes})
		}
		run(t, "write", fh, seqTrailerBytes, r.IntRange(1, 3))
		t.Append(trace.Op{Name: "close", Handle: fh})
	}
	return t
}

// genNormal simulates IOR's sequential mode: a header read followed by long
// sequential data reads, then sequential writes, one open..close span per
// file.
func genNormal(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatNormal)}
	const files = 1 // IOR writes one shared file per run
	for fh := 1; fh <= files; fh++ {
		t.Append(trace.Op{Name: "open", Handle: fh, Path: fmt.Sprintf("ior_seq_%d.dat", fh)})
		run(t, "read", fh, seqHeaderBytes, r.IntRange(2, 5))
		run(t, "read", fh, seqDataBytes, r.IntRange(90, 200))
		run(t, "write", fh, seqDataBytes, r.IntRange(70, 160))
		run(t, "write", fh, seqTrailerBytes, r.IntRange(1, 3))
		t.Append(trace.Op{Name: "close", Handle: fh})
	}
	return t
}

// genRandomAccess simulates random-access I/O over the same files as
// genNormal: the same operation names and byte values (which is what makes
// C and D "share roughly the same pattern"), but the work is split across
// several open..close spans per file with shorter runs.
func genRandomAccess(r *xrand.Rand) *trace.Trace {
	t := &trace.Trace{Label: string(CatRandomAccess)}
	const files = 1 // IOR writes one shared file per run
	for fh := 1; fh <= files; fh++ {
		spans := r.IntRange(2, 3)
		for s := 0; s < spans; s++ {
			t.Append(trace.Op{Name: "open", Handle: fh, Path: fmt.Sprintf("ior_ra_%d.dat", fh)})
			run(t, "read", fh, seqHeaderBytes, r.IntRange(1, 3))
			run(t, "read", fh, seqDataBytes, r.IntRange(40, 110))
			run(t, "write", fh, seqDataBytes, r.IntRange(30, 90))
			run(t, "write", fh, seqTrailerBytes, r.IntRange(1, 2))
			t.Append(trace.Op{Name: "close", Handle: fh})
		}
	}
	return t
}
