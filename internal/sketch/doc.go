// Package sketch embeds weighted strings into fixed-width vectors so
// similarity queries can be answered approximately in O(dim) per corpus
// entry — or, with the LSH-banded index, in time proportional to a small
// candidate pool — instead of one kernel evaluation each.
//
// # Embedding
//
// The embedding is the classic hashed feature map ("feature hashing" /
// signed random projections, in the spirit of Tabei et al.'s space-
// efficient feature maps for alignment kernels and Wu et al.'s random
// features for global string kernels): every substring feature the string
// kernels in this project extract is hashed to one of Dim buckets with a
// pseudo-random sign, and its feature value is accumulated there. The dot
// product of two sketches is then an unbiased estimate of the inner
// product of the underlying feature vectors, so the cosine of two sketches
// tracks the cosine-normalised kernel value. The estimate is only used to
// shortlist candidates; callers rerank the shortlist with the exact kernel
// (see engine.SimilarApprox), which restores exact top-k results whenever
// the shortlist covers them.
//
// # Candidate generation
//
// A flat Index (NewIndex) answers a query by scanning every live vector.
// NewIndexANN adds LSH-banded candidate generation: each vector carries a
// band signature — bands hash keys of rows sign-random-projection bits
// each — and a query probes one hash bucket per band, unions the members,
// ranks the pool with an int8-quantized dot product, float64-rescores the
// leaders, and returns the top k. Two vectors at angle theta collide in a
// band with probability (1 - theta/pi)^rows, so the pool concentrates on
// near neighbours and candidate generation becomes sublinear in the corpus
// for clustered data. Whenever the request already covers every reachable
// entry (or the index is flat, or a prepared query carries no signature)
// the search falls back to the exact scan, preserving the contract that a
// covering rerank is bit-identical to the exact path.
//
// # Determinism
//
// Everything here is deterministic in (input, Options): the same string
// sketched twice, on any machine, in any corpus, yields bit-identical
// vectors, and band signatures depend only on (vector, bands, rows, seed)
// — the hyperplanes are derived by counter-mode hashing, never stored.
// That is what lets the engine rebuild its sketch index bit-identically
// from a WAL replay, lets snapshots persist raw vector and signature bits,
// and lets every shard of a sharded corpus share one query's signature.
// FuzzANNSignature and the package recall/equivalence tests pin all of it.
//
// See docs/ARCHITECTURE.md for how the index sits in the query path and
// the on-disk signature block format.
package sketch
