package sketch

import "iokast/internal/obs"

// IndexMetrics are the index's search telemetry hooks. The zero value
// disables them (obs instruments are nil-safe), so uninstrumented
// indexes pay one nil check per search.
type IndexMetrics struct {
	// Searches counts candidate generations (banded or flat).
	Searches *obs.Counter
	// PoolCandidates counts banded candidate-pool members scanned;
	// PoolCandidates/Searches is the mean pool size, the number that
	// decides whether ANN is actually sublinear on this corpus.
	PoolCandidates *obs.Counter
	// FlatFallbacks counts searches that degraded to the exact flat scan
	// (flat index, covering k, missing byproducts, or a thin pool).
	FlatFallbacks *obs.Counter
}

// NewIndexMetrics registers the sketch index family on reg.
func NewIndexMetrics(reg *obs.Registry, labels obs.Labels) IndexMetrics {
	return IndexMetrics{
		Searches:       reg.Counter("iok_sketch_searches_total", "Sketch-index candidate generations.", labels),
		PoolCandidates: reg.Counter("iok_sketch_pool_candidates_total", "Banded candidate-pool members scanned.", labels),
		FlatFallbacks:  reg.Counter("iok_sketch_flat_fallbacks_total", "Searches degraded to the exact flat scan.", labels),
	}
}

// SetMetrics attaches telemetry to the index. Call before serving;
// searches read the hooks under the index lock.
func (ix *Index) SetMetrics(m IndexMetrics) {
	ix.mu.Lock()
	ix.met = m
	ix.mu.Unlock()
}
