package sketch

import (
	"fmt"
	"testing"

	"iokast/internal/token"
	"iokast/internal/xrand"
)

// randomStream synthesizes a token stream over a small literal alphabet
// with weights in [1, 100].
func randomStream(r *xrand.Rand, n int) token.String {
	lits := []string{"read[4096]", "write[32768]", "write[8]", "[HANDLE]", "[BLOCK]", "lseek[0]", "[LEVEL_UP]", "close[0]"}
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{Literal: lits[r.Intn(len(lits))], Weight: 1 + r.Intn(100)}
	}
	return s
}

// TestAccumMatchesSketchBitwise is the accumulator's core contract: after
// any sequence of appends and evictions, Vector() equals Sketcher.Sketch
// of the window token string bit for bit — not approximately. Integer
// contributions make float accumulation exact, so sliding the window
// never drifts from the batch embedding.
func TestAccumMatchesSketchBitwise(t *testing.T) {
	for _, cfg := range []Options{
		{},
		{Dim: 64, Seed: 7},
		{Dim: 32, MaxLen: 3, Seed: 12345},
		{Dim: 128, Count: true},
		{Dim: 16, MaxLen: 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("dim=%d,maxlen=%d,count=%v", cfg.Dim, cfg.MaxLen, cfg.Count), func(t *testing.T) {
			s := New(cfg)
			r := xrand.New(uint64(cfg.Dim)*31 + cfg.Seed)
			stream := randomStream(r, 400)
			const window = 37
			a := s.NewAccum()
			for i, tok := range stream {
				a.Append(tok)
				for a.Len() > window {
					a.Evict()
				}
				if i%13 != 0 {
					continue // check a sample of window positions
				}
				lo := i + 1 - a.Len()
				want := s.Sketch(stream[lo : i+1])
				got := a.Vector()
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("pos %d bucket %d: accum %v != sketch %v", i, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestAccumDrainAndRefill: evicting everything returns to the zero
// vector exactly, and the accumulator is reusable afterwards.
func TestAccumDrainAndRefill(t *testing.T) {
	s := New(Options{Dim: 64})
	r := xrand.New(99)
	stream := randomStream(r, 50)
	a := s.NewAccum()
	for _, tok := range stream {
		a.Append(tok)
	}
	for a.Evict() {
	}
	if a.Len() != 0 {
		t.Fatalf("Len after drain = %d", a.Len())
	}
	if a.Evict() {
		t.Fatal("Evict on empty accum reported true")
	}
	for _, v := range a.Vector() {
		if v != 0 {
			t.Fatalf("drained vector not exactly zero: %v", a.Vector())
		}
	}
	// Refill with a different stream: still bit-identical to batch.
	stream2 := randomStream(r, 20)
	for _, tok := range stream2 {
		a.Append(tok)
	}
	want := s.Sketch(stream2)
	got := a.Vector()
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("refill bucket %d: %v != %v", j, got[j], want[j])
		}
	}
}

// TestAccumDoesNotCountAsSketchOp: incremental maintenance must not bump
// the process-wide embedding counter — that counter is how tests prove a
// streaming session embeds O(delta), not O(window), per tick.
func TestAccumDoesNotCountAsSketchOp(t *testing.T) {
	s := New(Options{Dim: 32})
	a := s.NewAccum()
	before := SketchOps()
	for i := 0; i < 100; i++ {
		a.Append(token.Token{Literal: "read[1]", Weight: 1})
		if a.Len() > 10 {
			a.Evict()
		}
	}
	_ = a.Vector()
	if d := SketchOps() - before; d != 0 {
		t.Fatalf("accum maintenance performed %d full embeddings", d)
	}
}
