package sketch

import (
	"math"
	"sort"
	"sync/atomic"

	"iokast/internal/token"
)

// sketchOps counts every vector embedding computed process-wide. One
// atomic add against microseconds of hashing is free; it lets regression
// tests assert that query paths embed exactly once (the sharded fan-out
// must not re-sketch a query per shard).
var sketchOps atomic.Uint64

// SketchOps returns the cumulative number of Sketch/SketchFeatures calls
// in this process. Tests diff it around an operation to count embeddings.
func SketchOps() uint64 { return sketchOps.Load() }

// Defaults for Options.
const (
	// DefaultDim is the sketch width used when Options.Dim is 0. At 256
	// buckets the hashed estimate separates the paper's trace categories
	// with recall@10 >= 0.9 (asserted by the package's recall tests) while
	// a corpus scan stays a few hundred multiply-adds per entry.
	DefaultDim = 256
	// DefaultMaxLen is the longest substring hashed by Sketch when
	// Options.MaxLen is 0. Eight tokens comfortably covers the compound
	// patterns the §3.1 compression emits; longer shared runs still
	// contribute through every window they contain.
	DefaultMaxLen = 8
)

// Options configure a Sketcher. The zero value means DefaultDim buckets,
// seed 0, substrings up to DefaultMaxLen tokens, weight-sum feature values.
type Options struct {
	// Dim is the number of hash buckets (the vector width); 0 means
	// DefaultDim.
	Dim int
	// Seed keys every hash. Two Sketchers with different seeds produce
	// unrelated embeddings; sketches are only comparable when produced
	// with identical Dim and Seed.
	Seed uint64
	// MaxLen bounds the token length of the substrings Sketch hashes;
	// 0 means DefaultMaxLen.
	MaxLen int
	// Count makes each substring occurrence contribute 1 instead of its
	// occurrence weight, mirroring kernel.Count for count-mode baselines.
	Count bool
}

// Sketcher embeds weighted strings (or explicit feature maps) into
// fixed-width vectors. It is stateless apart from its options and safe for
// concurrent use.
type Sketcher struct {
	dim    int
	seed   uint64
	maxLen int
	count  bool
}

// New returns a Sketcher for the options, applying defaults.
func New(opt Options) *Sketcher {
	if opt.Dim <= 0 {
		opt.Dim = DefaultDim
	}
	if opt.MaxLen <= 0 {
		opt.MaxLen = DefaultMaxLen
	}
	return &Sketcher{dim: opt.Dim, seed: opt.Seed, maxLen: opt.MaxLen, count: opt.Count}
}

// Dim returns the sketch width.
func (s *Sketcher) Dim() int { return s.dim }

// Seed returns the hash seed.
func (s *Sketcher) Seed() uint64 { return s.seed }

// Sketch embeds x by hashing every contiguous substring of 1..MaxLen
// tokens, valued by its occurrence weight (or 1 in Count mode) — the same
// window features the Blended Spectrum kernel extracts, which also proxy
// the Kast kernel's shared-substring features well enough for shortlist
// recall. The result has unit L2 norm (zero for degenerate inputs), so
// the dot product of two sketches is their cosine.
func (s *Sketcher) Sketch(x token.String) []float64 {
	sketchOps.Add(1)
	vec := make([]float64, s.dim)
	n := len(x)
	// Per-token literal hashes and prefix weights; the substring hash is a
	// polynomial over the token hashes, extended by one token per step, so
	// the whole embedding is O(n * MaxLen) hash-and-accumulate operations.
	th := make([]uint64, n)
	pw := make([]int, n+1)
	for i, t := range x {
		th[i] = hashString(t.Literal)
		pw[i+1] = pw[i] + t.Weight
	}
	for i := 0; i < n; i++ {
		var h uint64
		for l := 1; l <= s.maxLen && i+l <= n; l++ {
			h = h*polyBase + th[i+l-1]
			v := 1.0
			if !s.count {
				v = float64(pw[i+l] - pw[i])
			}
			// The polynomial hash alone lets substrings of different
			// lengths collide; folding in l keys them apart before the
			// final mix.
			s.accumulate(vec, mix64(h^uint64(l)*lenSalt), v)
		}
	}
	normalize(vec)
	return vec
}

// SketchFeatures embeds an explicit feature map (as returned by
// kernel.Features) so sketches of inner-product kernels estimate exactly
// the kernel's own cosine. Keys are hashed in sorted order: float64
// accumulation is not associative, and a map-iteration order dependence
// would break the bit-identical determinism the engine's persistence
// relies on.
func (s *Sketcher) SketchFeatures(feats map[string]float64) []float64 {
	sketchOps.Add(1)
	vec := make([]float64, s.dim)
	keys := make([]string, 0, len(feats))
	for k := range feats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.accumulate(vec, mix64(hashString(k)), feats[k])
	}
	normalize(vec)
	return vec
}

// accumulate adds value v for feature hash h: bucket from the low bits,
// sign from the top bit, both after seeding.
func (s *Sketcher) accumulate(vec []float64, h uint64, v float64) {
	h = mix64(h ^ s.seed)
	if h>>63 != 0 {
		v = -v
	}
	vec[h%uint64(s.dim)] += v
}

// Dot returns the inner product of two equal-width sketches; on unit
// vectors this is their cosine similarity.
func Dot(a, b []float64) float64 {
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

func normalize(vec []float64) {
	var sq float64
	for _, v := range vec {
		sq += v * v
	}
	if sq <= 0 {
		return
	}
	inv := 1 / math.Sqrt(sq)
	for i := range vec {
		vec[i] *= inv
	}
}

const (
	// FNV-1a 64-bit parameters for literal hashing.
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
	// Odd multiplier for the rolling substring polynomial.
	polyBase = 0x9e3779b97f4a7c15 | 1
	// Salt separating substring lengths in the final key.
	lenSalt = 0xc2b2ae3d27d4eb4f | 1
)

// hashString is FNV-1a over the bytes of s.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 is the SplitMix64 finalizer: a cheap bijective mixer whose output
// bits are all functions of all input bits.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
