package sketch

import (
	"math"
	"testing"

	"iokast/internal/token"
	"iokast/internal/xrand"
)

func randString(r *xrand.Rand, n int) token.String {
	lits := []string{"read[4096]", "write[4096]", "write[512]", "lseek+read[4096]", "[HANDLE]", "[LEVEL_UP]"}
	s := make(token.String, n)
	for i := range s {
		s[i] = token.Token{Literal: lits[r.Intn(len(lits))], Weight: 1 + r.Intn(40)}
	}
	return s
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSketchDeterministicAndSeeded(t *testing.T) {
	r := xrand.New(7)
	x := randString(r, 64)
	s := New(Options{Dim: 128, Seed: 42})
	a, b := s.Sketch(x), s.Sketch(x)
	if !bitsEqual(a, b) {
		t.Fatal("same sketcher, same string: sketches differ")
	}
	if !bitsEqual(a, New(Options{Dim: 128, Seed: 42}).Sketch(x)) {
		t.Fatal("fresh sketcher with same options: sketches differ")
	}
	if bitsEqual(a, New(Options{Dim: 128, Seed: 43}).Sketch(x)) {
		t.Fatal("different seed produced an identical sketch")
	}
}

func TestSketchUnitNorm(t *testing.T) {
	r := xrand.New(3)
	s := New(Options{})
	if d := s.Dim(); d != DefaultDim {
		t.Fatalf("default dim = %d, want %d", d, DefaultDim)
	}
	for i := 0; i < 10; i++ {
		vec := s.Sketch(randString(r, 1+r.Intn(100)))
		var sq float64
		for _, v := range vec {
			sq += v * v
		}
		if math.Abs(sq-1) > 1e-9 {
			t.Fatalf("sketch %d has squared norm %v, want 1", i, sq)
		}
	}
	if vec := s.Sketch(nil); Dot(vec, vec) != 0 {
		t.Fatal("empty string should sketch to the zero vector")
	}
}

func TestSketchFeaturesOrderIndependent(t *testing.T) {
	// Build the same logical feature map with different insertion orders;
	// float accumulation order must not leak into the bits.
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	vals := []float64{3, 1, 4, 1, 5, 9}
	fwd := map[string]float64{}
	for i, k := range keys {
		fwd[k] = vals[i]
	}
	rev := map[string]float64{}
	for i := len(keys) - 1; i >= 0; i-- {
		rev[keys[i]] = vals[i]
	}
	s := New(Options{Dim: 64, Seed: 9})
	if !bitsEqual(s.SketchFeatures(fwd), s.SketchFeatures(rev)) {
		t.Fatal("feature sketch depends on map construction order")
	}
}

func TestSketchCosineTracksIdentity(t *testing.T) {
	// A string is most similar to itself and to a light mutation of
	// itself; an unrelated vocabulary should score far lower.
	r := xrand.New(11)
	x := randString(r, 80)
	mutated := x.Clone()
	mutated[5].Weight += 3
	mutated[40].Weight += 2
	other := make(token.String, 80)
	for i := range other {
		other[i] = token.Token{Literal: "mmap[0]", Weight: 1 + r.Intn(40)}
	}
	s := New(Options{Dim: 256})
	sx, sm, so := s.Sketch(x), s.Sketch(mutated), s.Sketch(other)
	if self := Dot(sx, sx); math.Abs(self-1) > 1e-9 {
		t.Fatalf("self cosine = %v", self)
	}
	near, far := Dot(sx, sm), Dot(sx, so)
	if near < 0.9 {
		t.Fatalf("mutated copy cosine = %v, want near 1", near)
	}
	if far > 0.5 || far >= near {
		t.Fatalf("unrelated cosine = %v (near = %v), want clearly lower", far, near)
	}
}

func TestIndexAddRemoveSearch(t *testing.T) {
	r := xrand.New(5)
	s := New(Options{Dim: 64})
	ix := NewIndex(64)
	var vecs [][]float64
	for i := 0; i < 8; i++ {
		vec := s.Sketch(randString(r, 30))
		vecs = append(vecs, vec)
		if err := ix.Add(i, vec); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 8 || ix.Size() != 8 {
		t.Fatalf("Len/Size = %d/%d", ix.Len(), ix.Size())
	}
	if err := ix.Add(3, vecs[3]); err == nil {
		t.Fatal("re-adding a live id must fail")
	}
	if err := ix.Add(9, make([]float64, 32)); err == nil {
		t.Fatal("wrong-width vector must be rejected")
	}

	// The best match for vecs[2] is id 2 itself; with 2 excluded the
	// scores must still come back sorted.
	got := ix.Search(vecs[2], -1, -1)
	if got[0].ID != 2 || math.Abs(got[0].Score-1) > 1e-9 {
		t.Fatalf("top hit for own vector = %+v", got[0])
	}
	got = ix.Search(vecs[2], 3, 2)
	if len(got) != 3 {
		t.Fatalf("k=3 returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("results not sorted: %+v", got)
		}
		if got[i].ID == 2 {
			t.Fatal("excluded id returned")
		}
	}

	if !ix.Remove(5) || ix.Remove(5) {
		t.Fatal("Remove should succeed once then report absent")
	}
	for _, c := range ix.Search(vecs[5], -1, -1) {
		if c.ID == 5 {
			t.Fatal("tombstoned id returned by search")
		}
	}
	if ix.Vec(5) != nil {
		t.Fatal("tombstoned vec still readable")
	}
}

func TestIndexEqual(t *testing.T) {
	s := New(Options{Dim: 32})
	build := func(order []int) *Index {
		ix := NewIndex(32)
		rr := xrand.New(99)
		vecs := make([][]float64, 4)
		for i := range vecs {
			vecs[i] = s.Sketch(randString(rr, 20))
		}
		for _, id := range order {
			_ = ix.Add(id, vecs[id])
		}
		ix.Remove(1)
		return ix
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if !a.Equal(b) {
		t.Fatal("same content, different insertion order: indexes not equal")
	}
	b2 := build([]int{0, 1, 2, 3})
	b2.Remove(2)
	if a.Equal(b2) {
		t.Fatal("different tombstones compare equal")
	}
}
