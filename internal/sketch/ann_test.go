package sketch_test

// Index-level tests for the LSH-banded ANN path: configuration clamping,
// exactness fallbacks, determinism across build orders, and the recall
// harness at N=4096 — large enough that the banded path is genuinely
// active (the default shortlist is a tiny fraction of the corpus) rather
// than falling back to the flat scan as it does on small corpora.

import (
	"fmt"
	"math"
	"testing"

	"iokast/internal/kernel"
	"iokast/internal/sketch"
	"iokast/internal/token"
)

// annRand is a splitmix64 stream for deterministic corpus generation.
type annRand struct{ s uint64 }

func (r *annRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func (r *annRand) intn(n int) int { return int(r.next() % uint64(n)) }

var annVocab = []string{
	"open", "close", "read[4096]", "write[4096]", "read[512]", "write[512]",
	"lseek+read[4096]", "lseek+write[4096]", "[ROOT]", "[HANDLE]",
	"read[32768]", "write[32768]", "[LEVEL_UP]", "[LEVEL_DOWN]", "fsync", "stat",
}

// annCorpus builds a clustered corpus mirroring the paper's trace
// distribution: bases of 40-56 tokens, each repeated copies times with a
// single token substitution — so every entry's true neighbourhood is its
// own cluster of near-duplicates at high sketch cosine, the regime LSH
// candidate generation is designed for (distant neighbours are what the
// exact rerank is for; see docs/ARCHITECTURE.md).
func annCorpus(bases, copies int, seed uint64) []token.String {
	r := &annRand{s: seed}
	out := make([]token.String, 0, bases*copies)
	for b := 0; b < bases; b++ {
		n := 40 + r.intn(17)
		base := make(token.String, n)
		for i := range base {
			base[i] = token.Token{Literal: annVocab[r.intn(len(annVocab))], Weight: 1 + r.intn(9)}
		}
		for c := 0; c < copies; c++ {
			x := append(token.String(nil), base...)
			x[r.intn(n)] = token.Token{Literal: annVocab[r.intn(len(annVocab))], Weight: 1 + r.intn(9)}
			out = append(out, x)
		}
	}
	return out
}

func TestANNConfigClamping(t *testing.T) {
	cases := []struct {
		bands, rows  int
		wantB, wantR int
		wantEnabled  bool
	}{
		{0, 8, 0, 0, false},
		{-3, 8, 0, 0, false},
		{16, 0, 16, sketch.DefaultRows, true},
		{16, 200, 16, sketch.MaxRows, true},
		{1 << 20, 8, 512, 8, true},
		{sketch.DefaultBands, sketch.DefaultRows, 16, 8, true},
	}
	for _, c := range cases {
		ix := sketch.NewIndexANN(64, c.bands, c.rows, 1)
		b, r, enabled := ix.ANNConfig()
		if b != c.wantB || r != c.wantR || enabled != c.wantEnabled {
			t.Errorf("NewIndexANN(64, %d, %d, 1): config (%d, %d, %v), want (%d, %d, %v)",
				c.bands, c.rows, b, r, enabled, c.wantB, c.wantR, c.wantEnabled)
		}
	}
	if b, r, enabled := sketch.NewIndex(64).ANNConfig(); b != 0 || r != 0 || enabled {
		t.Errorf("NewIndex: ANNConfig = (%d, %d, %v), want flat", b, r, enabled)
	}
}

// buildIndexes sketches a corpus into a flat and a banded index holding
// identical vectors.
func buildIndexes(t testing.TB, xs []token.String, bands, rows int, seed uint64) (flat, ann *sketch.Index, vecs [][]float64) {
	t.Helper()
	sk := sketch.New(sketch.Options{Seed: seed})
	flat = sketch.NewIndex(sk.Dim())
	ann = sketch.NewIndexANN(sk.Dim(), bands, rows, seed)
	vecs = make([][]float64, len(xs))
	for id, x := range xs {
		vecs[id] = sk.Sketch(x)
		if err := flat.Add(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
		if err := ann.Add(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	return flat, ann, vecs
}

func candidatesEqual(a, b []sketch.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

// TestANNCoveringMatchesFlat asserts the exactness fallbacks: whenever k
// covers every reachable entry (k < 0, k >= live, or k >= live-1 with the
// query excluded), the banded index returns bit-identical results to the
// flat scan — the property that keeps full-rerank engine queries exact
// under ANN.
func TestANNCoveringMatchesFlat(t *testing.T) {
	xs := annCorpus(8, 4, 11)
	flat, ann, vecs := buildIndexes(t, xs, 8, 6, 7)
	n := len(xs)
	for _, k := range []int{-1, n, n + 5} {
		for id := 0; id < n; id += 5 {
			got := ann.Search(vecs[id], k, -1)
			want := flat.Search(vecs[id], k, -1)
			if !candidatesEqual(got, want) {
				t.Fatalf("k=%d id=%d: ANN covering search diverges from flat", k, id)
			}
		}
	}
	// Excluding the query: k = live-1 covers all remaining entries.
	for id := 0; id < n; id += 7 {
		got := ann.Search(vecs[id], n-1, id)
		want := flat.Search(vecs[id], n-1, id)
		if !candidatesEqual(got, want) {
			t.Fatalf("id=%d: ANN covering-with-exclude search diverges from flat", id)
		}
	}
}

// TestANNDeterminism asserts search results are independent of build
// order and survive remove/re-add churn: two banded indexes holding the
// same live vectors return bit-identical candidates however they got
// there, and Equal agrees.
func TestANNDeterminism(t *testing.T) {
	xs := annCorpus(8, 4, 3)
	n := len(xs)
	sk := sketch.New(sketch.Options{Seed: 9})
	vecs := make([][]float64, n)
	for id, x := range xs {
		vecs[id] = sk.Sketch(x)
	}

	forward := sketch.NewIndexANN(sk.Dim(), 8, 6, 9)
	for id := 0; id < n; id++ {
		if err := forward.Add(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	churned := sketch.NewIndexANN(sk.Dim(), 8, 6, 9)
	for id := n - 1; id >= 0; id-- {
		if err := churned.Add(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone churn: removing ids must fully unlink them from the
	// buckets; since ids are never reused, drop even ids and re-check
	// against a fresh index over the odd ones.
	if !forward.Equal(churned) {
		t.Fatal("indexes over the same vectors in different insert orders are not Equal")
	}
	for id := 0; id < n; id++ {
		got := churned.Search(vecs[id], 5, -1)
		want := forward.Search(vecs[id], 5, -1)
		if !candidatesEqual(got, want) {
			t.Fatalf("id=%d: search depends on insertion order", id)
		}
	}

	for id := 0; id < n; id += 2 {
		if !forward.Remove(id) {
			t.Fatalf("Remove(%d) = false", id)
		}
	}
	odd := sketch.NewIndexANN(sk.Dim(), 8, 6, 9)
	for id := 1; id < n; id += 2 {
		if err := odd.Add(id, vecs[id]); err != nil {
			t.Fatal(err)
		}
	}
	for id := 1; id < n; id += 2 {
		got := forward.Search(vecs[id], 5, -1)
		want := odd.Search(vecs[id], 5, -1)
		if !candidatesEqual(got, want) {
			t.Fatalf("id=%d: post-remove search diverges from fresh index over the live set", id)
		}
	}
	if removed := forward.Search(vecs[0], len(xs), -1); func() bool {
		for _, c := range removed {
			if c.ID%2 == 0 {
				return true
			}
		}
		return false
	}() {
		t.Fatal("tombstoned id surfaced in ANN search results")
	}
}

// TestANNSigsRoundTrip asserts AddSigned with persisted signatures builds
// the same index state (Equal, same searches) as recomputing them — the
// property snapshot restore leans on.
func TestANNSigsRoundTrip(t *testing.T) {
	xs := annCorpus(6, 4, 5)
	_, ann, vecs := buildIndexes(t, xs, 8, 6, 5)
	resigned := sketch.NewIndexANN(sketch.DefaultDim, 8, 6, 5)
	for id := range vecs {
		if err := resigned.AddSigned(id, vecs[id], ann.Sig(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !ann.Equal(resigned) {
		t.Fatal("index rebuilt from persisted signatures is not Equal to the original")
	}
	for id := 0; id < len(xs); id += 3 {
		if !candidatesEqual(ann.Search(vecs[id], 5, -1), resigned.Search(vecs[id], 5, -1)) {
			t.Fatalf("id=%d: search diverges after signature round-trip", id)
		}
	}
}

// annRecallAt10 measures top-10 set recall of the banded index against
// the flat scan over the same vectors, averaged over sampled queries.
func annRecallAt10(flat, ann *sketch.Index, vecs [][]float64, stride int) float64 {
	const k = 10
	var sum float64
	queries := 0
	for id := 0; id < len(vecs); id += stride {
		want := flat.Search(vecs[id], k, -1)
		// Tie-aware recall: any returned candidate scoring at least the
		// k-th ground-truth score is a valid top-k answer (both paths
		// rescore in float64, so the comparison is exact).
		floor := want[len(want)-1].Score
		hits := 0
		for _, c := range ann.Search(vecs[id], k, -1) {
			if c.Score >= floor {
				hits++
			}
		}
		sum += float64(hits) / float64(len(want))
		queries++
	}
	return sum / float64(queries)
}

// TestANNRecall4096 asserts recall@10 >= 0.9 at N=4096 with the default
// banding, against the flat scan as ground truth, for sketches built the
// way each engine kernel builds them: the windowed-substring embedding
// (what every Kast engine uses — the embedding is cut-weight independent,
// so one corpus covers cut 2 and cut 4 alike) and the feature-map
// embedding of the featured kernels (Blended, Spectrum).
func TestANNRecall4096(t *testing.T) {
	if testing.Short() {
		t.Skip("N=4096 recall corpus is a few seconds of work")
	}
	xs := annCorpus(256, 16, 42)
	if len(xs) != 4096 {
		t.Fatalf("corpus size %d, want 4096", len(xs))
	}
	sk := sketch.New(sketch.Options{Seed: 1})

	embeddings := []struct {
		name string
		vec  func(x token.String) []float64
	}{
		{"kast-windows(cut2+cut4)", func(x token.String) []float64 { return sk.Sketch(x) }},
		{"blended-features", func(x token.String) []float64 {
			f, ok := kernel.Features(&kernel.Blended{P: 5, CutWeight: 2}, x)
			if !ok {
				t.Fatal("Blended is not featured")
			}
			return sk.SketchFeatures(f)
		}},
		{"spectrum-features", func(x token.String) []float64 {
			f, ok := kernel.Features(&kernel.Spectrum{K: 3, Mode: kernel.Count}, x)
			if !ok {
				t.Fatal("Spectrum is not featured")
			}
			return sk.SketchFeatures(f)
		}},
	}
	for _, emb := range embeddings {
		t.Run(emb.name, func(t *testing.T) {
			flat := sketch.NewIndex(sk.Dim())
			ann := sketch.NewIndexANN(sk.Dim(), sketch.DefaultBands, sketch.DefaultRows, 1)
			vecs := make([][]float64, len(xs))
			for id, x := range xs {
				vecs[id] = emb.vec(x)
				if err := flat.Add(id, vecs[id]); err != nil {
					t.Fatal(err)
				}
				if err := ann.Add(id, vecs[id]); err != nil {
					t.Fatal(err)
				}
			}
			recall := annRecallAt10(flat, ann, vecs, 64)
			t.Logf("%s: ANN recall@10 = %.3f at N=%d (bands=%d rows=%d)",
				emb.name, recall, len(xs), sketch.DefaultBands, sketch.DefaultRows)
			if recall < 0.9 {
				t.Errorf("%s: ANN recall@10 = %.3f, want >= 0.9", emb.name, recall)
			}
		})
	}
}

// TestANNPreparedQuerySharing asserts the fan-out contract: a query
// prepared on one index is valid on any index built under the same
// (dim, bands, rows, seed), and a query without ANN byproducts falls back
// to the exact flat scan.
func TestANNPreparedQuerySharing(t *testing.T) {
	xs := annCorpus(8, 4, 21)
	sk := sketch.New(sketch.Options{Seed: 4})
	a := sketch.NewIndexANN(sk.Dim(), 8, 6, 4)
	b := sketch.NewIndexANN(sk.Dim(), 8, 6, 4)
	flat := sketch.NewIndex(sk.Dim())
	vecs := make([][]float64, len(xs))
	for id, x := range xs {
		vecs[id] = sk.Sketch(x)
		for _, ix := range []*sketch.Index{a, b, flat} {
			if err := ix.Add(id, vecs[id]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for id := 0; id < len(xs); id += 3 {
		q := a.PrepareQuery(vecs[id])
		if !candidatesEqual(b.SearchQuery(q, 5, -1), a.SearchQuery(q, 5, -1)) {
			t.Fatalf("id=%d: shared prepared query diverges across same-config indexes", id)
		}
		// A flat-prepared query on a banded index must fall back to the
		// exact scan.
		if !candidatesEqual(a.SearchQuery(flat.PrepareQuery(vecs[id]), 5, -1), flat.Search(vecs[id], 5, -1)) {
			t.Fatalf("id=%d: flat-prepared query on banded index is not the exact scan", id)
		}
	}
}

// TestANNSearchSelf asserts the by-id fast path equals preparing the
// stored vector from scratch.
func TestANNSearchSelf(t *testing.T) {
	xs := annCorpus(8, 4, 33)
	_, ann, vecs := buildIndexes(t, xs, 8, 6, 2)
	for id := 0; id < len(xs); id += 3 {
		got := ann.SearchSelf(id, 5)
		want := ann.Search(vecs[id], 5, id)
		if !candidatesEqual(got, want) {
			t.Fatalf("id=%d: SearchSelf diverges from Search with exclude", id)
		}
	}
	if got := ann.SearchSelf(len(xs)+7, 5); got != nil {
		t.Fatalf("SearchSelf on absent id returned %v", got)
	}
}

// TestANNSelfQuery pins the stored-query fast path the sharded by-id
// fan-out uses: SelfQuery must hand back the stored embedding and
// signature (no recompute), and searching with it must match SearchSelf.
func TestANNSelfQuery(t *testing.T) {
	xs := annCorpus(8, 4, 34)
	flat, ann, _ := buildIndexes(t, xs, 8, 6, 2)
	for _, ix := range []*sketch.Index{flat, ann} {
		for _, bad := range []int{-1, len(xs), len(xs) + 100} {
			if q := ix.SelfQuery(bad); q != nil {
				t.Fatalf("SelfQuery(%d) on %d-entry index returned non-nil", bad, len(xs))
			}
		}
		if !ix.Remove(3) {
			t.Fatal("Remove(3) reported nothing removed")
		}
		if q := ix.SelfQuery(3); q != nil {
			t.Fatal("SelfQuery on a tombstoned id returned non-nil")
		}
		for id := 0; id < len(xs); id += 5 {
			if id == 3 {
				continue
			}
			q := ix.SelfQuery(id)
			if q == nil {
				t.Fatalf("SelfQuery(%d) = nil for a live id", id)
			}
			got := ix.SearchQuery(q, 5, id)
			want := ix.SearchSelf(id, 5)
			if !candidatesEqual(got, want) {
				t.Fatalf("id=%d: SearchQuery(SelfQuery) diverges from SearchSelf", id)
			}
		}
	}
}

func BenchmarkANNSearch(b *testing.B) {
	xs := annCorpus(256, 16, 42)
	sk := sketch.New(sketch.Options{Seed: 1})
	vecs := make([][]float64, len(xs))
	for id, x := range xs {
		vecs[id] = sk.Sketch(x)
	}
	for _, cfg := range []struct {
		name        string
		bands, rows int
	}{{"flat", 0, 0}, {"ann", sketch.DefaultBands, sketch.DefaultRows}} {
		b.Run(fmt.Sprintf("%s/n=%d", cfg.name, len(xs)), func(b *testing.B) {
			ix := sketch.NewIndexANN(sk.Dim(), cfg.bands, cfg.rows, 1)
			for id := range vecs {
				if err := ix.Add(id, vecs[id]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.SearchSelf(i%len(vecs), 10)
			}
		})
	}
}
