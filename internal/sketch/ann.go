package sketch

import (
	"math"
	"sort"
)

// ANN defaults and bounds for NewIndexANN.
const (
	// DefaultBands is the band count used when a caller enables ANN
	// without choosing one. Sixteen bands of DefaultRows hyperplanes keep
	// recall@10 >= 0.9 on the paper's trace corpora (asserted by the
	// package recall tests) while touching a few percent of the corpus
	// per query.
	DefaultBands = 16
	// DefaultRows is the number of sign-random-projection hyperplanes per
	// band when the caller passes rows <= 0. Two vectors collide in one
	// band with probability (1 - theta/pi)^rows, so rows trades candidate
	// volume (lower rows) against precision (higher rows).
	DefaultRows = 8
	// MaxRows bounds rows so one band key fits a uint64.
	MaxRows = 64
	// maxBands bounds the per-entry signature footprint.
	maxBands = 512

	// planeSalt separates the ANN hyperplane stream from every other
	// seeded hash in this package, so enabling ANN cannot correlate with
	// the sketch buckets derived from the same seed.
	planeSalt = 0xa5b35705b6d5c3ed
)

// annState is the LSH-banded candidate structure a non-flat Index carries:
// per-band signatures (sign random projections, one bit per hyperplane),
// hash buckets from band key to member ids, and int8-quantized copies of
// every vector for the candidate scan. It is guarded by the Index mutex;
// planes are immutable after construction and may be read without it.
type annState struct {
	bands, rows int
	seed        uint64
	planes      [][]uint64         // bands*rows hyperplanes, bit-packed Rademacher rows
	sigs        [][]uint64         // id-indexed band keys; nil = absent
	q8          [][]int8           // id-indexed quantized vectors; nil = absent
	buckets     []map[uint64][]int // per-band: band key -> live member ids
}

// newANNState derives the banded structure for (dim, bands, rows, seed).
// Every hyperplane bit comes from mix64 over the coordinates alone, so two
// states built from equal parameters are identical — there is no stored
// randomness, which is what lets shards and snapshot restores share
// signatures.
func newANNState(dim, bands, rows int, seed uint64) *annState {
	a := &annState{bands: bands, rows: rows, seed: seed}
	words := (dim + 63) / 64
	a.planes = make([][]uint64, bands*rows)
	for p := range a.planes {
		row := make([]uint64, words)
		for w := range row {
			row[w] = mix64(seed ^ planeSalt ^ uint64(p)<<24 ^ uint64(w))
		}
		a.planes[p] = row
	}
	a.buckets = make([]map[uint64][]int, bands)
	for b := range a.buckets {
		a.buckets[b] = make(map[uint64][]int)
	}
	return a
}

// signature computes the band keys of vec: bit r of band b is the sign of
// the dot product with hyperplane b*rows+r, whose +-1 entries are the bits
// of the packed plane row. Pure float64 additions in index order — no FMA,
// no reassociation — so the result is bit-deterministic in (vec, config).
// Zero components are skipped up front: a ±0 term never changes the bits
// of a running sum (and a zero total is non-negative whatever its sign),
// so the keys are identical to the dense accumulation while the cost
// drops to bands*rows*nnz — sketch vectors only populate the dims their
// features hash to, so short strings are sparse.
func (a *annState) signature(vec []float64) []uint64 {
	nz := make([]int32, 0, len(vec))
	for j, v := range vec {
		if v != 0 {
			nz = append(nz, int32(j))
		}
	}
	sig := make([]uint64, a.bands)
	p := 0
	for b := range sig {
		var key uint64
		for r := 0; r < a.rows; r++ {
			plane := a.planes[p]
			p++
			var sum float64
			for _, j := range nz {
				if plane[j>>6]&(1<<(uint(j)&63)) != 0 {
					sum += vec[j]
				} else {
					sum -= vec[j]
				}
			}
			if sum >= 0 {
				key |= 1 << uint(r)
			}
		}
		sig[b] = key
	}
	return sig
}

// quantize maps a unit-norm sketch to int8 at scale 127. The quantized
// copy only ranks candidates — reported scores always come from the
// float64 vectors — so the ~0.4% per-component rounding error costs at
// most a little shortlist recall, never score accuracy.
func quantize(vec []float64) []int8 {
	q := make([]int8, len(vec))
	for i, v := range vec {
		x := math.Round(v * 127)
		if x > 127 {
			x = 127
		} else if x < -127 {
			x = -127
		}
		q[i] = int8(x)
	}
	return q
}

// dotQ8 is the int32 inner product of two quantized vectors. dim <= 4096
// and |component| <= 127 keep the sum far from overflow.
func dotQ8(a, b []int8) int32 {
	var s int32
	for i, v := range a {
		s += int32(v) * int32(b[i])
	}
	return s
}

// NewIndexANN returns an index whose Search generates candidates from LSH
// bands instead of a full scan: vectors sharing a band key with the query
// are scanned (int8 dot products), the best k are rescored with the exact
// float64 sketch dot. bands <= 0 returns a flat index identical to
// NewIndex(dim); rows is clamped to [1, MaxRows] (0 meaning DefaultRows)
// and bands to at most maxBands. seed must match the sketcher seed the
// vectors were built with only by convention — any fixed seed works — but
// two indexes exchange signatures (AddSigned, shard fan-out) only when
// (dim, bands, rows, seed) all match.
//
// Search degrades to the flat scan whenever that is at least as cheap or
// required for exactness: k < 0 (all results), k >= live entries (the
// full-rerank path — keeping ANN engines bit-identical to exact ones
// there), or when the banded pool has fewer than k members.
func NewIndexANN(dim, bands, rows int, seed uint64) *Index {
	if dim <= 0 {
		dim = DefaultDim
	}
	ix := &Index{dim: dim}
	if bands <= 0 {
		return ix
	}
	if bands > maxBands {
		bands = maxBands
	}
	if rows <= 0 {
		rows = DefaultRows
	}
	if rows > MaxRows {
		rows = MaxRows
	}
	ix.ann = newANNState(dim, bands, rows, seed)
	return ix
}

// ANNConfig reports the banding parameters, or enabled=false for a flat
// index (bands and rows are then 0).
func (ix *Index) ANNConfig() (bands, rows int, enabled bool) {
	if ix.ann == nil {
		return 0, 0, false
	}
	return ix.ann.bands, ix.ann.rows, true
}

// Sig returns the stored band signature for id (nil when absent or the
// index is flat). The slice is the index's own storage: read-only for the
// caller. Snapshots persist these so a restore can skip recomputing them.
func (ix *Index) Sig(id int) []uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.ann == nil || id < 0 || id >= len(ix.ann.sigs) {
		return nil
	}
	return ix.ann.sigs[id]
}

// AddSigned is Add with a precomputed band signature, used by snapshot
// restore to skip the signature recomputation. A nil or wrong-width sig
// falls back to computing it; a non-nil sig is trusted to equal
// signature(vec) — callers must only pass signatures produced under an
// identical (dim, bands, rows, seed) configuration.
func (ix *Index) AddSigned(id int, vec []float64, sig []uint64) error {
	if len(vec) != ix.dim {
		return errVecWidth(len(vec), ix.dim)
	}
	if id < 0 {
		return errNegID(id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked(id, vec, sig)
}

// addLocked inserts vec (and, for ANN indexes, its signature and
// quantized copy) under the already-held write lock.
func (ix *Index) addLocked(id int, vec []float64, sig []uint64) error {
	for id >= len(ix.vecs) {
		ix.vecs = append(ix.vecs, nil)
	}
	if ix.vecs[id] != nil {
		return errDupID(id)
	}
	ix.vecs[id] = vec
	ix.live++
	if a := ix.ann; a != nil {
		if len(sig) != a.bands {
			sig = a.signature(vec)
		}
		for id >= len(a.sigs) {
			a.sigs = append(a.sigs, nil)
			a.q8 = append(a.q8, nil)
		}
		a.sigs[id] = sig
		a.q8[id] = quantize(vec)
		for b, key := range sig {
			a.buckets[b][key] = append(a.buckets[b][key], id)
		}
	}
	return nil
}

// removeANNLocked drops id from the banded structure (no-op on flat
// indexes); the caller holds the write lock and has already tombstoned the
// vector.
func (ix *Index) removeANNLocked(id int) {
	a := ix.ann
	if a == nil || id >= len(a.sigs) || a.sigs[id] == nil {
		return
	}
	for b, key := range a.sigs[id] {
		ids := a.buckets[b][key]
		for i, v := range ids {
			if v == id {
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				break
			}
		}
		if len(ids) == 0 {
			delete(a.buckets[b], key)
		} else {
			a.buckets[b][key] = ids
		}
	}
	a.sigs[id] = nil
	a.q8[id] = nil
}

// Query is a prepared search input: the float64 sketch plus — when the
// preparing index is banded — its band signature and quantized copy.
// Preparing once and searching many indexes built under the same
// (dim, bands, rows, seed) configuration (the sharded fan-out) amortizes
// the signature cost across shards.
type Query struct {
	// Vec is the raw sketch vector the query was prepared from.
	Vec []float64
	sig []uint64
	q8  []int8
}

// PrepareQuery computes the ANN byproducts of vec for this index's
// configuration. On a flat index (or a width mismatch) the result just
// wraps vec; SearchQuery then runs the flat scan.
func (ix *Index) PrepareQuery(vec []float64) *Query {
	q := &Query{Vec: vec}
	if ix.ann != nil && len(vec) == ix.dim {
		q.sig = ix.ann.signature(vec)
		q.q8 = quantize(vec)
	}
	return q
}

// SearchQuery is Search over a prepared query. A query without ANN
// byproducts (prepared on a flat or differently-configured index) falls
// back to the exact flat scan, which is always a correct superset of the
// banded pool.
func (ix *Index) SearchQuery(q *Query, k, exclude int) []Candidate {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.searchQueryLocked(q, k, exclude)
}

// SearchSelf searches with the stored vector of a live id, excluding the
// id itself — the by-id approximate query. On a banded index the stored
// signature and quantized copy are reused, so no per-query signature work
// is paid at all. Returns nil for absent or tombstoned ids.
func (ix *Index) SearchSelf(id, k int) []Candidate {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.vecs) || ix.vecs[id] == nil {
		return nil
	}
	q := &Query{Vec: ix.vecs[id]}
	if a := ix.ann; a != nil {
		q.sig = a.sigs[id]
		q.q8 = a.q8[id]
	}
	return ix.searchQueryLocked(q, k, id)
}

// SelfQuery returns a prepared query backed by the stored vector — and,
// on a banded index, the stored signature and quantized copy — of a live
// id, for searching *other* indexes built under the same configuration
// (the sharded by-id fan-out). No signature work is paid. Returns nil for
// absent or tombstoned ids. The returned query aliases index storage and
// must be treated as read-only.
func (ix *Index) SelfQuery(id int) *Query {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.vecs) || ix.vecs[id] == nil {
		return nil
	}
	q := &Query{Vec: ix.vecs[id]}
	if a := ix.ann; a != nil {
		q.sig = a.sigs[id]
		q.q8 = a.q8[id]
	}
	return q
}

func (ix *Index) searchQueryLocked(q *Query, k, exclude int) []Candidate {
	a := ix.ann
	ix.met.Searches.Inc()
	// reachable is the number of entries a scan can return: the flat
	// fallback must kick in exactly when k covers them all, so that
	// full-rerank queries (including by-id queries excluding themselves)
	// stay bit-identical to the flat index.
	reachable := ix.live
	if exclude >= 0 && exclude < len(ix.vecs) && ix.vecs[exclude] != nil {
		reachable--
	}
	if a == nil || q.sig == nil || len(q.sig) != a.bands || k < 0 || k >= reachable {
		ix.met.FlatFallbacks.Inc()
		return ix.searchFlatLocked(q.Vec, k, exclude)
	}

	// Candidate pool: the union of the query's band buckets, deduplicated
	// with a dense seen-bitmap (one byte per id slot — cheap to allocate
	// and clear, and pool membership tests stay O(1)).
	seen := make([]bool, len(ix.vecs))
	pool := make([]int, 0, 4*k)
	for b, key := range q.sig {
		for _, id := range a.buckets[b][key] {
			if !seen[id] && id != exclude {
				seen[id] = true
				pool = append(pool, id)
			}
		}
	}
	ix.met.PoolCandidates.Add(int64(len(pool)))
	if len(pool) < k {
		// The bands found fewer candidates than requested; the flat scan
		// is both necessary for k results and barely more expensive than
		// the pool it would have replaced.
		ix.met.FlatFallbacks.Inc()
		return ix.searchFlatLocked(q.Vec, k, exclude)
	}

	// Rank the pool by quantized dot product (int32 accumulate over int8
	// components: ~8x less memory traffic than the float64 scan), keep the
	// best k, then rescore those with the exact float64 dot so reported
	// scores are bit-identical to the flat scan's.
	type qc struct {
		id int
		s  int32
	}
	scored := make([]qc, len(pool))
	for i, id := range pool {
		scored[i] = qc{id: id, s: dotQ8(q.q8, a.q8[id])}
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].s != scored[b].s {
			return scored[a].s > scored[b].s
		}
		return scored[a].id < scored[b].id
	})
	// Quantization resolves cosine only to a few hundredths, so the true
	// k-th and (k+m)-th candidates can swap places in the int8 ranking.
	// Rescore a margin past k before the float64 cut: the extra dot
	// products are a rounding error next to the pool scan, and they keep
	// boundary candidates from being dropped over an int8 tie.
	rescore := 2*k + 16
	if rescore > len(scored) {
		rescore = len(scored)
	}
	scored = scored[:rescore]
	out := make([]Candidate, len(scored))
	for i, c := range scored {
		out[i] = Candidate{ID: c.id, Score: Dot(q.Vec, ix.vecs[c.id])}
	}
	sortCandidates(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}
