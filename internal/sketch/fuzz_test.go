package sketch_test

import (
	"bytes"
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/matrixio"
	"iokast/internal/sketch"
	"iokast/internal/token"
)

// FuzzSketchDeterminism fuzzes the invariant everything downstream leans
// on: for any parseable weighted string and any (dim, seed), sketching is
// bit-deterministic, and a sketch survives the persistence paths — the
// matrixio vector codec and a full engine snapshot/restore round-trip —
// with identical bits.
func FuzzSketchDeterminism(f *testing.F) {
	f.Add("read[4096]:3 write[512]:1 read[4096]:3", uint16(64), uint64(0))
	f.Add("[ROOT]:1 [HANDLE]:1 open:1 write[32768]:900 close:1", uint16(256), uint64(42))
	f.Add("a:1", uint16(1), uint64(^uint64(0)))
	f.Add("lseek+read[4096]:70 lseek+write[4096]:50 [LEVEL_UP]:2", uint16(8), uint64(7))
	f.Fuzz(func(t *testing.T, text string, dimRaw uint16, seed uint64) {
		x, err := token.Parse(text)
		if err != nil || len(x) == 0 || x.Validate() != nil {
			t.Skip()
		}
		if len(x) > 256 {
			x = x[:256] // keep each execution cheap
		}
		dim := int(dimRaw)%512 + 1

		s := sketch.New(sketch.Options{Dim: dim, Seed: seed})
		vec := s.Sketch(x)
		again := sketch.New(sketch.Options{Dim: dim, Seed: seed}).Sketch(x)
		requireSameBits(t, vec, again, "re-sketch")

		// Codec round-trip preserves every bit.
		var buf bytes.Buffer
		if err := matrixio.WriteVectors(&buf, dim, [][]float64{vec, nil}); err != nil {
			t.Fatal(err)
		}
		gotDim, vecs, err := matrixio.ReadVectors(&buf, 2)
		if err != nil {
			t.Fatal(err)
		}
		if gotDim != dim || len(vecs) != 2 || vecs[1] != nil {
			t.Fatalf("codec shape: dim %d, %d slots", gotDim, len(vecs))
		}
		requireSameBits(t, vec, vecs[0], "codec round-trip")

		// Engine snapshot round-trip: the restored index must hold the
		// persisted bits, which in turn must equal the direct sketch (the
		// engine sketches Kast entries from the same string).
		opts := engine.Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: dim, SketchSeed: seed}
		e := engine.New(opts)
		e.Add(x)
		requireSameBits(t, vec, e.SketchVec(0), "engine Add")
		var snap bytes.Buffer
		if _, err := e.Snapshot(&snap); err != nil {
			t.Fatal(err)
		}
		rec := engine.New(opts)
		if err := rec.Restore(&snap); err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, vec, rec.SketchVec(0), "snapshot round-trip")
	})
}

// FuzzANNSignature fuzzes the band-signature contract the ANN fan-out and
// snapshot restore lean on: for any parseable weighted string and any
// (dim, bands, rows, seed), the LSH signature is bit-deterministic across
// independently built indexes, feeding a persisted signature back through
// AddSigned reproduces the exact index state, and the signature survives
// the matrixio word codec unchanged.
func FuzzANNSignature(f *testing.F) {
	f.Add("read[4096]:3 write[512]:1 read[4096]:3", uint16(64), uint8(16), uint8(8), uint64(0))
	f.Add("[ROOT]:1 [HANDLE]:1 open:1 write[32768]:900 close:1", uint16(256), uint8(4), uint8(64), uint64(42))
	f.Add("a:1", uint16(1), uint8(1), uint8(1), uint64(^uint64(0)))
	f.Add("lseek+read[4096]:70 lseek+write[4096]:50 [LEVEL_UP]:2", uint16(8), uint8(32), uint8(3), uint64(7))
	f.Fuzz(func(t *testing.T, text string, dimRaw uint16, bandsRaw, rowsRaw uint8, seed uint64) {
		x, err := token.Parse(text)
		if err != nil || len(x) == 0 || x.Validate() != nil {
			t.Skip()
		}
		if len(x) > 256 {
			x = x[:256]
		}
		dim := int(dimRaw)%512 + 1
		bands := int(bandsRaw)%64 + 1
		rows := int(rowsRaw) % (sketch.MaxRows + 1) // 0 exercises the DefaultRows clamp

		vec := sketch.New(sketch.Options{Dim: dim, Seed: seed}).Sketch(x)

		a := sketch.NewIndexANN(dim, bands, rows, seed)
		b := sketch.NewIndexANN(dim, bands, rows, seed)
		if err := a.Add(0, vec); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(0, vec); err != nil {
			t.Fatal(err)
		}
		sig := a.Sig(0)
		if len(sig) != bands {
			t.Fatalf("signature width %d, want bands=%d", len(sig), bands)
		}
		other := b.Sig(0)
		for i := range sig {
			if sig[i] != other[i] {
				t.Fatalf("band %d: signature differs across identically configured indexes: %x vs %x", i, sig[i], other[i])
			}
		}

		// Word codec round-trip (the snapshot v3 signature block).
		var buf bytes.Buffer
		if err := matrixio.WriteWordVectors(&buf, bands, [][]uint64{sig, nil}); err != nil {
			t.Fatal(err)
		}
		gotWidth, sigs, err := matrixio.ReadWordVectors(&buf, 2)
		if err != nil {
			t.Fatal(err)
		}
		if gotWidth != bands || len(sigs) != 2 || sigs[1] != nil {
			t.Fatalf("word codec shape: width %d, %d slots", gotWidth, len(sigs))
		}
		for i := range sig {
			if sigs[0][i] != sig[i] {
				t.Fatalf("band %d: signature changed across codec round-trip", i)
			}
		}

		// Restoring via AddSigned with the persisted signature must build
		// the same state as recomputing it.
		c := sketch.NewIndexANN(dim, bands, rows, seed)
		if err := c.AddSigned(0, vec, sigs[0]); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(c) {
			t.Fatal("AddSigned with persisted signature diverges from Add")
		}
	})
}

func requireSameBits(t *testing.T, want, got []float64, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: width %d vs %d", context, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x",
				context, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}
