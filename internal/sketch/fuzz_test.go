package sketch_test

import (
	"bytes"
	"math"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/matrixio"
	"iokast/internal/sketch"
	"iokast/internal/token"
)

// FuzzSketchDeterminism fuzzes the invariant everything downstream leans
// on: for any parseable weighted string and any (dim, seed), sketching is
// bit-deterministic, and a sketch survives the persistence paths — the
// matrixio vector codec and a full engine snapshot/restore round-trip —
// with identical bits.
func FuzzSketchDeterminism(f *testing.F) {
	f.Add("read[4096]:3 write[512]:1 read[4096]:3", uint16(64), uint64(0))
	f.Add("[ROOT]:1 [HANDLE]:1 open:1 write[32768]:900 close:1", uint16(256), uint64(42))
	f.Add("a:1", uint16(1), uint64(^uint64(0)))
	f.Add("lseek+read[4096]:70 lseek+write[4096]:50 [LEVEL_UP]:2", uint16(8), uint64(7))
	f.Fuzz(func(t *testing.T, text string, dimRaw uint16, seed uint64) {
		x, err := token.Parse(text)
		if err != nil || len(x) == 0 || x.Validate() != nil {
			t.Skip()
		}
		if len(x) > 256 {
			x = x[:256] // keep each execution cheap
		}
		dim := int(dimRaw)%512 + 1

		s := sketch.New(sketch.Options{Dim: dim, Seed: seed})
		vec := s.Sketch(x)
		again := sketch.New(sketch.Options{Dim: dim, Seed: seed}).Sketch(x)
		requireSameBits(t, vec, again, "re-sketch")

		// Codec round-trip preserves every bit.
		var buf bytes.Buffer
		if err := matrixio.WriteVectors(&buf, dim, [][]float64{vec, nil}); err != nil {
			t.Fatal(err)
		}
		gotDim, vecs, err := matrixio.ReadVectors(&buf, 2)
		if err != nil {
			t.Fatal(err)
		}
		if gotDim != dim || len(vecs) != 2 || vecs[1] != nil {
			t.Fatalf("codec shape: dim %d, %d slots", gotDim, len(vecs))
		}
		requireSameBits(t, vec, vecs[0], "codec round-trip")

		// Engine snapshot round-trip: the restored index must hold the
		// persisted bits, which in turn must equal the direct sketch (the
		// engine sketches Kast entries from the same string).
		opts := engine.Options{Kernel: &core.Kast{CutWeight: 2}, SketchDim: dim, SketchSeed: seed}
		e := engine.New(opts)
		e.Add(x)
		requireSameBits(t, vec, e.SketchVec(0), "engine Add")
		var snap bytes.Buffer
		if _, err := e.Snapshot(&snap); err != nil {
			t.Fatal(err)
		}
		rec := engine.New(opts)
		if err := rec.Restore(&snap); err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, vec, rec.SketchVec(0), "snapshot round-trip")
	})
}

func requireSameBits(t *testing.T, want, got []float64, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: width %d vs %d", context, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x",
				context, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}
