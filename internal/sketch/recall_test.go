package sketch_test

// The recall harness: property tests over generated corpora asserting that
// the sketch index is a faithful approximation of exact similarity — high
// recall without reranking, and exact top-k equality once the exact rerank
// covers the corpus. These live in an external test package because they
// exercise the sketch through internal/engine, which itself imports
// internal/sketch.

import (
	"math"
	"sort"
	"testing"

	"iokast/internal/core"
	"iokast/internal/engine"
	"iokast/internal/iogen"
	"iokast/internal/kernel"
	"iokast/internal/sketch"
	"iokast/internal/token"
)

// recallCorpus builds a moderate labelled corpus: 13 base traces across
// the paper's four categories, each with mutated copies — large enough
// that top-10 neighbourhoods are meaningful, small enough that every
// kernel config's full Gram stays cheap.
func recallCorpus(t testing.TB, seed uint64) []token.String {
	t.Helper()
	ds, err := iogen.Build(iogen.Options{
		Seed: seed,
		Bases: map[iogen.Category]int{
			iogen.CatFlash:        4,
			iogen.CatRandomPOSIX:  3,
			iogen.CatNormal:       3,
			iogen.CatRandomAccess: 3,
		},
		CopiesPerBase:    3,
		MutationsPerCopy: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.ConvertAll(ds.Traces, core.Options{})
}

// kernelConfigs spans the kernels and cut weights the engine serves.
func kernelConfigs() []kernel.Kernel {
	return []kernel.Kernel{
		&core.Kast{CutWeight: 2},
		&core.Kast{CutWeight: 4},
		&kernel.Blended{P: 5, CutWeight: 2},
		&kernel.Spectrum{K: 3, Mode: kernel.Count},
		&kernel.BagOfTokens{},
	}
}

func buildEngine(t testing.TB, k kernel.Kernel, xs []token.String) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Options{Kernel: k})
	if _, err := e.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	return e
}

// recallAt10 runs every corpus entry as a query against exact Similar and
// the given approximate query, returning average top-10 set recall.
func recallAt10(t *testing.T, e *engine.Engine, n int, approx func(id int) []engine.Neighbor) float64 {
	t.Helper()
	const k = 10
	var recallSum float64
	for id := 0; id < n; id++ {
		exact, err := e.Similar(id, k)
		if err != nil {
			t.Fatal(err)
		}
		exactIDs := make(map[int]bool, len(exact))
		for _, nb := range exact {
			exactIDs[nb.ID] = true
		}
		hits := 0
		for _, nb := range approx(id) {
			if exactIDs[nb.ID] {
				hits++
			}
		}
		recallSum += float64(hits) / float64(len(exact))
	}
	return recallSum / float64(n)
}

// TestRecallAt10 asserts recall@10 >= 0.9 for the approximate query path
// at its default settings (sketch shortlist + exact rerank of the default
// over-fetch) against exact Similar, averaged over every query id, for
// every kernel/cut-weight config at the default sketch width.
func TestRecallAt10(t *testing.T) {
	xs := recallCorpus(t, 1)
	for _, kern := range kernelConfigs() {
		e := buildEngine(t, kern, xs)
		recall := recallAt10(t, e, len(xs), func(id int) []engine.Neighbor {
			ns, err := e.SimilarApprox(id, 10, -1)
			if err != nil {
				t.Fatal(err)
			}
			return ns
		})
		t.Logf("%s: recall@10 = %.3f over %d queries", kern.Name(), recall, len(xs))
		if recall < 0.9 {
			t.Errorf("%s: recall@10 = %.3f, want >= 0.9", kern.Name(), recall)
		}
	}
}

// TestShortlistCoverage asserts the property the rerank depends on: the
// raw sketch ranking (rerank = 0), over-fetched to the default shortlist
// size, covers >= 0.9 of the exact top-10 for every config. This is the
// bound that makes the default-rerank path exact in practice.
func TestShortlistCoverage(t *testing.T) {
	xs := recallCorpus(t, 1)
	const shortlist = 4 * 10 // the default over-fetch for k=10
	for _, kern := range kernelConfigs() {
		e := buildEngine(t, kern, xs)
		cov := recallAt10(t, e, len(xs), func(id int) []engine.Neighbor {
			ns, err := e.SimilarApprox(id, shortlist, 0)
			if err != nil {
				t.Fatal(err)
			}
			return ns
		})
		t.Logf("%s: shortlist-%d coverage of exact top-10 = %.3f", kern.Name(), shortlist, cov)
		if cov < 0.9 {
			t.Errorf("%s: shortlist coverage = %.3f, want >= 0.9", kern.Name(), cov)
		}
	}
}

// TestSketchOnlyRecallFeatured asserts the stronger bar for the featured
// kernels, whose sketches hash their own feature maps and therefore
// estimate the kernel's true cosine: even without any rerank, top-10
// recall stays >= 0.9.
//
// The Kast kernel is deliberately excluded here: its feature set is
// pair-dependent and its cosine-on-raw-Gram similarity is not a true
// cosine (values above 1 occur, and near-duplicate pairs can rank below
// structurally diverse ones), so no fixed per-string embedding can
// reproduce the exact ranking without the rerank step. Its shortlist
// coverage — the property the approximate path actually needs — is
// asserted above.
func TestSketchOnlyRecallFeatured(t *testing.T) {
	xs := recallCorpus(t, 1)
	for _, kern := range kernelConfigs() {
		if _, ok := kernel.Features(kern, nil); !ok {
			continue
		}
		e := buildEngine(t, kern, xs)
		recall := recallAt10(t, e, len(xs), func(id int) []engine.Neighbor {
			ns, err := e.SimilarApprox(id, 10, 0)
			if err != nil {
				t.Fatal(err)
			}
			return ns
		})
		t.Logf("%s: sketch-only recall@10 = %.3f", kern.Name(), recall)
		if recall < 0.9 {
			t.Errorf("%s: sketch-only recall@10 = %.3f, want >= 0.9", kern.Name(), recall)
		}
	}
}

// TestRerankMatchesExact asserts the acceptance property: with the rerank
// covering the corpus, SimilarApprox returns exactly Similar's top-k —
// same ids, same similarity bits, same order — for every query and config.
func TestRerankMatchesExact(t *testing.T) {
	xs := recallCorpus(t, 2)
	for _, kern := range kernelConfigs() {
		e := buildEngine(t, kern, xs)
		for id := range xs {
			for _, k := range []int{1, 5, 10} {
				exact, err := e.Similar(id, k)
				if err != nil {
					t.Fatal(err)
				}
				approx, err := e.SimilarApprox(id, k, len(xs))
				if err != nil {
					t.Fatal(err)
				}
				if len(exact) != len(approx) {
					t.Fatalf("%s id=%d k=%d: %d vs %d neighbors", kern.Name(), id, k, len(exact), len(approx))
				}
				for i := range exact {
					if exact[i] != approx[i] {
						t.Fatalf("%s id=%d k=%d: neighbor %d exact %+v != approx %+v",
							kern.Name(), id, k, i, exact[i], approx[i])
					}
				}
			}
		}
	}
}

// TestSimilarTraceMatchesBruteForce asserts query-by-trace correctness:
// for fresh traces never ingested, SimilarTrace with full rerank equals a
// brute-force exact scan (one kernel evaluation per corpus entry,
// cosine-normalised), and the sketch-shortlisted variant finds the same
// top-1 — a fresh mutation of a corpus trace has an unambiguous nearest
// neighbour.
func TestSimilarTraceMatchesBruteForce(t *testing.T) {
	xs := recallCorpus(t, 3)
	queries := recallCorpus(t, 4)[:8]
	const k = 5
	for _, kern := range kernelConfigs() {
		e := buildEngine(t, kern, xs)
		for qi, q := range queries {
			got, err := e.SimilarTrace(q, k, len(xs))
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceNeighbors(kern, xs, q, k)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d vs %d neighbors", kern.Name(), qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d: neighbor %d got %+v, want %+v",
						kern.Name(), qi, i, got[i], want[i])
				}
			}
			shortlisted, err := e.SimilarTrace(q, k, -1)
			if err != nil {
				t.Fatal(err)
			}
			if len(shortlisted) == 0 || shortlisted[0] != want[0] {
				t.Errorf("%s query %d: shortlisted top-1 %+v, want %+v",
					kern.Name(), qi, shortlisted, want[0])
			}
		}
	}
}

func buildANNEngine(t testing.TB, k kernel.Kernel, xs []token.String) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Options{Kernel: k, ANNBands: sketch.DefaultBands, ANNRows: sketch.DefaultRows})
	if _, err := e.AddBatch(xs); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestANNRecallAt10 is TestRecallAt10 with LSH-banded candidate
// generation enabled: recall@10 must stay >= 0.9 at the default rerank
// for every kernel/cut-weight config when the shortlist comes from the
// banded index instead of the flat sketch scan.
func TestANNRecallAt10(t *testing.T) {
	xs := recallCorpus(t, 1)
	for _, kern := range kernelConfigs() {
		e := buildANNEngine(t, kern, xs)
		if _, _, enabled := e.ANNConfig(); !enabled {
			t.Fatal("ANN not enabled on the engine under test")
		}
		recall := recallAt10(t, e, len(xs), func(id int) []engine.Neighbor {
			ns, err := e.SimilarApprox(id, 10, -1)
			if err != nil {
				t.Fatal(err)
			}
			return ns
		})
		t.Logf("%s: ANN recall@10 = %.3f over %d queries", kern.Name(), recall, len(xs))
		if recall < 0.9 {
			t.Errorf("%s: ANN recall@10 = %.3f, want >= 0.9", kern.Name(), recall)
		}
	}
}

// TestANNRerankMatchesExact asserts the ANN acceptance property: with the
// rerank covering the corpus, an ANN-enabled engine's SimilarApprox
// returns exactly Similar's top-k — same ids, same similarity bits, same
// order — and SimilarTrace with full rerank equals the brute-force scan.
// Approximation never changes answers when the rerank pays for exactness.
func TestANNRerankMatchesExact(t *testing.T) {
	xs := recallCorpus(t, 2)
	queries := recallCorpus(t, 5)[:4]
	for _, kern := range kernelConfigs() {
		e := buildANNEngine(t, kern, xs)
		for id := range xs {
			for _, k := range []int{1, 5, 10} {
				exact, err := e.Similar(id, k)
				if err != nil {
					t.Fatal(err)
				}
				approx, err := e.SimilarApprox(id, k, len(xs))
				if err != nil {
					t.Fatal(err)
				}
				if len(exact) != len(approx) {
					t.Fatalf("%s id=%d k=%d: %d vs %d neighbors", kern.Name(), id, k, len(exact), len(approx))
				}
				for i := range exact {
					if exact[i] != approx[i] {
						t.Fatalf("%s id=%d k=%d: neighbor %d exact %+v != ANN %+v",
							kern.Name(), id, k, i, exact[i], approx[i])
					}
				}
			}
		}
		for qi, q := range queries {
			got, err := e.SimilarTrace(q, 5, len(xs))
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceNeighbors(kern, xs, q, 5)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d vs %d neighbors", kern.Name(), qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s query %d: neighbor %d got %+v, want %+v", kern.Name(), qi, i, got[i], want[i])
				}
			}
		}
	}
}

// bruteForceNeighbors is the exact reference for query-by-trace: score
// every corpus string with the raw kernel, cosine-normalise, sort by
// decreasing similarity with ties by ascending id.
func bruteForceNeighbors(kern kernel.Kernel, xs []token.String, q token.String, k int) []engine.Neighbor {
	self := kern.Compare(q, q)
	out := make([]engine.Neighbor, len(xs))
	for id, x := range xs {
		v := kern.Compare(q, x)
		if d := self * kern.Compare(x, x); d > 0 {
			v /= math.Sqrt(d)
		} else {
			v = 0
		}
		out[id] = engine.Neighbor{ID: id, Similarity: v}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].ID < out[b].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
