package sketch

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Index is a flat in-memory sketch index: one fixed-width vector per
// integer id, scanned linearly on search. For the corpus sizes one engine
// shard holds, a contiguous scan of unit vectors is both simpler and
// faster than tree- or graph-based ANN structures, and it is exact with
// respect to the sketch scores — the only approximation in the pipeline
// stays the sketch itself. Later sharding/ANN layers can replace this
// behind the same interface.
//
// All methods are safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	dim  int
	vecs [][]float64 // id-indexed; nil = never added or removed
	live int
}

// Candidate is one search result: an id and its sketch score (the cosine
// of the unit sketches).
type Candidate struct {
	ID    int
	Score float64
}

// NewIndex returns an empty index for vectors of the given width.
func NewIndex(dim int) *Index {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Index{dim: dim}
}

// Dim returns the vector width.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Size returns the total number of id slots (live plus tombstoned).
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vecs)
}

// Add stores vec under id, growing the id space as needed. The slice is
// retained, not copied; callers must not mutate it afterwards. Replacing a
// live id is an error — engine ids are never reused.
func (ix *Index) Add(id int, vec []float64) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("sketch: vector of width %d in index of width %d", len(vec), ix.dim)
	}
	if id < 0 {
		return fmt.Errorf("sketch: negative id %d", id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for id >= len(ix.vecs) {
		ix.vecs = append(ix.vecs, nil)
	}
	if ix.vecs[id] != nil {
		return fmt.Errorf("sketch: id %d already indexed", id)
	}
	ix.vecs[id] = vec
	ix.live++
	return nil
}

// Remove tombstones id. Removing an absent id is a no-op returning false.
func (ix *Index) Remove(id int) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id < 0 || id >= len(ix.vecs) || ix.vecs[id] == nil {
		return false
	}
	ix.vecs[id] = nil
	ix.live--
	return true
}

// Vec returns the stored vector for id, or nil. The slice is the index's
// own storage: read-only for the caller.
func (ix *Index) Vec(id int) []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.vecs) {
		return nil
	}
	return ix.vecs[id]
}

// Search scans every live vector and returns the k highest-scoring ids by
// dot product with q (the sketch cosine, on unit vectors), in decreasing
// score order with ties broken by ascending id. k < 0 returns all live
// entries. exclude (if >= 0) is skipped — callers pass the query's own id.
func (ix *Index) Search(q []float64, k, exclude int) []Candidate {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]Candidate, 0, ix.live)
	for id, vec := range ix.vecs {
		if vec == nil || id == exclude {
			continue
		}
		out = append(out, Candidate{ID: id, Score: Dot(q, vec)})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Equal reports whether two indexes hold bit-identical state: same width,
// same id space, same tombstones, and per-id vectors equal bit for bit
// (NaNs compare by bit pattern, so even those would have to match). Tests
// use it to assert that incremental, batch, and recovered engines build
// the same index.
func (ix *Index) Equal(o *Index) bool {
	if ix == nil || o == nil {
		return ix == o
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if ix.dim != o.dim || ix.live != o.live || len(ix.vecs) != len(o.vecs) {
		return false
	}
	for id, vec := range ix.vecs {
		ov := o.vecs[id]
		if (vec == nil) != (ov == nil) {
			return false
		}
		for i, v := range vec {
			if math.Float64bits(v) != math.Float64bits(ov[i]) {
				return false
			}
		}
	}
	return true
}
