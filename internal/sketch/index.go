package sketch

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Index is an in-memory sketch index: one fixed-width vector per integer
// id. A flat index (NewIndex) scans every live vector on search and is
// exact with respect to the sketch scores — the only approximation in the
// pipeline stays the sketch itself. A banded index (NewIndexANN) adds an
// LSH candidate structure so search touches only the vectors sharing a
// band signature with the query, falling back to the flat scan whenever
// exactness requires it.
//
// All methods are safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	dim  int
	vecs [][]float64 // id-indexed; nil = never added or removed
	live int
	ann  *annState    // nil = flat index
	met  IndexMetrics // search telemetry; zero value = disabled
}

// Candidate is one search result: an id and its sketch score (the cosine
// of the unit sketches).
type Candidate struct {
	ID    int
	Score float64
}

// NewIndex returns an empty flat index for vectors of the given width.
func NewIndex(dim int) *Index {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Index{dim: dim}
}

// Dim returns the vector width.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live vectors.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.live
}

// Size returns the total number of id slots (live plus tombstoned).
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.vecs)
}

func errVecWidth(got, want int) error {
	return fmt.Errorf("sketch: vector of width %d in index of width %d", got, want)
}

func errNegID(id int) error { return fmt.Errorf("sketch: negative id %d", id) }

func errDupID(id int) error { return fmt.Errorf("sketch: id %d already indexed", id) }

// Add stores vec under id, growing the id space as needed. The slice is
// retained, not copied; callers must not mutate it afterwards. Replacing a
// live id is an error — engine ids are never reused. On a banded index the
// signature and quantized copy are derived here.
func (ix *Index) Add(id int, vec []float64) error {
	if len(vec) != ix.dim {
		return errVecWidth(len(vec), ix.dim)
	}
	if id < 0 {
		return errNegID(id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.addLocked(id, vec, nil)
}

// Remove tombstones id. Removing an absent id is a no-op returning false.
func (ix *Index) Remove(id int) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id < 0 || id >= len(ix.vecs) || ix.vecs[id] == nil {
		return false
	}
	ix.vecs[id] = nil
	ix.live--
	ix.removeANNLocked(id)
	return true
}

// Vec returns the stored vector for id, or nil. The slice is the index's
// own storage: read-only for the caller.
func (ix *Index) Vec(id int) []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.vecs) {
		return nil
	}
	return ix.vecs[id]
}

// Search returns the k highest-scoring ids by dot product with q (the
// sketch cosine, on unit vectors), in decreasing score order with ties
// broken by ascending id. k < 0 returns all live entries. exclude (if
// >= 0) is skipped — callers pass the query's own id. On a flat index this
// scans every live vector; on a banded index it scans the LSH candidate
// pool (see NewIndexANN for the exactness fallbacks). Callers issuing the
// same query against several same-config indexes should prepare it once
// (PrepareQuery) and use SearchQuery.
func (ix *Index) Search(q []float64, k, exclude int) []Candidate {
	return ix.SearchQuery(ix.PrepareQuery(q), k, exclude)
}

// searchFlatLocked is the exact linear scan under the already-held read
// lock.
func (ix *Index) searchFlatLocked(q []float64, k, exclude int) []Candidate {
	out := make([]Candidate, 0, ix.live)
	for id, vec := range ix.vecs {
		if vec == nil || id == exclude {
			continue
		}
		out = append(out, Candidate{ID: id, Score: Dot(q, vec)})
	}
	sortCandidates(out)
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// sortCandidates orders by decreasing score, ties by ascending id — the
// one ordering every search path shares.
func sortCandidates(out []Candidate) {
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
}

// Equal reports whether two indexes hold bit-identical state: same width,
// same id space, same tombstones, per-id vectors equal bit for bit (NaNs
// compare by bit pattern, so even those would have to match), and — for
// banded indexes — the same ANN configuration and per-id band signatures.
// Bucket layout is not compared: it varies with insertion order but never
// affects results. Tests use Equal to assert that incremental, batch, and
// recovered engines build the same index.
func (ix *Index) Equal(o *Index) bool {
	if ix == nil || o == nil {
		return ix == o
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if ix.dim != o.dim || ix.live != o.live || len(ix.vecs) != len(o.vecs) {
		return false
	}
	for id, vec := range ix.vecs {
		ov := o.vecs[id]
		if (vec == nil) != (ov == nil) {
			return false
		}
		for i, v := range vec {
			if math.Float64bits(v) != math.Float64bits(ov[i]) {
				return false
			}
		}
	}
	if (ix.ann == nil) != (o.ann == nil) {
		return false
	}
	if a, b := ix.ann, o.ann; a != nil {
		if a.bands != b.bands || a.rows != b.rows || a.seed != b.seed {
			return false
		}
		for id := range ix.vecs {
			var as, bs []uint64
			if id < len(a.sigs) {
				as = a.sigs[id]
			}
			if id < len(b.sigs) {
				bs = b.sigs[id]
			}
			if len(as) != len(bs) {
				return false
			}
			for i, w := range as {
				if w != bs[i] {
					return false
				}
			}
		}
	}
	return true
}
