package sketch

import "iokast/internal/token"

// Accum maintains the sketch of a sliding window over a token stream
// incrementally: appending a token costs O(MaxLen) hash-and-accumulate
// operations and evicting the oldest token costs O(MaxLen) subtractions,
// independent of the window size — against O(window * MaxLen) for
// re-sketching the window from scratch. This is the incremental update
// hook behind the streaming ingest path (internal/stream), where every
// stride tick would otherwise re-embed an almost-unchanged window.
//
// The accumulated vector is *exactly* the unnormalised Sketch of the
// current window contents. Two facts make that exact rather than merely
// close: every substring feature of a window is generated once, grouped
// by its start position (so evicting a position subtracts precisely the
// contributions appending it added — substrings only extend forward); and
// every contribution is a signed integer weight, which float64 adds and
// subtracts exactly while bucket magnitudes stay below 2^53 — far beyond
// any real window. Vector therefore returns bit-identical output to
// Sketcher.Sketch of the window token string, which the tests pin.
//
// Accum tracks the windowed-substring embedding (Sketcher.Sketch), the
// one used for the Kast kernel; featured kernels embed via
// SketchFeatures, which has no incremental form here. An Accum is not
// safe for concurrent use.
type Accum struct {
	s *Sketcher
	// vec is the unnormalised window sketch.
	vec []float64
	// ring holds one entry per buffered token position, oldest at head.
	ring []accumPos
	head int
	n    int
}

// accumPos is the per-start-position state: the rolling polynomial hash
// and weight sum of the substring from this position to the stream end
// (maintained only while it can still grow, i.e. length <= MaxLen), plus
// every signed bucket contribution this start has made — what eviction
// must subtract.
type accumPos struct {
	h        uint64
	w        int
	contribs []bucketVal
}

type bucketVal struct {
	bucket int32
	val    float64
}

// NewAccum returns an empty sliding-window accumulator for this
// sketcher's configuration.
func (s *Sketcher) NewAccum() *Accum {
	return &Accum{s: s, vec: make([]float64, s.dim)}
}

// Len returns the number of buffered token positions.
func (a *Accum) Len() int { return a.n }

// pos returns the i-th buffered position (0 = oldest).
func (a *Accum) pos(i int) *accumPos {
	return &a.ring[(a.head+i)%len(a.ring)]
}

// Append extends the window by one token: the token opens a new start
// position and extends the up-to-MaxLen-1 most recent ones, accumulating
// one substring feature per extension.
func (a *Accum) Append(t token.Token) {
	th := hashString(t.Literal)
	// Extend the most recent starts: the one k back reaches length k+1.
	m := a.s.maxLen - 1
	if m > a.n {
		m = a.n
	}
	for k := 1; k <= m; k++ {
		p := a.pos(a.n - k)
		p.h = p.h*polyBase + th
		p.w += t.Weight
		a.add(p, k+1)
	}
	if a.n == len(a.ring) {
		a.grow()
	}
	a.n++
	p := a.pos(a.n - 1)
	*p = accumPos{h: th, w: t.Weight, contribs: p.contribs[:0]}
	a.add(p, 1)
}

// add accumulates the substring feature of start p at length l into the
// vector and records it for eviction, mirroring Sketcher.accumulate (and
// Sketch's length folding) exactly.
func (a *Accum) add(p *accumPos, l int) {
	v := 1.0
	if !a.s.count {
		v = float64(p.w)
	}
	h := mix64(mix64(p.h^uint64(l)*lenSalt) ^ a.s.seed)
	if h>>63 != 0 {
		v = -v
	}
	b := int32(h % uint64(a.s.dim))
	a.vec[b] += v
	p.contribs = append(p.contribs, bucketVal{bucket: b, val: v})
}

// Evict drops the oldest token position, subtracting every contribution
// it made. It reports whether anything was evicted.
func (a *Accum) Evict() bool {
	if a.n == 0 {
		return false
	}
	p := &a.ring[a.head]
	for _, c := range p.contribs {
		a.vec[c.bucket] -= c.val
	}
	p.contribs = p.contribs[:0]
	a.head = (a.head + 1) % len(a.ring)
	a.n--
	return true
}

// grow doubles the ring, re-linearising the live entries.
func (a *Accum) grow() {
	size := len(a.ring) * 2
	if size == 0 {
		size = 16
	}
	next := make([]accumPos, size)
	for i := 0; i < a.n; i++ {
		next[i] = *a.pos(i)
	}
	a.ring = next
	a.head = 0
}

// Vector returns the normalised window sketch — bit-identical to
// Sketcher.Sketch of the window's token string (zero for an empty or
// degenerate window), as a fresh copy the caller may keep.
func (a *Accum) Vector() []float64 {
	out := make([]float64, len(a.vec))
	copy(out, a.vec)
	normalize(out)
	return out
}
