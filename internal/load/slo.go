package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO grammar (the --slo flag):
//
//	slo     := group (';' group)*
//	group   := [selector ':'] assert (',' assert)*
//	assert  := metric cmp bound
//	metric  := 'p50' | 'p95' | 'p99' | 'p999' | 'p99.9' | 'err'
//	cmp     := '<' | '<=' | '='
//	bound   := duration (for pXX, e.g. '5ms') | percent (for err,
//	           e.g. '0.1%' or '0')
//
// The selector picks endpoints: "*" (or no selector) matches every
// endpoint, a bare path like "/classify" matches every method on that
// path, and a full label like "GET /similar" matches exactly one. A
// gate passes only if every matched endpoint satisfies it; a gate that
// matches no traffic FAILS — a typo'd selector must not green a CI job.
//
// Examples:
//
//	--slo '/classify:p99<5ms,err<0.1%'
//	--slo '*:p99<50ms,err=0'
//	--slo 'GET /similar:p95<2ms;/traces:p99<10ms'

// Gate is one parsed SLO assertion applied to a selector.
type Gate struct {
	Selector string  `json:"selector"` // "*", "/path", or "METHOD /path"
	Metric   string  `json:"metric"`   // p50, p95, p99, p999, err
	Cmp      string  `json:"cmp"`      // "<", "<=", "="
	Bound    float64 `json:"bound"`    // ms for pXX, fraction for err
}

// String renders the gate back in flag form.
func (g Gate) String() string {
	if g.Metric == "err" {
		return fmt.Sprintf("%s:err%s%g%%", g.Selector, g.Cmp, g.Bound*100)
	}
	return fmt.Sprintf("%s:%s%s%gms", g.Selector, g.Metric, g.Cmp, g.Bound)
}

// GateResult is one gate's outcome, per the report it was evaluated on.
type GateResult struct {
	Gate   string  `json:"gate"`
	Pass   bool    `json:"pass"`
	Detail string  `json:"detail"`
	Worst  float64 `json:"worst"` // the worst matched value, gate units
}

// ParseSLO parses one --slo flag value into gates.
func ParseSLO(s string) ([]Gate, error) {
	var gates []Gate
	for _, group := range splitNonEmpty(s, ';') {
		group = strings.TrimSpace(group)
		selector := "*"
		asserts := group
		// A selector is present when the group has a ':' before the
		// first assertion. Metrics never contain '/', selectors always
		// start with '/' or '*' or a method, so split on the first ':'.
		if i := strings.Index(group, ":"); i >= 0 {
			selector, asserts = strings.TrimSpace(group[:i]), group[i+1:]
			if selector == "" {
				return nil, fmt.Errorf("load: empty SLO selector in %q", group)
			}
		}
		any := false
		for _, a := range splitNonEmpty(asserts, ',') {
			g, err := parseAssert(selector, strings.TrimSpace(a))
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
			any = true
		}
		if !any {
			return nil, fmt.Errorf("load: SLO group %q has no assertions", group)
		}
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("load: empty SLO expression %q", s)
	}
	return gates, nil
}

var sloMetrics = map[string]string{
	"p50": "p50", "p95": "p95", "p99": "p99", "p999": "p999",
	"p99.9": "p999", "err": "err",
}

func parseAssert(selector, a string) (Gate, error) {
	cut := strings.IndexAny(a, "<=")
	if cut < 0 {
		return Gate{}, fmt.Errorf("load: SLO assertion %q has no comparator (want e.g. p99<5ms)", a)
	}
	metric, ok := sloMetrics[strings.TrimSpace(a[:cut])]
	if !ok {
		return Gate{}, fmt.Errorf("load: unknown SLO metric %q (want p50/p95/p99/p999/err)", strings.TrimSpace(a[:cut]))
	}
	rest := a[cut:]
	cmp := "<"
	switch {
	case strings.HasPrefix(rest, "<="):
		cmp, rest = "<=", rest[2:]
	case strings.HasPrefix(rest, "<"):
		cmp, rest = "<", rest[1:]
	case strings.HasPrefix(rest, "="):
		cmp, rest = "=", rest[1:]
	}
	rest = strings.TrimSpace(rest)
	g := Gate{Selector: selector, Metric: metric, Cmp: cmp}
	if metric == "err" {
		frac, err := parsePercent(rest)
		if err != nil {
			return Gate{}, fmt.Errorf("load: SLO %q: %v", a, err)
		}
		g.Bound = frac
		return g, nil
	}
	if cmp == "=" {
		return Gate{}, fmt.Errorf("load: SLO %q: '=' only applies to err (latency bounds use '<')", a)
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d < 0 {
		return Gate{}, fmt.Errorf("load: SLO %q: bad latency bound %q", a, rest)
	}
	g.Bound = ms(d)
	return g, nil
}

// parsePercent parses "0.1%" (percent) or a bare "0"/"0.001" (fraction)
// into a fraction in [0, 1].
func parsePercent(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad error bound %q", s)
	}
	if pct {
		v /= 100
	}
	if v > 1 {
		return 0, fmt.Errorf("error bound %q exceeds 100%%", s)
	}
	return v, nil
}

// matches reports whether the gate's selector covers the endpoint label
// ("METHOD /path").
func (g Gate) matches(endpoint string) bool {
	if g.Selector == "*" || g.Selector == endpoint {
		return true
	}
	// Bare-path selector: match the path part of the label, so
	// "/similar" covers both GET and POST forms; "/traces" does not
	// cover "/traces/batch" or "/traces/{id}" — those are different
	// endpoints with different costs.
	if i := strings.IndexByte(endpoint, ' '); i >= 0 {
		return g.Selector == endpoint[i+1:]
	}
	return false
}

func (g Gate) value(e EndpointReport) float64 {
	switch g.Metric {
	case "p50":
		return e.P50Ms
	case "p95":
		return e.P95Ms
	case "p99":
		return e.P99Ms
	case "p999":
		return e.P999Ms
	default: // "err"
		return e.ErrorRate
	}
}

func (g Gate) holds(v float64) bool {
	switch g.Cmp {
	case "<":
		return v < g.Bound
	case "<=":
		return v <= g.Bound
	default: // "="
		return v == g.Bound
	}
}

// Evaluate applies every gate to the report and records the outcomes in
// report.SLO. It returns true only if all gates pass.
func Evaluate(gates []Gate, report *Report) bool {
	allPass := true
	report.SLO = report.SLO[:0]
	for _, g := range gates {
		res := GateResult{Gate: g.String()}
		matched := 0
		pass := true
		worst := ""
		for ep, e := range report.Endpoints {
			if !g.matches(ep) || e.Requests == 0 {
				continue
			}
			matched++
			v := g.value(e)
			if matched == 1 || v > res.Worst {
				res.Worst, worst = v, ep
			}
			if !g.holds(v) {
				pass = false
			}
		}
		switch {
		case matched == 0:
			res.Pass = false
			res.Detail = "no matching endpoint traffic"
		case g.Metric == "err":
			res.Pass = pass
			res.Detail = fmt.Sprintf("worst %s err=%.4g%% over %d endpoint(s)", worst, 100*res.Worst, matched)
		default:
			res.Pass = pass
			res.Detail = fmt.Sprintf("worst %s %s=%.3gms over %d endpoint(s)", worst, g.Metric, res.Worst, matched)
		}
		if !res.Pass {
			allPass = false
		}
		report.SLO = append(report.SLO, res)
	}
	return allPass
}
