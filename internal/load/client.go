package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// statusClasses is the per-endpoint status-code table: exact codes up to
// 599 (a fixed array, so recording a status is one increment).
const statusMax = 600

// endpointStats accumulates one worker's view of one endpoint. Workers
// never share stats objects, so the record path takes no locks.
type endpointStats struct {
	hist      Histogram
	statuses  [statusMax]int64
	transport int64 // requests that never produced an HTTP status
}

// Result is the merged outcome of a run, keyed by endpoint label
// (Op.Endpoint()).
type Result struct {
	PerEndpoint map[string]*endpointStats
	Wall        time.Duration // run wall-clock from first due to drain
	Requests    int64
}

// Runner drives one request schedule against a target server.
type Runner struct {
	// Target is the base URL, e.g. "http://127.0.0.1:8080".
	Target string
	// Workers bounds in-flight requests; 0 means 8 per CPU. The pool
	// must be deep enough that the schedule, not the pool, sets the
	// arrival times — but when the server lags, the queue in front of
	// the pool grows and the wait lands in the recorded latency, which
	// is exactly the open-loop visibility the harness exists for.
	Workers int
	// Client is the HTTP client; nil gets a pooled transport sized for
	// Workers.
	Client *http.Client
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return 8 * runtime.GOMAXPROCS(0)
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	w := r.workers()
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        w,
		MaxIdleConnsPerHost: w,
	}}
}

// Run executes the schedule open-loop and returns merged stats. The
// schedule must be sorted by Due (BuildSchedule's contract). Latency is
// measured from each request's *scheduled* time: if every worker is busy
// when a request comes due, the time it spends queued counts, so a
// saturated server shows up as tail latency instead of silently thinning
// the offered load (coordinated omission).
func (r *Runner) Run(ctx context.Context, schedule []Request) (*Result, error) {
	if len(schedule) == 0 {
		return &Result{PerEndpoint: map[string]*endpointStats{}}, nil
	}
	client := r.client()
	nw := r.workers()

	// The queue holds the whole schedule, so the dispatcher can never be
	// blocked by slow workers — its sleeps alone set the arrival times.
	queue := make(chan int, len(schedule))
	start := time.Now()

	perWorker := make([]map[string]*endpointStats, nw)
	done := make(chan int, nw)
	for w := 0; w < nw; w++ {
		perWorker[w] = make(map[string]*endpointStats)
		go func(w int) {
			executed := 0
			for i := range queue {
				req := &schedule[i]
				ep := req.Op.Endpoint()
				st := perWorker[w][ep]
				if st == nil {
					st = &endpointStats{}
					perWorker[w][ep] = st
				}
				status := r.do(ctx, client, req)
				// Scheduled-time latency: includes queueing delay both in
				// the worker pool and in the server.
				st.hist.Record(time.Since(start.Add(req.Due)))
				if status > 0 && status < statusMax {
					st.statuses[status]++
				} else {
					st.transport++
				}
				executed++
			}
			done <- executed
		}(w)
	}

	// Dispatcher: release each request at its due time.
	dispatched := 0
dispatch:
	for i := range schedule {
		wait := time.Until(start.Add(schedule[i].Due))
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		queue <- i
		dispatched++
	}
	close(queue)

	total := int64(0)
	for w := 0; w < nw; w++ {
		total += int64(<-done)
	}
	res := &Result{
		PerEndpoint: map[string]*endpointStats{},
		Wall:        time.Since(start),
		Requests:    total,
	}
	for _, stats := range perWorker {
		for ep, st := range stats {
			dst := res.PerEndpoint[ep]
			if dst == nil {
				dst = &endpointStats{}
				res.PerEndpoint[ep] = dst
			}
			dst.hist.Merge(&st.hist)
			for s, c := range st.statuses {
				dst.statuses[s] += c
			}
			dst.transport += st.transport
		}
	}
	if err := ctx.Err(); err != nil && dispatched < len(schedule) {
		return res, fmt.Errorf("load: run cancelled after %d/%d requests: %w", dispatched, len(schedule), err)
	}
	return res, nil
}

// do executes one request and returns its HTTP status, or 0 for a
// transport-level failure.
func (r *Runner) do(ctx context.Context, client *http.Client, req *Request) int {
	var body io.Reader
	if req.Body != "" {
		body = strings.NewReader(req.Body)
	}
	hr, err := http.NewRequestWithContext(ctx, req.Method, r.Target+req.Path, body)
	if err != nil {
		return 0
	}
	resp, err := client.Do(hr)
	if err != nil {
		return 0
	}
	// Drain so the connection is reusable; the response content itself
	// is not the harness's business.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// Prefill ingests bodies via /traces/batch in chunks and labels them
// with their categories via /labels, giving query and delete ops a
// populated, labelled id space before the timed run. It returns the
// number of traces ingested and fails fast on any non-2xx answer — a
// half-prefilled corpus would silently skew every ratio the report
// prints.
func (r *Runner) Prefill(ctx context.Context, bodies, labels []string) (int, error) {
	client := r.client()
	const chunk = 256
	for at := 0; at < len(bodies); at += chunk {
		end := at + chunk
		if end > len(bodies) {
			end = len(bodies)
		}
		breq, _ := json.Marshal(struct {
			Traces []string `json:"traces"`
		}{bodies[at:end]})
		status, rbody := r.doJSON(ctx, client, "POST", "/traces/batch", string(breq))
		if status != http.StatusCreated {
			return at, fmt.Errorf("load: prefill batch [%d,%d): status %d: %s", at, end, status, rbody)
		}
	}
	if len(labels) > 0 {
		type asn struct {
			ID    int    `json:"id"`
			Label string `json:"label"`
		}
		as := make([]asn, len(labels))
		for i, l := range labels {
			as[i] = asn{ID: i, Label: l}
		}
		lreq, _ := json.Marshal(struct {
			Labels []asn `json:"labels"`
		}{as})
		status, rbody := r.doJSON(ctx, client, "POST", "/labels", string(lreq))
		if status != http.StatusOK {
			return len(bodies), fmt.Errorf("load: prefill labels: status %d: %s", status, rbody)
		}
	}
	return len(bodies), nil
}

func (r *Runner) doJSON(ctx context.Context, client *http.Client, method, path, body string) (int, string) {
	hr, err := http.NewRequestWithContext(ctx, method, r.Target+path, strings.NewReader(body))
	if err != nil {
		return 0, err.Error()
	}
	resp, err := client.Do(hr)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, strings.TrimSpace(string(b))
}
