package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// EndpointReport is the published per-endpoint summary. Latencies are
// milliseconds (floats survive JSON round-trips exactly, and ms is the
// unit SLOs are written in).
type EndpointReport struct {
	Requests   int64   `json:"requests"`
	Throughput float64 `json:"throughput_rps"`

	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`

	// Statuses counts exact HTTP status codes (JSON object keys must be
	// strings, so "201": 1200).
	Statuses map[string]int64 `json:"statuses"`
	// TransportErrors are requests that never got an HTTP status
	// (connection refused, timeout, ...).
	TransportErrors int64 `json:"transport_errors"`
	// Errors is the error budget numerator: 5xx plus transport errors.
	// 4xx is excluded deliberately — the mix generates some expected
	// 404s (idempotent re-deletes), and a client-side mistake is not a
	// server failure.
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
}

// Report is the full run report: the spec that produced it, per-endpoint
// summaries, a total row, and the SLO gate outcomes. It is the JSON
// artifact CI uploads and the input SLO gates are evaluated against.
type Report struct {
	Target      string                    `json:"target"`
	Spec        *Spec                     `json:"spec,omitempty"`
	WallSeconds float64                   `json:"wall_seconds"`
	Requests    int64                     `json:"requests"`
	Endpoints   map[string]EndpointReport `json:"endpoints"`
	Total       EndpointReport            `json:"total"`
	SLO         []GateResult              `json:"slo,omitempty"`

	// ServerMetrics holds the before/after delta of the server's own
	// cumulative /metrics series over the timed run (counters plus
	// histogram _sum/_count), when the run was invoked with
	// -scrape-metrics. The server-side ground truth next to the
	// client-side latencies: if iok_http_requests_total here disagrees
	// with Requests above, the harness dropped or double-counted work.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
}

// ms converts with full float precision; quantiles are already bucket
// midpoints, so no further rounding is added here.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func summarize(st *endpointStats, wall time.Duration) EndpointReport {
	h := &st.hist
	r := EndpointReport{
		Requests: h.Count(),
		P50Ms:    ms(h.Quantile(0.50)),
		P95Ms:    ms(h.Quantile(0.95)),
		P99Ms:    ms(h.Quantile(0.99)),
		P999Ms:   ms(h.Quantile(0.999)),
		MeanMs:   ms(h.Mean()),
		MaxMs:    ms(h.Max()),
		Statuses: map[string]int64{},

		TransportErrors: st.transport,
	}
	if wall > 0 {
		r.Throughput = float64(h.Count()) / wall.Seconds()
	}
	for code, n := range st.statuses {
		if n == 0 {
			continue
		}
		r.Statuses[fmt.Sprint(code)] = n
		if code >= 500 {
			r.Errors += n
		}
	}
	r.Errors += st.transport
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	return r
}

// BuildReport summarizes a run result.
func BuildReport(target string, spec *Spec, res *Result) *Report {
	rep := &Report{
		Target:      target,
		Spec:        spec,
		WallSeconds: res.Wall.Seconds(),
		Requests:    res.Requests,
		Endpoints:   map[string]EndpointReport{},
	}
	total := &endpointStats{}
	for ep, st := range res.PerEndpoint {
		rep.Endpoints[ep] = summarize(st, res.Wall)
		total.hist.Merge(&st.hist)
		for c, n := range st.statuses {
			total.statuses[c] += n
		}
		total.transport += st.transport
	}
	rep.Total = summarize(total, res.Wall)
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport reads a report back from its JSON form; the round-trip is
// part of the published contract (CI artifacts are consumed by tooling).
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("load: decode report: %v", err)
	}
	return &r, nil
}

// WriteHuman renders the report for a terminal.
func (r *Report) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "target %s: %d requests in %.2fs (%.1f req/s)\n",
		r.Target, r.Requests, r.WallSeconds, r.Total.Throughput)
	eps := make([]string, 0, len(r.Endpoints))
	for ep := range r.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(w, "%-22s %8s %9s %9s %9s %9s %9s %7s\n",
		"endpoint", "reqs", "p50", "p95", "p99", "p99.9", "max", "err")
	row := func(name string, e EndpointReport) {
		fmt.Fprintf(w, "%-22s %8d %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms %6.2f%%\n",
			name, e.Requests, e.P50Ms, e.P95Ms, e.P99Ms, e.P999Ms, e.MaxMs, 100*e.ErrorRate)
	}
	for _, ep := range eps {
		row(ep, r.Endpoints[ep])
	}
	row("TOTAL", r.Total)
	for _, g := range r.SLO {
		status := "PASS"
		if !g.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "slo %-38s %s  %s\n", g.Gate, status, g.Detail)
	}
}
