package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// mixedSpec is the reference mixed profile used by schedule tests.
func mixedSpec(seed uint64) Spec {
	return Spec{
		Clients:  3,
		Duration: Duration(2 * time.Second),
		Rate:     40,
		Arrival:  ArrivalSpec{Process: "poisson"},
		Mix: []MixEntry{
			{Op: OpIngest, Weight: 2},
			{Op: OpBatch, Weight: 0.5},
			{Op: OpSimilarID, Weight: 3},
			{Op: OpSimilarTrace, Weight: 2},
			{Op: OpClassify, Weight: 2},
			{Op: OpDelete, Weight: 0.5},
			{Op: OpStream, Weight: 1},
		},
		Seed:    seed,
		Prefill: 16,
	}
}

// TestBuildScheduleDeterministic is the acceptance-criteria pin: two
// builds from the same spec are deeply identical — same due times, same
// ops, same target ids, same synthesized bodies — and a different seed
// diverges.
func TestBuildScheduleDeterministic(t *testing.T) {
	s1, err := BuildSchedule(mixedSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSchedule(mixedSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different schedules")
	}
	s3, err := BuildSchedule(mixedSpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(s1) == 0 {
		t.Fatal("empty schedule")
	}
}

// TestBuildScheduleShape: the schedule respects the spec — sorted due
// times within the duration, roughly the offered request count, every
// op present, bodies parseable where expected, ids in their reserved
// ranges.
func TestBuildScheduleShape(t *testing.T) {
	spec := mixedSpec(7)
	sched, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	offered := float64(spec.Clients) * spec.Rate * time.Duration(spec.Duration).Seconds()
	if n := float64(len(sched)); n < offered/2 || n > offered*2 {
		t.Fatalf("schedule has %v requests, offered load was ~%v", n, offered)
	}
	seen := map[Op]int{}
	for i, r := range sched {
		if i > 0 && r.Due < sched[i-1].Due {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, r.Due, sched[i-1].Due)
		}
		if r.Due <= 0 || r.Due > time.Duration(spec.Duration) {
			t.Fatalf("request %d due %v outside (0, %v]", i, r.Due, spec.Duration)
		}
		if r.Client < 0 || r.Client >= spec.Clients {
			t.Fatalf("request %d client %d", i, r.Client)
		}
		seen[r.Op]++
		switch r.Op {
		case OpSimilarID:
			var id, k int
			if n, err := fmt.Sscanf(r.Path, "/similar?id=%d&k=%d", &id, &k); n != 2 || err != nil {
				t.Fatalf("bad similar_id path %q", r.Path)
			}
			if id < 0 || id >= spec.Prefill/2 {
				t.Fatalf("similar_id target %d outside query range [0, %d)", id, spec.Prefill/2)
			}
		case OpDelete:
			var id int
			if n, err := fmt.Sscanf(r.Path, "/traces/%d", &id); n != 1 || err != nil {
				t.Fatalf("bad delete path %q", r.Path)
			}
			if id < spec.Prefill/2 || id >= spec.Prefill {
				t.Fatalf("delete target %d outside delete pool [%d, %d)", id, spec.Prefill/2, spec.Prefill)
			}
		case OpIngest, OpSimilarTrace, OpClassify:
			if !strings.Contains(r.Body, "\nclose") {
				t.Fatalf("%s body does not look like a trace: %.80q", r.Op, r.Body)
			}
		case OpBatch:
			var batch struct {
				Traces []string `json:"traces"`
			}
			if err := json.Unmarshal([]byte(r.Body), &batch); err != nil || len(batch.Traces) != 4 {
				t.Fatalf("bad batch body (%v): %.80q", err, r.Body)
			}
		case OpStream:
			if !strings.HasPrefix(r.Path, "/ingest?") {
				t.Fatalf("bad stream path %q", r.Path)
			}
			if !strings.Contains(r.Body, `"op":`) || !strings.HasSuffix(r.Body, "\n") {
				t.Fatalf("stream body is not NDJSON events: %.80q", r.Body)
			}
		}
	}
	for _, op := range Ops {
		if seen[op] == 0 {
			t.Errorf("op %s never scheduled (%d total)", op, len(sched))
		}
	}
}

// TestSpecValidation rejects the malformed corners.
func TestSpecValidation(t *testing.T) {
	base := mixedSpec(1)
	for name, mutate := range map[string]func(*Spec){
		"no clients":      func(s *Spec) { s.Clients = 0 },
		"no duration":     func(s *Spec) { s.Duration = 0 },
		"no rate":         func(s *Spec) { s.Rate = 0 },
		"empty mix":       func(s *Spec) { s.Mix = nil },
		"unknown op":      func(s *Spec) { s.Mix = []MixEntry{{Op: "frobnicate", Weight: 1}} },
		"negative weight": func(s *Spec) { s.Mix[0].Weight = -1 },
		"all-zero weights": func(s *Spec) {
			for i := range s.Mix {
				s.Mix[i].Weight = 0
			}
		},
		"ids need prefill": func(s *Spec) { s.Prefill = 0 },
		"bad arrival":      func(s *Spec) { s.Arrival.Process = "lunar" },
		"unknown category": func(s *Spec) { s.Categories = []string{"Z"} },
		"negative batch":   func(s *Spec) { s.BatchSize = -1 },
	} {
		s := base
		s.Mix = append([]MixEntry(nil), base.Mix...)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestSpecJSONRoundTrip: the --spec file format survives a round trip,
// Duration strings included.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := mixedSpec(99)
	spec.Arrival = ArrivalSpec{Process: "gamma", Shape: 0.5, Periods: burstPeriods()}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"2s"`) {
		t.Fatalf("duration not human-readable in %s", b)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, spec)
	}
	sched1, err := BuildSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := BuildSchedule(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched1, sched2) {
		t.Fatal("schedule from round-tripped spec diverged")
	}
}

// TestParseMixAndPeriods covers the flag-form parsers.
func TestParseMixAndPeriods(t *testing.T) {
	mix, err := ParseMix("ingest=2,similar_id=3,classify=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []MixEntry{{OpIngest, 2}, {OpSimilarID, 3}, {OpClassify, 0.5}}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "ingest", "=2", "ingest=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): accepted", bad)
		}
	}
	ps, err := ParsePeriods("200ms*4,800ms*0.25")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, burstPeriods()) {
		t.Fatalf("periods = %+v", ps)
	}
	for _, bad := range []string{"", "200ms", "xyz*2", "200ms*x"} {
		if _, err := ParsePeriods(bad); err == nil {
			t.Errorf("ParsePeriods(%q): accepted", bad)
		}
	}
}

// TestPrefillBodies: deterministic, labelled, and disjoint from client
// body streams.
func TestPrefillBodies(t *testing.T) {
	spec := mixedSpec(5)
	b1, l1 := PrefillBodies(spec)
	b2, l2 := PrefillBodies(spec)
	if !reflect.DeepEqual(b1, b2) || !reflect.DeepEqual(l1, l2) {
		t.Fatal("prefill not deterministic")
	}
	if len(b1) != spec.Prefill || len(l1) != spec.Prefill {
		t.Fatalf("prefill sizes %d/%d, want %d", len(b1), len(l1), spec.Prefill)
	}
	for i, l := range l1 {
		if l == "" {
			t.Fatalf("prefill trace %d unlabelled", i)
		}
	}
}
