// Package load is an open-loop workload generator and latency-SLO load
// harness for the iokserve HTTP service.
//
// Open-loop means request *arrival times* are drawn from a configured
// stochastic process (constant-rate, Poisson, or bursty multi-period
// Gamma) and honoured regardless of how fast the server answers: a slow
// server does not slow the generator down, it grows a queue, and the
// queueing delay lands in the recorded latency (measured from the
// scheduled arrival, not from the moment a worker got around to sending).
// This is the methodology that makes tail latencies honest — a closed
// loop (send, wait, send) silently backs off exactly when the server is
// in trouble, a bias known as coordinated omission.
//
// The pipeline is: Spec -> BuildSchedule (deterministic in Spec.Seed;
// trace bodies synthesized by internal/iogen with per-client seeds) ->
// Runner.Run (worker pool, bounded log-linear histograms, no per-request
// allocation on the record path) -> Report (JSON + human form) ->
// SLO gates (parsed assertions over the report that set the exit code).
// Recorded corpus directories can be replayed instead of synthesized
// (replay.go), at original or scaled speed.
package load

import (
	"encoding/json"
	"fmt"
	"time"
)

// Duration is a time.Duration that marshals to/from a human-readable
// string ("250ms", "2s") in JSON spec files and reports.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or a number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("load: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("load: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

func (d Duration) String() string { return time.Duration(d).String() }
