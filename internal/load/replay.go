package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"iokast/internal/iogen"
	"iokast/internal/xrand"
)

// Replay mode: instead of synthesizing a workload, iokload can re-send a
// recorded corpus directory — every "*.trace" file in canonical text
// format, in lexical filename order (iogen.WriteCorpusDir emits exactly
// this layout, and so does any capture pipeline that names files in
// arrival order).
//
// If the directory carries a "timeline.json" file, each trace replays at
// its recorded offset (scaled by the speed factor); without one, the
// replay is paced by the configured arrival process like a synthetic
// run, which is the right default for corpora that recorded no timing.

// TimelineFile is the optional per-directory timing sidecar.
const TimelineFile = "timeline.json"

// timeline is the TimelineFile schema.
type timeline struct {
	Entries []timelineEntry `json:"entries"`
}

type timelineEntry struct {
	File     string  `json:"file"`
	OffsetMs float64 `json:"offset_ms"`
}

// Recorded is one replayable trace.
type Recorded struct {
	Name   string
	Body   string
	Offset time.Duration // < 0 when the corpus has no timeline
}

// LoadCorpusDir reads a replay corpus. The returned entries are in
// filename order; Offset is -1 throughout when no timeline.json exists.
func LoadCorpusDir(dir string) ([]Recorded, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no *.trace files in %s", dir)
	}
	sort.Strings(names)

	offsets := map[string]time.Duration{}
	hasTimeline := false
	if b, err := os.ReadFile(filepath.Join(dir, TimelineFile)); err == nil {
		var tl timeline
		if err := json.Unmarshal(b, &tl); err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", TimelineFile, err)
		}
		for _, e := range tl.Entries {
			if e.OffsetMs < 0 {
				return nil, fmt.Errorf("load: %s: negative offset for %q", TimelineFile, e.File)
			}
			offsets[e.File] = time.Duration(e.OffsetMs * float64(time.Millisecond))
		}
		hasTimeline = true
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	recs := make([]Recorded, 0, len(names))
	for _, name := range names {
		body, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(name)
		rec := Recorded{Name: base, Body: string(body), Offset: -1}
		if hasTimeline {
			off, ok := offsets[base]
			if !ok {
				return nil, fmt.Errorf("load: %s lists no offset for %q", TimelineFile, base)
			}
			rec.Offset = off
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// BuildReplaySchedule turns a recorded corpus into an ingest schedule.
// With a timeline, each trace is due at its recorded offset divided by
// speed (speed 2 = twice as fast as recorded, 0.5 = half). Without one,
// requests are paced by the arrival process at rate requests/second
// (speed scales that rate), the same machinery a synthetic run uses.
// Replay always targets POST /traces: the point of the mode is to push a
// real corpus through ingest at a controlled tempo.
func BuildReplaySchedule(recs []Recorded, speed, rate float64, seed uint64, arrival ArrivalSpec) ([]Request, error) {
	if !(speed > 0) {
		return nil, fmt.Errorf("load: replay speed must be > 0, got %v", speed)
	}
	timed := len(recs) > 0 && recs[0].Offset >= 0
	var arr Arrival
	if !timed {
		var err error
		// Stream "client -2": shared with nothing a synthetic schedule
		// ever draws (clients use >= 0, prefill uses -1).
		arr, err = NewArrival(arrival, rate*speed, xrand.New(iogen.ClientSeed(seed, -2)))
		if err != nil {
			return nil, err
		}
	}
	reqs := make([]Request, 0, len(recs))
	var t time.Duration
	for _, rec := range recs {
		if timed {
			if rec.Offset < 0 {
				return nil, fmt.Errorf("load: mixed timed/untimed corpus at %q", rec.Name)
			}
			t = time.Duration(float64(rec.Offset) / speed)
		} else {
			t += arr.Next()
		}
		reqs = append(reqs, Request{
			Due:    t,
			Op:     OpIngest,
			Method: "POST",
			Path:   "/traces",
			Body:   rec.Body,
		})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Due < reqs[j].Due })
	return reqs, nil
}

// WriteTimeline writes the timing sidecar for a corpus directory; speeds
// up building replayable fixtures in tests and capture tooling.
func WriteTimeline(dir string, files []string, offsets []time.Duration) error {
	if len(files) != len(offsets) {
		return fmt.Errorf("load: %d files but %d offsets", len(files), len(offsets))
	}
	tl := timeline{Entries: make([]timelineEntry, len(files))}
	for i := range files {
		if strings.ContainsRune(files[i], os.PathSeparator) {
			return fmt.Errorf("load: timeline entry %q must be a bare filename", files[i])
		}
		tl.Entries[i] = timelineEntry{File: files[i], OffsetMs: float64(offsets[i]) / float64(time.Millisecond)}
	}
	b, err := json.MarshalIndent(tl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, TimelineFile), b, 0o644)
}
